"""Statistical properties of the generated envelopes (Section 4.5).

The paper verifies its algorithm by checking that

* the covariance matrix of the generated complex Gaussian samples equals the
  forced-PSD covariance ``K_bar`` (and hence the desired ``K`` whenever that
  was positive semi-definite),
* each branch's Gaussian power equals ``sigma_g_j^2``, and
* the envelope mean and variance obey the Rayleigh relations of Eq. (14)–(15).

This module provides both the theoretical values and the empirical estimators
together with small report objects used by the experiments and the
integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..exceptions import DimensionError
from ..linalg import frobenius_distance
from ..signal.correlation import complex_autocovariance
from .variance import (
    rayleigh_mean_from_gaussian_power,
    rayleigh_variance_from_gaussian_power,
)

__all__ = [
    "theoretical_envelope_mean",
    "theoretical_envelope_variance",
    "empirical_covariance",
    "CovarianceMatchReport",
    "covariance_match_report",
    "EnvelopePowerReport",
    "envelope_power_report",
]


def theoretical_envelope_mean(gaussian_variances: np.ndarray) -> np.ndarray:
    """Expected envelope means ``E{r_j} = 0.8862 sigma_g_j`` (Eq. 14)."""
    return rayleigh_mean_from_gaussian_power(gaussian_variances)


def theoretical_envelope_variance(gaussian_variances: np.ndarray) -> np.ndarray:
    """Expected envelope variances ``Var{r_j} = 0.2146 sigma_g_j^2`` (Eq. 15)."""
    return rayleigh_variance_from_gaussian_power(gaussian_variances)


def empirical_covariance(samples: np.ndarray) -> np.ndarray:
    """Empirical covariance ``Z Z^H / n`` of complex Gaussian samples.

    ``samples`` has shape ``(n_branches, n_samples)``; the processes are
    assumed zero-mean (as generated), so no mean subtraction is applied.
    """
    return complex_autocovariance(samples)


@dataclass(frozen=True)
class CovarianceMatchReport:
    """Comparison of an empirical covariance against a desired covariance.

    Attributes
    ----------
    desired:
        The target covariance matrix.
    empirical:
        The sample covariance matrix.
    absolute_error:
        Frobenius norm of the difference.
    relative_error:
        ``absolute_error / ||desired||_F``.
    max_entry_error:
        Largest absolute element-wise deviation.
    n_samples:
        Number of samples the empirical estimate was computed from.
    """

    desired: np.ndarray
    empirical: np.ndarray
    absolute_error: float
    relative_error: float
    max_entry_error: float
    n_samples: int

    def within(self, relative_tolerance: float) -> bool:
        """Whether the relative Frobenius error is below ``relative_tolerance``."""
        return self.relative_error <= relative_tolerance

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"covariance match over {self.n_samples} samples: "
            f"relative Frobenius error {self.relative_error:.4f}, "
            f"max entry error {self.max_entry_error:.4f}"
        )


def covariance_match_report(
    samples: np.ndarray, desired_covariance: np.ndarray
) -> CovarianceMatchReport:
    """Compare the sample covariance of ``samples`` to ``desired_covariance``."""
    desired = np.asarray(desired_covariance, dtype=complex)
    empirical = empirical_covariance(samples)
    if empirical.shape != desired.shape:
        raise DimensionError(
            f"sample covariance has shape {empirical.shape} but the desired covariance "
            f"has shape {desired.shape}"
        )
    absolute = frobenius_distance(empirical, desired)
    denom = float(np.linalg.norm(desired, ord="fro"))
    relative = absolute / denom if denom > 0 else float("inf")
    max_entry = float(np.max(np.abs(empirical - desired)))
    n_samples = int(np.asarray(samples).shape[-1])
    return CovarianceMatchReport(
        desired=desired,
        empirical=empirical,
        absolute_error=absolute,
        relative_error=relative,
        max_entry_error=max_entry,
        n_samples=n_samples,
    )


@dataclass(frozen=True)
class EnvelopePowerReport:
    """Per-branch comparison of envelope statistics against the Rayleigh theory.

    Attributes
    ----------
    expected_mean / measured_mean:
        Theoretical (Eq. 14) and sample envelope means.
    expected_variance / measured_variance:
        Theoretical (Eq. 15) and sample envelope variances.
    expected_power / measured_power:
        Theoretical (``sigma_g_j^2``) and sample second moments ``E{r^2}``.
    n_samples:
        Samples per branch used in the estimates.
    """

    expected_mean: np.ndarray
    measured_mean: np.ndarray
    expected_variance: np.ndarray
    measured_variance: np.ndarray
    expected_power: np.ndarray
    measured_power: np.ndarray
    n_samples: int

    def max_relative_mean_error(self) -> float:
        """Largest relative deviation of the measured means from theory."""
        return float(np.max(np.abs(self.measured_mean - self.expected_mean) / self.expected_mean))

    def max_relative_power_error(self) -> float:
        """Largest relative deviation of the measured powers from theory."""
        return float(
            np.max(np.abs(self.measured_power - self.expected_power) / self.expected_power)
        )

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"envelope power over {self.n_samples} samples: "
            f"max relative mean error {self.max_relative_mean_error():.4f}, "
            f"max relative power error {self.max_relative_power_error():.4f}"
        )


def envelope_power_report(
    envelopes: np.ndarray,
    gaussian_variances: np.ndarray,
    *,
    expected_mean: Optional[np.ndarray] = None,
) -> EnvelopePowerReport:
    """Compare measured envelope statistics against the Rayleigh relations.

    Parameters
    ----------
    envelopes:
        Array of shape ``(n_branches, n_samples)``.
    gaussian_variances:
        Desired powers ``sigma_g_j^2`` of the underlying Gaussian branches.
    expected_mean:
        Override of the expected envelope means (defaults to Eq. 14).
    """
    env = np.asarray(envelopes, dtype=float)
    if env.ndim == 1:
        env = env[np.newaxis, :]
    if env.ndim != 2:
        raise DimensionError(f"envelopes must be 1-D or 2-D, got ndim={env.ndim}")
    variances = np.asarray(gaussian_variances, dtype=float)
    if variances.shape != (env.shape[0],):
        raise DimensionError(
            f"gaussian_variances must have shape ({env.shape[0]},), got {variances.shape}"
        )
    exp_mean = (
        rayleigh_mean_from_gaussian_power(variances) if expected_mean is None else expected_mean
    )
    return EnvelopePowerReport(
        expected_mean=np.asarray(exp_mean, dtype=float),
        measured_mean=np.mean(env, axis=1),
        expected_variance=rayleigh_variance_from_gaussian_power(variances),
        measured_variance=np.var(env, axis=1),
        expected_power=variances,
        measured_power=np.mean(env**2, axis=1),
        n_samples=int(env.shape[1]),
    )
