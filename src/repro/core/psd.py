"""Forced positive semi-definiteness of the covariance matrix (Section 4.2).

A covariance matrix requested by the user — especially one assembled from
measured or modelled pairwise covariances — need not be positive
semi-definite.  Cholesky-based generators simply fail on such matrices; the
paper's procedure instead eigendecomposes ``K = V G V^H`` and zeroes any
negative eigenvalue, yielding the positive semi-definite matrix
``K_bar = V Lambda V^H`` that is closest to ``K`` in Frobenius norm.

Three strategies are exposed through :func:`force_positive_semidefinite`:

``"clip"``
    The paper's proposal: negative eigenvalues become exactly 0.
``"epsilon"``
    Sorooshyari & Daut [6]: non-positive eigenvalues become a small positive
    ``epsilon`` (keeps Cholesky viable but is strictly further from ``K``).
``"higham"``
    Higham's nearest-PSD with the original diagonal preserved — an extension
    useful when the branch powers on the diagonal must not be perturbed.

:func:`compare_forcing_methods` quantifies the paper's precision claim by
reporting the Frobenius distance of each repaired matrix from the request.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

import numpy as np

from ..config import DEFAULTS, NumericDefaults
from ..exceptions import CovarianceError
from ..linalg import (
    clip_negative_eigenvalues,
    frobenius_distance,
    hermitian_eigendecomposition,
    is_positive_semidefinite,
    nearest_psd_higham,
    replace_nonpositive_eigenvalues,
)

__all__ = ["PSDForcingResult", "force_positive_semidefinite", "compare_forcing_methods"]

_METHODS = ("clip", "epsilon", "higham")


@dataclass(frozen=True)
class PSDForcingResult:
    """Outcome of the forced-PSD procedure.

    Attributes
    ----------
    matrix:
        The positive semi-definite matrix ``K_bar``.
    requested:
        The matrix the caller supplied.
    method:
        Strategy used (``"clip"``, ``"epsilon"`` or ``"higham"``).
    was_modified:
        ``True`` when the request had negative eigenvalues and was repaired.
    negative_eigenvalues:
        The negative eigenvalues found in the request (empty when none).
    frobenius_error:
        ``||K_bar - K||_F`` — zero (up to round-off) when no repair happened.
    extra:
        Method-specific details (e.g. the epsilon used).
    """

    matrix: np.ndarray
    requested: np.ndarray
    method: str
    was_modified: bool
    negative_eigenvalues: np.ndarray
    frobenius_error: float
    extra: Dict[str, Any] = field(default_factory=dict)


def force_positive_semidefinite(
    covariance: np.ndarray,
    method: str = "clip",
    *,
    epsilon: float = 1e-6,
    defaults: NumericDefaults = DEFAULTS,
) -> PSDForcingResult:
    """Force a (Hermitian) covariance matrix to be positive semi-definite.

    Parameters
    ----------
    covariance:
        The desired covariance matrix ``K`` (Hermitian; tiny asymmetries are
        symmetrized away).
    method:
        ``"clip"`` (paper, default), ``"epsilon"`` (baseline [6]) or
        ``"higham"`` (diagonal-preserving nearest PSD).
    epsilon:
        Replacement value for the ``"epsilon"`` method.
    defaults:
        Tolerance bundle.

    Returns
    -------
    PSDForcingResult
    """
    if method not in _METHODS:
        raise ValueError(f"unknown PSD forcing method {method!r}; choose from {_METHODS}")

    decomp = hermitian_eigendecomposition(covariance)
    scale = max(abs(decomp.max_eigenvalue), 1.0)
    negatives = decomp.eigenvalues[decomp.eigenvalues < -defaults.eig_clip_tol * scale]
    already_psd = negatives.size == 0

    extra: Dict[str, Any] = {"min_eigenvalue": decomp.min_eigenvalue}
    requested = np.asarray(covariance, dtype=complex)

    if method == "clip":
        if already_psd:
            # Keep the caller's matrix bit-for-bit when nothing needs fixing.
            repaired = requested.copy()
        else:
            repaired = clip_negative_eigenvalues(requested, defaults=defaults)
    elif method == "epsilon":
        repaired = replace_nonpositive_eigenvalues(requested, epsilon=epsilon, defaults=defaults)
        extra["epsilon"] = epsilon
    else:  # higham
        if already_psd:
            repaired = requested.copy()
        else:
            repaired = nearest_psd_higham(requested, preserve_diagonal=True, defaults=defaults)

    if not is_positive_semidefinite(repaired, defaults=defaults):
        raise CovarianceError(
            f"PSD forcing with method {method!r} failed to produce a positive "
            "semi-definite matrix; this indicates a severely ill-conditioned input"
        )

    return PSDForcingResult(
        matrix=repaired,
        requested=requested,
        method=method,
        was_modified=not already_psd or method == "epsilon",
        negative_eigenvalues=negatives.copy(),
        frobenius_error=frobenius_distance(repaired, requested),
        extra=extra,
    )


def compare_forcing_methods(
    covariance: np.ndarray,
    *,
    epsilon: float = 1e-6,
    defaults: NumericDefaults = DEFAULTS,
) -> Dict[str, PSDForcingResult]:
    """Run every forcing strategy on the same matrix and return all results.

    Used by the ``psd-forcing-precision`` experiment to demonstrate the
    paper's claim that eigenvalue clipping approximates the desired
    covariance better (smaller Frobenius error) than the epsilon replacement
    of [6].
    """
    return {
        method: force_positive_semidefinite(
            covariance, method=method, epsilon=epsilon, defaults=defaults
        )
        for method in _METHODS
    }
