"""Mapping between envelope correlation and complex-Gaussian correlation.

The paper specifies correlation at the level of the complex Gaussian
branches (the covariance matrix ``K``), which is what the generator needs.
Much of the older literature — including the baselines [2]–[4] — specifies
the correlation between the *Rayleigh envelopes* instead.  The two are
related but not equal; this module provides the conversion both ways so
users can start from either description.

For two jointly circular complex Gaussian variables with correlation
coefficient magnitude ``|rho_g|``, the envelope cross-moment is (Middleton;
see also Jakes Eq. 1.5-26)

.. math::

    E\\{r_1 r_2\\} = \\frac{\\pi \\sigma_{g1}\\sigma_{g2}}{4}
                   \\,{}_2F_1\\!\\left(-\\tfrac12, -\\tfrac12; 1; |\\rho_g|^2\\right),

which gives the exact envelope correlation coefficient

.. math::

    \\rho_r = \\frac{{}_2F_1(-\\tfrac12,-\\tfrac12;1;|\\rho_g|^2)\\,\\pi/4 - \\pi/4}
                  {1 - \\pi/4}.

The widely used approximation is simply ``rho_r ~= |rho_g|^2``.  Both the
exact map, the approximation, and the numerical inverse (envelope ->
Gaussian) are provided, plus a helper that converts a whole envelope
correlation matrix into a Gaussian correlation-coefficient matrix ready for
:meth:`repro.core.covariance.CovarianceSpec.from_envelope_variances`.
"""

from __future__ import annotations

from typing import Union

import numpy as np
from scipy.special import hyp2f1

from ..exceptions import SpecificationError
from ..linalg import assert_hermitian

__all__ = [
    "envelope_correlation_from_gaussian",
    "envelope_correlation_approximation",
    "gaussian_correlation_from_envelope",
    "gaussian_correlation_matrix_from_envelope",
]

ArrayOrFloat = Union[float, np.ndarray]

#: Rayleigh variance factor 1 - pi/4, reused locally to avoid circular imports.
_VAR_FACTOR = 1.0 - np.pi / 4.0


def _validate_magnitude(value: ArrayOrFloat, name: str, upper_inclusive: bool) -> np.ndarray:
    arr = np.asarray(value, dtype=float)
    upper_ok = arr <= 1.0 if upper_inclusive else arr < 1.0
    if np.any(~np.isfinite(arr)) or np.any(arr < 0.0) or np.any(~upper_ok):
        bound = "1" if upper_inclusive else "1 (exclusive)"
        raise SpecificationError(f"{name} must lie in [0, {bound}], got {value!r}")
    return arr


def envelope_correlation_from_gaussian(gaussian_correlation: ArrayOrFloat) -> np.ndarray:
    """Exact envelope (Pearson) correlation for a given |Gaussian correlation|.

    Parameters
    ----------
    gaussian_correlation:
        Magnitude ``|rho_g|`` of the complex correlation coefficient between
        the two Gaussian branches, in ``[0, 1]``.  Complex inputs are
        accepted and reduced to their magnitude (the envelope correlation
        depends only on ``|rho_g|``).

    Returns
    -------
    numpy.ndarray
        Envelope correlation coefficient(s) in ``[0, 1]``.
    """
    magnitude = np.abs(np.asarray(gaussian_correlation))
    magnitude = _validate_magnitude(magnitude, "|gaussian correlation|", upper_inclusive=True)
    cross_moment_factor = hyp2f1(-0.5, -0.5, 1.0, magnitude**2)
    # E{r1 r2} - E{r1}E{r2} = (pi/4) sigma1 sigma2 (2F1 - 1); divide by the
    # envelope standard deviations sqrt(1 - pi/4) sigma.
    return (np.pi / 4.0) * (cross_moment_factor - 1.0) / _VAR_FACTOR


def envelope_correlation_approximation(gaussian_correlation: ArrayOrFloat) -> np.ndarray:
    """The standard approximation ``rho_r ~= |rho_g|^2``.

    Accurate to within about 0.015 absolute over the whole range; kept for
    comparisons and for reproducing methods that rely on it (e.g. [2]).
    """
    magnitude = np.abs(np.asarray(gaussian_correlation))
    magnitude = _validate_magnitude(magnitude, "|gaussian correlation|", upper_inclusive=True)
    return magnitude**2


def gaussian_correlation_from_envelope(
    envelope_correlation: ArrayOrFloat,
    *,
    exact: bool = True,
    tolerance: float = 1e-12,
    max_iterations: int = 200,
) -> np.ndarray:
    """Invert the envelope-correlation map: return ``|rho_g|`` for a given ``rho_r``.

    Parameters
    ----------
    envelope_correlation:
        Desired envelope correlation coefficient(s) in ``[0, 1)``.
    exact:
        If ``True`` (default) invert the exact hypergeometric relation by
        bisection (the map is strictly increasing); otherwise use the
        ``sqrt`` of the approximation.
    tolerance:
        Bisection tolerance on ``|rho_g|``.
    max_iterations:
        Bisection iteration cap.

    Returns
    -------
    numpy.ndarray
        Magnitude(s) ``|rho_g|`` in ``[0, 1)``.
    """
    target = _validate_magnitude(envelope_correlation, "envelope correlation", upper_inclusive=False)
    if not exact:
        return np.sqrt(target)

    flat = np.atleast_1d(target).astype(float)
    result = np.empty_like(flat)
    for index, value in enumerate(flat):
        if value == 0.0:
            result[index] = 0.0
            continue
        low, high = 0.0, 1.0
        for _ in range(max_iterations):
            mid = 0.5 * (low + high)
            if float(envelope_correlation_from_gaussian(mid)) < value:
                low = mid
            else:
                high = mid
            if high - low < tolerance:
                break
        result[index] = 0.5 * (low + high)
    return result.reshape(np.shape(target)) if np.ndim(target) else result[0] * np.ones(())


def gaussian_correlation_matrix_from_envelope(
    envelope_correlation_matrix: np.ndarray,
    *,
    exact: bool = True,
) -> np.ndarray:
    """Convert an envelope correlation matrix into a Gaussian correlation matrix.

    The result has unit diagonal and real non-negative entries (the envelope
    correlation carries no phase information; if phases are known they can be
    applied afterwards).  It is ready to be combined with per-branch powers
    via :meth:`repro.core.covariance.CovarianceSpec.from_envelope_variances`.

    Raises
    ------
    SpecificationError
        If the input is not a symmetric matrix with unit diagonal and
        off-diagonal entries in ``[0, 1)``.
    """
    matrix = np.asarray(envelope_correlation_matrix, dtype=float)
    assert_hermitian(matrix, "envelope correlation matrix")
    if not np.allclose(np.diag(matrix), 1.0, atol=1e-10):
        raise SpecificationError("the envelope correlation matrix must have a unit diagonal")
    n = matrix.shape[0]
    out = np.eye(n)
    for k in range(n):
        for j in range(k + 1, n):
            value = float(matrix[k, j])
            if not 0.0 <= value < 1.0:
                raise SpecificationError(
                    f"envelope correlations must lie in [0, 1); entry ({k}, {j}) is {value}"
                )
            rho_g = float(gaussian_correlation_from_envelope(value, exact=exact))
            out[k, j] = out[j, k] = rho_g
    return out
