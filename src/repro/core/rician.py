"""Correlated Rician fading — an extension of the paper's Rayleigh generator.

The paper generates zero-mean complex Gaussian branches, whose moduli are
Rayleigh.  Many links (satellite, fixed wireless, mmWave with a persistent
line of sight) are better modelled as *Rician*: the same diffuse correlated
component plus a deterministic line-of-sight (LOS) term.  Because the
generalized algorithm already produces the diffuse part for any covariance
matrix, the Rician extension is a thin layer on top of it:

.. math::

    z_j[l] = \\underbrace{\\sqrt{\\frac{K_j\\,\\Omega_j}{K_j + 1}}\\,
             e^{\\,i(2\\pi f_{LOS,j} l + \\theta_j)}}_{\\text{LOS}}
           + \\underbrace{\\sqrt{\\frac{\\Omega_j}{K_j + 1}}\\; s_j[l]}_{\\text{diffuse}},

where ``K_j`` is the branch's Rician K-factor, ``Omega_j = E|z_j|^2`` its
total power, ``f_LOS`` an optional LOS Doppler shift (cycles/sample), and
``s_j`` the unit-power correlated diffuse process produced by the paper's
algorithm (snapshot or real-time).  For ``K_j = 0`` the construction reduces
exactly to the correlated Rayleigh generator.

The supplied covariance matrix / spec describes the *diffuse* correlation;
its diagonal is interpreted as the total branch powers ``Omega_j`` and the
diffuse part is internally rescaled by ``1/(K_j + 1)``.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..exceptions import SpecificationError
from ..types import ComplexArray, EnvelopeBlock, GaussianBlock, SeedLike
from .covariance import CovarianceSpec, correlation_coefficient_matrix
from .generator import RayleighFadingGenerator
from .realtime import RealTimeRayleighGenerator

__all__ = ["RicianFadingGenerator", "rician_moments"]


def rician_moments(k_factor: float, total_power: float = 1.0) -> tuple:
    """Return ``(mean envelope, envelope variance)`` of a Rician branch.

    Uses the standard expressions in terms of the Laguerre polynomial
    ``L_{1/2}``:

    .. math::

        E\\{r\\} = \\sqrt{\\frac{\\pi \\Omega}{4 (K+1)}}\\; L_{1/2}(-K), \\qquad
        \\mathrm{Var}\\{r\\} = \\Omega - E\\{r\\}^2.
    """
    if k_factor < 0:
        raise SpecificationError(f"the Rician K-factor must be non-negative, got {k_factor}")
    if total_power <= 0:
        raise SpecificationError(f"total power must be positive, got {total_power}")
    # L_{1/2}(-K) = e^{-K/2} [(1+K) I0(K/2) + K I1(K/2)]
    from scipy.special import i0e, i1e

    half = k_factor / 2.0
    # i0e/i1e are exponentially scaled (I_n(x) e^{-x}), so the e^{-K/2} factor
    # combines with them as e^{+K/2} * e^{-K} = e^{-K/2}; written explicitly:
    laguerre_half = (1.0 + k_factor) * i0e(half) + k_factor * i1e(half)
    mean = float(np.sqrt(np.pi * total_power / (4.0 * (k_factor + 1.0))) * laguerre_half)
    variance = float(total_power - mean**2)
    return mean, variance


class RicianFadingGenerator:
    """Generate N correlated Rician fading envelopes.

    Parameters
    ----------
    spec:
        Covariance specification (or raw covariance matrix) of the diffuse
        component; the diagonal gives the *total* branch powers ``Omega_j``.
    k_factors:
        Rician K-factor per branch (scalar broadcasts to all branches).
        ``K = 0`` gives Rayleigh fading on that branch.
    los_doppler:
        Normalized Doppler shift of the LOS component (cycles per sample);
        0 gives a static LOS phasor.
    los_phases:
        Initial LOS phase per branch (radians).  Default: all zero.
    normalized_doppler:
        If given, the diffuse component is Doppler-shaped with the real-time
        generator of Section 5; otherwise it is time-independent.
    n_points:
        IDFT block length for the real-time diffuse component.
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        spec: Union[CovarianceSpec, np.ndarray],
        k_factors: Union[float, np.ndarray],
        *,
        los_doppler: float = 0.0,
        los_phases: Optional[np.ndarray] = None,
        normalized_doppler: Optional[float] = None,
        n_points: int = 4096,
        rng: SeedLike = None,
    ) -> None:
        if not isinstance(spec, CovarianceSpec):
            spec = CovarianceSpec.from_covariance_matrix(np.asarray(spec, dtype=complex))
        n = spec.n_branches

        k = np.broadcast_to(np.asarray(k_factors, dtype=float), (n,)).copy()
        if np.any(k < 0) or np.any(~np.isfinite(k)):
            raise SpecificationError("all Rician K-factors must be finite and non-negative")
        phases = np.zeros(n) if los_phases is None else np.asarray(los_phases, dtype=float)
        if phases.shape != (n,):
            raise SpecificationError(f"los_phases must have shape ({n},), got {phases.shape}")

        self._total_powers = spec.gaussian_variances.copy()
        self._k_factors = k
        self._los_phases = phases
        self._los_doppler = float(los_doppler)

        # Diffuse component: same correlation coefficients, powers scaled by
        # 1 / (K + 1).
        diffuse_powers = self._total_powers / (k + 1.0)
        rho = correlation_coefficient_matrix(spec.matrix)
        diffuse_covariance = rho * np.sqrt(np.outer(diffuse_powers, diffuse_powers))
        diffuse_spec = CovarianceSpec.from_covariance_matrix(diffuse_covariance)

        self._normalized_doppler = normalized_doppler
        if normalized_doppler is None:
            self._diffuse: Union[RayleighFadingGenerator, RealTimeRayleighGenerator] = (
                RayleighFadingGenerator(diffuse_spec, rng=rng)
            )
            self._samples_per_block: Optional[int] = None
        else:
            self._diffuse = RealTimeRayleighGenerator(
                diffuse_spec,
                normalized_doppler=float(normalized_doppler),
                n_points=int(n_points),
                rng=rng,
            )
            self._samples_per_block = int(n_points)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def n_branches(self) -> int:
        """Number of correlated branches."""
        return self._total_powers.shape[0]

    @property
    def k_factors(self) -> np.ndarray:
        """Per-branch Rician K-factors (copy)."""
        return self._k_factors.copy()

    @property
    def total_powers(self) -> np.ndarray:
        """Per-branch total powers ``Omega_j`` (copy)."""
        return self._total_powers.copy()

    def theoretical_envelope_means(self) -> np.ndarray:
        """Expected envelope mean per branch."""
        return np.array(
            [
                rician_moments(k, power)[0]
                for k, power in zip(self._k_factors, self._total_powers)
            ]
        )

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #
    def _los_component(self, n_samples: int) -> ComplexArray:
        """Deterministic LOS phasor matrix of shape ``(N, n_samples)``."""
        amplitudes = np.sqrt(
            self._k_factors * self._total_powers / (self._k_factors + 1.0)
        )
        time_indices = np.arange(n_samples)
        phases = (
            2.0 * np.pi * self._los_doppler * time_indices[np.newaxis, :]
            + self._los_phases[:, np.newaxis]
        )
        return amplitudes[:, np.newaxis] * np.exp(1j * phases)

    def generate_gaussian(self, n_samples: int = 1) -> GaussianBlock:
        """Generate correlated Rician complex samples of shape ``(N, n_samples)``.

        In real-time mode ``n_samples`` is rounded up to whole IDFT blocks and
        truncated.
        """
        if n_samples < 1:
            raise SpecificationError(f"n_samples must be >= 1, got {n_samples}")
        if isinstance(self._diffuse, RealTimeRayleighGenerator):
            blocks = -(-n_samples // self._samples_per_block)  # ceil division
            diffuse = self._diffuse.generate(blocks)[:, :n_samples]
        else:
            diffuse = self._diffuse.generate(n_samples)
        samples = diffuse + self._los_component(n_samples)
        return GaussianBlock(
            samples=samples,
            variances=self._total_powers.copy(),
            metadata={
                "method": "rician",
                "k_factors": self._k_factors.tolist(),
                "los_doppler": self._los_doppler,
                "normalized_doppler": self._normalized_doppler,
            },
        )

    def generate_envelopes(self, n_samples: int = 1) -> EnvelopeBlock:
        """Generate correlated Rician envelopes."""
        return self.generate_gaussian(n_samples).envelopes()

    def generate(self, n_samples: int = 1) -> ComplexArray:
        """Shorthand returning only the complex sample array."""
        return self.generate_gaussian(n_samples).samples
