"""Power / variance conversions between Rayleigh envelopes and complex Gaussians.

The algorithm can start either from the desired powers of the complex
Gaussian processes ``sigma_g_j^2`` or from the desired powers (variances) of
the Rayleigh envelopes themselves ``sigma_r_j^2``.  Step 1 of the algorithm
converts between the two (Eq. 11):

.. math::

    \\sigma_{g_j}^2 = \\frac{\\sigma_{r_j}^2}{1 - \\pi/4},

which follows from the Rayleigh moment relations (Eq. 14–15):

.. math::

    E\\{r_j\\} = \\sigma_{g_j} \\sqrt{\\pi}/2, \\qquad
    \\mathrm{Var}\\{r_j\\} = \\sigma_{g_j}^2 (1 - \\pi/4).

All conversions are vectorized and validate positivity.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from ..exceptions import PowerError

__all__ = [
    "RAYLEIGH_VARIANCE_FACTOR",
    "envelope_power_to_gaussian_power",
    "gaussian_power_to_envelope_power",
    "rayleigh_mean_from_gaussian_power",
    "rayleigh_variance_from_gaussian_power",
    "rayleigh_moments",
]

#: The factor ``1 - pi/4 ~= 0.2146`` relating envelope variance to Gaussian power.
RAYLEIGH_VARIANCE_FACTOR = 1.0 - np.pi / 4.0

ArrayOrFloat = Union[float, np.ndarray]


def _validate_positive(values: ArrayOrFloat, name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise PowerError(f"{name} must be non-empty")
    if np.any(~np.isfinite(arr)) or np.any(arr <= 0.0):
        raise PowerError(f"all entries of {name} must be positive and finite")
    return arr


def envelope_power_to_gaussian_power(envelope_variances: ArrayOrFloat) -> np.ndarray:
    """Convert desired Rayleigh-envelope variances to complex-Gaussian powers (Eq. 11).

    Parameters
    ----------
    envelope_variances:
        ``sigma_r_j^2`` — the desired variances of the Rayleigh envelopes.

    Returns
    -------
    numpy.ndarray
        ``sigma_g_j^2 = sigma_r_j^2 / (1 - pi/4)``.
    """
    arr = _validate_positive(envelope_variances, "envelope variances")
    return arr / RAYLEIGH_VARIANCE_FACTOR


def gaussian_power_to_envelope_power(gaussian_variances: ArrayOrFloat) -> np.ndarray:
    """Convert complex-Gaussian powers to the implied Rayleigh-envelope variances (Eq. 15)."""
    arr = _validate_positive(gaussian_variances, "gaussian variances")
    return arr * RAYLEIGH_VARIANCE_FACTOR


def rayleigh_mean_from_gaussian_power(gaussian_variances: ArrayOrFloat) -> np.ndarray:
    """Mean envelope value ``E{r} = sigma_g * sqrt(pi)/2 ~= 0.8862 sigma_g`` (Eq. 14)."""
    arr = _validate_positive(gaussian_variances, "gaussian variances")
    return np.sqrt(arr) * (np.sqrt(np.pi) / 2.0)


def rayleigh_variance_from_gaussian_power(gaussian_variances: ArrayOrFloat) -> np.ndarray:
    """Envelope variance ``Var{r} = sigma_g^2 (1 - pi/4) ~= 0.2146 sigma_g^2`` (Eq. 15)."""
    arr = _validate_positive(gaussian_variances, "gaussian variances")
    return arr * RAYLEIGH_VARIANCE_FACTOR


def rayleigh_moments(gaussian_variance: float) -> Tuple[float, float, float]:
    """Return ``(mean, variance, second moment)`` of a Rayleigh envelope.

    Parameters
    ----------
    gaussian_variance:
        Power ``sigma_g^2`` of the underlying complex Gaussian variable.

    Returns
    -------
    tuple
        ``(E{r}, Var{r}, E{r^2})`` where ``E{r^2} = sigma_g^2``.
    """
    arr = _validate_positive(gaussian_variance, "gaussian variance")
    sigma_g2 = float(arr)
    mean = float(np.sqrt(sigma_g2) * np.sqrt(np.pi) / 2.0)
    variance = float(sigma_g2 * RAYLEIGH_VARIANCE_FACTOR)
    return mean, variance, sigma_g2
