"""Snapshot generator: the algorithm of Section 4.4 (steps 1–7).

Given a :class:`repro.core.covariance.CovarianceSpec` (or a bare covariance
matrix), :class:`RayleighFadingGenerator` produces blocks of ``N`` correlated
complex Gaussian samples — and their Rayleigh envelopes — whose covariance
matrix matches the (forced-PSD) desired covariance:

1. the desired per-branch Gaussian powers are fixed (converted from envelope
   powers through Eq. 11 when necessary — handled by ``CovarianceSpec``),
2. the covariance matrix ``K`` is assembled from the pairwise covariances
   (Eq. 12–13 — also ``CovarianceSpec``),
3. ``K`` is eigendecomposed and 4. negative eigenvalues are clipped
   (Section 4.2),
5. the coloring matrix ``L = V sqrt(Lambda)`` is formed (Section 4.3),
6. a vector ``W`` of independent complex Gaussian samples with *arbitrary,
   equal* variance ``sigma_w^2`` is drawn, and
7. the correlated vector is ``Z = L W / sigma_w``.

Consecutive output samples are independent in time; use
:class:`repro.core.realtime.RealTimeRayleighGenerator` when Doppler-shaped
temporal correlation is required.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..config import DEFAULTS, NumericDefaults
from ..exceptions import GenerationError, PowerError
from ..linalg import ColoringDecomposition
from ..random import complex_gaussian, ensure_rng
from ..types import ComplexArray, EnvelopeBlock, GaussianBlock, SeedLike
from .covariance import CovarianceSpec

__all__ = ["RayleighFadingGenerator"]


class RayleighFadingGenerator:
    """Generate correlated Rayleigh envelopes at independent time instants.

    Parameters
    ----------
    spec:
        Either a :class:`CovarianceSpec` or a raw complex covariance matrix
        ``K`` (in which case the branch powers are read off its diagonal).
    coloring_method:
        ``"eigen"`` (the paper's method, default), ``"cholesky"`` or
        ``"svd"``.
    psd_method:
        How non-PSD requests are repaired: ``"clip"`` (paper, default),
        ``"epsilon"`` or ``"higham"``.
    sample_variance:
        The arbitrary common variance ``sigma_w^2`` of the white complex
        Gaussian samples drawn in step 6.  The output is normalized by
        ``sigma_w`` in step 7, so its value does not affect the statistics;
        it is configurable because the real-time algorithm of Section 5 needs
        it to equal the Doppler-filter output variance of Eq. (19).
    rng:
        Seed or generator.
    cache:
        Decomposition cache consulted for the coloring matrix.  ``None``
        (default) uses the process-wide
        :func:`repro.engine.cache.default_decomposition_cache`, so sweeps
        that construct many generators over repeated covariance matrices
        decompose each matrix only once.  Pass a private
        :class:`repro.engine.cache.DecompositionCache` to isolate (or, with
        ``maxsize=0``, disable) the reuse.  Cached decompositions are
        bit-identical to fresh ones, so generation never depends on cache
        state.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import CovarianceSpec, RayleighFadingGenerator
    >>> K = np.array([[1.0, 0.5], [0.5, 1.0]], dtype=complex)
    >>> gen = RayleighFadingGenerator(CovarianceSpec.from_covariance_matrix(K), rng=7)
    >>> block = gen.generate_envelopes(10_000)
    >>> block.envelopes.shape
    (2, 10000)
    """

    def __init__(
        self,
        spec: Union[CovarianceSpec, np.ndarray],
        *,
        coloring_method: str = "eigen",
        psd_method: str = "clip",
        sample_variance: float = 1.0,
        rng: SeedLike = None,
        defaults: NumericDefaults = DEFAULTS,
        cache=None,
    ) -> None:
        if not isinstance(spec, CovarianceSpec):
            spec = CovarianceSpec.from_covariance_matrix(np.asarray(spec, dtype=complex))
        if sample_variance <= 0 or not np.isfinite(sample_variance):
            raise PowerError(
                f"sample_variance must be positive and finite, got {sample_variance!r}"
            )
        self._spec = spec
        self._defaults = defaults
        # Import at call time: repro.engine builds on repro.core, so the
        # delegation back to the engine's cache must not run at import time.
        from ..engine.cache import default_decomposition_cache

        if cache is None:
            cache = default_decomposition_cache()
        self._coloring = cache.coloring_for(
            spec.matrix, method=coloring_method, psd_method=psd_method, defaults=defaults
        )
        self._sample_variance = float(sample_variance)
        self._rng = ensure_rng(rng)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def spec(self) -> CovarianceSpec:
        """The covariance specification this generator realizes."""
        return self._spec

    @property
    def n_branches(self) -> int:
        """Number of correlated branches ``N``."""
        return self._spec.n_branches

    @property
    def coloring(self) -> ColoringDecomposition:
        """The coloring decomposition (with PSD-forcing diagnostics)."""
        return self._coloring

    @property
    def effective_covariance(self) -> np.ndarray:
        """The covariance matrix actually realized (``K_bar`` of the paper)."""
        return self._coloring.effective_covariance

    @property
    def sample_variance(self) -> float:
        """The white-sample variance ``sigma_w^2`` used in step 6."""
        return self._sample_variance

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #
    def color(self, white_samples: ComplexArray) -> ComplexArray:
        """Apply steps 6–7 to externally supplied white samples.

        Parameters
        ----------
        white_samples:
            Array of shape ``(N,)`` or ``(N, n_samples)`` of independent
            complex Gaussian samples, each with variance
            :attr:`sample_variance`.  The real-time generator feeds the
            Doppler-filtered IDFT outputs through this method.

        Returns
        -------
        numpy.ndarray
            ``Z = L W / sigma_w`` with the same trailing shape.
        """
        w = np.asarray(white_samples, dtype=complex)
        squeeze = False
        if w.ndim == 1:
            w = w[:, np.newaxis]
            squeeze = True
        if w.ndim != 2 or w.shape[0] != self.n_branches:
            raise GenerationError(
                f"white_samples must have shape ({self.n_branches},) or "
                f"({self.n_branches}, n_samples), got {np.asarray(white_samples).shape}"
            )
        colored = (self._coloring.coloring_matrix @ w) / np.sqrt(self._sample_variance)
        return colored[:, 0] if squeeze else colored

    def generate_gaussian(self, n_samples: int = 1, rng: Optional[SeedLike] = None) -> GaussianBlock:
        """Generate correlated complex Gaussian samples (steps 6–7).

        Parameters
        ----------
        n_samples:
            Number of independent time samples per branch.
        rng:
            Optional per-call override of the random stream.

        Returns
        -------
        GaussianBlock
            Samples of shape ``(N, n_samples)`` whose covariance is the
            effective (forced-PSD) covariance matrix.
        """
        if n_samples < 1:
            raise GenerationError(f"n_samples must be >= 1, got {n_samples}")
        gen = self._rng if rng is None else ensure_rng(rng)
        white = complex_gaussian(
            (self.n_branches, int(n_samples)), variance=self._sample_variance, rng=gen
        )
        colored = self.color(white)
        return GaussianBlock(
            samples=colored,
            variances=self._spec.gaussian_variances.copy(),
            metadata={
                "method": "snapshot",
                "coloring_method": self._coloring.method,
                "was_repaired": self._coloring.was_repaired,
            },
        )

    def generate_envelopes(self, n_samples: int = 1, rng: Optional[SeedLike] = None) -> EnvelopeBlock:
        """Generate correlated Rayleigh envelopes (the moduli of step 7's output)."""
        return self.generate_gaussian(n_samples=n_samples, rng=rng).envelopes()

    def generate(self, n_samples: int = 1, rng: Optional[SeedLike] = None) -> ComplexArray:
        """Shorthand returning only the complex sample array of shape ``(N, n_samples)``."""
        return self.generate_gaussian(n_samples=n_samples, rng=rng).samples
