"""Assembly of the complex-Gaussian covariance matrix ``K`` (Eq. 12–13).

The paper's key modelling decision is to describe the desired correlation
structure through the covariance matrix of the *complex Gaussian* variables
``z_j`` (whose moduli are the Rayleigh envelopes), not through the covariance
of the envelopes themselves.  Its entries are

.. math::

    \\mu_{k,j} = \\begin{cases}
        \\sigma_{g_j}^2 & k = j\\\\
        (R_{xx}^{k,j} + R_{yy}^{k,j}) - i\\,(R_{xy}^{k,j} - R_{yx}^{k,j}) & k \\ne j
    \\end{cases}

where the four ``R`` terms are the covariances between the real and imaginary
parts of ``z_k`` and ``z_j`` — supplied either directly or via the spectral /
spatial correlation models of :mod:`repro.channels`.

:class:`CovarianceSpec` is the single input object consumed by the
generators: it couples the matrix ``K`` with the per-branch powers and
remembers whether the caller originally specified envelope powers (in which
case Eq. 11 was applied).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..config import DEFAULTS, NumericDefaults
from ..exceptions import CovarianceError, DimensionError, PowerError
from ..linalg import assert_hermitian, assert_square, is_positive_semidefinite
from .variance import envelope_power_to_gaussian_power

__all__ = [
    "covariance_entry",
    "decompose_covariance_entry",
    "build_covariance_matrix",
    "correlation_coefficient_matrix",
    "CovarianceSpec",
]


def covariance_entry(rxx: float, ryy: float, rxy: float, ryx: float) -> complex:
    """Off-diagonal covariance entry ``mu_{k,j}`` from its four real components (Eq. 13)."""
    return complex(rxx + ryy, -(rxy - ryx))


def decompose_covariance_entry(entry: complex) -> Tuple[float, float, float, float]:
    """Split a covariance entry back into ``(Rxx, Ryy, Rxy, Ryx)``.

    The decomposition assumes the circular-symmetry conditions the paper uses
    throughout (``Rxx = Ryy`` and ``Rxy = -Ryx``), under which it is exact:
    ``Rxx = Re(mu)/2`` and ``Rxy = -Im(mu)/2``.
    """
    entry = complex(entry)
    rxx = entry.real / 2.0
    rxy = -entry.imag / 2.0
    return rxx, rxx, rxy, -rxy


def build_covariance_matrix(
    gaussian_variances: np.ndarray,
    rxx: np.ndarray,
    ryy: np.ndarray,
    rxy: np.ndarray,
    ryx: np.ndarray,
    *,
    defaults: NumericDefaults = DEFAULTS,
) -> np.ndarray:
    """Assemble the Hermitian covariance matrix ``K`` from its components (Eq. 12–13).

    Parameters
    ----------
    gaussian_variances:
        Per-branch powers ``sigma_g_j^2`` placed on the diagonal.
    rxx, ryy, rxy, ryx:
        ``(N, N)`` matrices of covariances between real/imaginary parts for
        each ordered pair ``(k, j)``; diagonals are ignored.

    Returns
    -------
    numpy.ndarray
        The ``(N, N)`` complex covariance matrix ``K``.

    Raises
    ------
    CovarianceError
        If the assembled matrix is not Hermitian — which happens exactly when
        the supplied components are mutually inconsistent (e.g.
        ``Rxx[k, j] != Rxx[j, k]`` or ``Rxy[k, j] != Ryx[j, k]``).
    """
    variances = np.asarray(gaussian_variances, dtype=float)
    n = variances.shape[0]
    if variances.ndim != 1 or n < 1:
        raise DimensionError("gaussian_variances must be a non-empty 1-D array")
    if np.any(variances <= 0) or np.any(~np.isfinite(variances)):
        raise PowerError("all gaussian variances must be positive and finite")
    components = []
    for name, mat in (("rxx", rxx), ("ryy", ryy), ("rxy", rxy), ("ryx", ryx)):
        arr = np.asarray(mat, dtype=float)
        if arr.shape != (n, n):
            raise DimensionError(f"{name} must have shape ({n}, {n}), got {arr.shape}")
        components.append(arr)
    rxx_m, ryy_m, rxy_m, ryx_m = components

    matrix = (rxx_m + ryy_m) - 1j * (rxy_m - ryx_m)
    matrix = matrix.astype(complex)
    np.fill_diagonal(matrix, variances.astype(complex))
    try:
        assert_hermitian(matrix, "assembled covariance matrix", defaults=defaults)
    except CovarianceError as exc:
        raise CovarianceError(
            "the covariance components are inconsistent: the assembled matrix is not "
            f"Hermitian ({exc}). Check that Rxx/Ryy are symmetric and Rxy[k, j] == Ryx[j, k]."
        ) from exc
    return matrix


def correlation_coefficient_matrix(covariance: np.ndarray) -> np.ndarray:
    """Normalize a covariance matrix to unit diagonal.

    Returns ``rho[k, j] = K[k, j] / sqrt(K[k, k] K[j, j])``, the complex
    correlation-coefficient matrix of the Gaussian branches.
    """
    arr = assert_square(covariance, "covariance matrix")
    diagonal = np.real(np.diag(arr))
    if np.any(diagonal <= 0):
        raise CovarianceError(
            "cannot normalize: the covariance matrix has non-positive diagonal entries"
        )
    scale = np.sqrt(np.outer(diagonal, diagonal))
    return arr / scale


@dataclass(frozen=True)
class CovarianceSpec:
    """Complete specification of the desired correlation structure.

    Attributes
    ----------
    matrix:
        The desired covariance matrix ``K`` of the complex Gaussian branches.
    gaussian_variances:
        Per-branch powers ``sigma_g_j^2`` (the diagonal of ``matrix``).
    envelope_variances:
        The envelope variances ``sigma_r_j^2`` originally requested, when the
        spec was built from envelope powers; ``None`` otherwise.
    metadata:
        Provenance (which physical model produced the matrix, its
        parameters, ...).
    """

    matrix: np.ndarray
    gaussian_variances: np.ndarray
    envelope_variances: Optional[np.ndarray] = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        matrix = np.asarray(self.matrix, dtype=complex)
        assert_hermitian(matrix, "covariance matrix")
        variances = np.asarray(self.gaussian_variances, dtype=float)
        if variances.shape != (matrix.shape[0],):
            raise DimensionError(
                f"gaussian_variances must have shape ({matrix.shape[0]},), "
                f"got {variances.shape}"
            )
        if np.any(variances <= 0):
            raise PowerError("all gaussian variances must be positive")
        if not np.allclose(np.real(np.diag(matrix)), variances, rtol=1e-8, atol=1e-12):
            raise CovarianceError(
                "the diagonal of the covariance matrix must equal the gaussian variances"
            )
        object.__setattr__(self, "matrix", matrix)
        object.__setattr__(self, "gaussian_variances", variances)
        if self.envelope_variances is not None:
            env = np.asarray(self.envelope_variances, dtype=float)
            if env.shape != variances.shape:
                raise DimensionError(
                    "envelope_variances must have the same shape as gaussian_variances"
                )
            object.__setattr__(self, "envelope_variances", env)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_covariance_matrix(
        cls, matrix: np.ndarray, metadata: Optional[Dict[str, Any]] = None
    ) -> "CovarianceSpec":
        """Build a spec directly from a covariance matrix ``K``.

        The per-branch Gaussian powers are read off the diagonal.
        """
        arr = np.asarray(matrix, dtype=complex)
        assert_hermitian(arr, "covariance matrix")
        return cls(
            matrix=arr,
            gaussian_variances=np.real(np.diag(arr)).copy(),
            metadata=dict(metadata or {}),
        )

    @classmethod
    def from_components(
        cls,
        gaussian_variances: np.ndarray,
        rxx: np.ndarray,
        ryy: np.ndarray,
        rxy: np.ndarray,
        ryx: np.ndarray,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> "CovarianceSpec":
        """Build a spec from Gaussian powers and the four covariance component matrices."""
        variances = np.asarray(gaussian_variances, dtype=float)
        matrix = build_covariance_matrix(variances, rxx, ryy, rxy, ryx)
        return cls(matrix=matrix, gaussian_variances=variances, metadata=dict(metadata or {}))

    @classmethod
    def from_envelope_variances(
        cls,
        envelope_variances: np.ndarray,
        normalized_correlation: np.ndarray,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> "CovarianceSpec":
        """Build a spec from desired *envelope* powers and a correlation-coefficient matrix.

        Step 1 of the algorithm (Eq. 11) converts the envelope variances into
        Gaussian powers; the supplied unit-diagonal complex correlation matrix
        is then scaled into a covariance matrix.
        """
        env = np.asarray(envelope_variances, dtype=float)
        if env.ndim != 1 or env.size == 0:
            raise DimensionError("envelope_variances must be a non-empty 1-D array")
        gaussian = envelope_power_to_gaussian_power(env)
        rho = np.asarray(normalized_correlation, dtype=complex)
        assert_hermitian(rho, "normalized correlation matrix")
        if rho.shape != (env.size, env.size):
            raise DimensionError(
                f"normalized_correlation must have shape ({env.size}, {env.size}), "
                f"got {rho.shape}"
            )
        if not np.allclose(np.real(np.diag(rho)), 1.0, atol=1e-8):
            raise CovarianceError("normalized_correlation must have a unit diagonal")
        scale = np.sqrt(np.outer(gaussian, gaussian))
        matrix = rho * scale
        return cls(
            matrix=matrix,
            gaussian_variances=gaussian,
            envelope_variances=env,
            metadata=dict(metadata or {}),
        )

    @classmethod
    def uncorrelated(
        cls, gaussian_variances: np.ndarray, metadata: Optional[Dict[str, Any]] = None
    ) -> "CovarianceSpec":
        """Spec for independent branches: a diagonal covariance matrix."""
        variances = np.asarray(gaussian_variances, dtype=float)
        if variances.ndim != 1 or variances.size == 0:
            raise DimensionError("gaussian_variances must be a non-empty 1-D array")
        if np.any(variances <= 0):
            raise PowerError("all gaussian variances must be positive")
        return cls(
            matrix=np.diag(variances.astype(complex)),
            gaussian_variances=variances,
            metadata=dict(metadata or {}),
        )

    # ------------------------------------------------------------------ #
    # Properties / helpers
    # ------------------------------------------------------------------ #
    @property
    def n_branches(self) -> int:
        """Number of correlated branches."""
        return int(self.matrix.shape[0])

    def is_positive_semidefinite(self, *, defaults: NumericDefaults = DEFAULTS) -> bool:
        """Whether the requested covariance matrix is positive semi-definite."""
        return is_positive_semidefinite(self.matrix, defaults=defaults)

    def correlation_coefficients(self) -> np.ndarray:
        """Unit-diagonal complex correlation-coefficient matrix."""
        return correlation_coefficient_matrix(self.matrix)

    def implied_envelope_variances(self) -> np.ndarray:
        """Envelope variances implied by the Gaussian powers (Eq. 15)."""
        from .variance import gaussian_power_to_envelope_power

        return gaussian_power_to_envelope_power(self.gaussian_variances)

    def with_metadata(self, **extra: Any) -> "CovarianceSpec":
        """Return a copy with additional metadata entries."""
        merged = dict(self.metadata)
        merged.update(extra)
        return CovarianceSpec(
            matrix=self.matrix,
            gaussian_variances=self.gaussian_variances,
            envelope_variances=self.envelope_variances,
            metadata=merged,
        )
