"""Core package: the generalized correlated-Rayleigh generation algorithm.

This package implements Sections 4 and 5 of the paper:

* :mod:`repro.core.variance` — power conversions between Rayleigh-envelope
  powers and complex-Gaussian powers (Eq. 11, 14, 15).
* :mod:`repro.core.covariance` — assembly of the complex-Gaussian covariance
  matrix ``K`` from the real/imaginary covariance components (Eq. 12–13) and
  the :class:`CovarianceSpec` input object.
* :mod:`repro.core.psd` — the forced positive-semi-definiteness procedure
  (Section 4.2) and its baselines.
* :mod:`repro.core.coloring` — coloring-matrix computation by
  eigendecomposition (Section 4.3), Cholesky, or SVD.
* :mod:`repro.core.generator` — the snapshot algorithm of Section 4.4
  (steps 1–7).
* :mod:`repro.core.realtime` — the real-time algorithm of Section 5
  (Doppler-shaped branches + variance-compensated coloring).
* :mod:`repro.core.statistics` — theoretical and empirical statistics of the
  generated envelopes (Section 4.5).
* :mod:`repro.core.pipeline` — one-call convenience wrappers.
"""

from .variance import (
    envelope_power_to_gaussian_power,
    gaussian_power_to_envelope_power,
    rayleigh_mean_from_gaussian_power,
    rayleigh_variance_from_gaussian_power,
    rayleigh_moments,
)
from .covariance import (
    CovarianceSpec,
    build_covariance_matrix,
    covariance_entry,
    correlation_coefficient_matrix,
    decompose_covariance_entry,
)
from .envelope_correlation import (
    envelope_correlation_from_gaussian,
    envelope_correlation_approximation,
    gaussian_correlation_from_envelope,
    gaussian_correlation_matrix_from_envelope,
)
from .psd import force_positive_semidefinite, PSDForcingResult, compare_forcing_methods
from .coloring import (
    coloring_matrix_eigen,
    coloring_matrix_cholesky,
    coloring_matrix_svd,
    compute_coloring,
    compute_coloring_batch,
)
from .generator import RayleighFadingGenerator
from .realtime import RealTimeRayleighGenerator
from .rician import RicianFadingGenerator, rician_moments
from .statistics import (
    theoretical_envelope_mean,
    theoretical_envelope_variance,
    empirical_covariance,
    covariance_match_report,
    envelope_power_report,
)
from .pipeline import doppler_block_size, generate_correlated_envelopes, generate_from_scenario

__all__ = [
    "envelope_power_to_gaussian_power",
    "gaussian_power_to_envelope_power",
    "rayleigh_mean_from_gaussian_power",
    "rayleigh_variance_from_gaussian_power",
    "rayleigh_moments",
    "CovarianceSpec",
    "build_covariance_matrix",
    "covariance_entry",
    "correlation_coefficient_matrix",
    "decompose_covariance_entry",
    "envelope_correlation_from_gaussian",
    "envelope_correlation_approximation",
    "gaussian_correlation_from_envelope",
    "gaussian_correlation_matrix_from_envelope",
    "force_positive_semidefinite",
    "PSDForcingResult",
    "compare_forcing_methods",
    "coloring_matrix_eigen",
    "coloring_matrix_cholesky",
    "coloring_matrix_svd",
    "compute_coloring",
    "compute_coloring_batch",
    "RayleighFadingGenerator",
    "RealTimeRayleighGenerator",
    "RicianFadingGenerator",
    "rician_moments",
    "theoretical_envelope_mean",
    "theoretical_envelope_variance",
    "empirical_covariance",
    "covariance_match_report",
    "envelope_power_report",
    "doppler_block_size",
    "generate_correlated_envelopes",
    "generate_from_scenario",
]
