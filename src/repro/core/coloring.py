"""Coloring-matrix computation (Section 4.3 of the paper).

A coloring matrix ``L`` of the covariance ``K`` satisfies ``L L^H = K``;
multiplying a vector of independent unit-variance complex Gaussians by ``L``
produces Gaussians with covariance ``K``.  The paper computes ``L`` from the
eigendecomposition

.. math::

    K = V \\Lambda V^H, \\qquad L = V \\sqrt{\\Lambda},

which only requires positive *semi*-definiteness (guaranteed after the
forcing step), unlike the Cholesky factorization used by the conventional
methods.  All three strategies are implemented so the experiments can compare
them:

* :func:`coloring_matrix_eigen` — the paper's method;
* :func:`coloring_matrix_cholesky` — the conventional method, which raises
  :class:`repro.exceptions.CholeskyError` on matrices that are not positive
  definite (reproducing the failure the paper reports);
* :func:`coloring_matrix_svd` — an extension using the singular value
  decomposition, numerically equivalent to the eigen path for Hermitian PSD
  matrices.

:func:`compute_coloring` is the full pipeline used by the generators: force
PSD (Section 4.2) then color (Section 4.3), returning a
:class:`repro.linalg.ColoringDecomposition` with diagnostics.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..config import DEFAULTS, NumericDefaults
from ..exceptions import ColoringError
from ..linalg import (
    ColoringDecomposition,
    assert_matrix_stack,
    batched_cholesky_factor,
    batched_hermitian_eigendecomposition,
    batched_force_positive_semidefinite,
    cholesky_factor,
    hermitian_eigendecomposition,
)
from .psd import force_positive_semidefinite

__all__ = [
    "coloring_matrix_eigen",
    "coloring_matrix_cholesky",
    "coloring_matrix_svd",
    "compute_coloring",
    "compute_coloring_batch",
]


def coloring_matrix_eigen(
    covariance: np.ndarray, *, defaults: NumericDefaults = DEFAULTS
) -> np.ndarray:
    """Coloring matrix ``L = V sqrt(Lambda)`` by Hermitian eigendecomposition.

    The input must already be positive semi-definite (eigenvalues below the
    numerical clip tolerance are treated as zero); otherwise the square root
    would be complex and ``L L^H`` would no longer equal ``K`` — precisely the
    reason the paper forces PSD first.

    Raises
    ------
    ColoringError
        If the matrix has a genuinely negative eigenvalue.
    """
    decomp = hermitian_eigendecomposition(covariance)
    scale = max(abs(decomp.max_eigenvalue), 1.0)
    tol = defaults.eig_clip_tol * scale
    if decomp.min_eigenvalue < -tol:
        raise ColoringError(
            "eigen coloring requires a positive semi-definite matrix "
            f"(min eigenvalue {decomp.min_eigenvalue:.3e}); apply "
            "force_positive_semidefinite first"
        )
    eigenvalues = np.clip(decomp.eigenvalues, 0.0, None)
    return decomp.eigenvectors * np.sqrt(eigenvalues)


def coloring_matrix_cholesky(covariance: np.ndarray) -> np.ndarray:
    """Lower-triangular coloring matrix by Cholesky factorization (conventional).

    Raises
    ------
    CholeskyError
        If the matrix is not positive definite — the restriction the paper's
        eigen path removes.
    """
    return cholesky_factor(covariance)


def coloring_matrix_svd(covariance: np.ndarray) -> np.ndarray:
    """Coloring matrix ``L = U sqrt(S)`` from the singular value decomposition.

    For a Hermitian positive semi-definite matrix the SVD coincides with the
    eigendecomposition, so this is an alternative formulation of the paper's
    method; it is exposed separately because the SVD is sometimes preferred
    for numerical-rank decisions.
    """
    arr = np.asarray(covariance, dtype=complex)
    u, s, vh = np.linalg.svd(0.5 * (arr + arr.conj().T))
    # For PSD Hermitian input, u == v (up to sign/phase); verify consistency
    # via the reconstruction instead of trusting it blindly.
    candidate = u * np.sqrt(s)
    reconstruction = candidate @ candidate.conj().T
    if not np.allclose(reconstruction, 0.5 * (arr + arr.conj().T), atol=1e-8):
        raise ColoringError(
            "SVD coloring failed: the matrix is not positive semi-definite "
            "(U and V differ); apply force_positive_semidefinite first"
        )
    return candidate


_STRATEGIES = {
    "eigen": coloring_matrix_eigen,
    "cholesky": coloring_matrix_cholesky,
    "svd": coloring_matrix_svd,
}


def compute_coloring(
    covariance: np.ndarray,
    method: str = "eigen",
    *,
    psd_method: str = "clip",
    epsilon: float = 1e-6,
    defaults: NumericDefaults = DEFAULTS,
) -> ColoringDecomposition:
    """Force positive semi-definiteness, then compute a coloring matrix.

    This is the composite of steps 3–5 of the algorithm in Section 4.4: the
    requested covariance is repaired if necessary (Section 4.2) and a
    coloring matrix of the repaired covariance is returned (Section 4.3).

    Parameters
    ----------
    covariance:
        Desired covariance matrix ``K``.
    method:
        Coloring strategy: ``"eigen"`` (paper, default), ``"cholesky"`` or
        ``"svd"``.  The Cholesky strategy receives the *forced-PSD* matrix
        and may still fail when that matrix is singular (positive
        semi-definite but not definite) — the residual weakness of the
        conventional approach.
    psd_method:
        Strategy passed to :func:`repro.core.psd.force_positive_semidefinite`.
    epsilon:
        Epsilon for the ``"epsilon"`` PSD method.

    Returns
    -------
    repro.linalg.ColoringDecomposition
    """
    if method not in _STRATEGIES:
        raise ValueError(
            f"unknown coloring method {method!r}; choose from {sorted(_STRATEGIES)}"
        )
    forcing = force_positive_semidefinite(
        covariance, method=psd_method, epsilon=epsilon, defaults=defaults
    )
    if method == "eigen":
        factor = coloring_matrix_eigen(forcing.matrix, defaults=defaults)
    elif method == "cholesky":
        factor = coloring_matrix_cholesky(forcing.matrix)
    else:
        factor = coloring_matrix_svd(forcing.matrix)

    return ColoringDecomposition(
        coloring_matrix=factor,
        effective_covariance=forcing.matrix,
        requested_covariance=forcing.requested,
        method=method,
        was_repaired=forcing.was_modified,
        negative_eigenvalue_count=int(forcing.negative_eigenvalues.size),
        # The forcing step already eigendecomposed the requested matrix; its
        # recorded minimum is bit-identical to recomputing it here.
        min_eigenvalue=float(forcing.extra["min_eigenvalue"]),
        extra={"psd_method": psd_method, "psd_frobenius_error": forcing.frobenius_error},
    )


def compute_coloring_batch(
    stack: np.ndarray,
    method: str = "eigen",
    *,
    psd_method: str = "clip",
    epsilon: float = 1e-6,
    defaults: NumericDefaults = DEFAULTS,
    backend=None,
) -> List[ColoringDecomposition]:
    """Force PSD and color every covariance matrix in a ``(B, N, N)`` stack.

    Batched analogue of :func:`compute_coloring`: the PSD forcing, the
    coloring eigendecomposition / Cholesky factorization, and the diagnostic
    eigendecomposition of the requested matrices each run as one stacked
    numpy call.  Every returned :class:`repro.linalg.ColoringDecomposition`
    is bit-identical to the one :func:`compute_coloring` produces for the
    corresponding slice — the equivalence the batched engine relies on.

    The ``"svd"`` strategy falls back to a per-slice loop (its verification
    step is inherently per-matrix); ``"eigen"`` (the paper's method) and
    ``"cholesky"`` are fully batched.

    ``backend`` is an optional :class:`repro.engine.backends.LinalgBackend`
    supplying the stacked ``eigh`` / ``cholesky`` / ``matmul``; ``None``
    (default) runs numpy directly, byte-for-byte the pre-backend path.  The
    ``"svd"`` strategy and the ``"higham"`` PSD iteration always run on
    numpy regardless of the backend (neither has a stacked formulation).
    """
    if method not in _STRATEGIES:
        raise ValueError(
            f"unknown coloring method {method!r}; choose from {sorted(_STRATEGIES)}"
        )
    arr = assert_matrix_stack(np.asarray(stack, dtype=complex), "covariance stack")
    forcings = batched_force_positive_semidefinite(
        arr, method=psd_method, epsilon=epsilon, defaults=defaults, backend=backend
    )
    forced_stack = np.stack([forcing.matrix for forcing in forcings])

    if method == "eigen":
        decomp = batched_hermitian_eigendecomposition(forced_stack, backend=backend)
        scales = np.maximum(np.abs(decomp.max_eigenvalues), 1.0)
        tols = defaults.eig_clip_tol * scales
        for index in range(arr.shape[0]):
            if decomp.min_eigenvalues[index] < -tols[index]:
                raise ColoringError(
                    "eigen coloring requires a positive semi-definite matrix "
                    f"(stack index {index}, min eigenvalue "
                    f"{decomp.min_eigenvalues[index]:.3e}); apply "
                    "force_positive_semidefinite first"
                )
        eigenvalues = np.clip(decomp.eigenvalues, 0.0, None)
        factors = decomp.eigenvectors * np.sqrt(eigenvalues)[:, np.newaxis, :]
    elif method == "cholesky":
        factors = batched_cholesky_factor(forced_stack, backend=backend)
    else:  # svd
        factors = np.stack(
            [coloring_matrix_svd(forced_stack[index]) for index in range(arr.shape[0])]
        )

    return [
        ColoringDecomposition(
            # Copy the factor slice so a cached decomposition does not pin
            # the whole (B, N, N) stack's memory.
            coloring_matrix=factors[index].copy(),
            effective_covariance=forcing.matrix,
            requested_covariance=forcing.requested,
            method=method,
            was_repaired=forcing.was_modified,
            negative_eigenvalue_count=int(forcing.negative_eigenvalues.size),
            min_eigenvalue=float(forcing.extra["min_eigenvalue"]),
            extra={
                "psd_method": psd_method,
                "psd_frobenius_error": forcing.frobenius_error,
            },
        )
        for index, forcing in enumerate(forcings)
    ]
