"""Real-time generator with Doppler spectrum shaping (Section 5 of the paper).

The snapshot algorithm of Section 4.4 produces samples that are independent
from one time instant to the next.  Physical fading is band-limited by the
Doppler spread, so each branch must additionally exhibit the Clarke/Jakes
autocorrelation ``J0(2 pi f_m d)``.  The paper obtains this by replacing the
white samples of step 6 with the outputs of ``N`` independent Young–Beaulieu
IDFT Rayleigh generators (Fig. 3):

1. steps 1–5 of Section 4.4 produce the coloring matrix ``L``;
2. the IDFT block length ``M`` is chosen from the desired autocorrelation;
3. each branch ``j`` draws independent real Gaussian sequences ``A_j[k]``,
   ``B_j[k]`` with variance ``sigma_orig^2``;
4. they are weighted by the Doppler filter ``F[k]`` (Eq. 21);
5. an ``M``-point IDFT yields the branch sequence ``u_j[l]``;
6. the *output* variance ``sigma_g^2`` is computed from Eq. (19) — this is
   the variance-compensation step the method of [6] omits;
7. at each time instant ``l`` the vector ``W[l] = (u_1[l] ... u_N[l])^T`` is
   formed; and
8. the correlated vector is ``Z[l] = L W[l] / sigma_g``.

Setting ``compensate_variance=False`` reproduces the uncompensated behaviour
of Sorooshyari & Daut [6] (the white-sample variance is *assumed* to be 1
regardless of the filter), which the ``variance-compensation`` experiment
uses to demonstrate the resulting covariance error.

The branch substrate runs through the *batched* IDFT path
(:func:`repro.channels.idft_generator.batched_doppler_blocks`): all ``N``
branch blocks go through one stacked IDFT call — on the generator's linalg
backend when one is supplied — instead of ``N`` separate transforms.  The
samples are bit-identical to the historical per-branch loop, and identical
to a Doppler-mode plan entry of the batched engine with the same seed (this
generator *is* the engine's ``B = 1`` reference).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..channels.idft_generator import IDFTRayleighGenerator, batched_doppler_blocks
from ..config import DEFAULTS, NumericDefaults
from ..exceptions import GenerationError
from ..random import ensure_rng, spawn_rngs
from ..types import EnvelopeBlock, GaussianBlock, SeedLike
from .covariance import CovarianceSpec
from .generator import RayleighFadingGenerator

__all__ = ["RealTimeRayleighGenerator"]


class RealTimeRayleighGenerator:
    """Generate N correlated, Doppler-shaped Rayleigh fading envelopes.

    Parameters
    ----------
    spec:
        Covariance specification (or raw covariance matrix) of the complex
        Gaussian branches.
    normalized_doppler:
        Normalized maximum Doppler frequency ``f_m = F_m / F_s`` in
        ``(0, 0.5)``.  The paper's simulations use ``f_m = 0.05``.
    n_points:
        IDFT block length ``M`` (also the number of correlated time samples
        produced per block).  The paper uses 4096.
    input_variance_per_dim:
        Variance ``sigma_orig^2`` of the real Gaussian sequences at the
        Doppler-filter inputs (paper: 1/2).
    compensate_variance:
        If ``True`` (default, the paper's algorithm) the coloring step is
        normalized by the filter-output variance of Eq. (19).  If ``False``
        the output variance is assumed to be 1 — the defect of [6].
    coloring_method, psd_method:
        Passed through to the underlying snapshot machinery.
    rng:
        Seed or generator; each branch receives an independent child stream.
    backend:
        Optional linalg backend (a name or
        :class:`repro.engine.backends.LinalgBackend`) running the stacked
        branch IDFT; ``None`` uses numpy.  Backends with ``tolerance == 0.0``
        are bit-identical to the default.
    cache:
        Decomposition cache for the coloring matrix (as in
        :class:`repro.core.generator.RayleighFadingGenerator`); ``None``
        uses the process-wide cache.
    filter_cache:
        Young–Beaulieu filter cache
        (:class:`repro.engine.filters.DopplerFilterCache`); ``None`` uses
        the process-wide cache, so repeated generators over the same
        Doppler settings build the filter once per process (once ever, with
        a persistent ``cache_dir``).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import CovarianceSpec, RealTimeRayleighGenerator
    >>> K = np.array([[1.0, 0.6], [0.6, 1.0]], dtype=complex)
    >>> gen = RealTimeRayleighGenerator(K, normalized_doppler=0.05, n_points=1024, rng=11)
    >>> block = gen.generate_envelopes()
    >>> block.envelopes.shape
    (2, 1024)
    """

    def __init__(
        self,
        spec: Union[CovarianceSpec, np.ndarray],
        *,
        normalized_doppler: float,
        n_points: int = 4096,
        input_variance_per_dim: float = 0.5,
        compensate_variance: bool = True,
        coloring_method: str = "eigen",
        psd_method: str = "clip",
        rng: SeedLike = None,
        defaults: NumericDefaults = DEFAULTS,
        backend=None,
        cache=None,
        filter_cache=None,
    ) -> None:
        if not isinstance(spec, CovarianceSpec):
            spec = CovarianceSpec.from_covariance_matrix(np.asarray(spec, dtype=complex))
        self._spec = spec
        self._n_points = int(n_points)
        self._normalized_doppler = float(normalized_doppler)
        self._input_variance = float(input_variance_per_dim)
        self._compensate_variance = bool(compensate_variance)
        if backend is None:
            self._backend = None
        else:
            # Import at call time: repro.engine builds on repro.core, so the
            # backend resolution must not run at import time.
            from ..engine.backends import resolve_backend

            self._backend = resolve_backend(backend)

        # Design the Doppler filter once; all branches share it (the paper
        # assumes a common Doppler spectrum across branches).  The build is
        # resolved through the process-wide filter cache, so repeated
        # generators over the same (M, f_m, sigma_orig^2) — a looped sweep —
        # share one frozen coefficient array, bit-identical to a fresh
        # young_beaulieu_filter() build.
        if filter_cache is None:
            # Import at call time: repro.engine builds on repro.core, so the
            # cache resolution must not run at import time.
            from ..engine.filters import default_filter_cache

            filter_cache = default_filter_cache()
        self._filter, self._output_variance, _ = filter_cache.get(
            self._n_points, self._normalized_doppler, self._input_variance
        )
        effective_sample_variance = (
            self._output_variance if self._compensate_variance else 1.0
        )

        # The snapshot generator holds the coloring matrix and performs
        # steps 6-7 (its sample_variance is the sigma_g^2 of step 6).
        self._snapshot = RayleighFadingGenerator(
            spec,
            coloring_method=coloring_method,
            psd_method=psd_method,
            sample_variance=effective_sample_variance,
            rng=rng,
            defaults=defaults,
            cache=cache,
        )

        self._rng = ensure_rng(rng)
        self._branch_rngs = spawn_rngs(self._rng, spec.n_branches)
        self._branch_generator_cache: Optional[list] = None

    @property
    def _branch_generators(self) -> list:
        """Per-branch single-stream generators, built on first access.

        Generation runs through the batched substrate and never needs these;
        they exist for callers driving one branch by hand.  Each shares its
        branch's child stream, so hand-driving a branch advances the same
        state the batched substrate consumes.  Built lazily because each
        instance rebuilds the ``M``-length filter.
        """
        if self._branch_generator_cache is None:
            self._branch_generator_cache = [
                IDFTRayleighGenerator(
                    n_points=self._n_points,
                    normalized_doppler=self._normalized_doppler,
                    input_variance_per_dim=self._input_variance,
                    rng=branch_rng,
                )
                for branch_rng in self._branch_rngs
            ]
        return self._branch_generator_cache

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def spec(self) -> CovarianceSpec:
        """The covariance specification this generator realizes."""
        return self._spec

    @property
    def n_branches(self) -> int:
        """Number of correlated branches ``N``."""
        return self._spec.n_branches

    @property
    def n_points(self) -> int:
        """IDFT block length ``M`` (samples per generated block)."""
        return self._n_points

    @property
    def normalized_doppler(self) -> float:
        """Normalized maximum Doppler frequency ``f_m``."""
        return self._normalized_doppler

    @property
    def doppler_filter(self) -> np.ndarray:
        """The shared Doppler filter coefficients ``F[k]`` (copy)."""
        return self._filter.copy()

    @property
    def filter_output_variance(self) -> float:
        """The theoretical filter-output variance ``sigma_g^2`` of Eq. (19)."""
        return self._output_variance

    @property
    def compensates_variance(self) -> bool:
        """Whether the Eq. (19) variance compensation is applied."""
        return self._compensate_variance

    @property
    def effective_covariance(self) -> np.ndarray:
        """The covariance matrix actually targeted by the coloring step."""
        return self._snapshot.effective_covariance

    @property
    def coloring(self):
        """The coloring decomposition (with PSD-forcing diagnostics)."""
        return self._snapshot.coloring

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #
    def generate_gaussian(self, n_blocks: int = 1) -> GaussianBlock:
        """Generate ``n_blocks`` blocks of correlated Doppler-shaped Gaussian samples.

        Returns
        -------
        GaussianBlock
            Samples of shape ``(N, n_blocks * M)``.  Within each block of
            ``M`` samples every branch has the Clarke/Jakes autocorrelation;
            across branches each time instant has the desired covariance.
        """
        if n_blocks < 1:
            raise GenerationError(f"n_blocks must be >= 1, got {n_blocks}")

        # All branch blocks through one stacked IDFT (each branch still
        # consumes only its own child stream, so the samples are
        # bit-identical to the historical per-branch, per-block loop).
        white = batched_doppler_blocks(
            self._filter,
            self._branch_rngs,
            n_blocks=int(n_blocks),
            input_variance_per_dim=self._input_variance,
            backend=self._backend,
        )

        colored = self._snapshot.color(white)
        return GaussianBlock(
            samples=colored,
            variances=self._spec.gaussian_variances.copy(),
            metadata={
                "method": "realtime",
                "normalized_doppler": self._normalized_doppler,
                "n_points": self._n_points,
                "filter_output_variance": self._output_variance,
                "compensate_variance": self._compensate_variance,
                "coloring_method": self._snapshot.coloring.method,
                "was_repaired": self._snapshot.coloring.was_repaired,
            },
        )

    def generate_envelopes(self, n_blocks: int = 1) -> EnvelopeBlock:
        """Generate correlated, Doppler-shaped Rayleigh envelopes."""
        return self.generate_gaussian(n_blocks=n_blocks).envelopes()

    def generate(self, n_blocks: int = 1) -> np.ndarray:
        """Shorthand returning only the complex sample array of shape ``(N, n_blocks * M)``."""
        return self.generate_gaussian(n_blocks=n_blocks).samples
