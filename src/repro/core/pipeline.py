"""One-call convenience wrappers around the full generation pipeline.

.. deprecated::
    These helpers are kept as thin delegating wrappers around the unified
    session API — :class:`repro.api.Simulator` — and route through the
    process-wide :func:`repro.api.default_simulator`.  New code should hold
    a session instead (``sim = Simulator(backend=...)`` then
    ``sim.envelopes(...)``), which adds backend choice, a private cache,
    process-pool runs, and async submission; results here are bit-identical
    to the session calls with the same seeds.

Most users need exactly one of two things:

* "give me ``n`` samples of ``N`` correlated Rayleigh envelopes for this
  covariance matrix" — :func:`generate_correlated_envelopes`;
* "give me Doppler-shaped correlated envelopes for this physical scenario"
  — :func:`generate_from_scenario`, which accepts any scenario object
  exposing ``covariance_spec()`` (the OFDM / MIMO scenario dataclasses in
  :mod:`repro.channels.scenario`) and optional Doppler settings.

Both return the :class:`repro.types.EnvelopeBlock` /
:class:`repro.types.GaussianBlock` value objects so downstream code has the
samples, the powers, and the provenance in one place.

The snapshot path runs through the default session's engine as a one-entry
plan, so single-spec generation is the ``B = 1`` case of batched generation
and benefits from the shared decomposition cache; results are bit-identical
to the pre-engine implementation.  The Doppler path computes its IDFT block
length in closed form via :func:`doppler_block_size`, which keeps living
here.
"""

from __future__ import annotations

import math
from typing import Optional, Union

import numpy as np

from ..exceptions import SpecificationError
from ..types import EnvelopeBlock, GaussianBlock, SeedLike
from .covariance import CovarianceSpec

__all__ = [
    "doppler_block_size",
    "generate_correlated_envelopes",
    "generate_from_scenario",
]

#: Smallest IDFT block the Doppler mode will use (the historical default).
_MIN_DOPPLER_POINTS = 64

#: Largest IDFT block the Doppler mode will accept before declaring the
#: passband constraint unsatisfiable (2**26 complex samples per branch is
#: already a ~1 GiB working set).
_MAX_DOPPLER_POINTS = 1 << 26


def doppler_block_size(
    n_samples: int,
    normalized_doppler: float,
    *,
    max_points: int = _MAX_DOPPLER_POINTS,
) -> int:
    """Smallest power-of-two IDFT block length for the Doppler mode.

    The block must hold ``n_samples`` output samples and keep at least one
    DFT bin inside the Doppler filter passband
    (``floor(normalized_doppler * n_points) >= 1``), which requires
    ``n_points >= 1 / normalized_doppler``.  Both bounds are closed-form
    powers of two, so no search loop is needed.

    Raises
    ------
    SpecificationError
        If ``normalized_doppler`` is outside ``(0, 0.5)`` or the passband
        constraint cannot be met with a block of at most ``max_points``
        samples (tiny normalized Doppler would otherwise grow the block —
        and the memory footprint — without bound).
    """
    doppler = float(normalized_doppler)
    if not 0.0 < doppler < 0.5:
        raise SpecificationError(
            f"normalized_doppler must lie in (0, 0.5), got {normalized_doppler!r}"
        )
    if n_samples < 1:
        raise SpecificationError(f"n_samples must be >= 1, got {n_samples}")
    exponent = max(
        _MIN_DOPPLER_POINTS.bit_length() - 1,
        (int(n_samples) - 1).bit_length(),
        math.ceil(math.log2(1.0 / doppler)),
    )
    n_points = 1 << exponent
    if doppler * n_points < 1.0:
        # log2 round-off can land one power of two short of the passband
        # bound; the next power is exact.
        n_points <<= 1
    if n_points > max_points:
        raise SpecificationError(
            f"normalized_doppler={doppler!r} needs an IDFT block of {n_points} points "
            f"to keep one bin in the filter passband, exceeding the limit of "
            f"{max_points}; increase the Doppler (or the sampling period) instead"
        )
    return n_points


def generate_correlated_envelopes(
    covariance: Union[CovarianceSpec, np.ndarray],
    n_samples: int,
    *,
    envelope_powers: bool = False,
    normalized_doppler: Optional[float] = None,
    coloring_method: str = "eigen",
    psd_method: str = "clip",
    rng: SeedLike = None,
    return_gaussian: bool = False,
) -> Union[EnvelopeBlock, GaussianBlock]:
    """Generate correlated Rayleigh envelopes in a single call.

    Parameters
    ----------
    covariance:
        A :class:`CovarianceSpec` or a raw complex covariance matrix ``K``.
        When ``envelope_powers`` is ``True`` the diagonal of the matrix is
        interpreted as desired *envelope* variances ``sigma_r^2`` and
        converted through Eq. (11).
    n_samples:
        Number of time samples per branch.  In Doppler mode this is rounded
        up to a whole number of IDFT blocks and then truncated.
    envelope_powers:
        Interpret diagonal powers as envelope variances (see above).
    normalized_doppler:
        If given (``0 < f_m < 0.5``), use the real-time Doppler-shaped
        generator of Section 5; otherwise the snapshot generator of
        Section 4.4 (time-independent samples).
    coloring_method, psd_method:
        Algorithm variants (defaults are the paper's choices).
    rng:
        Seed or generator.
    return_gaussian:
        If ``True`` return the :class:`GaussianBlock` of complex samples
        instead of the envelope block.

    Returns
    -------
    EnvelopeBlock or GaussianBlock

    .. deprecated::
        Delegates to :meth:`repro.api.Simulator.envelopes` on the
        process-wide default session; prefer holding a
        :class:`repro.api.Simulator` directly.
    """
    from ..api import default_simulator

    return default_simulator().envelopes(
        covariance,
        n_samples,
        seed=rng,
        envelope_powers=envelope_powers,
        normalized_doppler=normalized_doppler,
        coloring_method=coloring_method,
        psd_method=psd_method,
        return_gaussian=return_gaussian,
    )


def generate_from_scenario(
    scenario,
    gaussian_powers: np.ndarray,
    n_samples: int,
    *,
    normalized_doppler: Optional[float] = None,
    rng: SeedLike = None,
    return_gaussian: bool = False,
) -> Union[EnvelopeBlock, GaussianBlock]:
    """Generate envelopes for a physical scenario object.

    Parameters
    ----------
    scenario:
        Any object exposing ``covariance_spec(gaussian_powers)`` returning a
        :class:`CovarianceSpec` — e.g.
        :class:`repro.channels.scenario.OFDMScenario` or
        :class:`repro.channels.scenario.MIMOArrayScenario`.
    gaussian_powers:
        Per-branch complex-Gaussian powers ``sigma_g_j^2``.
    n_samples:
        Number of time samples per branch.
    normalized_doppler:
        Doppler mode selector, as in :func:`generate_correlated_envelopes`.
        If the scenario carries its own Doppler settings (``OFDMScenario``)
        they are used when this argument is omitted.
    rng:
        Seed or generator.
    return_gaussian:
        Return the complex samples instead of envelopes.

    .. deprecated::
        Delegates to :meth:`repro.api.Simulator.envelopes` on the
        process-wide default session; prefer holding a
        :class:`repro.api.Simulator` directly.
    """
    from ..api import default_simulator

    if not hasattr(scenario, "covariance_spec"):
        raise SpecificationError(
            "scenario must expose a covariance_spec(gaussian_powers) method; got "
            f"{type(scenario).__name__}"
        )
    return default_simulator().envelopes(
        scenario,
        n_samples,
        seed=rng,
        gaussian_powers=gaussian_powers,
        normalized_doppler=normalized_doppler,
        return_gaussian=return_gaussian,
    )
