"""One-call convenience wrappers around the full generation pipeline.

Most users need exactly one of two things:

* "give me ``n`` samples of ``N`` correlated Rayleigh envelopes for this
  covariance matrix" — :func:`generate_correlated_envelopes`;
* "give me Doppler-shaped correlated envelopes for this physical scenario"
  — :func:`generate_from_scenario`, which accepts any scenario object
  exposing ``covariance_spec()`` (the OFDM / MIMO scenario dataclasses in
  :mod:`repro.channels.scenario`) and optional Doppler settings.

Both return the :class:`repro.types.EnvelopeBlock` /
:class:`repro.types.GaussianBlock` value objects so downstream code has the
samples, the powers, and the provenance in one place.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..exceptions import SpecificationError
from ..types import EnvelopeBlock, GaussianBlock, SeedLike
from .covariance import CovarianceSpec
from .generator import RayleighFadingGenerator
from .realtime import RealTimeRayleighGenerator

__all__ = ["generate_correlated_envelopes", "generate_from_scenario"]


def generate_correlated_envelopes(
    covariance: Union[CovarianceSpec, np.ndarray],
    n_samples: int,
    *,
    envelope_powers: bool = False,
    normalized_doppler: Optional[float] = None,
    coloring_method: str = "eigen",
    psd_method: str = "clip",
    rng: SeedLike = None,
    return_gaussian: bool = False,
) -> Union[EnvelopeBlock, GaussianBlock]:
    """Generate correlated Rayleigh envelopes in a single call.

    Parameters
    ----------
    covariance:
        A :class:`CovarianceSpec` or a raw complex covariance matrix ``K``.
        When ``envelope_powers`` is ``True`` the diagonal of the matrix is
        interpreted as desired *envelope* variances ``sigma_r^2`` and
        converted through Eq. (11).
    n_samples:
        Number of time samples per branch.  In Doppler mode this is rounded
        up to a whole number of IDFT blocks and then truncated.
    envelope_powers:
        Interpret diagonal powers as envelope variances (see above).
    normalized_doppler:
        If given (``0 < f_m < 0.5``), use the real-time Doppler-shaped
        generator of Section 5; otherwise the snapshot generator of
        Section 4.4 (time-independent samples).
    coloring_method, psd_method:
        Algorithm variants (defaults are the paper's choices).
    rng:
        Seed or generator.
    return_gaussian:
        If ``True`` return the :class:`GaussianBlock` of complex samples
        instead of the envelope block.

    Returns
    -------
    EnvelopeBlock or GaussianBlock
    """
    if n_samples < 1:
        raise SpecificationError(f"n_samples must be >= 1, got {n_samples}")

    if isinstance(covariance, CovarianceSpec):
        spec = covariance
    else:
        matrix = np.asarray(covariance, dtype=complex)
        if envelope_powers:
            from .covariance import correlation_coefficient_matrix

            env_powers = np.real(np.diag(matrix)).copy()
            rho = correlation_coefficient_matrix(matrix)
            spec = CovarianceSpec.from_envelope_variances(env_powers, rho)
        else:
            spec = CovarianceSpec.from_covariance_matrix(matrix)

    if normalized_doppler is None:
        generator = RayleighFadingGenerator(
            spec, coloring_method=coloring_method, psd_method=psd_method, rng=rng
        )
        gaussian = generator.generate_gaussian(n_samples)
    else:
        # Choose the smallest power-of-two block size that is at least
        # n_samples and large enough for the Doppler filter passband.
        n_points = 64
        while n_points < n_samples or int(np.floor(normalized_doppler * n_points)) < 1:
            n_points *= 2
        generator = RealTimeRayleighGenerator(
            spec,
            normalized_doppler=normalized_doppler,
            n_points=n_points,
            coloring_method=coloring_method,
            psd_method=psd_method,
            rng=rng,
        )
        gaussian = generator.generate_gaussian(1)
        gaussian = GaussianBlock(
            samples=gaussian.samples[:, :n_samples],
            variances=gaussian.variances,
            metadata=gaussian.metadata,
        )

    return gaussian if return_gaussian else gaussian.envelopes()


def generate_from_scenario(
    scenario,
    gaussian_powers: np.ndarray,
    n_samples: int,
    *,
    normalized_doppler: Optional[float] = None,
    rng: SeedLike = None,
    return_gaussian: bool = False,
) -> Union[EnvelopeBlock, GaussianBlock]:
    """Generate envelopes for a physical scenario object.

    Parameters
    ----------
    scenario:
        Any object exposing ``covariance_spec(gaussian_powers)`` returning a
        :class:`CovarianceSpec` — e.g.
        :class:`repro.channels.scenario.OFDMScenario` or
        :class:`repro.channels.scenario.MIMOArrayScenario`.
    gaussian_powers:
        Per-branch complex-Gaussian powers ``sigma_g_j^2``.
    n_samples:
        Number of time samples per branch.
    normalized_doppler:
        Doppler mode selector, as in :func:`generate_correlated_envelopes`.
        If the scenario carries its own Doppler settings (``OFDMScenario``)
        they are used when this argument is omitted.
    rng:
        Seed or generator.
    return_gaussian:
        Return the complex samples instead of envelopes.
    """
    if not hasattr(scenario, "covariance_spec"):
        raise SpecificationError(
            "scenario must expose a covariance_spec(gaussian_powers) method; got "
            f"{type(scenario).__name__}"
        )
    spec = scenario.covariance_spec(np.asarray(gaussian_powers, dtype=float))
    if normalized_doppler is None:
        normalized_doppler = getattr(scenario, "default_normalized_doppler", None)
    return generate_correlated_envelopes(
        spec,
        n_samples,
        normalized_doppler=normalized_doppler,
        rng=rng,
        return_gaussian=return_gaussian,
    )
