"""Work partitioning for parallel envelope generation.

Splitting a Monte-Carlo sample budget across workers has two requirements:

* the per-worker counts must sum exactly to the requested total (no silent
  over- or under-generation), and
* each worker must receive an independent random stream derived
  deterministically from the experiment seed, so results do not depend on
  how many workers happened to be used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..random import spawn_rngs
from ..types import SeedLike

__all__ = ["partition_counts", "WorkerTask", "build_worker_tasks"]


def partition_counts(total: int, n_partitions: int) -> List[int]:
    """Split ``total`` into ``n_partitions`` non-negative counts summing to ``total``.

    The first ``total % n_partitions`` partitions receive one extra item, so
    counts differ by at most one.

    Raises
    ------
    ValueError
        If ``total`` is negative or ``n_partitions`` is not positive.
    """
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    if n_partitions <= 0:
        raise ValueError(f"n_partitions must be positive, got {n_partitions}")
    base, remainder = divmod(int(total), int(n_partitions))
    return [base + (1 if index < remainder else 0) for index in range(n_partitions)]


@dataclass(frozen=True)
class WorkerTask:
    """One worker's share of a partitioned generation job.

    Attributes
    ----------
    index:
        Worker index (0-based).
    n_samples:
        Number of samples this worker must generate.
    seed:
        Integer seed for the worker's independent random stream.
    """

    index: int
    n_samples: int
    seed: int


def build_worker_tasks(total_samples: int, n_workers: int, seed: SeedLike) -> List[WorkerTask]:
    """Build per-worker tasks with balanced counts and independent seeds.

    Workers that would receive zero samples are dropped, so the returned list
    may be shorter than ``n_workers`` for small totals.
    """
    counts = partition_counts(total_samples, n_workers)
    rngs = spawn_rngs(seed, n_workers)
    tasks: List[WorkerTask] = []
    for index, (count, rng) in enumerate(zip(counts, rngs)):
        if count == 0:
            continue
        # Derive a plain integer seed from the child stream so tasks are
        # picklable and workers can rebuild their Generator cheaply.
        worker_seed = int(rng.integers(0, np.iinfo(np.int64).max))
        tasks.append(WorkerTask(index=index, n_samples=count, seed=worker_seed))
    return tasks
