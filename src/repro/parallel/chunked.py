"""Chunked / streaming generation with bounded memory.

Long fading records (e.g. hours of channel at kHz sampling) do not fit in
memory as a single ``(N, n_samples)`` array.  :class:`ChunkedGenerator`
wraps either generator flavour and yields fixed-size blocks;
:func:`stream_envelope_statistics` shows the intended usage pattern by
accumulating the running covariance and envelope power over a stream without
ever materializing it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Union

import numpy as np

from ..core.covariance import CovarianceSpec
from ..core.generator import RayleighFadingGenerator
from ..core.realtime import RealTimeRayleighGenerator
from ..exceptions import SpecificationError
from ..types import GaussianBlock, SeedLike

__all__ = ["ChunkedGenerator", "StreamedStatistics", "stream_envelope_statistics"]


class ChunkedGenerator:
    """Stream correlated fading samples in fixed-size chunks.

    Parameters
    ----------
    spec:
        Covariance specification (or raw covariance matrix).
    chunk_size:
        Number of time samples per yielded chunk (snapshot mode).  In Doppler
        mode the chunk size is the IDFT block length ``n_points``.
    normalized_doppler:
        If given, produce Doppler-shaped chunks with the real-time generator.
    n_points:
        IDFT block length for Doppler mode.
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        spec: Union[CovarianceSpec, np.ndarray],
        *,
        chunk_size: int = 4096,
        normalized_doppler: Optional[float] = None,
        n_points: int = 4096,
        rng: SeedLike = None,
    ) -> None:
        if chunk_size < 1:
            raise SpecificationError(f"chunk_size must be >= 1, got {chunk_size}")
        if not isinstance(spec, CovarianceSpec):
            spec = CovarianceSpec.from_covariance_matrix(np.asarray(spec, dtype=complex))
        self._spec = spec
        self._doppler = normalized_doppler
        if normalized_doppler is None:
            self._chunk_size = int(chunk_size)
            self._generator: Union[RayleighFadingGenerator, RealTimeRayleighGenerator] = (
                RayleighFadingGenerator(spec, rng=rng)
            )
        else:
            self._chunk_size = int(n_points)
            self._generator = RealTimeRayleighGenerator(
                spec,
                normalized_doppler=float(normalized_doppler),
                n_points=int(n_points),
                rng=rng,
            )

    @property
    def chunk_size(self) -> int:
        """Number of time samples per chunk."""
        return self._chunk_size

    @property
    def n_branches(self) -> int:
        """Number of correlated branches."""
        return self._spec.n_branches

    def chunks(self, n_chunks: int) -> Iterator[GaussianBlock]:
        """Yield ``n_chunks`` consecutive blocks of complex Gaussian samples."""
        if n_chunks < 1:
            raise SpecificationError(f"n_chunks must be >= 1, got {n_chunks}")
        for _ in range(n_chunks):
            if isinstance(self._generator, RealTimeRayleighGenerator):
                yield self._generator.generate_gaussian(1)
            else:
                yield self._generator.generate_gaussian(self._chunk_size)

    def total_samples(self, n_chunks: int) -> int:
        """Number of time samples produced by ``n_chunks`` chunks."""
        return int(n_chunks) * self._chunk_size


@dataclass
class StreamedStatistics:
    """Running statistics accumulated over a chunk stream.

    Attributes
    ----------
    covariance:
        Running estimate of ``E{Z Z^H}``.
    envelope_power:
        Running per-branch envelope power ``E{r^2}``.
    envelope_mean:
        Running per-branch envelope mean ``E{r}``.
    n_samples:
        Total samples accumulated.
    """

    covariance: np.ndarray
    envelope_power: np.ndarray
    envelope_mean: np.ndarray
    n_samples: int


def stream_envelope_statistics(
    generator: ChunkedGenerator, n_chunks: int
) -> StreamedStatistics:
    """Accumulate covariance and envelope statistics over a stream of chunks.

    Memory usage is one chunk regardless of ``n_chunks``.
    """
    n = generator.n_branches
    covariance_accumulator = np.zeros((n, n), dtype=complex)
    power_accumulator = np.zeros(n)
    mean_accumulator = np.zeros(n)
    total = 0
    for block in generator.chunks(n_chunks):
        samples = block.samples
        count = samples.shape[1]
        covariance_accumulator += samples @ samples.conj().T
        envelopes = np.abs(samples)
        power_accumulator += np.sum(envelopes**2, axis=1)
        mean_accumulator += np.sum(envelopes, axis=1)
        total += count
    if total == 0:
        raise SpecificationError("no samples were generated")
    return StreamedStatistics(
        covariance=covariance_accumulator / total,
        envelope_power=power_accumulator / total,
        envelope_mean=mean_accumulator / total,
        n_samples=total,
    )
