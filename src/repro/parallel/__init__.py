"""Parallel and streaming generation utilities.

The algorithm itself is a dense matrix multiply per time block, so the
natural scaling axes for large Monte-Carlo studies are

* **chunking** — generating a long record as a stream of fixed-size blocks
  with bounded memory (:mod:`repro.parallel.chunked`), and
* **ensembles** — running many independent replicas (different seeds) across
  processes and reducing their statistics
  (:mod:`repro.parallel.ensemble`).

Work division is handled by :mod:`repro.parallel.partition`, which splits
sample counts evenly and derives independent child seeds per worker so that
the parallel result is reproducible and statistically sound.
"""

from .partition import partition_counts, WorkerTask, build_worker_tasks
from .chunked import ChunkedGenerator, stream_envelope_statistics
from .ensemble import (
    EnsembleResult,
    run_covariance_ensemble,
    monte_carlo_covariance,
    run_plan_parallel,
)

__all__ = [
    "partition_counts",
    "WorkerTask",
    "build_worker_tasks",
    "ChunkedGenerator",
    "stream_envelope_statistics",
    "EnsembleResult",
    "run_covariance_ensemble",
    "monte_carlo_covariance",
    "run_plan_parallel",
]
