"""Sum-of-sinusoids (Jakes/Clarke) Rayleigh fading generator.

The classical alternative to the IDFT synthesis of Section 5 is the
sum-of-sinusoids construction that goes back to Clarke's scattering model and
Jakes' deterministic simulator: the fading process is the superposition of
``N_s`` plane waves with Doppler shifts ``f_m cos(alpha_n)`` and random
phases,

.. math::

    u[l] = \\sqrt{\\frac{\\sigma_g^2}{N_s}} \\sum_{n=1}^{N_s}
           e^{\\,i(2\\pi f_m \\cos(\\alpha_n)\\, l + \\phi_n)}.

With uniformly distributed arrival angles and i.i.d. phases the process is
asymptotically complex Gaussian with the Clarke autocorrelation
``J0(2 pi f_m d)``.  The implementation here follows the improved
"random arrival angle" variant (Pop–Beaulieu style): each realization draws
both the angles and the phases at random, which removes the stationarity
problems of Jakes' original deterministic angle grid.

The generator exposes the same block interface as
:class:`repro.channels.idft_generator.IDFTRayleighGenerator` so it can be
swapped into the real-time algorithm; the ``sos-vs-idft`` benchmark compares
the two substrates' autocorrelation accuracy and speed.  The IDFT method
remains the paper's (and the default) choice — the SoS generator is only
asymptotically Gaussian in the number of sinusoids, which shows up as a
slightly heavier envelope-distribution error for small ``N_s``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import DopplerError, SpecificationError
from ..random import ensure_rng
from ..types import ComplexArray, SeedLike

__all__ = ["SumOfSinusoidsGenerator"]


class SumOfSinusoidsGenerator:
    """Single-branch Rayleigh fading generator based on a sum of sinusoids.

    Parameters
    ----------
    n_points:
        Number of time samples per generated block.
    normalized_doppler:
        Normalized maximum Doppler frequency ``f_m`` in ``(0, 0.5)``.
    n_sinusoids:
        Number of superposed plane waves ``N_s`` (default 64; accuracy of the
        Gaussian approximation improves with ``N_s``).
    output_variance:
        Target variance ``sigma_g^2`` of the complex samples (default 1).
    rng:
        Seed or generator for the random angles and phases.
    """

    def __init__(
        self,
        n_points: int,
        normalized_doppler: float,
        n_sinusoids: int = 64,
        output_variance: float = 1.0,
        rng: SeedLike = None,
    ) -> None:
        if n_points < 1:
            raise SpecificationError(f"n_points must be >= 1, got {n_points}")
        if not 0.0 < float(normalized_doppler) < 0.5:
            raise DopplerError(
                f"normalized_doppler must lie in (0, 0.5), got {normalized_doppler}"
            )
        if n_sinusoids < 4:
            raise SpecificationError(
                f"n_sinusoids must be at least 4 for a usable Gaussian approximation, "
                f"got {n_sinusoids}"
            )
        if output_variance <= 0:
            raise SpecificationError(
                f"output_variance must be positive, got {output_variance}"
            )
        self._n_points = int(n_points)
        self._normalized_doppler = float(normalized_doppler)
        self._n_sinusoids = int(n_sinusoids)
        self._output_variance = float(output_variance)
        self._rng = ensure_rng(rng)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def n_points(self) -> int:
        """Samples per generated block."""
        return self._n_points

    @property
    def normalized_doppler(self) -> float:
        """Normalized maximum Doppler frequency ``f_m``."""
        return self._normalized_doppler

    @property
    def n_sinusoids(self) -> int:
        """Number of superposed sinusoids ``N_s``."""
        return self._n_sinusoids

    @property
    def output_variance(self) -> float:
        """Target variance ``sigma_g^2`` of the output samples."""
        return self._output_variance

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #
    def generate_block(self, rng: Optional[SeedLike] = None) -> ComplexArray:
        """Generate one block of ``n_points`` complex fading samples.

        Each call draws fresh random arrival angles and phases, so different
        blocks are independent realizations of the same Clarke process.
        """
        gen = self._rng if rng is None else ensure_rng(rng)
        angles = gen.uniform(0.0, 2.0 * np.pi, self._n_sinusoids)
        phases = gen.uniform(0.0, 2.0 * np.pi, self._n_sinusoids)
        doppler_per_wave = 2.0 * np.pi * self._normalized_doppler * np.cos(angles)

        time_indices = np.arange(self._n_points)
        # (n_sinusoids, n_points) phase matrix -> sum over waves.
        arguments = np.outer(doppler_per_wave, time_indices) + phases[:, np.newaxis]
        samples = np.exp(1j * arguments).sum(axis=0)
        return np.sqrt(self._output_variance / self._n_sinusoids) * samples

    def generate_envelope_block(self, rng: Optional[SeedLike] = None) -> np.ndarray:
        """Generate one block and return its envelope ``|u[l]|``."""
        return np.abs(self.generate_block(rng=rng))

    def theoretical_autocorrelation(self, lags: np.ndarray) -> np.ndarray:
        """Ensemble autocorrelation of the construction: ``J0(2 pi f_m d)``.

        With uniformly distributed angles the ensemble-average normalized
        autocorrelation equals the Clarke reference exactly; finite ``N_s``
        only affects the per-realization fluctuation around it.
        """
        from .autocorrelation import clarke_autocorrelation

        return clarke_autocorrelation(np.asarray(lags, dtype=float), self._normalized_doppler)
