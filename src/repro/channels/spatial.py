"""Spatial correlation model for antenna arrays — Section 3 of the paper.

Salz & Winters derived the normalized covariances between the fades seen at
two elements of a uniform linear transmit array when the departure angles are
confined to ``Phi +/- Delta`` (Eq. 5–6 of the paper, Eq. A.19–A.20 of the
original reference):

.. math::

    \\tilde R_{xx}^{k,j} = \\tilde R_{yy}^{k,j}
      = J_0(z(k-j)) + 2\\sum_{m=1}^{\\infty}
        J_{2m}(z(k-j))\\,\\cos(2m\\Phi)\\,\\frac{\\sin(2m\\Delta)}{2m\\Delta},

    \\tilde R_{xy}^{k,j} = -\\tilde R_{yx}^{k,j}
      = 2\\sum_{m=0}^{\\infty} J_{2m+1}(z(k-j))\\,\\sin((2m+1)\\Phi)\\,
        \\frac{\\sin((2m+1)\\Delta)}{(2m+1)\\Delta},

where ``z = 2 pi D / lambda`` and ``k - j`` is the (signed) element index
difference.  The unnormalized covariances follow from Eq. (7):
``R = sigma^2 * R_tilde / 2``.

The Bessel series are summed adaptively: summation stops once a term falls
below :data:`repro.config.DEFAULTS.bessel_series_tol` (terms of ``J_q(x)``
decay super-exponentially once ``q`` exceeds ``|x|``), with a hard cap to
guarantee termination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy.special import jv

from ..config import DEFAULTS, NumericDefaults
from ..exceptions import DimensionError, SpecificationError

__all__ = [
    "spatial_correlation_real",
    "spatial_correlation_imag",
    "spatial_covariance_components",
    "SpatialCorrelationModel",
]


def _validate_angles(mean_angle_rad: float, angular_spread_rad: float) -> Tuple[float, float]:
    mean_angle_rad = float(mean_angle_rad)
    angular_spread_rad = float(angular_spread_rad)
    if not (-np.pi <= mean_angle_rad <= np.pi):
        raise SpecificationError(
            f"mean angle Phi must lie in [-pi, pi], got {mean_angle_rad}"
        )
    if not (0.0 < angular_spread_rad <= np.pi):
        raise SpecificationError(
            f"angular spread Delta must lie in (0, pi], got {angular_spread_rad}"
        )
    return mean_angle_rad, angular_spread_rad


def spatial_correlation_real(
    element_separation: float,
    spacing_wavelengths: float,
    mean_angle_rad: float,
    angular_spread_rad: float,
    *,
    defaults: NumericDefaults = DEFAULTS,
) -> float:
    """Normalized covariance ``R~xx = R~yy`` between two array elements (Eq. 5).

    Parameters
    ----------
    element_separation:
        Signed element index difference ``k - j`` (an integer for a uniform
        array, but any real multiple of the spacing is accepted).
    spacing_wavelengths:
        Adjacent-element spacing ``D / lambda``.
    mean_angle_rad:
        Mean angle of departure ``Phi``.
    angular_spread_rad:
        Angular half-spread ``Delta`` (radians, in ``(0, pi]``).
    """
    mean_angle_rad, angular_spread_rad = _validate_angles(mean_angle_rad, angular_spread_rad)
    if spacing_wavelengths < 0:
        raise SpecificationError(
            f"antenna spacing must be non-negative, got {spacing_wavelengths}"
        )
    z = 2.0 * np.pi * spacing_wavelengths
    argument = z * float(element_separation)
    total = float(jv(0, argument))
    for m in range(1, defaults.bessel_series_terms + 1):
        order = 2 * m
        phase = 2.0 * m * angular_spread_rad
        term = (
            2.0
            * float(jv(order, argument))
            * np.cos(2.0 * m * mean_angle_rad)
            * np.sin(phase)
            / phase
        )
        total += term
        if order > abs(argument) and abs(term) < defaults.bessel_series_tol:
            break
    return total


def spatial_correlation_imag(
    element_separation: float,
    spacing_wavelengths: float,
    mean_angle_rad: float,
    angular_spread_rad: float,
    *,
    defaults: NumericDefaults = DEFAULTS,
) -> float:
    """Normalized covariance ``R~xy = -R~yx`` between two array elements (Eq. 6)."""
    mean_angle_rad, angular_spread_rad = _validate_angles(mean_angle_rad, angular_spread_rad)
    if spacing_wavelengths < 0:
        raise SpecificationError(
            f"antenna spacing must be non-negative, got {spacing_wavelengths}"
        )
    z = 2.0 * np.pi * spacing_wavelengths
    argument = z * float(element_separation)
    total = 0.0
    for m in range(0, defaults.bessel_series_terms + 1):
        order = 2 * m + 1
        phase = order * angular_spread_rad
        term = (
            2.0
            * float(jv(order, argument))
            * np.sin(order * mean_angle_rad)
            * np.sin(phase)
            / phase
        )
        total += term
        if order > abs(argument) and abs(term) < defaults.bessel_series_tol:
            break
    return total


def spatial_covariance_components(
    powers: np.ndarray,
    spacing_wavelengths: float,
    mean_angle_rad: float,
    angular_spread_rad: float,
    *,
    defaults: NumericDefaults = DEFAULTS,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Covariance component matrices ``(Rxx, Ryy, Rxy, Ryx)`` for a uniform array.

    Parameters
    ----------
    powers:
        Per-branch (per-antenna) powers ``sigma_g_j^2``.  As in the spectral
        model, unequal powers are combined pairwise through the geometric
        mean, reducing to Eq. (7) for equal powers.
    spacing_wavelengths:
        Adjacent-element spacing ``D / lambda``.
    mean_angle_rad, angular_spread_rad:
        Angle-of-departure parameters ``Phi`` and ``Delta``.

    Returns
    -------
    tuple of numpy.ndarray
        ``(Rxx, Ryy, Rxy, Ryx)`` matrices with zero diagonals, scaled to
        absolute covariances via Eq. (7): ``R = sigma^2 R_tilde / 2``.
    """
    powers = np.asarray(powers, dtype=float)
    n = powers.shape[0]
    if powers.ndim != 1 or n < 1:
        raise DimensionError("powers must be a non-empty 1-D array")
    if np.any(powers <= 0):
        raise SpecificationError("all powers must be positive")

    # Normalized correlations depend only on the index difference; evaluate
    # each distinct separation once.
    separations = np.arange(-(n - 1), n)
    real_by_sep = {
        int(d): spatial_correlation_real(
            d, spacing_wavelengths, mean_angle_rad, angular_spread_rad, defaults=defaults
        )
        for d in separations
    }
    imag_by_sep = {
        int(d): spatial_correlation_imag(
            d, spacing_wavelengths, mean_angle_rad, angular_spread_rad, defaults=defaults
        )
        for d in separations
    }

    pair_power = np.sqrt(np.outer(powers, powers))
    rxx = np.zeros((n, n), dtype=float)
    rxy = np.zeros((n, n), dtype=float)
    for k in range(n):
        for j in range(n):
            if k == j:
                continue
            d = k - j
            scale = pair_power[k, j] / 2.0  # Eq. (7)
            rxx[k, j] = scale * real_by_sep[d]
            rxy[k, j] = scale * imag_by_sep[d]
    return rxx, rxx.copy(), rxy, -rxy


@dataclass(frozen=True)
class SpatialCorrelationModel:
    """Salz–Winters spatial-correlation model for a uniform linear array.

    Attributes
    ----------
    n_antennas:
        Number of array elements (branches).
    spacing_wavelengths:
        Adjacent-element spacing ``D / lambda``.
    mean_angle_rad:
        Mean angle of departure ``Phi`` (radians, ``|Phi| <= pi``).
    angular_spread_rad:
        Angular half-spread ``Delta`` (radians, in ``(0, pi]``).
    """

    n_antennas: int
    spacing_wavelengths: float
    mean_angle_rad: float = 0.0
    angular_spread_rad: float = np.pi / 18.0

    def __post_init__(self) -> None:
        if self.n_antennas < 1:
            raise SpecificationError(f"n_antennas must be >= 1, got {self.n_antennas}")
        if self.spacing_wavelengths < 0:
            raise SpecificationError(
                f"spacing_wavelengths must be non-negative, got {self.spacing_wavelengths}"
            )
        _validate_angles(self.mean_angle_rad, self.angular_spread_rad)

    @property
    def n_branches(self) -> int:
        """Number of correlated branches (alias of ``n_antennas``)."""
        return int(self.n_antennas)

    def normalized_correlation(self, element_separation: float) -> complex:
        """Complex normalized correlation ``R~xx + i R~xy`` at an index separation."""
        real = spatial_correlation_real(
            element_separation,
            self.spacing_wavelengths,
            self.mean_angle_rad,
            self.angular_spread_rad,
        )
        imag = spatial_correlation_imag(
            element_separation,
            self.spacing_wavelengths,
            self.mean_angle_rad,
            self.angular_spread_rad,
        )
        return complex(real, imag)

    def covariance_components(
        self, powers: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(Rxx, Ryy, Rxy, Ryx)`` matrices for the given branch powers."""
        powers = np.asarray(powers, dtype=float)
        if powers.shape != (self.n_antennas,):
            raise DimensionError(
                f"powers must have shape ({self.n_antennas},), got {powers.shape}"
            )
        return spatial_covariance_components(
            powers,
            self.spacing_wavelengths,
            self.mean_angle_rad,
            self.angular_spread_rad,
        )
