"""Power delay profiles and the frequency-correlation quantities they imply.

Section 2 of the paper parameterizes the spectral correlation by the rms
delay spread ``sigma_tau`` of the channel: the frequency-domain correlation
between two carriers separated by ``Delta f`` decays as
``1 / (1 + (2 pi Delta f sigma_tau)^2)`` — the exponential-power-delay-profile
result that Jakes' Eq. (1.5-20) builds on.  This module provides the small
amount of channel-modelling machinery a user needs to go from a measured or
standardized delay profile to the ``sigma_tau`` (and hence the covariance
matrix) the generator consumes:

* :class:`PowerDelayProfile` — a discrete set of (delay, power) taps with the
  usual summary statistics (mean excess delay, rms delay spread) and the
  frequency correlation function it implies;
* :func:`exponential_power_delay_profile` — the continuous profile the
  Jakes/paper formula corresponds to, sampled into taps;
* :func:`coherence_bandwidth` — the standard 50%-correlation coherence
  bandwidth ``B_c ~ 1 / (2 pi sigma_tau)`` plus the exact value from the
  profile's frequency correlation function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..exceptions import SpecificationError

__all__ = [
    "PowerDelayProfile",
    "exponential_power_delay_profile",
    "coherence_bandwidth",
]


@dataclass(frozen=True)
class PowerDelayProfile:
    """A discrete multipath power delay profile.

    Attributes
    ----------
    delays_s:
        Tap delays in seconds (non-negative, strictly increasing).
    powers:
        Tap powers (linear, positive).  They need not be normalized; all
        derived statistics normalize internally.
    """

    delays_s: np.ndarray
    powers: np.ndarray

    def __post_init__(self) -> None:
        delays = np.asarray(self.delays_s, dtype=float)
        powers = np.asarray(self.powers, dtype=float)
        if delays.ndim != 1 or powers.ndim != 1 or delays.size == 0:
            raise SpecificationError("delays and powers must be non-empty 1-D arrays")
        if delays.shape != powers.shape:
            raise SpecificationError(
                f"delays and powers must have the same length, got {delays.shape} "
                f"and {powers.shape}"
            )
        if np.any(delays < 0):
            raise SpecificationError("tap delays must be non-negative")
        if np.any(np.diff(delays) <= 0) and delays.size > 1:
            raise SpecificationError("tap delays must be strictly increasing")
        if np.any(powers <= 0):
            raise SpecificationError("tap powers must be positive")
        object.__setattr__(self, "delays_s", delays)
        object.__setattr__(self, "powers", powers)

    # ------------------------------------------------------------------ #
    # Summary statistics
    # ------------------------------------------------------------------ #
    @property
    def n_taps(self) -> int:
        """Number of taps."""
        return int(self.delays_s.shape[0])

    def total_power(self) -> float:
        """Sum of tap powers."""
        return float(np.sum(self.powers))

    def normalized_powers(self) -> np.ndarray:
        """Tap powers normalized to sum to one."""
        return self.powers / self.total_power()

    def mean_excess_delay(self) -> float:
        """Power-weighted mean delay (first moment of the profile)."""
        return float(np.sum(self.normalized_powers() * self.delays_s))

    def rms_delay_spread(self) -> float:
        """RMS delay spread ``sigma_tau`` (square root of the centred second moment)."""
        weights = self.normalized_powers()
        mean = np.sum(weights * self.delays_s)
        second_moment = np.sum(weights * self.delays_s**2)
        return float(np.sqrt(max(second_moment - mean**2, 0.0)))

    # ------------------------------------------------------------------ #
    # Frequency-domain quantities
    # ------------------------------------------------------------------ #
    def frequency_correlation(self, frequency_separation_hz: np.ndarray) -> np.ndarray:
        """Complex frequency correlation function of the profile.

        The spaced-frequency correlation of a wide-sense-stationary
        uncorrelated-scattering channel is the Fourier transform of the
        (normalized) power delay profile:

        .. math::

            R(\\Delta f) = \\sum_k p_k\\, e^{-i 2\\pi \\Delta f\\, \\tau_k}.
        """
        separation = np.asarray(frequency_separation_hz, dtype=float)
        weights = self.normalized_powers()
        phase = np.exp(-2j * np.pi * np.outer(separation, self.delays_s))
        return phase @ weights

    def frequency_correlation_magnitude(
        self, frequency_separation_hz: np.ndarray
    ) -> np.ndarray:
        """Magnitude of :meth:`frequency_correlation`."""
        return np.abs(self.frequency_correlation(frequency_separation_hz))


def exponential_power_delay_profile(
    rms_delay_spread_s: float,
    n_taps: int = 32,
    max_delay_factor: float = 8.0,
) -> PowerDelayProfile:
    """Sample an exponential power delay profile with the given rms delay spread.

    The continuous exponential profile ``p(tau) = exp(-tau / sigma_tau)`` has
    rms delay spread exactly ``sigma_tau`` and produces the Lorentzian
    frequency correlation ``1 / (1 + i 2 pi Delta f sigma_tau)`` whose squared
    magnitude is the ``1 / (1 + (2 pi Delta f sigma_tau)^2)`` factor of the
    paper's Eq. (3).  The discrete sampling covers ``max_delay_factor`` decay
    constants with ``n_taps`` equally spaced taps.

    Parameters
    ----------
    rms_delay_spread_s:
        Target rms delay spread ``sigma_tau`` in seconds (positive).
    n_taps:
        Number of taps (>= 2).
    max_delay_factor:
        Length of the sampled profile in units of ``sigma_tau``.
    """
    if rms_delay_spread_s <= 0:
        raise SpecificationError(
            f"rms_delay_spread_s must be positive, got {rms_delay_spread_s}"
        )
    if n_taps < 2:
        raise SpecificationError(f"n_taps must be at least 2, got {n_taps}")
    if max_delay_factor <= 0:
        raise SpecificationError(
            f"max_delay_factor must be positive, got {max_delay_factor}"
        )
    delays = np.linspace(0.0, max_delay_factor * rms_delay_spread_s, int(n_taps))
    powers = np.exp(-delays / rms_delay_spread_s)
    return PowerDelayProfile(delays_s=delays, powers=powers)


def coherence_bandwidth(
    profile: PowerDelayProfile, correlation_level: float = 0.5
) -> Tuple[float, float]:
    """Coherence bandwidth of a delay profile.

    Returns the pair ``(rule_of_thumb, exact)``:

    * the rule of thumb ``1 / (2 pi sigma_tau)`` (the 50%-correlation
      approximation used throughout the textbook literature), and
    * the exact smallest frequency separation at which the magnitude of the
      profile's frequency correlation function drops to ``correlation_level``
      (found by bisection on the monotone initial decay).

    Parameters
    ----------
    profile:
        The power delay profile.
    correlation_level:
        Correlation magnitude defining "coherent" (default 0.5).
    """
    if not 0.0 < correlation_level < 1.0:
        raise SpecificationError(
            f"correlation_level must lie in (0, 1), got {correlation_level}"
        )
    sigma_tau = profile.rms_delay_spread()
    if sigma_tau == 0.0:
        return float("inf"), float("inf")
    rule_of_thumb = 1.0 / (2.0 * np.pi * sigma_tau)

    # Bracket the crossing: expand until the correlation falls below the level.
    low, high = 0.0, rule_of_thumb
    for _ in range(200):
        if float(profile.frequency_correlation_magnitude(np.array([high]))[0]) < correlation_level:
            break
        high *= 2.0
    else:  # pragma: no cover - pathological profiles only
        return rule_of_thumb, float("inf")

    for _ in range(100):
        mid = 0.5 * (low + high)
        value = float(profile.frequency_correlation_magnitude(np.array([mid]))[0])
        if value >= correlation_level:
            low = mid
        else:
            high = mid
    return rule_of_thumb, 0.5 * (low + high)
