"""Young–Beaulieu IDFT Rayleigh generator (Fig. 2 of the paper).

One generator instance produces a single baseband Rayleigh fading process
with the Clarke/Jakes autocorrelation: two i.i.d. real Gaussian sequences
``A[k]`` and ``B[k]`` are combined into ``A[k] - i B[k]``, weighted by the
Doppler filter ``F[k]`` of Eq. (21), and passed through an ``M``-point IDFT.
The output block ``u[l], l = 0..M-1`` is a zero-mean complex Gaussian
sequence whose

* per-dimension autocorrelation is ``r_RR[d] = (sigma_orig^2/M) Re{g[d]}``
  (Eq. 16), normalized ``~ J0(2 pi f_m d)``,
* real/imaginary cross-correlation is zero (Eq. 18 with real ``F``),
* total variance is ``sigma_g^2 = 2 sigma_orig^2 / M^2 * sum F[k]^2``
  (Eq. 19).

The last property is the one the paper's real-time algorithm must know: the
variance at the filter output differs from the variance at its input, and the
coloring step has to divide by the *output* standard deviation.  The
generator therefore exposes :attr:`IDFTRayleighGenerator.output_variance`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..exceptions import DimensionError, DopplerError, FilterDesignError
from ..random import ensure_rng
from ..types import ComplexArray, SeedLike
from .doppler import filter_output_variance, young_beaulieu_filter

__all__ = ["IDFTRayleighGenerator", "batched_doppler_blocks"]


def _weighted_scratch(workspace, n_streams: int, n_blocks: int, m: int):  # reprolint: workspace-constructor
    """Resolve (or build) the complex frequency-domain block buffer.

    With a ``workspace`` dict the buffer persists across calls and is
    reallocated only when the requested shape changes — the streaming
    executor's per-group workspaces hit the steady state (constant block
    size) after the first call.  Without one, it is a per-call temporary.
    This is the *only* persistent buffer of the kernel: the real Gaussian
    draw buffer is deliberately per-call and dropped before the IDFT so at
    most two block-sized arrays are ever live at once (the draw buffer is
    as large as this one, and keeping it resident would raise the peak by
    half again).
    """
    shape = (n_streams, n_blocks, m)
    if workspace is None:
        return np.empty(shape, dtype=np.complex128)
    weighted = workspace.get("weighted")
    if weighted is None or weighted.shape != shape:
        workspace["weighted"] = weighted = np.empty(shape, dtype=np.complex128)
    return weighted


def batched_doppler_blocks(  # reprolint: hot-path
    filter_coefficients: np.ndarray,
    rngs: Sequence[SeedLike],
    *,
    n_blocks: int = 1,
    input_variance_per_dim: float = 0.5,
    backend=None,
    workspace=None,
) -> ComplexArray:
    """Generate many Doppler-shaped streams with one stacked IDFT call.

    This is the batched substrate of the Section 5 algorithm: every stream
    (a branch of a scenario, across many scenarios) draws its Gaussian input
    sequences from its *own* generator in ``rngs``, all frequency-domain
    blocks are weighted by the shared filter ``F[k]``, and a single stacked
    ``(len(rngs) * n_blocks, M)`` IDFT produces every time-domain block at
    once.  Both the single-branch :class:`IDFTRayleighGenerator` and the
    batched engine route through this function.

    Per stream, the output is bit-identical to ``n_blocks`` successive
    :meth:`IDFTRayleighGenerator.generate_block` calls on a generator holding
    the same rng: the one-shot ``(n_blocks, 2, M)`` Gaussian draw consumes
    the stream exactly like the historical per-block ``A``/``B`` pair draws
    (numpy's ziggurat samples value by value), and a stacked IDFT transforms
    each row exactly like a 1-D IDFT of that row.

    The kernel is fused and allocation-light: the Gaussian draw is scaled
    in place (``scale * z`` is bitwise what ``rng.normal(0, scale)``
    computes per element), the filter weighting writes the real and
    imaginary parts of the frequency-domain blocks directly (``coeffs * A``
    and ``-(coeffs * B)`` — bitwise the unfused ``coeffs * (A - 1j * B)``
    wherever the product is nonzero; only the signs of stopband zeros can
    differ, which the IDFT's nonzero sums absorb), the draw buffer is
    dropped before the transform, and the IDFT runs *in place* in the
    weighted buffer via ``out=`` / ``ifft_into`` where the backend supports
    it (bit-identical to the out-of-place transform) — so at most two
    block-sized arrays are live at any instant.

    Parameters
    ----------
    filter_coefficients:
        The shared Doppler filter ``F[k]`` of length ``M`` (Eq. 21).
    rngs:
        One seed or generator per stream; generators are advanced in place
        (callers stream consecutive records by passing the same generators
        again).
    n_blocks:
        Number of consecutive ``M``-sample blocks per stream.
    input_variance_per_dim:
        Variance ``sigma_orig^2`` of each real input sequence.
    backend:
        Optional object providing ``ifft(array, axis=-1)`` and (optionally)
        ``ifft_into(array, out, axis=-1)`` (a
        :class:`repro.engine.backends.LinalgBackend`); ``None`` uses
        ``np.fft.ifft``.  Duck-typed so this low-level module stays free of
        engine imports.
    workspace:
        Optional dict owned by the caller in which the kernel keeps its
        block buffer across calls.  **The returned array aliases this
        scratch** — a caller passing a workspace must consume (or copy)
        the result before the next call with the same workspace.  ``None``
        allocates per call and the result is independently owned.

    Returns
    -------
    numpy.ndarray
        Complex array of shape ``(len(rngs), n_blocks * M)``; consecutive
        blocks of a stream are mutually independent.
    """
    coeffs = np.asarray(filter_coefficients, dtype=float)
    if coeffs.ndim != 1 or coeffs.shape[0] == 0:
        raise FilterDesignError("filter coefficients must form a non-empty 1-D array")
    if n_blocks < 1:
        raise DimensionError(f"n_blocks must be >= 1, got {n_blocks}")
    if input_variance_per_dim <= 0 or not np.isfinite(input_variance_per_dim):
        raise DopplerError(
            f"input variance per dimension must be positive, got {input_variance_per_dim}"
        )
    n_streams = len(rngs)
    if n_streams == 0:
        raise DimensionError("batched_doppler_blocks requires at least one stream")
    m = coeffs.shape[0]
    scale = np.sqrt(input_variance_per_dim)
    weighted = _weighted_scratch(workspace, n_streams, n_blocks, m)
    # reprolint: disable=hot-path-allocation (deliberate per-call draw buffer)
    draws = np.empty((n_streams, n_blocks, 2, m), dtype=np.float64)
    for index, rng in enumerate(rngs):
        # (n_blocks, 2, M) fills in C order: block 0's A then B, block 1's A
        # then B, ... — the exact stream consumption of sequential
        # complex_gaussian_pair draws.
        ensure_rng(rng).standard_normal(
            size=(n_blocks, 2, m), dtype=np.float64, out=draws[index]
        )
    np.multiply(draws, scale, out=draws)
    # One vectorized weighting over every stream and block at once, written
    # component-wise into the complex buffer.
    np.multiply(coeffs, draws[:, :, 0, :], out=weighted.real)
    np.multiply(coeffs, draws[:, :, 1, :], out=weighted.imag)
    np.negative(weighted.imag, out=weighted.imag)
    del draws  # free the draw buffer before the transform allocates/runs
    flat = weighted.reshape(n_streams * n_blocks, m)
    if backend is None:
        np.fft.ifft(flat, axis=-1, out=flat)
    else:
        ifft_into = getattr(backend, "ifft_into", None)
        if ifft_into is not None:
            ifft_into(flat, flat, axis=-1)
        else:
            np.copyto(flat, backend.ifft(flat, axis=-1))
    return weighted.reshape(n_streams, n_blocks * m)


class IDFTRayleighGenerator:
    """Single-branch Doppler-shaped Rayleigh fading generator.

    Parameters
    ----------
    n_points:
        IDFT block length ``M`` (also the number of time samples produced per
        block).  The paper uses ``M = 4096``.
    normalized_doppler:
        Normalized maximum Doppler frequency ``f_m = F_m / F_s`` in
        ``(0, 0.5)``.
    input_variance_per_dim:
        Variance ``sigma_orig^2`` of each of the real input sequences
        ``A[k]`` and ``B[k]`` (the paper's simulations use 1/2).
    rng:
        Seed or generator for the Gaussian input sequences.

    Examples
    --------
    >>> gen = IDFTRayleighGenerator(n_points=1024, normalized_doppler=0.05, rng=3)
    >>> block = gen.generate_block()
    >>> block.shape
    (1024,)
    >>> envelope = abs(block)
    """

    def __init__(
        self,
        n_points: int,
        normalized_doppler: float,
        input_variance_per_dim: float = 0.5,
        rng: SeedLike = None,
    ) -> None:
        self._filter = young_beaulieu_filter(n_points, normalized_doppler)
        self._n_points = int(n_points)
        self._normalized_doppler = float(normalized_doppler)
        self._input_variance = float(input_variance_per_dim)
        self._output_variance = filter_output_variance(self._filter, self._input_variance)
        self._rng = ensure_rng(rng)

    @property
    def n_points(self) -> int:
        """IDFT block length ``M``."""
        return self._n_points

    @property
    def normalized_doppler(self) -> float:
        """Normalized maximum Doppler frequency ``f_m``."""
        return self._normalized_doppler

    @property
    def input_variance_per_dim(self) -> float:
        """Variance ``sigma_orig^2`` of each real input sequence."""
        return self._input_variance

    @property
    def filter_coefficients(self) -> np.ndarray:
        """The Doppler filter ``F[k]`` (read-only copy)."""
        return self._filter.copy()

    @property
    def output_variance(self) -> float:
        """Theoretical variance ``sigma_g^2`` of the output samples (Eq. 19)."""
        return self._output_variance

    def generate_block(self, rng: Optional[SeedLike] = None) -> ComplexArray:
        """Generate one block of ``M`` complex Gaussian fading samples.

        Parameters
        ----------
        rng:
            Optional override of the generator's random stream for this block
            (used by the multi-branch real-time generator to hand each branch
            an independent child stream).

        Returns
        -------
        numpy.ndarray
            Complex array ``u[l]`` of length ``M``.  The Rayleigh envelope is
            ``abs(u)``.
        """
        gen = self._rng if rng is None else ensure_rng(rng)
        return batched_doppler_blocks(
            self._filter,
            [gen],
            n_blocks=1,
            input_variance_per_dim=self._input_variance,
        )[0]

    def generate_envelope_block(self, rng: Optional[SeedLike] = None) -> np.ndarray:
        """Generate one block and return its Rayleigh envelope ``|u[l]|``."""
        return np.abs(self.generate_block(rng=rng))

    def generate_blocks(self, n_blocks: int, rng: Optional[SeedLike] = None) -> ComplexArray:
        """Generate ``n_blocks`` consecutive independent blocks.

        Returns
        -------
        numpy.ndarray
            Complex array of shape ``(n_blocks, M)``.  Blocks are mutually
            independent (the IDFT method produces exactly ``M`` correlated
            samples per draw); callers needing longer correlated records
            should increase ``n_points`` instead.
        """
        if n_blocks < 1:
            raise DimensionError(f"n_blocks must be >= 1, got {n_blocks}")
        gen = self._rng if rng is None else ensure_rng(rng)
        stream = batched_doppler_blocks(
            self._filter,
            [gen],
            n_blocks=int(n_blocks),
            input_variance_per_dim=self._input_variance,
        )
        return stream.reshape(int(n_blocks), self._n_points)
