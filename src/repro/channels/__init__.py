"""Channel correlation models and the Doppler/IDFT fading substrate.

Two physical models provide the covariance inputs to the core algorithm:

* :mod:`repro.channels.spectral` — Jakes' covariances as functions of time
  delay and frequency separation (Section 2 of the paper, OFDM-style
  spectral correlation).
* :mod:`repro.channels.spatial` — Salz & Winters' covariances as functions of
  antenna spacing in a uniform linear array (Section 3, MIMO-style spatial
  correlation).

The real-time mode additionally needs a per-branch Doppler-shaped Rayleigh
generator; that is the Young–Beaulieu IDFT method (Section 5) implemented in
:mod:`repro.channels.doppler` and :mod:`repro.channels.idft_generator`.

High-level scenario dataclasses in :mod:`repro.channels.scenario` turn
physical parameters (carrier frequency, mobile speed, antenna spacing, delay
spread, ...) into a :class:`repro.core.covariance.CovarianceSpec` ready for
the generator.
"""

from .geometry import (
    wavelength,
    max_doppler_frequency,
    normalized_doppler,
    uniform_linear_array_positions,
)
from .spectral import (
    spectral_covariance_pair,
    spectral_covariance_components,
    SpectralCorrelationModel,
)
from .spatial import (
    spatial_correlation_real,
    spatial_correlation_imag,
    spatial_covariance_components,
    SpatialCorrelationModel,
)
from .doppler import (
    young_beaulieu_filter,
    jakes_doppler_psd,
    filter_output_variance,
    filter_autocorrelation,
)
from .idft_generator import IDFTRayleighGenerator, batched_doppler_blocks
from .sum_of_sinusoids import SumOfSinusoidsGenerator
from .delay_profile import (
    PowerDelayProfile,
    exponential_power_delay_profile,
    coherence_bandwidth,
)
from .autocorrelation import clarke_autocorrelation, autocorrelation_error
from .scenario import (
    OFDMScenario,
    MIMOArrayScenario,
    CustomScenario,
    DopplerSettings,
    ScenarioSweep,
)

__all__ = [
    "wavelength",
    "max_doppler_frequency",
    "normalized_doppler",
    "uniform_linear_array_positions",
    "spectral_covariance_pair",
    "spectral_covariance_components",
    "SpectralCorrelationModel",
    "spatial_correlation_real",
    "spatial_correlation_imag",
    "spatial_covariance_components",
    "SpatialCorrelationModel",
    "young_beaulieu_filter",
    "jakes_doppler_psd",
    "filter_output_variance",
    "filter_autocorrelation",
    "IDFTRayleighGenerator",
    "batched_doppler_blocks",
    "SumOfSinusoidsGenerator",
    "PowerDelayProfile",
    "exponential_power_delay_profile",
    "coherence_bandwidth",
    "clarke_autocorrelation",
    "autocorrelation_error",
    "OFDMScenario",
    "MIMOArrayScenario",
    "CustomScenario",
    "DopplerSettings",
    "ScenarioSweep",
]
