"""Theoretical fading autocorrelation references.

The Clarke/Jakes model predicts that the normalized autocorrelation of a
Rayleigh fading process with maximum normalized Doppler frequency ``f_m`` is
the zeroth-order Bessel function ``J0(2 pi f_m d)`` of the sample lag ``d``
(Eq. 20 of the paper).  The experiments compare the empirical autocorrelation
of generated branches against this reference.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy.special import j0

from ..exceptions import DopplerError

__all__ = ["clarke_autocorrelation", "autocorrelation_error"]


def clarke_autocorrelation(lags: np.ndarray, normalized_doppler: float) -> np.ndarray:
    """Clarke/Jakes normalized autocorrelation ``J0(2 pi f_m d)``.

    Parameters
    ----------
    lags:
        Sample lags ``d`` (any real values).
    normalized_doppler:
        Normalized maximum Doppler frequency ``f_m`` (non-negative).
    """
    if normalized_doppler < 0:
        raise DopplerError(
            f"normalized_doppler must be non-negative, got {normalized_doppler}"
        )
    lags = np.asarray(lags, dtype=float)
    return j0(2.0 * np.pi * normalized_doppler * lags)


def autocorrelation_error(
    empirical: np.ndarray, normalized_doppler: float, *, max_lag: int | None = None
) -> Tuple[float, float]:
    """RMS and maximum absolute deviation of an empirical normalized autocorrelation
    from the Clarke reference.

    Parameters
    ----------
    empirical:
        Empirical normalized autocorrelation, ``empirical[0]`` being lag 0.
    normalized_doppler:
        Design value ``f_m``.
    max_lag:
        Restrict the comparison to lags ``0..max_lag`` (defaults to the whole
        input).

    Returns
    -------
    (rms_error, max_error)
    """
    emp = np.asarray(empirical, dtype=float)
    if emp.ndim != 1 or emp.shape[0] == 0:
        raise ValueError("empirical autocorrelation must be a non-empty 1-D array")
    if max_lag is not None:
        emp = emp[: max_lag + 1]
    lags = np.arange(emp.shape[0])
    reference = clarke_autocorrelation(lags, normalized_doppler)
    deviation = emp - reference
    return float(np.sqrt(np.mean(deviation**2))), float(np.max(np.abs(deviation)))
