"""High-level scenario descriptions that produce covariance specifications.

The paper's two simulation scenarios (Section 6) are expressed here as
dataclasses holding *physical* parameters; calling ``covariance_spec`` turns
them into the :class:`repro.core.covariance.CovarianceSpec` consumed by the
generators:

* :class:`OFDMScenario` — spectrally correlated branches defined by carrier
  frequencies, pairwise arrival delays, rms delay spread, Doppler and
  sampling frequencies (Section 2 / Fig. 4a).
* :class:`MIMOArrayScenario` — spatially correlated branches defined by a
  uniform linear array's spacing and the angle-of-departure spread
  (Section 3 / Fig. 4b).
* :class:`CustomScenario` — a thin wrapper for covariance components the
  user computed elsewhere.
* :class:`DopplerSettings` — the IDFT-generator parameters (``M``,
  ``sigma_orig^2``, sampling and Doppler frequencies) shared by the real-time
  experiments.
* :class:`ScenarioSweep` — a parameter-sweep builder that expands a grid of
  scenario parameters into many scenarios and hands them to the batched
  engine as one :class:`repro.engine.SimulationPlan`.

The imports of ``CovarianceSpec`` and the engine are deferred to call time so
that ``repro.channels`` and ``repro.core`` can be imported in either order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional, Sequence, Tuple, Union

import numpy as np

from ..exceptions import DimensionError, SpecificationError
from ..types import SeedLike
from .geometry import max_doppler_frequency, normalized_doppler
from .spatial import SpatialCorrelationModel
from .spectral import SpectralCorrelationModel

__all__ = [
    "DopplerSettings",
    "OFDMScenario",
    "MIMOArrayScenario",
    "CustomScenario",
    "ScenarioSweep",
]


@dataclass(frozen=True)
class DopplerSettings:
    """Parameters of the real-time (Doppler-shaped) generation mode.

    Attributes
    ----------
    sampling_frequency_hz:
        Sampling frequency ``F_s`` of the transmitted signal.
    max_doppler_hz:
        Maximum Doppler frequency ``F_m``.
    n_points:
        IDFT block length ``M``.
    input_variance_per_dim:
        Variance ``sigma_orig^2`` of the real Gaussian sequences at the
        Doppler filter inputs.
    """

    sampling_frequency_hz: float
    max_doppler_hz: float
    n_points: int = 4096
    input_variance_per_dim: float = 0.5

    def __post_init__(self) -> None:
        if self.sampling_frequency_hz <= 0:
            raise SpecificationError("sampling_frequency_hz must be positive")
        if self.max_doppler_hz <= 0:
            raise SpecificationError("max_doppler_hz must be positive")
        if self.n_points < 8:
            raise SpecificationError("n_points must be at least 8")
        if self.input_variance_per_dim <= 0:
            raise SpecificationError("input_variance_per_dim must be positive")

    @property
    def normalized_doppler(self) -> float:
        """Normalized maximum Doppler frequency ``f_m = F_m / F_s``."""
        return normalized_doppler(self.max_doppler_hz, self.sampling_frequency_hz)

    @classmethod
    def from_mobile_speed(
        cls,
        speed_ms: float,
        carrier_frequency_hz: float,
        sampling_frequency_hz: float,
        n_points: int = 4096,
        input_variance_per_dim: float = 0.5,
    ) -> "DopplerSettings":
        """Build Doppler settings from a mobile speed and carrier frequency."""
        return cls(
            sampling_frequency_hz=sampling_frequency_hz,
            max_doppler_hz=max_doppler_frequency(speed_ms, carrier_frequency_hz),
            n_points=n_points,
            input_variance_per_dim=input_variance_per_dim,
        )


def _pairwise_delay_matrix(delays: np.ndarray, n: int) -> np.ndarray:
    """Normalize user-provided delays into a symmetric ``(N, N)`` matrix.

    Accepts either a full symmetric matrix or a length-N vector of per-branch
    arrival times (in which case the pairwise delay is the absolute
    difference of arrival times).
    """
    arr = np.asarray(delays, dtype=float)
    if arr.ndim == 1:
        if arr.shape[0] != n:
            raise DimensionError(
                f"per-branch arrival times must have length {n}, got {arr.shape[0]}"
            )
        return np.abs(arr[:, None] - arr[None, :])
    if arr.shape != (n, n):
        raise DimensionError(
            f"delay matrix must have shape ({n}, {n}) or ({n},), got {arr.shape}"
        )
    if not np.allclose(arr, arr.T):
        raise SpecificationError("the delay matrix must be symmetric")
    return arr


@dataclass(frozen=True)
class OFDMScenario:
    """Spectrally correlated branches (Section 2, Fig. 4a of the paper).

    Attributes
    ----------
    carrier_frequencies_hz:
        Carrier frequency of each branch (length N).
    delays_s:
        Either a symmetric ``(N, N)`` matrix of pairwise arrival delays
        ``tau_{k,j}`` or a length-N vector of per-branch arrival times.
    rms_delay_spread_s:
        RMS delay spread ``sigma_tau`` of the channel.
    doppler:
        Doppler settings (sampling frequency, maximum Doppler, IDFT size).
    """

    carrier_frequencies_hz: np.ndarray
    delays_s: np.ndarray
    rms_delay_spread_s: float
    doppler: DopplerSettings

    def __post_init__(self) -> None:
        freqs = np.asarray(self.carrier_frequencies_hz, dtype=float)
        if freqs.ndim != 1 or freqs.size < 1:
            raise DimensionError("carrier_frequencies_hz must be a non-empty 1-D array")
        if np.any(freqs <= 0):
            raise SpecificationError("carrier frequencies must be positive")
        if self.rms_delay_spread_s < 0:
            raise SpecificationError("rms_delay_spread_s must be non-negative")
        delays = _pairwise_delay_matrix(self.delays_s, freqs.size)
        object.__setattr__(self, "carrier_frequencies_hz", freqs)
        object.__setattr__(self, "delays_s", delays)

    @property
    def n_branches(self) -> int:
        """Number of correlated branches."""
        return int(self.carrier_frequencies_hz.shape[0])

    @property
    def default_normalized_doppler(self) -> float:
        """Normalized Doppler used when the caller does not override it."""
        return self.doppler.normalized_doppler

    def correlation_model(self) -> SpectralCorrelationModel:
        """The underlying Jakes spectral-correlation model."""
        return SpectralCorrelationModel(
            frequencies_hz=self.carrier_frequencies_hz,
            delays_s=self.delays_s,
            max_doppler_hz=self.doppler.max_doppler_hz,
            rms_delay_spread_s=self.rms_delay_spread_s,
        )

    def covariance_components(
        self, gaussian_powers: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(Rxx, Ryy, Rxy, Ryx)`` matrices for the given branch powers."""
        return self.correlation_model().covariance_components(gaussian_powers)

    def covariance_spec(self, gaussian_powers: np.ndarray):
        """Build the :class:`repro.core.covariance.CovarianceSpec` for this scenario."""
        from ..core.covariance import CovarianceSpec

        powers = np.asarray(gaussian_powers, dtype=float)
        if powers.shape != (self.n_branches,):
            raise DimensionError(
                f"gaussian_powers must have shape ({self.n_branches},), got {powers.shape}"
            )
        rxx, ryy, rxy, ryx = self.covariance_components(powers)
        return CovarianceSpec.from_components(
            powers,
            rxx,
            ryy,
            rxy,
            ryx,
            metadata={
                "scenario": "ofdm-spectral",
                "carrier_frequencies_hz": self.carrier_frequencies_hz.tolist(),
                "rms_delay_spread_s": self.rms_delay_spread_s,
                "max_doppler_hz": self.doppler.max_doppler_hz,
                "sampling_frequency_hz": self.doppler.sampling_frequency_hz,
            },
        )


@dataclass(frozen=True)
class MIMOArrayScenario:
    """Spatially correlated branches from a uniform linear array (Section 3, Fig. 4b).

    Attributes
    ----------
    n_antennas:
        Number of transmit antennas (branches).
    spacing_wavelengths:
        Adjacent-element spacing ``D / lambda``.
    mean_angle_rad:
        Mean angle of departure ``Phi``.
    angular_spread_rad:
        Angular half-spread ``Delta``.
    doppler:
        Optional Doppler settings for real-time generation.
    """

    n_antennas: int
    spacing_wavelengths: float
    mean_angle_rad: float = 0.0
    angular_spread_rad: float = np.pi / 18.0
    doppler: Optional[DopplerSettings] = None

    def __post_init__(self) -> None:
        # Delegate validation of the array parameters to the model class.
        self.correlation_model()

    @property
    def n_branches(self) -> int:
        """Number of correlated branches."""
        return int(self.n_antennas)

    @property
    def default_normalized_doppler(self) -> Optional[float]:
        """Normalized Doppler, when Doppler settings were supplied."""
        return None if self.doppler is None else self.doppler.normalized_doppler

    def correlation_model(self) -> SpatialCorrelationModel:
        """The underlying Salz–Winters spatial-correlation model."""
        return SpatialCorrelationModel(
            n_antennas=self.n_antennas,
            spacing_wavelengths=self.spacing_wavelengths,
            mean_angle_rad=self.mean_angle_rad,
            angular_spread_rad=self.angular_spread_rad,
        )

    def covariance_components(
        self, gaussian_powers: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(Rxx, Ryy, Rxy, Ryx)`` matrices for the given branch powers."""
        return self.correlation_model().covariance_components(
            np.asarray(gaussian_powers, dtype=float)
        )

    def covariance_spec(self, gaussian_powers: np.ndarray):
        """Build the :class:`repro.core.covariance.CovarianceSpec` for this scenario."""
        from ..core.covariance import CovarianceSpec

        powers = np.asarray(gaussian_powers, dtype=float)
        if powers.shape != (self.n_antennas,):
            raise DimensionError(
                f"gaussian_powers must have shape ({self.n_antennas},), got {powers.shape}"
            )
        rxx, ryy, rxy, ryx = self.covariance_components(powers)
        return CovarianceSpec.from_components(
            powers,
            rxx,
            ryy,
            rxy,
            ryx,
            metadata={
                "scenario": "mimo-spatial",
                "n_antennas": self.n_antennas,
                "spacing_wavelengths": self.spacing_wavelengths,
                "mean_angle_rad": self.mean_angle_rad,
                "angular_spread_rad": self.angular_spread_rad,
            },
        )


@dataclass(frozen=True)
class CustomScenario:
    """A scenario defined directly by covariance component matrices.

    Useful when the pairwise covariances come from measurements or from a
    correlation model not shipped with the library.
    """

    rxx: np.ndarray
    ryy: np.ndarray
    rxy: np.ndarray
    ryx: np.ndarray
    doppler: Optional[DopplerSettings] = None
    description: str = field(default="custom")

    def __post_init__(self) -> None:
        shapes = {np.asarray(m).shape for m in (self.rxx, self.ryy, self.rxy, self.ryx)}
        if len(shapes) != 1:
            raise DimensionError(
                f"all covariance component matrices must share one shape, got {shapes}"
            )
        (shape,) = shapes
        if len(shape) != 2 or shape[0] != shape[1]:
            raise DimensionError(f"covariance components must be square matrices, got {shape}")

    @property
    def n_branches(self) -> int:
        """Number of correlated branches."""
        return int(np.asarray(self.rxx).shape[0])

    @property
    def default_normalized_doppler(self) -> Optional[float]:
        """Normalized Doppler, when Doppler settings were supplied."""
        return None if self.doppler is None else self.doppler.normalized_doppler

    def covariance_spec(self, gaussian_powers: np.ndarray):
        """Build the :class:`repro.core.covariance.CovarianceSpec` for this scenario."""
        from ..core.covariance import CovarianceSpec

        powers = np.asarray(gaussian_powers, dtype=float)
        if powers.shape != (self.n_branches,):
            raise DimensionError(
                f"gaussian_powers must have shape ({self.n_branches},), got {powers.shape}"
            )
        return CovarianceSpec.from_components(
            powers,
            np.asarray(self.rxx, dtype=float),
            np.asarray(self.ryy, dtype=float),
            np.asarray(self.rxy, dtype=float),
            np.asarray(self.ryx, dtype=float),
            metadata={"scenario": self.description},
        )


class ScenarioSweep:
    """A parameter sweep over scenario objects, feeding the batched engine.

    A sweep holds an ordered collection of scenario objects (anything with a
    ``covariance_spec(gaussian_powers)`` method) plus one label per scenario.
    :meth:`product` expands a cartesian grid of constructor parameters —
    the typical "vary only spacing and angular spread" study — and
    :meth:`to_plan` converts the whole sweep into a
    :class:`repro.engine.SimulationPlan` with independent per-scenario seeds,
    ready for one batched plan → compile → execute pass.

    Sweeps are directly runnable through the session API:
    :meth:`repro.api.Simulator.run` accepts a sweep (plus
    ``gaussian_powers`` and an optional root ``seed``) and converts it via
    :meth:`to_plan` internally, so the grid-expansion → plan → engine chain
    is one call.

    Examples
    --------
    >>> from repro.channels import MIMOArrayScenario, ScenarioSweep
    >>> sweep = ScenarioSweep.product(
    ...     MIMOArrayScenario,
    ...     n_antennas=[3],
    ...     spacing_wavelengths=[0.5, 1.0, 2.0],
    ...     angular_spread_rad=[0.1, 0.2],
    ... )
    >>> len(sweep)
    6
    >>> plan = sweep.to_plan([1.0, 1.0, 1.0], seed=11)
    >>> plan.n_entries
    6
    >>> from repro.api import Simulator
    >>> result = Simulator().run(sweep, 64, gaussian_powers=[1.0, 1.0, 1.0], seed=11)
    >>> result.n_entries
    6
    """

    def __init__(
        self,
        scenarios: Sequence[Any],
        labels: Optional[Sequence[str]] = None,
    ) -> None:
        scenarios = list(scenarios)
        if not scenarios:
            raise SpecificationError("a ScenarioSweep needs at least one scenario")
        for scenario in scenarios:
            if not hasattr(scenario, "covariance_spec"):
                raise SpecificationError(
                    "every sweep scenario must expose a covariance_spec(gaussian_powers) "
                    f"method; got {type(scenario).__name__}"
                )
        if labels is None:
            labels = [f"scenario[{index}]" for index in range(len(scenarios))]
        else:
            labels = [str(label) for label in labels]
            if len(labels) != len(scenarios):
                raise SpecificationError(
                    f"labels must have one entry per scenario: got {len(labels)} labels "
                    f"for {len(scenarios)} scenarios"
                )
        self._scenarios: Tuple[Any, ...] = tuple(scenarios)
        self._labels: Tuple[str, ...] = tuple(labels)

    @classmethod
    def product(cls, factory: Any, **axes: Sequence[Any]) -> "ScenarioSweep":
        """Expand the cartesian product of named parameter axes.

        Parameters
        ----------
        factory:
            Callable (usually a scenario dataclass) invoked once per grid
            point with the axis values as keyword arguments.
        **axes:
            Non-empty sequences of values; single (non-swept) parameters can
            be passed as one-element lists.  Axis order follows keyword
            order, with the last axis varying fastest.
        """
        if not axes:
            raise SpecificationError("ScenarioSweep.product needs at least one axis")
        names = list(axes)
        value_lists = []
        for name in names:
            values = list(axes[name])
            if not values:
                raise SpecificationError(f"sweep axis {name!r} must be non-empty")
            value_lists.append(values)
        scenarios = []
        labels = []
        for combo in itertools.product(*value_lists):
            scenarios.append(factory(**dict(zip(names, combo))))
            labels.append(",".join(f"{name}={value!r}" for name, value in zip(names, combo)))
        return cls(scenarios, labels)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def scenarios(self) -> Tuple[Any, ...]:
        """The swept scenario objects, in grid order."""
        return self._scenarios

    @property
    def labels(self) -> Tuple[str, ...]:
        """One human-readable label per scenario."""
        return self._labels

    def __len__(self) -> int:
        return len(self._scenarios)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._scenarios)

    # ------------------------------------------------------------------ #
    # Conversion
    # ------------------------------------------------------------------ #
    def _powers_for(self, gaussian_powers: Union[np.ndarray, Sequence[np.ndarray]]):
        """Normalize powers into one array per scenario (broadcast a single vector).

        Per-scenario form: a list/tuple of power vectors, or a 2-D array of
        shape ``(n_scenarios, n_branches)``.  Anything 1-D is broadcast to
        every scenario.
        """
        if isinstance(gaussian_powers, (list, tuple)):
            per_scenario_form = np.ndim(gaussian_powers[0]) >= 1
        else:
            per_scenario_form = np.ndim(gaussian_powers) >= 2
        if per_scenario_form:
            per_scenario = [np.asarray(p, dtype=float) for p in gaussian_powers]
            if len(per_scenario) != len(self._scenarios):
                raise SpecificationError(
                    f"got {len(per_scenario)} power vectors for {len(self._scenarios)} "
                    "scenarios; pass one vector to broadcast or one per scenario"
                )
            return per_scenario
        shared = np.asarray(gaussian_powers, dtype=float)
        return [shared] * len(self._scenarios)

    def specs(self, gaussian_powers: Union[np.ndarray, Sequence[np.ndarray]]):
        """Covariance specs for every scenario in the sweep.

        ``gaussian_powers`` is either one per-branch power vector shared by
        all scenarios or a sequence with one vector per scenario.
        """
        return [
            scenario.covariance_spec(powers)
            for scenario, powers in zip(self._scenarios, self._powers_for(gaussian_powers))
        ]

    def to_plan(
        self,
        gaussian_powers: Union[np.ndarray, Sequence[np.ndarray]],
        *,
        seed: SeedLike = None,
        seeds: Optional[Sequence[SeedLike]] = None,
        coloring_method: str = "eigen",
        psd_method: str = "clip",
        fading: Any = None,
    ):
        """Build a :class:`repro.engine.SimulationPlan` covering the sweep.

        Each entry carries its scenario's label and an independent seed
        derived from ``seed`` (see
        :meth:`repro.engine.SimulationPlan.from_specs`).  ``fading``
        optionally applies one fading model (a name, mapping, or
        :class:`repro.models.FadingSpec`) to every swept scenario.
        """
        from ..engine import SimulationPlan

        return SimulationPlan.from_specs(
            self.specs(gaussian_powers),
            seed=seed,
            seeds=seeds,
            coloring_method=coloring_method,
            psd_method=psd_method,
            labels=self._labels,
            fading=fading,
        )
