"""Physical-layer geometry and Doppler helpers.

Small, dimension-checked conversions between the physical parameters quoted
in the paper's simulation section (carrier frequency 900 MHz, mobile speed
60 km/h, antenna spacing D/lambda = 1, sampling frequency 1 kHz) and the
normalized quantities the algorithms consume (maximum Doppler frequency
``F_m``, normalized Doppler ``f_m = F_m / F_s``, antenna positions in
wavelengths).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import SpecificationError

__all__ = [
    "SPEED_OF_LIGHT",
    "wavelength",
    "max_doppler_frequency",
    "normalized_doppler",
    "uniform_linear_array_positions",
    "kmh_to_ms",
]

#: Speed of light in vacuum [m/s].
SPEED_OF_LIGHT = 299_792_458.0


def kmh_to_ms(speed_kmh: float) -> float:
    """Convert a speed from km/h to m/s."""
    return float(speed_kmh) * (1000.0 / 3600.0)


def wavelength(carrier_frequency_hz: float) -> float:
    """Carrier wavelength ``lambda = c / f_c`` in metres.

    Raises
    ------
    SpecificationError
        If the carrier frequency is not positive.
    """
    if carrier_frequency_hz <= 0:
        raise SpecificationError(
            f"carrier frequency must be positive, got {carrier_frequency_hz}"
        )
    return SPEED_OF_LIGHT / float(carrier_frequency_hz)


def max_doppler_frequency(speed_ms: float, carrier_frequency_hz: float) -> float:
    """Maximum Doppler shift ``F_m = v / lambda = v f_c / c`` in Hz.

    Parameters
    ----------
    speed_ms:
        Mobile speed in m/s (non-negative).
    carrier_frequency_hz:
        Carrier frequency in Hz (positive).
    """
    if speed_ms < 0:
        raise SpecificationError(f"mobile speed must be non-negative, got {speed_ms}")
    return float(speed_ms) / wavelength(carrier_frequency_hz)


def normalized_doppler(max_doppler_hz: float, sampling_frequency_hz: float) -> float:
    """Normalized maximum Doppler frequency ``f_m = F_m / F_s``.

    The IDFT generator requires ``0 < f_m < 0.5`` (the Doppler bandwidth must
    fit inside the sampled bandwidth); that constraint is checked by the
    filter design, not here, because a zero value is legitimate for static
    scenarios handled by the snapshot generator.
    """
    if sampling_frequency_hz <= 0:
        raise SpecificationError(
            f"sampling frequency must be positive, got {sampling_frequency_hz}"
        )
    if max_doppler_hz < 0:
        raise SpecificationError(
            f"maximum Doppler frequency must be non-negative, got {max_doppler_hz}"
        )
    return float(max_doppler_hz) / float(sampling_frequency_hz)


def uniform_linear_array_positions(
    n_antennas: int, spacing_wavelengths: float
) -> np.ndarray:
    """Positions (in wavelengths) of a uniform linear array along its axis.

    Element ``k`` sits at ``k * spacing_wavelengths`` for ``k = 0..n-1``;
    the spatial correlation model only ever uses pairwise differences, so the
    absolute origin is irrelevant.
    """
    if n_antennas < 1:
        raise SpecificationError(f"number of antennas must be >= 1, got {n_antennas}")
    if spacing_wavelengths < 0:
        raise SpecificationError(
            f"antenna spacing must be non-negative, got {spacing_wavelengths}"
        )
    return np.arange(n_antennas, dtype=float) * float(spacing_wavelengths)
