"""Spectral (frequency/time-delay) correlation model — Section 2 of the paper.

Jakes' model gives the covariances between the real and imaginary parts of
two zero-mean complex Gaussian fading processes observed at carrier
frequencies ``f_k`` and ``f_j`` with an arrival time delay ``tau_kj``
(Eq. 3–4):

.. math::

    R_{xx}^{k,j} = R_{yy}^{k,j}
        = \\frac{\\sigma^2 J_0(2\\pi F_m \\tau_{k,j})}
               {2\\,[1 + (\\Delta\\omega_{k,j}\\,\\sigma_\\tau)^2]},
    \\qquad
    R_{xy}^{k,j} = -R_{yx}^{k,j}
        = -\\Delta\\omega_{k,j}\\,\\sigma_\\tau\\, R_{xx}^{k,j},

with ``Delta omega_{k,j} = 2 pi (f_k - f_j)`` the angular frequency
separation, ``F_m`` the maximum Doppler frequency, and ``sigma_tau`` the rms
delay spread of the channel.  These expressions assume all processes share
the same multipath coefficient set and the same power ``sigma^2`` — the
restriction the generalized algorithm then lifts by accepting arbitrary
covariance inputs.

The module exposes the pairwise covariances and a
:class:`SpectralCorrelationModel` that evaluates them for every branch pair
of an OFDM-style scenario, producing the component matrices consumed by
:func:`repro.core.covariance.build_covariance_matrix`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy.special import j0

from ..exceptions import DimensionError, SpecificationError

__all__ = [
    "spectral_covariance_pair",
    "spectral_covariance_components",
    "SpectralCorrelationModel",
]


def spectral_covariance_pair(
    power: float,
    max_doppler_hz: float,
    delay_s: float,
    frequency_separation_hz: float,
    rms_delay_spread_s: float,
) -> Tuple[float, float, float, float]:
    """Covariances ``(Rxx, Ryy, Rxy, Ryx)`` for one branch pair (Eq. 3–4).

    Parameters
    ----------
    power:
        Common complex-Gaussian power ``sigma^2`` of the two processes.
    max_doppler_hz:
        Maximum Doppler frequency ``F_m`` in Hz.
    delay_s:
        Arrival time delay ``tau_{k,j}`` in seconds.
    frequency_separation_hz:
        ``f_k - f_j`` in Hz (sign matters: it fixes the sign of the imaginary
        part of the covariance matrix entry).
    rms_delay_spread_s:
        RMS delay spread ``sigma_tau`` in seconds.

    Returns
    -------
    tuple
        ``(Rxx, Ryy, Rxy, Ryx)`` with ``Rxx == Ryy`` and ``Rxy == -Ryx``.
    """
    if power <= 0:
        raise SpecificationError(f"power must be positive, got {power}")
    if max_doppler_hz < 0:
        raise SpecificationError(
            f"max Doppler frequency must be non-negative, got {max_doppler_hz}"
        )
    if rms_delay_spread_s < 0:
        raise SpecificationError(
            f"rms delay spread must be non-negative, got {rms_delay_spread_s}"
        )
    delta_omega_sigma = 2.0 * np.pi * float(frequency_separation_hz) * float(rms_delay_spread_s)
    rxx = (
        float(power)
        * float(j0(2.0 * np.pi * float(max_doppler_hz) * float(delay_s)))
        / (2.0 * (1.0 + delta_omega_sigma**2))
    )
    rxy = -delta_omega_sigma * rxx
    return rxx, rxx, rxy, -rxy


def spectral_covariance_components(
    powers: np.ndarray,
    max_doppler_hz: float,
    delays_s: np.ndarray,
    frequencies_hz: np.ndarray,
    rms_delay_spread_s: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Evaluate the four covariance component matrices for all branch pairs.

    Parameters
    ----------
    powers:
        Per-branch powers ``sigma_g_j^2`` (length N).  Jakes' closed forms
        assume equal powers; when unequal powers are supplied the common
        ``sigma^2`` of Eq. (3) is replaced, pairwise, by the geometric mean
        ``sqrt(sigma_k^2 sigma_j^2)``, the standard heteroscedastic
        extension that keeps the implied correlation *coefficients* equal to
        the equal-power case.
    max_doppler_hz:
        Maximum Doppler frequency ``F_m`` in Hz.
    delays_s:
        Symmetric ``(N, N)`` matrix of pairwise arrival time delays
        ``tau_{k,j}`` (the diagonal is ignored).
    frequencies_hz:
        Length-N carrier frequencies ``f_j``.
    rms_delay_spread_s:
        RMS delay spread ``sigma_tau``.

    Returns
    -------
    tuple of numpy.ndarray
        ``(Rxx, Ryy, Rxy, Ryx)``, each of shape ``(N, N)`` with zero
        diagonals (diagonal variances are handled separately by the
        covariance builder).
    """
    powers = np.asarray(powers, dtype=float)
    frequencies_hz = np.asarray(frequencies_hz, dtype=float)
    delays_s = np.asarray(delays_s, dtype=float)
    n = powers.shape[0]
    if powers.ndim != 1 or n < 1:
        raise DimensionError("powers must be a non-empty 1-D array")
    if np.any(powers <= 0):
        raise SpecificationError("all powers must be positive")
    if frequencies_hz.shape != (n,):
        raise DimensionError(
            f"frequencies must have shape ({n},), got {frequencies_hz.shape}"
        )
    if delays_s.shape != (n, n):
        raise DimensionError(f"delays must have shape ({n}, {n}), got {delays_s.shape}")
    if not np.allclose(delays_s, delays_s.T):
        raise SpecificationError("the delay matrix must be symmetric")
    if np.any(delays_s < 0):
        raise SpecificationError("delays must be non-negative")

    # Pairwise effective power: geometric mean (equals sigma^2 when equal).
    pair_power = np.sqrt(np.outer(powers, powers))
    delta_omega_sigma = (
        2.0 * np.pi * (frequencies_hz[:, None] - frequencies_hz[None, :]) * rms_delay_spread_s
    )
    bessel = j0(2.0 * np.pi * max_doppler_hz * delays_s)
    rxx = pair_power * bessel / (2.0 * (1.0 + delta_omega_sigma**2))
    rxy = -delta_omega_sigma * rxx
    np.fill_diagonal(rxx, 0.0)
    np.fill_diagonal(rxy, 0.0)
    return rxx, rxx.copy(), rxy, -rxy


@dataclass(frozen=True)
class SpectralCorrelationModel:
    """Jakes spectral-correlation model for an OFDM-style multi-carrier link.

    Attributes
    ----------
    frequencies_hz:
        Carrier frequency of each branch (length N).
    delays_s:
        Symmetric ``(N, N)`` matrix of pairwise arrival time delays.
    max_doppler_hz:
        Maximum Doppler frequency ``F_m``.
    rms_delay_spread_s:
        RMS delay spread ``sigma_tau``.
    """

    frequencies_hz: np.ndarray
    delays_s: np.ndarray
    max_doppler_hz: float
    rms_delay_spread_s: float

    def __post_init__(self) -> None:
        frequencies = np.asarray(self.frequencies_hz, dtype=float)
        delays = np.asarray(self.delays_s, dtype=float)
        object.__setattr__(self, "frequencies_hz", frequencies)
        object.__setattr__(self, "delays_s", delays)
        n = frequencies.shape[0]
        if frequencies.ndim != 1 or n < 1:
            raise DimensionError("frequencies_hz must be a non-empty 1-D array")
        if delays.shape != (n, n):
            raise DimensionError(
                f"delays_s must have shape ({n}, {n}), got {delays.shape}"
            )
        if self.max_doppler_hz < 0:
            raise SpecificationError("max_doppler_hz must be non-negative")
        if self.rms_delay_spread_s < 0:
            raise SpecificationError("rms_delay_spread_s must be non-negative")

    @property
    def n_branches(self) -> int:
        """Number of correlated branches."""
        return int(self.frequencies_hz.shape[0])

    def covariance_components(
        self, powers: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(Rxx, Ryy, Rxy, Ryx)`` matrices for the given branch powers."""
        return spectral_covariance_components(
            np.asarray(powers, dtype=float),
            self.max_doppler_hz,
            self.delays_s,
            self.frequencies_hz,
            self.rms_delay_spread_s,
        )
