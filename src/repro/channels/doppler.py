"""Doppler spectra and the Young–Beaulieu IDFT filter (Section 5 of the paper).

The real-time generator shapes white complex Gaussian noise with the filter
``F[k]`` of Eq. (21) so that each synthesized branch has the Clarke/Jakes
normalized autocorrelation ``J0(2 pi f_m d)``.  Three quantities from the
paper are implemented here:

* :func:`young_beaulieu_filter` — the filter coefficients ``F[k]`` (Eq. 21),
* :func:`filter_autocorrelation` — the output autocorrelation implied by a
  filter, ``r_RR[d] = (sigma_orig^2 / M) Re{g[d]}`` with ``g = IDFT(F^2)``
  (Eq. 16–18),
* :func:`filter_output_variance` — the output variance
  ``sigma_g^2 = 2 sigma_orig^2 / M^2 * sum F[k]^2`` (Eq. 19), the quantity
  whose omission breaks the method of Sorooshyari & Daut and whose inclusion
  is the paper's key real-time correction.

:func:`jakes_doppler_psd` provides the continuous Jakes spectrum for
reference plots and spectral validation.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..exceptions import DopplerError, FilterDesignError

__all__ = [
    "young_beaulieu_filter",
    "jakes_doppler_psd",
    "filter_output_variance",
    "filter_autocorrelation",
    "validate_doppler_parameters",
]


def validate_doppler_parameters(n_points: int, normalized_doppler: float) -> int:
    """Validate ``(M, f_m)`` and return ``k_m = floor(f_m M)``.

    Requirements, from the construction of Eq. (21):

    * ``M >= 8`` so the filter has room for both spectral edges,
    * ``0 < f_m < 0.5`` so the Doppler band fits in the sampled bandwidth,
    * ``k_m = floor(f_m M) >= 1`` so the passband contains at least one bin,
    * ``2 k_m < M`` so the two band edges do not collide.

    Raises
    ------
    DopplerError / FilterDesignError
        If any requirement is violated.
    """
    if not isinstance(n_points, (int, np.integer)) or n_points < 8:
        raise DopplerError(f"the IDFT size M must be an integer >= 8, got {n_points!r}")
    normalized_doppler = float(normalized_doppler)
    if not 0.0 < normalized_doppler < 0.5:
        raise DopplerError(
            "the normalized maximum Doppler frequency f_m = F_m / F_s must lie in "
            f"(0, 0.5); got {normalized_doppler}"
        )
    k_m = int(np.floor(normalized_doppler * n_points))
    if k_m < 1:
        raise FilterDesignError(
            f"f_m * M = {normalized_doppler * n_points:.3f} < 1: the Doppler passband "
            "contains no DFT bin; increase M or f_m"
        )
    if 2 * k_m >= n_points:
        raise FilterDesignError(
            f"2 * k_m = {2 * k_m} >= M = {n_points}: the Doppler band edges overlap; "
            "decrease f_m or increase M"
        )
    return k_m


def young_beaulieu_filter(n_points: int, normalized_doppler: float) -> np.ndarray:
    """Doppler filter coefficients ``F[k]`` of Eq. (21).

    Parameters
    ----------
    n_points:
        IDFT length ``M``.
    normalized_doppler:
        Normalized maximum Doppler frequency ``f_m = F_m / F_s``.

    Returns
    -------
    numpy.ndarray
        Real non-negative array of length ``M``.  ``F[0] = 0`` (no DC term),
        the passband covers bins ``1..k_m`` and ``M-k_m..M-1`` with the
        Jakes-spectrum square-root shape, the band-edge bins ``k_m`` and
        ``M - k_m`` carry the area-matching correction term, and the
        stopband is exactly zero.
    """
    k_m = validate_doppler_parameters(n_points, normalized_doppler)
    m = int(n_points)
    f_m = float(normalized_doppler)

    coeffs = np.zeros(m, dtype=float)

    # Passband interior: k = 1 .. k_m - 1 (and mirrored M-k).
    if k_m > 1:
        k = np.arange(1, k_m)
        ratio = k / (m * f_m)
        interior = np.sqrt(1.0 / (2.0 * np.sqrt(1.0 - ratio**2)))
        coeffs[1:k_m] = interior
        coeffs[m - k_m + 1 : m] = interior[::-1]

    # Band edge: k = k_m and k = M - k_m (Eq. 21, third and fifth cases).
    edge = np.sqrt(
        (k_m / 2.0)
        * (np.pi / 2.0 - np.arctan((k_m - 1.0) / np.sqrt(max(2.0 * k_m - 1.0, 1e-300))))
    )
    coeffs[k_m] = edge
    coeffs[m - k_m] = edge
    return coeffs


def jakes_doppler_psd(frequencies_hz: np.ndarray, max_doppler_hz: float) -> np.ndarray:
    """Continuous Jakes (Clarke) Doppler power spectral density.

    .. math::

        S(f) = \\frac{1}{\\pi F_m \\sqrt{1 - (f/F_m)^2}}, \\qquad |f| < F_m,

    and zero outside the Doppler band.  The density integrates to 1 over
    ``(-F_m, F_m)``.

    Parameters
    ----------
    frequencies_hz:
        Frequencies at which to evaluate the PSD.
    max_doppler_hz:
        Maximum Doppler frequency ``F_m`` (positive).
    """
    if max_doppler_hz <= 0:
        raise DopplerError(f"max_doppler_hz must be positive, got {max_doppler_hz}")
    f = np.asarray(frequencies_hz, dtype=float)
    out = np.zeros_like(f)
    inside = np.abs(f) < max_doppler_hz
    ratio = f[inside] / max_doppler_hz
    out[inside] = 1.0 / (np.pi * max_doppler_hz * np.sqrt(1.0 - ratio**2))
    return out


def filter_output_variance(filter_coefficients: np.ndarray, input_variance_per_dim: float) -> float:
    """Variance of the IDFT-generator output sequence, Eq. (19).

    .. math::

        \\sigma_g^2 = \\frac{2\\,\\sigma_{orig}^2}{M^2} \\sum_{k=0}^{M-1} F[k]^2.

    This is the quantity the proposed algorithm feeds back into the coloring
    step so that the Doppler filter's variance-changing effect is
    compensated.  ``input_variance_per_dim`` is ``sigma_orig^2``, the common
    variance of the real sequences ``A[k]`` and ``B[k]``.
    """
    coeffs = np.asarray(filter_coefficients, dtype=float)
    if coeffs.ndim != 1 or coeffs.shape[0] == 0:
        raise FilterDesignError("filter coefficients must form a non-empty 1-D array")
    if input_variance_per_dim <= 0:
        raise DopplerError(
            f"input variance per dimension must be positive, got {input_variance_per_dim}"
        )
    m = coeffs.shape[0]
    return float(2.0 * input_variance_per_dim * np.sum(coeffs**2) / (m**2))


def filter_autocorrelation(
    filter_coefficients: np.ndarray, input_variance_per_dim: float, max_lag: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Theoretical per-dimension autocorrelation of the generator output (Eq. 16–18).

    Returns
    -------
    (r_rr, r_ri):
        ``r_rr[d] = (sigma_orig^2 / M) Re{g[d]}`` — the autocorrelation of the
        real part (equal to that of the imaginary part), and
        ``r_ri[d] = (sigma_orig^2 / M) Im{g[d]}`` — the real/imaginary
        cross-correlation, where ``g = IDFT(F^2)``.  For the real, symmetric
        filter of Eq. (21) the cross term vanishes, which is what makes the
        output envelope Rayleigh.
    """
    coeffs = np.asarray(filter_coefficients, dtype=float)
    if coeffs.ndim != 1 or coeffs.shape[0] == 0:
        raise FilterDesignError("filter coefficients must form a non-empty 1-D array")
    if input_variance_per_dim <= 0:
        raise DopplerError(
            f"input variance per dimension must be positive, got {input_variance_per_dim}"
        )
    m = coeffs.shape[0]
    if not 0 <= max_lag < m:
        raise ValueError(f"max_lag must be in [0, {m - 1}], got {max_lag}")
    g = np.fft.ifft(coeffs**2)  # numpy's ifft carries the 1/M factor of Eq. (17)
    scale = input_variance_per_dim / m
    r_rr = scale * np.real(g[: max_lag + 1])
    r_ri = scale * np.imag(g[: max_lag + 1])
    return r_rr, r_ri
