"""Command line interface: ``python -m repro`` / ``repro-experiments``.

Subcommands
-----------
``list``
    Print the registered experiment identifiers.
``run <id> [...]``
    Run one or more experiments and print their reports.  ``run all`` runs
    the full suite.
``export <id> --output <dir>``
    Run one experiment and write its report (``.txt``) and any numeric series
    (``.csv``) into the given directory.
``batch [--batch-sizes 1,16,256] [--branches N] [--samples n] [--repeats k]``
    Run the batched-engine comparison sweep (the ``scaling-batch``
    experiment) with custom batch sizes: looped single-spec generation vs.
    the plan → compile → execute engine, with cache hits and speedups
    reported.  With ``--doppler`` (plus optional ``--fm`` and ``--points``)
    the sweep runs the Doppler-mode analogue (``scaling-doppler-batch``):
    looped real-time generation vs. the batched IDFT substrate, with the
    Doppler filter-reuse counters (filters built vs. entries served)
    reported alongside the speedups.  With ``--model`` (plus ``--shape``
    and optional ``--shadow-sigma``) the snapshot sweep applies one fading
    model from the zoo to every entry and checks the batched samples
    against the scalar reference oracle.
``suite [name] [--list] [--file workload.json] [--samples n]``
    Run one declarative fading-model workload through the batched engine:
    a shipped named suite (one per registered model) or a workload JSON
    file (schema in :mod:`repro.models.workloads`), printing a JSON
    summary.
``serve [--host H] [--port P] [--max-queue Q] [--dispatch-slots S]``
    Run the envelope-serving HTTP front end over one warm ``Simulator``
    session (see the "Serving layer" section of ``docs/ARCHITECTURE.md``):
    plan submission, status polling, cancellation, and streamed envelope
    delivery, with a bounded submission queue (``429`` + ``Retry-After``
    under backpressure), per-client fair scheduling, and in-flight
    request coalescing.
``shard --shards K --cache-dir DIR [--entries B] [...]``
    Run a deterministic sweep as ``K`` independent worker subprocesses
    sharing one artifact ``cache_dir`` (see the "Sharding layer" section
    of ``docs/ARCHITECTURE.md``): the first worker compiles the shared
    decompositions/filters/plan artifacts cold, the rest warm-hit them
    through the disk tiers.  Streams per-shard progress, prints per-tier
    cache-hit totals, exits non-zero if any slice failed, and resumes a
    partially failed run with ``--retry-failed``.  ``--check`` verifies
    the merged result byte-for-byte against an in-process solo run
    (standing invariant 7).
``cache {stats,clear} [--cache-dir DIR]``
    Inspect or empty the persistent artifact cache — all three store
    namespaces: decompositions, Doppler filters, and compiled plans —
    plus the compiled-plan memory tier's configuration and per-process
    counters.  The directory comes from ``--cache-dir`` or, when omitted,
    the ``REPRO_CACHE_DIR`` environment variable.

All output is plain text; the experiments regenerate the paper's tables and
figures as numbers (and ASCII traces with ``--ascii-plots``).

``--version`` prints the package version.  ``run`` and ``batch`` accept
``--backend`` to select the engine's linalg backend (``numpy`` default,
``scipy``, import-gated GPU backends); experiments that never touch the
batched engine ignore it, and ``--cache-dir`` to attach the persistent disk
tier to the process-wide caches for the invocation (equivalent to setting
``REPRO_CACHE_DIR``).  The ``batch`` summary ends with the decomposition
cache's aggregate hit/miss counters for the run.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from ._version import __version__
from .experiments import list_experiments, run_experiment

__all__ = ["main", "build_parser"]


def _backend_argument(parser: argparse.ArgumentParser) -> None:
    """Add the shared ``--backend`` option (engine linalg backend)."""
    parser.add_argument(
        "--backend",
        default=None,
        help="linalg backend for the batched engine (e.g. numpy, scipy); "
        "see repro.engine.available_backends()",
    )


def _cache_dir_argument(parser: argparse.ArgumentParser) -> None:
    """Add the shared ``--cache-dir`` option (persistent artifact cache)."""
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="directory of the persistent artifact cache (decomposition and "
        "Doppler-filter spill); defaults to $REPRO_CACHE_DIR when set",
    )


def _attach_cache_dir(cache_dir: Optional[Path]) -> None:
    """Attach a persistent disk tier to the process-wide caches.

    ``--cache-dir`` is the per-invocation equivalent of exporting
    ``REPRO_CACHE_DIR`` before the run: the process-wide decomposition,
    Doppler-filter, and compiled-plan caches gain (or, with ``None`` and no
    environment variable, keep their lazily-resolved) disk tier under the
    directory.
    """
    if cache_dir is None:
        return
    from .engine import (
        default_decomposition_cache,
        default_filter_cache,
        default_plan_cache,
    )

    default_decomposition_cache().set_cache_dir(cache_dir)
    default_filter_cache().set_cache_dir(cache_dir)
    default_plan_cache().set_cache_dir(cache_dir)


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the evaluation of Tran et al., IPDPS 2005 "
        "(correlated Rayleigh fading envelope generation).",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run one or more experiments")
    run_parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment identifiers (or 'all')",
    )
    run_parser.add_argument(
        "--seed", type=int, default=None, help="override the experiment seed"
    )
    run_parser.add_argument(
        "--ascii-plots",
        action="store_true",
        help="render numeric series as ASCII plots in the report",
    )
    _backend_argument(run_parser)
    _cache_dir_argument(run_parser)

    export_parser = subparsers.add_parser(
        "export", help="run an experiment and write its report and series to files"
    )
    export_parser.add_argument("experiment", help="experiment identifier")
    export_parser.add_argument(
        "--output", type=Path, required=True, help="output directory"
    )
    export_parser.add_argument("--seed", type=int, default=None)

    batch_parser = subparsers.add_parser(
        "batch", help="run the batched-engine vs. looped-generation sweep"
    )
    batch_parser.add_argument(
        "--batch-sizes",
        default="1,16,256",
        help="comma-separated batch sizes B to sweep (default: 1,16,256)",
    )
    batch_parser.add_argument(
        "--branches", type=int, default=4, help="branches N per scenario (default: 4)"
    )
    batch_parser.add_argument(
        "--samples",
        type=int,
        default=None,
        help="time samples per branch (default: 64; not accepted with "
        "--doppler, whose record length is the IDFT block --points)",
    )
    batch_parser.add_argument(
        "--repeats", type=int, default=3, help="best-of repeats per timing (default: 3)"
    )
    batch_parser.add_argument("--seed", type=int, default=None)
    batch_parser.add_argument(
        "--doppler",
        action="store_true",
        help="run the Doppler-mode sweep (batched IDFT substrate vs. looped "
        "real-time generation) instead of the snapshot sweep",
    )
    batch_parser.add_argument(
        "--fm",
        type=float,
        default=0.05,
        help="normalized maximum Doppler frequency f_m for --doppler (default: 0.05)",
    )
    batch_parser.add_argument(
        "--points",
        type=int,
        default=128,
        help="IDFT block length M for --doppler (default: 128)",
    )
    batch_parser.add_argument(
        "--model",
        default=None,
        help="fading model applied to every entry (rayleigh, rician, "
        "nakagami, weibull); the looped baseline is checked through the "
        "scalar reference oracle",
    )
    batch_parser.add_argument(
        "--shape",
        type=float,
        default=None,
        help="shape parameter of --model (Rician K, Nakagami m, Weibull k)",
    )
    batch_parser.add_argument(
        "--shadow-sigma",
        type=float,
        default=0.0,
        help="log-normal shadowing spread in dB composed on top of --model "
        "(default: 0, disabled)",
    )
    _backend_argument(batch_parser)
    _cache_dir_argument(batch_parser)

    suite_parser = subparsers.add_parser(
        "suite",
        help="run a named fading-model workload suite (or a workload JSON file)",
        description=(
            "Run one declarative workload through the batched engine: a "
            "shipped named suite (one per fading model; see --list) or a "
            "workload JSON file (see repro.models.workloads for the schema). "
            "Prints a JSON summary with per-entry mean envelope powers and "
            "the fading metadata the execute kernel stamped on every block."
        ),
    )
    suite_parser.add_argument(
        "suite",
        nargs="?",
        default=None,
        help="named suite to run (see --list)",
    )
    suite_parser.add_argument(
        "--list",
        action="store_true",
        dest="list_suites",
        help="list the shipped workload suites and exit",
    )
    suite_parser.add_argument(
        "--file",
        type=Path,
        default=None,
        help="run a workload JSON file instead of a named suite",
    )
    suite_parser.add_argument(
        "--samples",
        type=int,
        default=None,
        help="override the workload's n_samples",
    )
    _backend_argument(suite_parser)
    _cache_dir_argument(suite_parser)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the envelope-serving HTTP front end",
        description=(
            "Start a long-running HTTP server over one warm Simulator "
            "session: plan submission (POST /v1/plans), status polling, "
            "cancellation, and streamed envelope delivery, with a bounded "
            "submission queue (429 + Retry-After under backpressure), "
            "per-client fair scheduling, and in-flight request coalescing."
        ),
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port", type=int, default=8437, help="bind port (default: 8437)"
    )
    serve_parser.add_argument(
        "--max-queue",
        type=int,
        default=64,
        help="queued-flight bound before submissions are rejected with "
        "backpressure (default: 64)",
    )
    serve_parser.add_argument(
        "--dispatch-slots",
        type=int,
        default=4,
        help="flights executing concurrently (default: 4)",
    )
    serve_parser.add_argument(
        "--max-workers",
        type=int,
        default=None,
        help="simulator thread-pool size (default: --dispatch-slots)",
    )
    _backend_argument(serve_parser)
    _cache_dir_argument(serve_parser)

    shard_parser = subparsers.add_parser(
        "shard",
        help="run a sweep as subprocess shards over one shared artifact cache",
        description=(
            "Partition a deterministic sweep plan into slices and execute "
            "them as independent worker subprocesses sharing one cache_dir. "
            "The first worker compiles the shared artifacts cold; the rest "
            "warm-hit the decomposition/filter/plan disk tiers. The merged "
            "result is bit-identical to a single-process run (standing "
            "invariant 7; verify in-process with --check)."
        ),
    )
    shard_parser.add_argument(
        "--shards", type=int, default=2, help="worker subprocesses K (default: 2)"
    )
    shard_parser.add_argument(
        "--entries", type=int, default=8, help="sweep entries B (default: 8)"
    )
    shard_parser.add_argument(
        "--branches", type=int, default=4, help="branches N per entry (default: 4)"
    )
    shard_parser.add_argument(
        "--samples", type=int, default=64, help="time samples per branch (default: 64)"
    )
    shard_parser.add_argument("--seed", type=int, default=None)
    shard_parser.add_argument(
        "--doppler-every",
        type=int,
        default=0,
        help="make every k-th entry a Doppler entry sharing one filter "
        "(default: 0, snapshot-only)",
    )
    shard_parser.add_argument(
        "--fm",
        type=float,
        default=0.05,
        help="normalized Doppler f_m for --doppler-every entries (default: 0.05)",
    )
    shard_parser.add_argument(
        "--points",
        type=int,
        default=64,
        help="IDFT block length M for --doppler-every entries (default: 64)",
    )
    shard_parser.add_argument(
        "--work-dir",
        type=Path,
        default=None,
        help="directory for slice payloads and worker outputs (default: a "
        "fresh temporary directory; reuse one to enable --retry-failed)",
    )
    shard_parser.add_argument(
        "--retry-failed",
        action="store_true",
        help="reuse completed slice outputs already in --work-dir and only "
        "re-run slices that failed",
    )
    shard_parser.add_argument(
        "--check",
        action="store_true",
        help="also run the plan solo in-process and verify the merged "
        "result is byte-identical (standing invariant 7)",
    )
    _backend_argument(shard_parser)
    _cache_dir_argument(shard_parser)

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or clear the persistent artifact cache"
    )
    cache_parser.add_argument(
        "action",
        choices=("stats", "clear"),
        help="stats: print per-tier entry counts and sizes; clear: remove "
        "every persisted entry",
    )
    _cache_dir_argument(cache_parser)

    lint_parser = subparsers.add_parser(
        "lint",
        help="run reprolint, the project-invariant static analyzer",
        description=(
            "Run the reprolint rules (lock discipline, hot-path allocation, "
            "backend _into contract, cache-key purity) over source paths. "
            "Exit codes: 0 clean, 1 findings, 2 analyzer error."
        ),
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the installed repro package)",
    )
    lint_parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    lint_parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="also write the report to this file",
    )
    lint_parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated subset of rules to run (default: all)",
    )
    lint_parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )

    return parser


def _resolved_cache_dir(cache_dir: Optional[Path]) -> Path:
    """The cache directory from ``--cache-dir`` or ``REPRO_CACHE_DIR``."""
    from .config import CACHE_DIR_ENV, cache_dir_from_env

    resolved = cache_dir if cache_dir is not None else cache_dir_from_env()
    if resolved is None:
        raise SystemExit(
            f"no cache directory: pass --cache-dir or set {CACHE_DIR_ENV}"
        )
    return resolved


def _run_cache_command(action: str, cache_dir: Optional[Path]) -> int:
    """Implement ``repro-experiments cache {stats,clear}``.

    Covers all three namespaces of the unified artifact store:
    decompositions, Doppler filters, and compiled plans.
    """
    from .engine import CompiledPlanCache, DecompositionCache, DopplerFilterCache

    resolved = _resolved_cache_dir(cache_dir)
    # maxsize=0: these handles only inspect/maintain the disk tier; nothing
    # is promoted into (or counted against) an in-memory LRU.
    decompositions = DecompositionCache(maxsize=0, cache_dir=resolved)
    filters = DopplerFilterCache(cache_dir=resolved)
    plans = CompiledPlanCache(cache_dir=resolved)

    if action == "clear":
        removed = (
            decompositions.clear_disk() + filters.clear_disk() + plans.clear_disk()
        )
        print(f"cache cleared: removed {removed} entries under {resolved}")
        return 0

    print(f"cache directory: {resolved}")
    for label, (entries, n_bytes) in (
        ("decompositions", decompositions.disk_usage()),
        ("doppler filters", filters.disk_usage()),
        ("compiled plans", plans.disk_usage()),
    ):
        print(f"  {label}: {entries} entries, {n_bytes / 1024:.1f} KiB")
    # The plan memory tier is per-process (it fronts the disk tier inside a
    # live engine); this handle reports its configuration and the counters
    # accumulated in this process.
    stats = plans.stats
    print(
        f"  plan memory tier: bound {plans.memory_max_bytes / (1024 * 1024):.0f} MiB, "
        f"{stats.memory_entries} resident entries "
        f"({stats.memory_bytes / 1024:.1f} KiB), "
        f"{stats.memory_hits} hits / {stats.memory_misses} misses this process"
    )
    return 0


def _run_shard_command(args) -> int:
    """Implement ``repro-experiments shard`` (see the parser description)."""
    from .experiments.scaling import shard_sweep_plan
    from .shard import run_sharded

    if args.shards < 1:
        raise SystemExit(f"--shards must be >= 1, got {args.shards}")
    if args.entries < 1:
        raise SystemExit(f"--entries must be >= 1, got {args.entries}")
    if args.samples < 1:
        raise SystemExit(f"--samples must be >= 1, got {args.samples}")
    if args.retry_failed and args.work_dir is None:
        raise SystemExit("--retry-failed needs --work-dir (the run to resume)")
    if args.doppler_every:
        from .engine import DopplerSpec
        from .exceptions import ReproError

        try:
            DopplerSpec(normalized_doppler=args.fm, n_points=args.points)
        except ReproError as exc:
            raise SystemExit(f"invalid --fm/--points combination: {exc}")
    resolved = _resolved_cache_dir(args.cache_dir)
    seed = 20050413 if args.seed is None else args.seed
    plan = shard_sweep_plan(
        args.entries,
        args.branches,
        seed,
        doppler_every=args.doppler_every,
        normalized_doppler=args.fm,
        n_points=args.points,
    )

    def progress(index: int, line: str) -> None:
        print(f"[shard {index}] {line}", flush=True)

    outcome = run_sharded(
        plan,
        args.samples,
        n_shards=args.shards,
        cache_dir=resolved,
        backend=args.backend,
        work_dir=args.work_dir,
        retry_failed=args.retry_failed,
        progress=progress,
    )
    totals = outcome.tier_totals()
    print(
        f"sharded sweep: {len(plan)} entries over {len(outcome.slices)} shards "
        f"in {outcome.wall_seconds:.2f}s (cache_dir={resolved})"
    )
    print(
        "  decompositions: "
        f"{totals.get('cache_misses', 0)} computed, "
        f"{totals.get('decompositions_disk_hits', 0)} served from the shared disk tier"
    )
    print(
        "  doppler filters: "
        f"{totals.get('filters_misses', 0)} built, "
        f"{totals.get('filters_disk_hits', 0)} shared disk hits"
    )
    print(
        "  compiled plans: "
        f"{totals.get('plan_cache_hits', 0)} whole-plan warm hits, "
        f"{totals.get('plans_disk_misses', 0)} cold compiles"
    )
    if outcome.failed:
        failed = ", ".join(str(index) for index in outcome.failed)
        print(
            f"FAILED slices: {failed} — surviving slices merged; resume with "
            f"--retry-failed --work-dir {outcome.work_dir}"
        )
        return 1
    merged = outcome.merged
    assert merged is not None
    print(f"merged result: {len(merged.blocks)} blocks x {merged.n_samples} samples")
    if args.check:
        from .engine import (
            DecompositionCache,
            DopplerFilterCache,
            SimulationEngine,
        )

        # A fully detached solo engine: the reference must not touch the
        # shared cache_dir (or an env-attached process-wide cache).
        reference = SimulationEngine(
            cache=DecompositionCache(),
            filter_cache=DopplerFilterCache(),
            backend=args.backend,
        ).run(plan, args.samples)
        identical = len(reference.blocks) == len(merged.blocks) and all(
            ref.samples.tobytes() == got.samples.tobytes()
            for ref, got in zip(reference.blocks, merged.blocks)
        )
        print(f"bit-identical to solo run: {'OK' if identical else 'MISMATCH'}")
        if not identical:
            return 1
    return 0


def _run_ids(requested: List[str]) -> List[str]:
    if len(requested) == 1 and requested[0] == "all":
        return list_experiments()
    unknown = [name for name in requested if name not in list_experiments()]
    if unknown:
        raise SystemExit(
            f"unknown experiment(s) {unknown}; available: {', '.join(list_experiments())}"
        )
    return requested


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point.  Returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for experiment_id in list_experiments():
            print(experiment_id)
        return 0

    if args.command == "serve":
        from .api import Simulator
        from .service.http import run_server

        if args.max_queue < 1:
            raise SystemExit(f"--max-queue must be >= 1, got {args.max_queue}")
        if args.dispatch_slots < 1:
            raise SystemExit(
                f"--dispatch-slots must be >= 1, got {args.dispatch_slots}"
            )
        simulator = Simulator(
            backend=args.backend,
            cache_dir=args.cache_dir,
            max_workers=args.max_workers or args.dispatch_slots,
        )
        print(
            f"serving envelopes on http://{args.host}:{args.port} "
            f"(max_queue={args.max_queue}, dispatch_slots={args.dispatch_slots}, "
            f"backend={simulator.backend.name}) — Ctrl-C to stop"
        )
        try:
            run_server(
                args.host,
                args.port,
                simulator=simulator,
                max_queue=args.max_queue,
                dispatch_slots=args.dispatch_slots,
            )
        finally:
            simulator.close()
        return 0

    if args.command == "cache":
        return _run_cache_command(args.action, args.cache_dir)

    if args.command == "shard":
        return _run_shard_command(args)

    if args.command == "suite":
        import json

        from .exceptions import ReproError
        # Imported lazily: repro.models.workloads pulls in the engine, which
        # itself imports repro.models.fading — see the package docstrings.
        from .models import workloads

        _attach_cache_dir(args.cache_dir)
        if args.list_suites:
            for name in workloads.available_suites():
                print(f"{name}: {workloads.NAMED_SUITES[name]['description']}")
            return 0
        if (args.suite is None) == (args.file is None):
            raise SystemExit(
                "pass exactly one of a suite name or --file (or use --list)"
            )
        try:
            workload = (
                workloads.load_workload(args.file)
                if args.file is not None
                else workloads.get_suite(args.suite)
            )
            summary = workloads.run_suite(
                workload, n_samples=args.samples, backend=args.backend
            )
        except ReproError as exc:
            # Malformed workloads exit with the field-naming message, not a
            # traceback — the CLI face of the coercion-error contract.
            raise SystemExit(f"workload error: {exc}")
        print(json.dumps(summary, indent=2))
        return 0

    if args.command == "lint":
        from .analysis import main as lint_main

        lint_argv = list(args.paths)
        if args.format != "text":
            lint_argv += ["--format", args.format]
        if args.output is not None:
            lint_argv += ["--output", str(args.output)]
        if args.rules is not None:
            lint_argv += ["--rules", args.rules]
        if args.list_rules:
            lint_argv.append("--list-rules")
        return lint_main(lint_argv)

    if args.command == "run":
        _attach_cache_dir(args.cache_dir)
        exit_code = 0
        for experiment_id in _run_ids(list(args.experiments)):
            kwargs = {} if args.seed is None else {"seed": args.seed}
            if args.backend is not None:
                kwargs["backend"] = args.backend
            result = run_experiment(experiment_id, **kwargs)
            print(result.render(include_series=args.ascii_plots))
            print("=" * 78)
            if not result.passed:
                exit_code = 1
        return exit_code

    if args.command == "batch":
        from .experiments.scaling import run_batch, run_doppler_batch

        _attach_cache_dir(args.cache_dir)
        try:
            batch_sizes = tuple(
                int(token) for token in str(args.batch_sizes).split(",") if token.strip()
            )
        except ValueError:
            raise SystemExit(
                f"--batch-sizes must be comma-separated integers, got {args.batch_sizes!r}"
            )
        if not batch_sizes or any(size < 1 for size in batch_sizes):
            raise SystemExit("--batch-sizes must contain positive integers")
        if args.branches < 1:
            raise SystemExit(f"--branches must be >= 1, got {args.branches}")
        fading = None
        if args.model is not None:
            fading = {"model": args.model, "shadowing_sigma_db": args.shadow_sigma}
            if args.shape is not None:
                fading["shape"] = args.shape
        elif args.shape is not None or args.shadow_sigma:
            raise SystemExit("--shape and --shadow-sigma require --model")
        if fading is not None:
            from .exceptions import ReproError
            from .models import coerce_fading

            try:
                # Validate up front so a bad spec exits with the
                # field-naming message, not a traceback mid-sweep.
                fading = coerce_fading(fading)
            except ReproError as exc:
                raise SystemExit(f"invalid fading model: {exc}")
        kwargs = {
            "batch_sizes": batch_sizes,
            "n_branches": args.branches,
            "repeats": args.repeats,
        }
        if args.seed is not None:
            kwargs["seed"] = args.seed
        if args.backend is not None:
            kwargs["backend"] = args.backend
        if args.doppler:
            if fading is not None:
                raise SystemExit(
                    "--model applies to the snapshot sweep only; the Doppler "
                    "sweep's looped baseline has no fading reference"
                )
            if args.samples is not None:
                raise SystemExit(
                    "--samples is not accepted with --doppler: the Doppler sweep's "
                    "record length is the IDFT block length (use --points)"
                )
            from .engine import DopplerSpec
            from .exceptions import ReproError

            try:
                # Full (M, f_m) validation — passband occupancy, band-edge
                # overlap — not just the range checks.
                DopplerSpec(normalized_doppler=args.fm, n_points=args.points)
            except ReproError as exc:
                raise SystemExit(f"invalid --fm/--points combination: {exc}")
            result = run_doppler_batch(
                normalized_doppler=args.fm, n_points=args.points, **kwargs
            )
            print(result.render())
            filters_built = int(result.metrics.get("doppler_filters_built_total", 0))
            entries_served = int(result.metrics.get("doppler_entries_total", 0))
            print(
                f"doppler filters: {filters_built} built for {entries_served} entries "
                f"served (looped path would build {entries_served})"
            )
            return 0 if result.passed else 1
        n_samples = 64 if args.samples is None else args.samples
        if n_samples < 1:
            raise SystemExit(f"--samples must be >= 1, got {n_samples}")
        result = run_batch(n_samples=n_samples, fading=fading, **kwargs)
        print(result.render())
        warm_hits = int(result.metrics.get("warm_cache_hits_total", 0))
        warm_misses = int(result.metrics.get("warm_cache_misses_total", 0))
        cold_misses = int(result.metrics.get("cold_cache_misses_total", 0))
        warm_lookups = warm_hits + warm_misses
        warm_rate = warm_hits / warm_lookups if warm_lookups else 0.0
        print(
            f"decomposition cache: cold compiles paid {cold_misses} decompositions; "
            f"warm compiles served {warm_hits}/{warm_lookups} lookups from cache "
            f"({warm_rate:.1%} warm hit rate)"
        )
        return 0 if result.passed else 1

    if args.command == "export":
        kwargs = {} if args.seed is None else {"seed": args.seed}
        result = run_experiment(args.experiment, **kwargs)
        output_dir: Path = args.output
        output_dir.mkdir(parents=True, exist_ok=True)
        report_path = output_dir / f"{result.experiment_id}.txt"
        report_path.write_text(result.render(include_series=True), encoding="utf8")
        if result.series:
            csv_path = output_dir / f"{result.experiment_id}.csv"
            csv_path.write_text(result.series_as_csv(), encoding="utf8")
        print(f"wrote {report_path}")
        return 0 if result.passed else 1

    # argparse with required subparsers should prevent reaching this point.
    parser.print_help()
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
