"""Decomposition cache: content-addressed reuse of coloring decompositions.

Planning a correlated-fading simulation is dominated by the ``O(N^3)``
eigendecomposition (or Cholesky factorization) of the covariance matrix —
work that parameter sweeps repeat needlessly whenever two scenarios share a
covariance matrix (e.g. a Doppler sweep over a fixed antenna geometry, or a
Monte-Carlo grid that varies only seeds).  :class:`DecompositionCache` is a
thread-safe LRU cache of :class:`repro.linalg.ColoringDecomposition` objects
keyed by a *content hash* of the covariance matrix together with every
parameter that influences the decomposition (coloring method, PSD-forcing
method, epsilon, numeric tolerances).  Hit/miss/eviction counters are exposed
for the benchmark harness.

The cache has two tiers:

* an in-memory LRU (``maxsize`` entries), as before;
* an optional **disk tier** (``cache_dir``) that spills entries as ``.npz``
  files so repeated *processes* — CLI invocations, CI phases, process-pool
  workers — skip recomputation too.  Disk entries embed a SHA-256 digest of
  their payload which is re-verified on load: a corrupt or truncated file is
  a *miss*, never an error (the offending file is removed).  The disk tier
  is LRU-bounded by total bytes (file mtimes order the entries; hits refresh
  them), and the hit/miss counters are split by tier.

The cache stores the exact object the single-matrix
:func:`repro.core.coloring.compute_coloring` pipeline produces, and the disk
round-trip preserves every array bit-for-bit (``.npz`` stores the raw float
binary), so a cache hit — memory or disk — is bit-identical to a fresh
computation: generation results never depend on the cache state.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from ..config import DEFAULTS, NumericDefaults, cache_dir_from_env
from ..linalg import ColoringDecomposition

__all__ = [
    "decomposition_cache_key",
    "CacheStats",
    "DecompositionCache",
    "default_decomposition_cache",
    "DEFAULT_DISK_MAX_BYTES",
]

#: Default byte bound of the disk tier (per cache directory).
DEFAULT_DISK_MAX_BYTES = 512 * 1024 * 1024

#: Sub-directory of ``cache_dir`` holding spilled decompositions (the
#: Doppler filter cache uses a sibling directory; see
#: :mod:`repro.engine.filters`).
_DISK_SUBDIR = "decompositions"

#: On-disk format version; bumped whenever the payload layout changes so
#: stale files from older versions read as misses instead of garbage.
_DISK_FORMAT_VERSION = 1

#: Age after which an orphaned ``.tmp`` file (a writer died between
#: ``mkstemp`` and the atomic rename) is swept by the eviction pass; old
#: enough that no live writer can still be producing it.
_TMP_SWEEP_AGE_SECONDS = 3600.0


def decomposition_cache_key(
    matrix: np.ndarray,
    *,
    method: str = "eigen",
    psd_method: str = "clip",
    epsilon: float = 1e-6,
    defaults: NumericDefaults = DEFAULTS,
    cache_token: str = "numpy",
) -> str:
    """Content hash identifying one coloring-decomposition computation.

    Two calls receive the same key exactly when they would produce the same
    decomposition: the covariance matrix bytes (shape, dtype and C-order
    contents) and every algorithm parameter are folded into a SHA-256 digest.
    Floating-point matrices that differ in even one ULP hash differently —
    the cache never equates "close" matrices.

    ``cache_token`` namespaces the key by the linalg backend that computes
    the decomposition (:attr:`repro.engine.backends.LinalgBackend.cache_token`).
    Backends that are bit-identical to numpy share the default ``"numpy"``
    token — their decompositions are interchangeable bytes — while every
    other backend hashes under its own token so, e.g., a GPU decomposition
    is never served to a numpy run.  The same namespacing carries over to
    the disk tier: the key is the file name, so on-disk entries are
    backend-namespaced too.
    """
    arr = np.ascontiguousarray(np.asarray(matrix, dtype=complex))
    hasher = hashlib.sha256()
    hasher.update(repr((arr.shape, arr.dtype.str)).encode("utf8"))
    hasher.update(arr.tobytes())
    hasher.update(
        "|".join(
            (
                cache_token,
                method,
                psd_method,
                repr(float(epsilon)),
                repr(defaults.eig_clip_tol),
                repr(defaults.psd_tol),
                repr(defaults.hermitian_atol),
                repr(defaults.hermitian_rtol),
            )
        ).encode("utf8")
    )
    return hasher.hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of cache activity counters.

    Attributes
    ----------
    hits:
        Lookups that found a stored decomposition in *any* tier.
    misses:
        Lookups that found nothing (the caller computed and stored).
    evictions:
        In-memory entries dropped to respect ``maxsize``.
    size:
        Number of decompositions currently stored in memory.
    disk_hits:
        Lookups served by loading (and verifying) a disk entry after a
        memory miss.  ``hits - disk_hits`` is the memory-tier hit count.
    disk_misses:
        Disk-tier probes that found no usable entry (absent, corrupt, or
        failing digest verification).  Only counted while a ``cache_dir``
        is configured.
    disk_evictions:
        Disk entries removed to respect the disk byte bound.
    disk_corruptions:
        Disk entries rejected by digest/format verification (each one is
        also a ``disk_miss``; the file is removed).
    disk_entries:
        Files currently stored in the disk tier (0 without a ``cache_dir``).
    disk_bytes:
        Total size of those files in bytes.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    disk_hits: int = 0
    disk_misses: int = 0
    disk_evictions: int = 0
    disk_corruptions: int = 0
    disk_entries: int = 0
    disk_bytes: int = 0

    @property
    def memory_hits(self) -> int:
        """Lookups served from the in-memory tier."""
        return self.hits - self.disk_hits

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when never used)."""
        total = self.lookups
        return self.hits / total if total else 0.0


def _disk_files(disk_dir: Optional[Path]) -> List[Path]:
    """The ``.npz`` entries under a disk-tier directory (empty if none)."""
    if disk_dir is None or not disk_dir.is_dir():
        return []
    return [p for p in disk_dir.iterdir() if p.suffix == ".npz"]


def _freeze(decomposition: ColoringDecomposition) -> ColoringDecomposition:
    """Make the pipeline-computed arrays of a decomposition read-only.

    Cached decompositions are shared between every generator built from the
    same matrix, and an in-place mutation through one of them would silently
    corrupt all the others.  ``requested_covariance`` may alias the caller's
    own matrix, so it is left untouched.
    """
    decomposition.coloring_matrix.flags.writeable = False
    decomposition.effective_covariance.flags.writeable = False
    return decomposition


def _payload_digest(arrays: List[np.ndarray], meta_json: str) -> str:
    """SHA-256 over the exact bytes a disk entry stores (verification tag)."""
    hasher = hashlib.sha256()
    for arr in arrays:
        hasher.update(repr((arr.shape, arr.dtype.str)).encode("utf8"))
        hasher.update(np.ascontiguousarray(arr).tobytes())
    hasher.update(meta_json.encode("utf8"))
    return hasher.hexdigest()


def _dump_entry(path: Path, key: str, decomposition: ColoringDecomposition) -> bool:
    """Atomically write one decomposition as ``path`` (``.npz``).

    Returns ``False`` (storing nothing) when the diagnostics ``extra`` dict
    is not JSON-serializable — exotic strategy diagnostics simply stay
    memory-only rather than failing the run.
    """
    try:
        meta_json = json.dumps(
            {
                "format": _DISK_FORMAT_VERSION,
                "key": key,
                "method": decomposition.method,
                "was_repaired": bool(decomposition.was_repaired),
                "negative_eigenvalue_count": int(
                    decomposition.negative_eigenvalue_count
                ),
                "min_eigenvalue": float(decomposition.min_eigenvalue),
                "extra": decomposition.extra,
            },
            sort_keys=True,
        )
    except (TypeError, ValueError):
        return False
    arrays = [
        np.ascontiguousarray(decomposition.coloring_matrix),
        np.ascontiguousarray(decomposition.effective_covariance),
        np.ascontiguousarray(decomposition.requested_covariance),
    ]
    digest = _payload_digest(arrays, meta_json)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        # Write-then-rename so a concurrent reader (another process sharing
        # the cache_dir) never observes a half-written file.
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.stem, suffix=".tmp"
        )
    except OSError:
        # An unusable cache_dir (a regular file in the way, no permission,
        # full disk) degrades to memory-only caching, never an error.
        return False
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(
                handle,
                coloring_matrix=arrays[0],
                effective_covariance=arrays[1],
                requested_covariance=arrays[2],
                meta=np.frombuffer(meta_json.encode("utf8"), dtype=np.uint8),
                digest=np.frombuffer(digest.encode("ascii"), dtype=np.uint8),
            )
        os.replace(tmp_name, path)
    except OSError:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        return False
    return True


def _load_entry(path: Path, key: str) -> Optional[ColoringDecomposition]:
    """Load and verify one disk entry; ``None`` on any defect.

    Truncated archives, non-npz garbage, missing fields, key mismatches and
    digest mismatches all return ``None`` — the caller treats every failure
    as a miss and removes the file.
    """
    try:
        with np.load(path, allow_pickle=False) as payload:
            coloring = payload["coloring_matrix"]
            effective = payload["effective_covariance"]
            requested = payload["requested_covariance"]
            meta_json = bytes(payload["meta"].tobytes()).decode("utf8")
            digest = bytes(payload["digest"].tobytes()).decode("ascii")
    except Exception:
        # np.load raises zipfile/OSError/KeyError/ValueError flavors on
        # corruption; all of them mean "not a usable entry".
        return None
    if _payload_digest([coloring, effective, requested], meta_json) != digest:
        return None
    try:
        meta = json.loads(meta_json)
    except ValueError:
        return None
    if meta.get("format") != _DISK_FORMAT_VERSION or meta.get("key") != key:
        return None
    return ColoringDecomposition(
        coloring_matrix=coloring,
        effective_covariance=effective,
        requested_covariance=requested,
        method=str(meta["method"]),
        was_repaired=bool(meta["was_repaired"]),
        negative_eigenvalue_count=int(meta["negative_eigenvalue_count"]),
        min_eigenvalue=float(meta["min_eigenvalue"]),
        extra=dict(meta.get("extra") or {}),
    )


class DecompositionCache:
    """Thread-safe two-tier (memory LRU + optional disk) decomposition cache.

    Parameters
    ----------
    maxsize:
        Maximum number of decompositions retained *in memory*.  ``0``
        disables the memory tier (useful as an explicit "no caching"
        baseline in benchmarks — and, combined with ``cache_dir``, yields a
        disk-only cache).
    cache_dir:
        Directory of the persistent disk tier, or ``None`` (default) for a
        memory-only cache.  Entries are spilled as
        ``<cache_dir>/decompositions/<key>.npz``; multiple processes may
        share one directory (writes are atomic, corrupt files read as
        misses).
    disk_max_bytes:
        LRU byte bound of the disk tier (least-recently-used files are
        removed once the total exceeds it).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.engine import DecompositionCache
    >>> cache = DecompositionCache(maxsize=8)
    >>> K = np.array([[1.0, 0.4], [0.4, 1.0]], dtype=complex)
    >>> first = cache.coloring_for(K)
    >>> second = cache.coloring_for(K)   # served from the cache
    >>> second is first
    True
    >>> cache.stats.hits, cache.stats.misses
    (1, 1)
    """

    def __init__(
        self,
        maxsize: int = 256,
        *,
        cache_dir: Union[None, str, Path] = None,
        disk_max_bytes: int = DEFAULT_DISK_MAX_BYTES,
    ) -> None:
        if maxsize < 0:
            raise ValueError(f"maxsize must be non-negative, got {maxsize}")
        if disk_max_bytes < 0:
            raise ValueError(
                f"disk_max_bytes must be non-negative, got {disk_max_bytes}"
            )
        self._maxsize = int(maxsize)
        self._entries: "OrderedDict[str, ColoringDecomposition]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._disk_hits = 0
        self._disk_misses = 0
        self._disk_evictions = 0
        self._disk_corruptions = 0
        self._disk_max_bytes = int(disk_max_bytes)
        self._disk_dir: Optional[Path] = None
        # Keys this instance will not spill again: known to be on disk, or a
        # spill already failed (an unwritable tier must not re-pay payload
        # serialization and hashing on every memory hit).  Memory hits on
        # keys outside this set spill lazily, so a cache warmed before
        # set_cache_dir still persists what it holds.  Reset whenever the
        # tier is (re)attached, so a new directory gets fresh attempts.
        self._no_spill: set = set()
        # Running byte total of the disk tier (None = unknown, recalibrated
        # by the next eviction pass), so stores do not re-scan the directory.
        self._disk_total: Optional[int] = None
        self.set_cache_dir(cache_dir)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def maxsize(self) -> int:
        """Maximum number of decompositions stored in memory."""
        return self._maxsize

    @property
    def cache_dir(self) -> Optional[Path]:
        """Root directory of the disk tier (``None`` when memory-only)."""
        with self._lock:
            return None if self._disk_dir is None else self._disk_dir.parent

    @property
    def disk_max_bytes(self) -> int:
        """Byte bound of the disk tier."""
        return self._disk_max_bytes

    @property
    def stats(self) -> CacheStats:
        """Snapshot of the per-tier hit/miss/eviction counters.

        Disk usage is measured by scanning the directory (outside the lock —
        stats are maintenance, lookups must not queue behind them), so the
        numbers reflect every process sharing the ``cache_dir``.
        """
        with self._lock:
            counters = dict(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                disk_hits=self._disk_hits,
                disk_misses=self._disk_misses,
                disk_evictions=self._disk_evictions,
                disk_corruptions=self._disk_corruptions,
            )
            disk_dir = self._disk_dir
        disk_entries = 0
        disk_bytes = 0
        for path in _disk_files(disk_dir):
            try:
                disk_bytes += path.stat().st_size
            except OSError:
                continue
            disk_entries += 1
        return CacheStats(
            disk_entries=disk_entries, disk_bytes=disk_bytes, **counters
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    # ------------------------------------------------------------------ #
    # Disk tier plumbing
    # ------------------------------------------------------------------ #
    def set_cache_dir(self, cache_dir: Union[None, str, Path]) -> None:
        """Attach (or detach, with ``None``) the persistent disk tier.

        Existing files under the directory become immediately visible as
        disk entries; counters are kept.  The process-wide default cache is
        configured this way by the CLI's ``--cache-dir`` option.
        """
        with self._lock:
            self._no_spill = set()
            self._disk_total = None
            if cache_dir is None:
                self._disk_dir = None
                return
            self._disk_dir = Path(cache_dir) / _DISK_SUBDIR

    def _disk_evict(self, disk_dir: Path) -> None:
        """Scan the tier, recalibrate the byte total, drop LRU files past the bound.

        Runs only when the running total is unknown or exceeds the bound —
        not on every store — so populating n entries costs O(n) stats
        overall instead of O(n^2).  The scan doubles as recalibration
        against other processes sharing the directory, and sweeps stale
        ``.tmp`` leftovers of writers that died mid-spill.  All filesystem
        work happens outside the lock (only the counter/bookkeeping update
        takes it), so memory-tier lookups never queue behind the scan.
        """
        files = []
        total = 0
        now = time.time()
        try:
            listing = list(disk_dir.iterdir()) if disk_dir.is_dir() else []
        except OSError:
            listing = []
        for path in listing:
            try:
                stat = path.stat()
            except OSError:
                continue
            if path.suffix == ".tmp":
                # An interrupted writer's temp file: invisible to lookups
                # and to the byte bound, so sweep it once it is clearly not
                # an in-flight write any more.
                if now - stat.st_mtime > _TMP_SWEEP_AGE_SECONDS:
                    try:
                        path.unlink()
                    except OSError:
                        pass
                continue
            if path.suffix != ".npz":
                continue
            files.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        evicted = []
        for _, size, path in sorted(files):
            if total <= self._disk_max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            evicted.append(path.stem)  # file name is the key
            total -= size
        with self._lock:
            if self._disk_dir != disk_dir:
                return  # tier detached or redirected while scanning
            for key in evicted:
                self._no_spill.discard(key)
            self._disk_evictions += len(evicted)
            self._disk_total = total

    def _disk_spill(
        self, key: str, decomposition: ColoringDecomposition, disk_dir: Path
    ) -> None:
        """Write one entry to disk (I/O outside the lock) and account for it.

        Concurrent spillers of the same key write identical bytes through
        atomic renames, so the race is benign; the byte total may then
        double-count briefly, which the next eviction scan recalibrates.
        A *failed* write also marks the key: an unusable tier degrades to
        memory-only caching instead of re-paying serialization and hashing
        on every subsequent hit (re-attaching the tier retries).
        """
        path = disk_dir / f"{key}.npz"
        written = _dump_entry(path, key, decomposition)
        size = 0
        if written:
            try:
                size = path.stat().st_size
            except OSError:
                pass
        needs_evict = False
        with self._lock:
            if self._disk_dir != disk_dir:
                return  # tier detached or redirected while writing
            self._no_spill.add(key)
            if written:
                if self._disk_total is not None:
                    self._disk_total += size
                needs_evict = (
                    self._disk_total is None
                    or self._disk_total > self._disk_max_bytes
                )
        if needs_evict:
            self._disk_evict(disk_dir)

    # ------------------------------------------------------------------ #
    # Core operations
    # ------------------------------------------------------------------ #
    def lookup(self, key: str) -> Optional[ColoringDecomposition]:
        """Return the cached decomposition for ``key`` or ``None`` (a miss).

        The memory tier is consulted first; on a memory miss with a
        configured ``cache_dir`` the disk tier is probed, verified, and —
        on success — promoted back into memory.  Hits refresh the entry's
        LRU position in both tiers; every outcome updates the counters.
        All disk I/O happens outside the cache lock, so threads served by
        the memory tier never queue behind another thread's file read.
        """
        with self._lock:
            entry = self._entries.get(key)
            disk_dir = self._disk_dir
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                needs_spill = disk_dir is not None and key not in self._no_spill
        if entry is not None:
            if needs_spill:
                # Entries that predate the disk tier (cache warmed before
                # set_cache_dir, or evicted disk files) spill on their next
                # memory hit, so attaching a cache_dir to a warm cache still
                # persists what it already holds.
                self._disk_spill(key, entry, disk_dir)
            return entry
        if disk_dir is None:
            with self._lock:
                self._misses += 1
            return None

        # Disk probe, load, and verification — all outside the lock.
        path = disk_dir / f"{key}.npz"
        present = path.exists()
        loaded = _load_entry(path, key) if present else None
        if loaded is None:
            if present:
                try:
                    path.unlink()  # quarantine the corrupt entry
                except OSError:
                    pass
            with self._lock:
                if present:
                    self._disk_corruptions += 1
                    if self._disk_dir == disk_dir:
                        self._no_spill.discard(key)
                        self._disk_total = None  # force recalibration
                self._disk_misses += 1
                self._misses += 1
            return None
        loaded = _freeze(loaded)
        try:
            os.utime(path)  # refresh the disk LRU position
        except OSError:
            pass
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                # Raced with a concurrent store/promotion of the same key:
                # keep handing out the already-shared object.
                self._entries.move_to_end(key)
                loaded = existing
            else:
                self._store_memory_locked(key, loaded)
            if self._disk_dir == disk_dir:
                # Guard against a concurrent set_cache_dir: the key is only
                # known to exist in the directory it was loaded from.
                self._no_spill.add(key)
            self._disk_hits += 1
            self._hits += 1
            return loaded

    def _store_memory_locked(
        self, key: str, decomposition: ColoringDecomposition
    ) -> None:
        if self._maxsize == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = decomposition
            return
        self._entries[key] = decomposition
        while len(self._entries) > self._maxsize:
            self._entries.popitem(last=False)
            self._evictions += 1

    def store(self, key: str, decomposition: ColoringDecomposition) -> None:
        """Insert (or refresh) a decomposition in every configured tier.

        The stored arrays that the pipeline computes itself (coloring
        matrix, effective covariance) are frozen read-only *before* any
        tier-specific early return: whether or not this cache retains the
        entry, callers receive the same immutable object a cache hit would
        hand out, so an in-place mutation fails loudly in every
        configuration instead of corrupting results in some.
        ``requested_covariance`` may alias the caller's own matrix, so it
        is left untouched.
        """
        decomposition = _freeze(decomposition)
        with self._lock:
            self._store_memory_locked(key, decomposition)
            disk_dir = self._disk_dir
            needs_spill = disk_dir is not None and key not in self._no_spill
        if needs_spill:
            self._disk_spill(key, decomposition, disk_dir)

    def coloring_for(
        self,
        matrix: np.ndarray,
        *,
        method: str = "eigen",
        psd_method: str = "clip",
        epsilon: float = 1e-6,
        defaults: NumericDefaults = DEFAULTS,
    ) -> ColoringDecomposition:
        """Return the coloring decomposition for ``matrix``, computing on miss.

        This is the single-matrix entry point used by
        :class:`repro.core.generator.RayleighFadingGenerator`; the batched
        compiler uses :meth:`lookup`/:meth:`store` directly so it can batch
        the misses into one stacked decomposition.
        """
        from ..core.coloring import compute_coloring

        key = decomposition_cache_key(
            matrix, method=method, psd_method=psd_method, epsilon=epsilon, defaults=defaults
        )
        cached = self.lookup(key)
        if cached is not None:
            return cached
        decomposition = compute_coloring(
            matrix, method=method, psd_method=psd_method, epsilon=epsilon, defaults=defaults
        )
        self.store(key, decomposition)
        return decomposition

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def clear(self) -> None:
        """Drop every decomposition stored in memory (counters are kept).

        The disk tier is untouched; use :meth:`clear_disk` (or the CLI's
        ``cache clear``) to remove persisted entries.
        """
        with self._lock:
            self._entries.clear()

    def clear_disk(self) -> int:
        """Remove every file of the disk tier (``.tmp`` leftovers included);
        returns the number of entries removed."""
        with self._lock:
            disk_dir = self._disk_dir
            removed = 0
            try:
                listing = (
                    list(disk_dir.iterdir())
                    if disk_dir is not None and disk_dir.is_dir()
                    else []
                )
            except OSError:
                listing = []
            for path in listing:
                if path.suffix not in (".npz", ".tmp"):
                    continue
                try:
                    path.unlink()
                except OSError:
                    continue
                if path.suffix == ".npz":
                    self._no_spill.discard(path.stem)
                    removed += 1
            self._disk_total = 0 if disk_dir is not None else None
            return removed

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters (entries are kept)."""
        with self._lock:
            self._hits = 0
            self._misses = 0
            self._evictions = 0
            self._disk_hits = 0
            self._disk_misses = 0
            self._disk_evictions = 0
            self._disk_corruptions = 0


#: Process-wide cache shared by the default engine and the generators
#: (created lazily so ``REPRO_CACHE_DIR`` is honored at first use).
_DEFAULT_CACHE: Optional[DecompositionCache] = None
_DEFAULT_CACHE_LOCK = threading.Lock()


def default_decomposition_cache() -> DecompositionCache:
    """The process-wide decomposition cache.

    Shared by :func:`repro.engine.default_engine` and by
    :class:`repro.core.generator.RayleighFadingGenerator` instances that are
    not given an explicit cache, so sweeps that construct many generators
    over repeated covariance matrices decompose each matrix once.  When the
    ``REPRO_CACHE_DIR`` environment variable is set at first use, the cache
    is created with that persistent disk tier attached (the CLI's
    ``--cache-dir`` attaches one explicitly via :meth:`DecompositionCache.set_cache_dir`).
    """
    global _DEFAULT_CACHE
    with _DEFAULT_CACHE_LOCK:
        if _DEFAULT_CACHE is None:
            _DEFAULT_CACHE = DecompositionCache(cache_dir=cache_dir_from_env())
        return _DEFAULT_CACHE
