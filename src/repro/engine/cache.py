"""Decomposition cache: content-addressed reuse of coloring decompositions.

Planning a correlated-fading simulation is dominated by the ``O(N^3)``
eigendecomposition (or Cholesky factorization) of the covariance matrix —
work that parameter sweeps repeat needlessly whenever two scenarios share a
covariance matrix (e.g. a Doppler sweep over a fixed antenna geometry, or a
Monte-Carlo grid that varies only seeds).  :class:`DecompositionCache` is a
thread-safe LRU cache of :class:`repro.linalg.ColoringDecomposition` objects
keyed by a *content hash* of the covariance matrix together with every
parameter that influences the decomposition (coloring method, PSD-forcing
method, epsilon, numeric tolerances).  Hit/miss/eviction counters are exposed
for the benchmark harness.

The cache has two tiers:

* an in-memory LRU (``maxsize`` entries), as before;
* an optional **disk tier** (``cache_dir``) that spills entries as ``.npz``
  files so repeated *processes* — CLI invocations, CI phases, process-pool
  workers — skip recomputation too.

The disk tier is one namespace (``decompositions/``) of the unified
:class:`repro.engine.store.ArtifactStore`, which owns the whole persistence
protocol — atomic write-then-rename, SHA-256 digest verification,
quarantine-on-corrupt, stale-file sweeping, per-tier counters, and LRU
byte-bounded eviction.  This module only says *what* a decomposition looks
like on disk (the dump/load pair below); a corrupt or truncated file is a
*miss*, never an error.

The cache stores the exact object the single-matrix
:func:`repro.core.coloring.compute_coloring` pipeline produces, and the disk
round-trip preserves every array bit-for-bit (``.npz`` stores the raw float
binary), so a cache hit — memory or disk — is bit-identical to a fresh
computation: generation results never depend on the cache state.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from ..config import DEFAULTS, NumericDefaults, cache_dir_from_env
from ..linalg import ColoringDecomposition
from .store import DEFAULT_DISK_MAX_BYTES, ArtifactStore

__all__ = [
    "decomposition_cache_key",
    "CacheStats",
    "DecompositionCache",
    "default_decomposition_cache",
    "DEFAULT_DISK_MAX_BYTES",
]

#: On-disk payload-layout version (bumped in PR 5: the store envelope
#: replaced the ad-hoc per-cache format, so pre-store files read as misses
#: instead of garbage).
_DISK_FORMAT_VERSION = 2


def decomposition_cache_key(
    matrix: np.ndarray,
    *,
    method: str = "eigen",
    psd_method: str = "clip",
    epsilon: float = 1e-6,
    defaults: NumericDefaults = DEFAULTS,
    cache_token: str = "numpy",
) -> str:
    """Content hash identifying one coloring-decomposition computation.

    Two calls receive the same key exactly when they would produce the same
    decomposition: the covariance matrix bytes (shape, dtype and C-order
    contents) and every algorithm parameter are folded into a SHA-256 digest.
    Floating-point matrices that differ in even one ULP hash differently —
    the cache never equates "close" matrices.

    ``cache_token`` namespaces the key by the linalg backend that computes
    the decomposition (:attr:`repro.engine.backends.LinalgBackend.cache_token`).
    Backends that are bit-identical to numpy share the default ``"numpy"``
    token — their decompositions are interchangeable bytes — while every
    other backend hashes under its own token so, e.g., a GPU decomposition
    is never served to a numpy run.  The same namespacing carries over to
    the disk tier: the key is the file name, so on-disk entries are
    backend-namespaced too.
    """
    arr = np.ascontiguousarray(np.asarray(matrix, dtype=complex))
    hasher = hashlib.sha256()
    hasher.update(repr((arr.shape, arr.dtype.str)).encode("utf8"))
    hasher.update(arr.tobytes())
    hasher.update(
        "|".join(
            (
                cache_token,
                method,
                psd_method,
                repr(float(epsilon)),
                repr(defaults.eig_clip_tol),
                repr(defaults.psd_tol),
                repr(defaults.hermitian_atol),
                repr(defaults.hermitian_rtol),
            )
        ).encode("utf8")
    )
    return hasher.hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of cache activity counters.

    Attributes
    ----------
    hits:
        Lookups that found a stored decomposition in *any* tier.
    misses:
        Lookups that found nothing (the caller computed and stored).
    evictions:
        In-memory entries dropped to respect ``maxsize``.
    size:
        Number of decompositions currently stored in memory.
    disk_hits:
        Lookups served by loading (and verifying) a disk entry after a
        memory miss.  ``hits - disk_hits`` is the memory-tier hit count.
    disk_misses:
        Disk-tier probes that found no usable entry (absent, corrupt, or
        failing digest verification).  Only counted while a ``cache_dir``
        is configured.
    disk_evictions:
        Disk entries removed to respect the disk byte bound.
    disk_corruptions:
        Disk entries rejected by digest/format verification (each one is
        also a ``disk_miss``; the file is quarantined).
    disk_entries:
        Files currently stored in the disk tier (0 without a ``cache_dir``).
    disk_bytes:
        Total size of those files in bytes.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    disk_hits: int = 0
    disk_misses: int = 0
    disk_evictions: int = 0
    disk_corruptions: int = 0
    disk_entries: int = 0
    disk_bytes: int = 0

    @property
    def memory_hits(self) -> int:
        """Lookups served from the in-memory tier."""
        return self.hits - self.disk_hits

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when never used)."""
        total = self.lookups
        return self.hits / total if total else 0.0


def _freeze(decomposition: ColoringDecomposition) -> ColoringDecomposition:
    """Make the pipeline-computed arrays of a decomposition read-only.

    Cached decompositions are shared between every generator built from the
    same matrix, and an in-place mutation through one of them would silently
    corrupt all the others.  ``requested_covariance`` may alias the caller's
    own matrix, so it is left untouched.
    """
    decomposition.coloring_matrix.flags.writeable = False
    decomposition.effective_covariance.flags.writeable = False
    return decomposition


def _dump_decomposition(
    decomposition: ColoringDecomposition,
) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Store payload of one decomposition: three arrays + diagnostics meta.

    A non-JSON-serializable ``extra`` dict makes the store's envelope
    serialization fail, which the store treats as "keep this entry
    memory-only" — exotic strategy diagnostics never fail the run.
    """
    arrays = {
        "coloring_matrix": np.ascontiguousarray(decomposition.coloring_matrix),
        "effective_covariance": np.ascontiguousarray(
            decomposition.effective_covariance
        ),
        "requested_covariance": np.ascontiguousarray(
            decomposition.requested_covariance
        ),
    }
    meta = {
        "method": decomposition.method,
        "was_repaired": bool(decomposition.was_repaired),
        "negative_eigenvalue_count": int(decomposition.negative_eigenvalue_count),
        "min_eigenvalue": float(decomposition.min_eigenvalue),
        "extra": decomposition.extra,
    }
    return arrays, meta


def _load_decomposition(
    arrays: Dict[str, np.ndarray], meta: Dict[str, Any]
) -> ColoringDecomposition:
    """Rebuild a decomposition from digest-verified store payload."""
    return ColoringDecomposition(
        coloring_matrix=arrays["coloring_matrix"],
        effective_covariance=arrays["effective_covariance"],
        requested_covariance=arrays["requested_covariance"],
        method=str(meta["method"]),
        was_repaired=bool(meta["was_repaired"]),
        negative_eigenvalue_count=int(meta["negative_eigenvalue_count"]),
        min_eigenvalue=float(meta["min_eigenvalue"]),
        extra=dict(meta.get("extra") or {}),
    )


class DecompositionCache:
    """Thread-safe two-tier (memory LRU + optional disk) decomposition cache.

    Parameters
    ----------
    maxsize:
        Maximum number of decompositions retained *in memory*.  ``0``
        disables the memory tier (useful as an explicit "no caching"
        baseline in benchmarks — and, combined with ``cache_dir``, yields a
        disk-only cache).
    cache_dir:
        Directory of the persistent disk tier, or ``None`` (default) for a
        memory-only cache.  Entries are spilled as
        ``<cache_dir>/decompositions/<key>.npz`` through the unified
        :class:`repro.engine.store.ArtifactStore`; multiple processes may
        share one directory (writes are atomic, corrupt files read as
        misses).
    disk_max_bytes:
        LRU byte bound of the disk tier (least-recently-used files are
        removed once the total exceeds it).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.engine import DecompositionCache
    >>> cache = DecompositionCache(maxsize=8)
    >>> K = np.array([[1.0, 0.4], [0.4, 1.0]], dtype=complex)
    >>> first = cache.coloring_for(K)
    >>> second = cache.coloring_for(K)   # served from the cache
    >>> second is first
    True
    >>> cache.stats.hits, cache.stats.misses
    (1, 1)
    """

    def __init__(
        self,
        maxsize: int = 256,
        *,
        cache_dir: Union[None, str, Path] = None,
        disk_max_bytes: int = DEFAULT_DISK_MAX_BYTES,
    ) -> None:
        if maxsize < 0:
            raise ValueError(f"maxsize must be non-negative, got {maxsize}")
        self._maxsize = int(maxsize)
        self._entries: "OrderedDict[str, ColoringDecomposition]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._store = ArtifactStore(
            "decompositions",
            dump=_dump_decomposition,
            load=_load_decomposition,
            cache_dir=cache_dir,
            format_version=_DISK_FORMAT_VERSION,
            max_bytes=disk_max_bytes,
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def maxsize(self) -> int:
        """Maximum number of decompositions stored in memory."""
        return self._maxsize

    @property
    def cache_dir(self) -> Optional[Path]:
        """Root directory of the disk tier (``None`` when memory-only)."""
        return self._store.cache_dir

    @property
    def disk_max_bytes(self) -> int:
        """Byte bound of the disk tier."""
        return self._store.max_bytes

    @property
    def artifact_store(self) -> ArtifactStore:
        """The underlying artifact store of the disk tier.

        (Named ``artifact_store`` because :meth:`store` is the insertion
        method of the cache itself.)
        """
        return self._store

    @property
    def stats(self) -> CacheStats:
        """Snapshot of the per-tier hit/miss/eviction counters.

        Disk usage is measured by scanning the directory (outside the cache
        lock — stats are maintenance, lookups must not queue behind them),
        so the numbers reflect every process sharing the ``cache_dir``.
        """
        with self._lock:
            counters = dict(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
            )
        disk = self._store.stats
        disk_entries, disk_bytes = self._store.usage()
        return CacheStats(
            disk_hits=disk.hits,
            disk_misses=disk.misses,
            disk_evictions=disk.evictions,
            disk_corruptions=disk.corruptions,
            disk_entries=disk_entries,
            disk_bytes=disk_bytes,
            **counters,
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    # ------------------------------------------------------------------ #
    # Disk tier plumbing
    # ------------------------------------------------------------------ #
    def set_cache_dir(self, cache_dir: Union[None, str, Path]) -> None:
        """Attach (or detach, with ``None``) the persistent disk tier.

        Existing files under the directory become immediately visible as
        disk entries; counters are kept.  The process-wide default cache is
        configured this way by the CLI's ``--cache-dir`` option.
        """
        self._store.set_cache_dir(cache_dir)

    # ------------------------------------------------------------------ #
    # Core operations
    # ------------------------------------------------------------------ #
    def lookup(self, key: str) -> Optional[ColoringDecomposition]:
        """Return the cached decomposition for ``key`` or ``None`` (a miss).

        The memory tier is consulted first; on a memory miss with a
        configured ``cache_dir`` the disk tier is probed, verified, and —
        on success — promoted back into memory.  Hits refresh the entry's
        LRU position in both tiers; every outcome updates the counters.
        All disk I/O happens outside the cache lock, so threads served by
        the memory tier never queue behind another thread's file read.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
        if entry is not None:
            if self._store.attached:
                # Entries that predate the disk tier (cache warmed before
                # set_cache_dir, or evicted disk files) spill on their next
                # memory hit, so attaching a cache_dir to a warm cache
                # still persists what it already holds; the store makes
                # repeat calls free for keys already persisted (or known
                # unwritable), and the guard keeps memory-only lookups off
                # the store lock entirely.
                self._store.put(key, entry)
            return entry

        loaded = self._store.lookup(key)
        if loaded is None:
            with self._lock:
                self._misses += 1
            return None
        loaded = _freeze(loaded)
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                # Raced with a concurrent store/promotion of the same key:
                # keep handing out the already-shared object.
                self._entries.move_to_end(key)
                loaded = existing
            else:
                self._store_memory_locked(key, loaded)
            self._hits += 1
            return loaded

    def _store_memory_locked(
        self, key: str, decomposition: ColoringDecomposition
    ) -> None:
        if self._maxsize == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = decomposition
            return
        self._entries[key] = decomposition
        while len(self._entries) > self._maxsize:
            self._entries.popitem(last=False)
            self._evictions += 1

    def store(self, key: str, decomposition: ColoringDecomposition) -> None:
        """Insert (or refresh) a decomposition in every configured tier.

        The stored arrays that the pipeline computes itself (coloring
        matrix, effective covariance) are frozen read-only *before* any
        tier-specific early return: whether or not this cache retains the
        entry, callers receive the same immutable object a cache hit would
        hand out, so an in-place mutation fails loudly in every
        configuration instead of corrupting results in some.
        ``requested_covariance`` may alias the caller's own matrix, so it
        is left untouched.
        """
        decomposition = _freeze(decomposition)
        with self._lock:
            self._store_memory_locked(key, decomposition)
        self._store.put(key, decomposition)

    def coloring_for(
        self,
        matrix: np.ndarray,
        *,
        method: str = "eigen",
        psd_method: str = "clip",
        epsilon: float = 1e-6,
        defaults: NumericDefaults = DEFAULTS,
    ) -> ColoringDecomposition:
        """Return the coloring decomposition for ``matrix``, computing on miss.

        This is the single-matrix entry point used by
        :class:`repro.core.generator.RayleighFadingGenerator`; the batched
        compiler uses :meth:`lookup`/:meth:`store` directly so it can batch
        the misses into one stacked decomposition.
        """
        from ..core.coloring import compute_coloring

        key = decomposition_cache_key(
            matrix, method=method, psd_method=psd_method, epsilon=epsilon, defaults=defaults
        )
        cached = self.lookup(key)
        if cached is not None:
            return cached
        decomposition = compute_coloring(
            matrix, method=method, psd_method=psd_method, epsilon=epsilon, defaults=defaults
        )
        self.store(key, decomposition)
        return decomposition

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def clear(self) -> None:
        """Drop every decomposition stored in memory (counters are kept).

        The disk tier is untouched; use :meth:`clear_disk` (or the CLI's
        ``cache clear``) to remove persisted entries.
        """
        with self._lock:
            self._entries.clear()

    def clear_disk(self) -> int:
        """Remove every file of the disk tier (``.tmp`` and quarantine
        leftovers included); returns the number of entries removed."""
        return self._store.clear()

    def disk_usage(self) -> Tuple[int, int]:
        """``(n_files, total_bytes)`` of the disk tier (``(0, 0)`` if none)."""
        return self._store.usage()

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters (entries are kept)."""
        with self._lock:
            self._hits = 0
            self._misses = 0
            self._evictions = 0
        self._store.reset_stats()


#: Process-wide cache shared by the default engine and the generators
#: (created lazily so ``REPRO_CACHE_DIR`` is honored at first use).
_DEFAULT_CACHE: Optional[DecompositionCache] = None
_DEFAULT_CACHE_LOCK = threading.Lock()


def default_decomposition_cache() -> DecompositionCache:
    """The process-wide decomposition cache.

    Shared by :func:`repro.engine.default_engine` and by
    :class:`repro.core.generator.RayleighFadingGenerator` instances that are
    not given an explicit cache, so sweeps that construct many generators
    over repeated covariance matrices decompose each matrix once.  When the
    ``REPRO_CACHE_DIR`` environment variable is set at first use, the cache
    is created with that persistent disk tier attached (the CLI's
    ``--cache-dir`` attaches one explicitly via :meth:`DecompositionCache.set_cache_dir`).
    """
    global _DEFAULT_CACHE
    with _DEFAULT_CACHE_LOCK:
        if _DEFAULT_CACHE is None:
            _DEFAULT_CACHE = DecompositionCache(cache_dir=cache_dir_from_env())
        return _DEFAULT_CACHE
