"""Decomposition cache: content-addressed reuse of coloring decompositions.

Planning a correlated-fading simulation is dominated by the ``O(N^3)``
eigendecomposition (or Cholesky factorization) of the covariance matrix —
work that parameter sweeps repeat needlessly whenever two scenarios share a
covariance matrix (e.g. a Doppler sweep over a fixed antenna geometry, or a
Monte-Carlo grid that varies only seeds).  :class:`DecompositionCache` is a
thread-safe LRU cache of :class:`repro.linalg.ColoringDecomposition` objects
keyed by a *content hash* of the covariance matrix together with every
parameter that influences the decomposition (coloring method, PSD-forcing
method, epsilon, numeric tolerances).  Hit/miss/eviction counters are exposed
for the benchmark harness.

The cache stores the exact object the single-matrix
:func:`repro.core.coloring.compute_coloring` pipeline produces, so a cache
hit is bit-identical to a fresh computation — generation results never depend
on the cache state.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..config import DEFAULTS, NumericDefaults
from ..linalg import ColoringDecomposition

__all__ = [
    "decomposition_cache_key",
    "CacheStats",
    "DecompositionCache",
    "default_decomposition_cache",
]


def decomposition_cache_key(
    matrix: np.ndarray,
    *,
    method: str = "eigen",
    psd_method: str = "clip",
    epsilon: float = 1e-6,
    defaults: NumericDefaults = DEFAULTS,
    cache_token: str = "numpy",
) -> str:
    """Content hash identifying one coloring-decomposition computation.

    Two calls receive the same key exactly when they would produce the same
    decomposition: the covariance matrix bytes (shape, dtype and C-order
    contents) and every algorithm parameter are folded into a SHA-256 digest.
    Floating-point matrices that differ in even one ULP hash differently —
    the cache never equates "close" matrices.

    ``cache_token`` namespaces the key by the linalg backend that computes
    the decomposition (:attr:`repro.engine.backends.LinalgBackend.cache_token`).
    Backends that are bit-identical to numpy share the default ``"numpy"``
    token — their decompositions are interchangeable bytes — while every
    other backend hashes under its own token so, e.g., a GPU decomposition
    is never served to a numpy run.
    """
    arr = np.ascontiguousarray(np.asarray(matrix, dtype=complex))
    hasher = hashlib.sha256()
    hasher.update(repr((arr.shape, arr.dtype.str)).encode("utf8"))
    hasher.update(arr.tobytes())
    hasher.update(
        "|".join(
            (
                cache_token,
                method,
                psd_method,
                repr(float(epsilon)),
                repr(defaults.eig_clip_tol),
                repr(defaults.psd_tol),
                repr(defaults.hermitian_atol),
                repr(defaults.hermitian_rtol),
            )
        ).encode("utf8")
    )
    return hasher.hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of cache activity counters.

    Attributes
    ----------
    hits:
        Lookups that found a stored decomposition.
    misses:
        Lookups that found nothing (the caller computed and stored).
    evictions:
        Entries dropped to respect ``maxsize``.
    size:
        Number of decompositions currently stored.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when never used)."""
        total = self.lookups
        return self.hits / total if total else 0.0


class DecompositionCache:
    """Thread-safe LRU cache of coloring decompositions.

    Parameters
    ----------
    maxsize:
        Maximum number of decompositions retained.  ``0`` disables storage
        entirely (every lookup misses) — useful as an explicit "no caching"
        baseline in benchmarks.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.engine import DecompositionCache
    >>> cache = DecompositionCache(maxsize=8)
    >>> K = np.array([[1.0, 0.4], [0.4, 1.0]], dtype=complex)
    >>> first = cache.coloring_for(K)
    >>> second = cache.coloring_for(K)   # served from the cache
    >>> second is first
    True
    >>> cache.stats.hits, cache.stats.misses
    (1, 1)
    """

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 0:
            raise ValueError(f"maxsize must be non-negative, got {maxsize}")
        self._maxsize = int(maxsize)
        self._entries: "OrderedDict[str, ColoringDecomposition]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def maxsize(self) -> int:
        """Maximum number of stored decompositions."""
        return self._maxsize

    @property
    def stats(self) -> CacheStats:
        """Snapshot of the hit/miss/eviction counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    # ------------------------------------------------------------------ #
    # Core operations
    # ------------------------------------------------------------------ #
    def lookup(self, key: str) -> Optional[ColoringDecomposition]:
        """Return the cached decomposition for ``key`` or ``None`` (a miss).

        A hit refreshes the entry's LRU position; both outcomes update the
        counters.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry

    def store(self, key: str, decomposition: ColoringDecomposition) -> None:
        """Insert (or refresh) a decomposition, evicting the LRU entry if full.

        The stored arrays that the pipeline computes itself (coloring matrix,
        effective covariance) are frozen read-only: cached decompositions are
        shared between every generator built from the same matrix, and an
        in-place mutation through one of them would silently corrupt all the
        others.  ``requested_covariance`` may alias the caller's own matrix,
        so it is left untouched.
        """
        if self._maxsize == 0:
            return
        decomposition.coloring_matrix.flags.writeable = False
        decomposition.effective_covariance.flags.writeable = False
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = decomposition
                return
            self._entries[key] = decomposition
            while len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1

    def coloring_for(
        self,
        matrix: np.ndarray,
        *,
        method: str = "eigen",
        psd_method: str = "clip",
        epsilon: float = 1e-6,
        defaults: NumericDefaults = DEFAULTS,
    ) -> ColoringDecomposition:
        """Return the coloring decomposition for ``matrix``, computing on miss.

        This is the single-matrix entry point used by
        :class:`repro.core.generator.RayleighFadingGenerator`; the batched
        compiler uses :meth:`lookup`/:meth:`store` directly so it can batch
        the misses into one stacked decomposition.
        """
        from ..core.coloring import compute_coloring

        key = decomposition_cache_key(
            matrix, method=method, psd_method=psd_method, epsilon=epsilon, defaults=defaults
        )
        cached = self.lookup(key)
        if cached is not None:
            return cached
        decomposition = compute_coloring(
            matrix, method=method, psd_method=psd_method, epsilon=epsilon, defaults=defaults
        )
        self.store(key, decomposition)
        return decomposition

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def clear(self) -> None:
        """Drop every stored decomposition (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters (entries are kept)."""
        with self._lock:
            self._hits = 0
            self._misses = 0
            self._evictions = 0


#: Process-wide cache shared by the default engine and the generators.
_DEFAULT_CACHE = DecompositionCache()


def default_decomposition_cache() -> DecompositionCache:
    """The process-wide decomposition cache.

    Shared by :func:`repro.engine.default_engine` and by
    :class:`repro.core.generator.RayleighFadingGenerator` instances that are
    not given an explicit cache, so sweeps that construct many generators
    over repeated covariance matrices decompose each matrix once.
    """
    return _DEFAULT_CACHE
