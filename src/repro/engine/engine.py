"""The simulation engine facade: plan → compile → execute in one object.

:class:`SimulationEngine` binds a decomposition cache and numeric defaults
to the compile/execute pipeline so callers can hold one engine for a whole
study and reuse decompositions across runs.  :func:`default_engine` returns
the process-wide engine backed by the shared cache — the instance the
one-call pipeline helpers (:mod:`repro.core.pipeline`) route through, which
makes the classic single-spec API the ``B = 1`` case of the batched one.
"""

from __future__ import annotations

from typing import Iterator, Optional, Union

from pathlib import Path

from ..config import DEFAULTS, NumericDefaults
from ..exceptions import SpecificationError
from .backends import BackendSpec, LinalgBackend, resolve_backend
from .cache import CacheStats, DecompositionCache, default_decomposition_cache
from .compile import CompiledPlan, compile_plan
from .execute import execute_plan, stream_plan
from .filters import DopplerFilterCache, default_filter_cache
from .plan import SimulationPlan
from .plancache import CompiledPlanCache, default_plan_cache
from .result import BatchResult

__all__ = ["SimulationEngine", "default_engine"]


class SimulationEngine:
    """Batched plan → compile → execute pipeline with decomposition caching.

    Parameters
    ----------
    cache:
        Decomposition cache consulted during compilation.  ``None`` uses the
        process-wide shared cache; pass ``DecompositionCache(maxsize=0)`` for
        a cache-less engine.
    defaults:
        Numeric tolerance bundle for the decomposition pipeline.
    backend:
        Linalg backend for the stacked decompositions and the coloring
        multiply — a registered name (``"numpy"``, ``"scipy"``, gated GPU
        backends), a :class:`repro.engine.backends.LinalgBackend` instance,
        or ``None`` for the numpy default.
    filter_cache:
        Young–Beaulieu filter cache for Doppler-mode compilation.  ``None``
        uses the process-wide shared cache.
    plan_cache:
        Compiled-plan cache (the executor-level tier of the artifact
        store): an in-memory LRU tier over a content-addressed disk tier,
        so repeated ``run(plan)`` on a warm engine re-binds without disk
        I/O.  When ``None``, the default follows ``cache``: a
        default-cache engine uses the process-wide plan cache (a no-op
        unless ``REPRO_CACHE_DIR`` attached a directory), while an explicit
        ``cache`` keeps the plan tier detached — an explicitly configured
        (e.g. memory-only) engine is never silently served by an
        env-attached ``plans/`` tier.  Pass a ``CompiledPlanCache``
        explicitly to combine the two.
    cache_dir:
        Convenience: build *private* persistent caches rooted at this
        directory (a :class:`DecompositionCache`, a
        :class:`repro.engine.filters.DopplerFilterCache`, and a
        :class:`repro.engine.plancache.CompiledPlanCache` with their disk
        tiers attached — the three namespaces of the unified artifact
        store).  Only valid when the corresponding explicit cache
        argument is ``None`` — pass caches constructed with ``cache_dir=``
        yourself to mix.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.engine import SimulationEngine, SimulationPlan
    >>> engine = SimulationEngine()
    >>> K = np.array([[1.0, 0.3], [0.3, 1.0]], dtype=complex)
    >>> plan = SimulationPlan.from_specs([K, 2 * K, 3 * K], seed=7)
    >>> result = engine.run(plan, n_samples=500)
    >>> [block.samples.shape for block in result.blocks]
    [(2, 500), (2, 500), (2, 500)]
    """

    def __init__(
        self,
        *,
        cache: Optional[DecompositionCache] = None,
        defaults: NumericDefaults = DEFAULTS,
        backend: BackendSpec = None,
        filter_cache: Optional[DopplerFilterCache] = None,
        plan_cache: Optional[CompiledPlanCache] = None,
        cache_dir: Union[None, str, Path] = None,
    ) -> None:
        if cache_dir is not None:
            if cache is not None or filter_cache is not None or plan_cache is not None:
                raise SpecificationError(
                    "cache_dir builds private persistent caches and conflicts "
                    "with an explicit cache/filter_cache/plan_cache; construct "
                    "the caches with cache_dir= yourself instead"
                )
            cache = DecompositionCache(cache_dir=cache_dir)
            filter_cache = DopplerFilterCache(cache_dir=cache_dir)
            plan_cache = CompiledPlanCache(cache_dir=cache_dir)
        if plan_cache is None:
            # The plan-tier default follows the decomposition cache: only a
            # default-cache engine picks up the (possibly env-attached)
            # process-wide plan cache.
            plan_cache = default_plan_cache() if cache is None else CompiledPlanCache()
        self._cache = default_decomposition_cache() if cache is None else cache
        self._filter_cache = (
            default_filter_cache() if filter_cache is None else filter_cache
        )
        self._plan_cache = plan_cache
        self._defaults = defaults
        self._backend = resolve_backend(backend)

    @property
    def cache(self) -> DecompositionCache:
        """The decomposition cache this engine compiles against."""
        return self._cache

    @property
    def filter_cache(self) -> DopplerFilterCache:
        """The Young–Beaulieu filter cache this engine compiles against."""
        return self._filter_cache

    @property
    def plan_cache(self) -> CompiledPlanCache:
        """The two-tier compiled-plan cache this engine compiles against."""
        return self._plan_cache

    @property
    def backend(self) -> LinalgBackend:
        """The linalg backend this engine compiles and executes on."""
        return self._backend

    @property
    def cache_stats(self) -> CacheStats:
        """Snapshot of the cache's hit/miss/eviction counters."""
        return self._cache.stats

    def compile(self, plan: SimulationPlan) -> CompiledPlan:
        """Compile a plan (stacked decompositions, cache dedup) for reuse."""
        return compile_plan(
            plan,
            cache=self._cache,
            defaults=self._defaults,
            backend=self._backend,
            filter_cache=self._filter_cache,
            plan_cache=self._plan_cache,
        )

    def _ensure_compiled(
        self, plan: Union[SimulationPlan, CompiledPlan]
    ) -> CompiledPlan:
        if isinstance(plan, CompiledPlan):
            return plan
        return self.compile(plan)

    def run(
        self,
        plan: Union[SimulationPlan, CompiledPlan],
        n_samples: int,
        *,
        measure_allocation: bool = False,
    ) -> BatchResult:
        """Compile (if necessary) and execute a plan in one call.

        With ``measure_allocation=True`` the execute pass is traced with
        :mod:`tracemalloc` and its peak allocation is reported in
        :attr:`repro.engine.result.BatchResult.peak_alloc_bytes`.
        """
        return execute_plan(
            self._ensure_compiled(plan),
            n_samples,
            measure_allocation=measure_allocation,
        )

    def stream(
        self,
        plan: Union[SimulationPlan, CompiledPlan],
        *,
        block_size: int,
        n_blocks: int,
    ) -> Iterator[BatchResult]:
        """Compile (if necessary) and stream fixed-size batched blocks."""
        return stream_plan(
            self._ensure_compiled(plan), block_size=block_size, n_blocks=n_blocks
        )


#: Process-wide engine bound to the shared decomposition cache.
_DEFAULT_ENGINE: Optional[SimulationEngine] = None


def default_engine() -> SimulationEngine:
    """The process-wide engine (shared decomposition cache, default tolerances)."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = SimulationEngine()
    return _DEFAULT_ENGINE
