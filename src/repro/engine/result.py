"""Result container for batched execution."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..exceptions import DimensionError
from ..types import EnvelopeBlock, GaussianBlock
from .compile import CompileReport

__all__ = ["BatchResult"]


@dataclass(frozen=True)
class BatchResult:
    """Samples for every entry of an executed plan.

    Attributes
    ----------
    blocks:
        One :class:`repro.types.GaussianBlock` per plan entry, in plan
        order.  Each block is bit-identical to what a standalone
        :class:`repro.core.generator.RayleighFadingGenerator` seeded with the
        entry's seed would produce.
    n_samples:
        Time samples per branch in this result.
    compile_report:
        Statistics of the compilation pass that produced the coloring
        matrices (cache hits/misses, dedup counts).
    execute_seconds:
        Wall-clock time of the execution pass.
    backend:
        Name of the linalg backend that compiled and executed the plan.
    peak_alloc_bytes:
        Peak memory allocated by the execute pass (tracemalloc), or ``None``
        when the run was not traced (``measure_allocation=False``, the
        default).
    """

    blocks: Tuple[GaussianBlock, ...]
    n_samples: int
    compile_report: CompileReport
    execute_seconds: float
    backend: str = "numpy"
    peak_alloc_bytes: Optional[int] = None

    @property
    def n_entries(self) -> int:
        """Number of plan entries in this result."""
        return len(self.blocks)

    def block(self, index: int) -> GaussianBlock:
        """The Gaussian block of the entry at ``index``."""
        return self.blocks[index]

    def envelopes(self) -> Tuple[EnvelopeBlock, ...]:
        """Rayleigh envelope blocks for every entry."""
        return tuple(block.envelopes() for block in self.blocks)

    def summary(self) -> str:
        """Human-readable run summary, including per-tier cache stats.

        One line per pipeline stage: what ran, on which backend, how the
        decomposition cache behaved for this run's compile pass (hits,
        misses, deduplicated entries), and — when the compilation was served
        whole from the compiled-plan cache — a line naming the tier that
        served it (memory or disk; in that case the decomposition counters
        are zero by construction: no per-matrix lookups ran at all).  Traced
        runs (``measure_allocation=True``) also report the execute pass's
        peak allocation.
        """
        report = self.compile_report
        lookups = report.cache_hits + report.cache_misses
        hit_rate = report.cache_hits / lookups if lookups else 0.0
        lines = [
            f"BatchResult: {self.n_entries} entries x {self.n_samples} samples "
            f"[backend={self.backend}]",
            f"  compile: {report.n_groups} groups, "
            f"{report.n_unique_matrices} unique matrices "
            f"({report.deduplicated} deduplicated), "
            f"{report.compile_seconds:.6f} s",
        ]
        if report.plan_cache_hits:
            memory = report.plan_memory_hits
            disk = report.plan_cache_hits - memory
            if memory and disk:
                source = f"{memory} memory tier / {disk} disk"
            elif memory:
                source = "memory tier"
            else:
                source = "disk"
            lines.append(
                f"  compiled-plan cache: {report.plan_cache_hits} hit(s) — "
                f"whole plan served from {source}, no decompositions computed"
            )
        lines.append(
            f"  decomposition cache: {report.cache_hits} hits / "
            f"{report.cache_misses} misses ({hit_rate:.1%} hit rate)"
        )
        if report.doppler_entries:
            # On a plan-cache hit nothing was constructed this pass — the
            # filters were restored from the artifact.
            resolved = "restored" if report.plan_cache_hits else "built"
            lines.append(
                f"  doppler filters: {report.doppler_filters_built} {resolved} / "
                f"{report.doppler_entries} entries served"
            )
        lines.append(f"  execute: {self.execute_seconds:.6f} s")
        if self.peak_alloc_bytes is not None:
            lines.append(
                f"  execute peak allocation: {self.peak_alloc_bytes} bytes "
                f"({self.peak_alloc_bytes / (1024 * 1024):.2f} MiB)"
            )
        return "\n".join(lines)

    def stacked_samples(self) -> np.ndarray:
        """All samples as one ``(B, N, n_samples)`` array.

        Only defined when every entry has the same number of branches.
        """
        shapes = {block.samples.shape for block in self.blocks}
        if len(shapes) != 1:
            raise DimensionError(
                f"entries have heterogeneous shapes {sorted(shapes)}; "
                "stacking requires a homogeneous plan"
            )
        return np.stack([block.samples for block in self.blocks])
