"""Result container for batched execution."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..exceptions import DimensionError
from ..types import EnvelopeBlock, GaussianBlock
from .compile import CompileReport

__all__ = ["BatchResult"]


@dataclass(frozen=True)
class BatchResult:
    """Samples for every entry of an executed plan.

    Attributes
    ----------
    blocks:
        One :class:`repro.types.GaussianBlock` per plan entry, in plan
        order.  Each block is bit-identical to what a standalone
        :class:`repro.core.generator.RayleighFadingGenerator` seeded with the
        entry's seed would produce.
    n_samples:
        Time samples per branch in this result.
    compile_report:
        Statistics of the compilation pass that produced the coloring
        matrices (cache hits/misses, dedup counts).
    execute_seconds:
        Wall-clock time of the execution pass.
    """

    blocks: Tuple[GaussianBlock, ...]
    n_samples: int
    compile_report: CompileReport
    execute_seconds: float

    @property
    def n_entries(self) -> int:
        """Number of plan entries in this result."""
        return len(self.blocks)

    def block(self, index: int) -> GaussianBlock:
        """The Gaussian block of the entry at ``index``."""
        return self.blocks[index]

    def envelopes(self) -> Tuple[EnvelopeBlock, ...]:
        """Rayleigh envelope blocks for every entry."""
        return tuple(block.envelopes() for block in self.blocks)

    def stacked_samples(self) -> np.ndarray:
        """All samples as one ``(B, N, n_samples)`` array.

        Only defined when every entry has the same number of branches.
        """
        shapes = {block.samples.shape for block in self.blocks}
        if len(shapes) != 1:
            raise DimensionError(
                f"entries have heterogeneous shapes {sorted(shapes)}; "
                "stacking requires a homogeneous plan"
            )
        return np.stack([block.samples for block in self.blocks])
