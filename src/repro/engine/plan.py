"""Simulation plans: declarative batches of covariance specifications.

A :class:`SimulationPlan` collects the covariance specifications of many
scenarios — a parameter sweep, a Monte-Carlo grid, a heterogeneous mix —
*before* any linear algebra runs.  Each :class:`PlanEntry` pairs one
:class:`repro.core.covariance.CovarianceSpec` with its own random seed and
algorithm options, so the batched engine can later reproduce exactly what a
loop of single-spec :class:`repro.core.generator.RayleighFadingGenerator`
instances would produce.

Entries may additionally carry a :class:`DopplerSpec`, in which case the
engine reproduces the Section 5 *real-time* algorithm instead of the
snapshot one: each branch's white samples are replaced by Young–Beaulieu
IDFT generator outputs (Doppler-shaped temporal correlation), and the
coloring step is normalized by the Eq. (19) filter-output variance.  For the
same per-entry seeds, a Doppler entry is bit-identical to a standalone
:class:`repro.core.realtime.RealTimeRayleighGenerator`.

Plans are the unit of work the engine compiles (:mod:`repro.engine.compile`)
and the unit the parallel layer partitions across processes
(:func:`repro.parallel.ensemble.run_plan_parallel`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.covariance import CovarianceSpec
from ..exceptions import SpecificationError
from ..models.fading import FadingLike, FadingSpec, coerce_fading
from ..types import SeedLike

__all__ = ["DopplerSpec", "FadingSpec", "PlanEntry", "SimulationPlan"]

_COLORING_METHODS = ("eigen", "cholesky", "svd")
_PSD_METHODS = ("clip", "epsilon", "higham")

#: What callers may pass wherever a Doppler mode is expected: a ready
#: :class:`DopplerSpec`, a bare normalized Doppler frequency (defaults for
#: everything else), or ``None`` for snapshot mode.
DopplerLike = Union[None, float, "DopplerSpec"]


@dataclass(frozen=True)
class DopplerSpec:
    """Doppler mode of one plan entry (the paper's Section 5 algorithm).

    Attributes
    ----------
    normalized_doppler:
        Normalized maximum Doppler frequency ``f_m = F_m / F_s`` in
        ``(0, 0.5)``.
    n_points:
        IDFT block length ``M``; samples are produced in multiples of ``M``
        and truncated to the requested count.  The paper uses 4096.
    input_variance_per_dim:
        Variance ``sigma_orig^2`` of the real Gaussian sequences at the
        Doppler-filter inputs (paper: 1/2).
    compensate_variance:
        If ``True`` (the paper's algorithm) the coloring step is normalized
        by the filter-output variance of Eq. (19); ``False`` reproduces the
        uncompensated defect of Sorooshyari & Daut [6].
    """

    normalized_doppler: float
    n_points: int = 4096
    input_variance_per_dim: float = 0.5
    compensate_variance: bool = True

    def __post_init__(self) -> None:
        from ..channels.doppler import validate_doppler_parameters

        # Raises DopplerError / FilterDesignError on invalid (M, f_m).
        validate_doppler_parameters(int(self.n_points), self.normalized_doppler)
        object.__setattr__(self, "n_points", int(self.n_points))
        object.__setattr__(self, "normalized_doppler", float(self.normalized_doppler))
        object.__setattr__(
            self, "input_variance_per_dim", float(self.input_variance_per_dim)
        )
        object.__setattr__(self, "compensate_variance", bool(self.compensate_variance))
        if (
            self.input_variance_per_dim <= 0
            or not np.isfinite(self.input_variance_per_dim)
        ):
            raise SpecificationError(
                "input_variance_per_dim must be positive and finite, got "
                f"{self.input_variance_per_dim!r}"
            )

    @property
    def filter_key(self) -> Tuple[int, float, float]:
        """Parameters determining the Doppler filter and its output variance.

        Entries sharing this key share one Young–Beaulieu filter build (the
        ``compensate_variance`` flag only affects the per-entry
        normalization, not the filter).
        """
        return (self.n_points, self.normalized_doppler, self.input_variance_per_dim)


def coerce_doppler(doppler: DopplerLike) -> Optional[DopplerSpec]:
    """Normalize a :data:`DopplerLike` value into an optional :class:`DopplerSpec`."""
    if doppler is None or isinstance(doppler, DopplerSpec):
        return doppler
    if isinstance(doppler, (int, float, np.floating)) and not isinstance(doppler, bool):
        return DopplerSpec(normalized_doppler=float(doppler))
    raise SpecificationError(
        "doppler must be None, a normalized Doppler frequency, or a DopplerSpec; "
        f"got {type(doppler).__name__}"
    )


@dataclass(frozen=True, eq=False)
class PlanEntry:
    """One scenario inside a :class:`SimulationPlan`.

    Entries compare (and hash) by identity: the spec holds numpy arrays, so
    an element-wise ``__eq__`` would raise on membership tests like
    ``entry in plan``.

    Attributes
    ----------
    spec:
        The covariance specification to realize.
    seed:
        Seed (or generator) for this entry's white-sample stream.  Feeding
        the same seed to a standalone
        :class:`repro.core.generator.RayleighFadingGenerator` yields
        bit-identical samples.
    coloring_method, psd_method, epsilon:
        Algorithm options, as accepted by
        :func:`repro.core.coloring.compute_coloring`.
    sample_variance:
        White-sample variance ``sigma_w^2`` (step 6 of the paper's
        algorithm); the default 1.0 matches the snapshot generator.  Doppler
        entries must leave it at 1.0 — their effective variance is the
        Eq. (19) filter-output variance, computed at compile time.
    doppler:
        Optional :class:`DopplerSpec` switching this entry to the Section 5
        real-time algorithm.  Feeding the same seed to a standalone
        :class:`repro.core.realtime.RealTimeRayleighGenerator` yields
        bit-identical samples.
    fading:
        Optional :class:`repro.models.fading.FadingSpec` selecting the
        post-coloring channel model (Rician, Nakagami-m, Weibull, optional
        log-normal shadowing).  ``None`` — including a trivial spec, which
        is collapsed to ``None`` — is the byte-identical Rayleigh fast
        path.  Composes with either generation mode (snapshot or Doppler).
    label:
        Optional caller-supplied identifier carried into result metadata.
    """

    spec: CovarianceSpec
    seed: SeedLike = None
    coloring_method: str = "eigen"
    psd_method: str = "clip"
    epsilon: float = 1e-6
    sample_variance: float = 1.0
    doppler: Optional[DopplerSpec] = None
    fading: Optional[FadingSpec] = None
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.spec, CovarianceSpec):
            raise SpecificationError(
                f"PlanEntry.spec must be a CovarianceSpec, got {type(self.spec).__name__}"
            )
        if self.coloring_method not in _COLORING_METHODS:
            raise SpecificationError(
                f"unknown coloring method {self.coloring_method!r}; "
                f"choose from {_COLORING_METHODS}"
            )
        if self.psd_method not in _PSD_METHODS:
            raise SpecificationError(
                f"unknown PSD forcing method {self.psd_method!r}; choose from {_PSD_METHODS}"
            )
        if self.epsilon <= 0 or not np.isfinite(self.epsilon):
            raise SpecificationError(
                f"epsilon must be positive and finite, got {self.epsilon!r}"
            )
        if self.sample_variance <= 0 or not np.isfinite(self.sample_variance):
            raise SpecificationError(
                f"sample_variance must be positive and finite, got {self.sample_variance!r}"
            )
        if self.doppler is not None:
            if not isinstance(self.doppler, DopplerSpec):
                raise SpecificationError(
                    f"PlanEntry.doppler must be a DopplerSpec or None, got "
                    f"{type(self.doppler).__name__}"
                )
            if self.sample_variance != 1.0:
                raise SpecificationError(
                    "Doppler entries determine their sample variance from the "
                    "Eq. (19) filter-output variance; leave sample_variance at 1.0 "
                    f"(got {self.sample_variance!r})"
                )
        if self.fading is not None:
            if not isinstance(self.fading, FadingSpec):
                raise SpecificationError(
                    f"PlanEntry.fading must be a FadingSpec or None, got "
                    f"{type(self.fading).__name__}"
                )
            if self.fading.is_trivial:
                # Plain Rayleigh without shadowing IS the default path;
                # collapsing keeps ``fading is None`` the single fast-path
                # test and the cache/group keys canonical.
                object.__setattr__(self, "fading", None)

    @property
    def n_branches(self) -> int:
        """Number of correlated branches of this entry."""
        return self.spec.n_branches

    def cache_key(self, defaults, cache_token: str = "numpy") -> str:
        """Content-hash cache key of this entry's decomposition (memoized).

        The entry is frozen and the library treats covariance matrices as
        immutable, so the hash is computed once per (tolerance bundle,
        backend cache token) and reused by subsequent compiles of the same
        plan object.  ``cache_token`` namespaces the key by the backend
        computing the decomposition (see
        :func:`repro.engine.cache.decomposition_cache_key`).
        """
        from .cache import decomposition_cache_key

        memo_key = (
            cache_token,
            defaults.eig_clip_tol,
            defaults.psd_tol,
            defaults.hermitian_atol,
            defaults.hermitian_rtol,
        )
        memo = self.__dict__.get("_cache_key_memo")
        if memo is None:
            memo = {}
            object.__setattr__(self, "_cache_key_memo", memo)
        key = memo.get(memo_key)
        if key is None:
            key = decomposition_cache_key(
                self.spec.matrix,
                method=self.coloring_method,
                psd_method=self.psd_method,
                epsilon=self.epsilon,
                defaults=defaults,
                cache_token=cache_token,
            )
            memo[memo_key] = key
        return key

    @property
    def group_key(
        self,
    ) -> Tuple[
        int,
        str,
        str,
        float,
        Optional[Tuple[int, float, float]],
        Optional[Tuple[str, bool]],
    ]:
        """Compilation group: entries sharing it stack into one batch.

        Doppler entries group by ``(N, M, f_m, sigma_orig^2)`` in addition to
        the algorithm options, so each group shares one Young–Beaulieu filter
        build and one stacked IDFT call; the ``compensate_variance`` flag is
        per-entry and does not split groups.  Entries also group by fading
        *family* (``(model, has_shadowing)``) so the executor applies one
        stacked transform per group; the shape parameters (K, m, k) and
        shadowing spreads are per-entry columns and do not split groups.
        """
        doppler_key = None if self.doppler is None else self.doppler.filter_key
        fading_key = None if self.fading is None else self.fading.family
        return (
            self.n_branches,
            self.coloring_method,
            self.psd_method,
            float(self.epsilon),
            doppler_key,
            fading_key,
        )

    def with_seed(self, seed: SeedLike) -> "PlanEntry":
        """Return a copy of this entry with a different seed."""
        return replace(self, seed=seed)


class SimulationPlan:
    """An ordered collection of scenarios to simulate as one batch.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import CovarianceSpec
    >>> from repro.engine import SimulationPlan, default_engine
    >>> plan = SimulationPlan()
    >>> for power in (0.5, 1.0, 2.0):
    ...     K = power * np.array([[1.0, 0.4], [0.4, 1.0]], dtype=complex)
    ...     _ = plan.add(K, seed=int(power * 10))
    >>> result = default_engine().run(plan, n_samples=1000)
    >>> result.blocks[0].samples.shape
    (2, 1000)
    """

    def __init__(self, entries: Iterable[PlanEntry] = ()) -> None:
        self._entries: List[PlanEntry] = []
        for entry in entries:
            if not isinstance(entry, PlanEntry):
                raise SpecificationError(
                    f"SimulationPlan entries must be PlanEntry objects, got "
                    f"{type(entry).__name__}"
                )
            self._entries.append(entry)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add(
        self,
        covariance: Union[CovarianceSpec, np.ndarray],
        *,
        seed: SeedLike = None,
        coloring_method: str = "eigen",
        psd_method: str = "clip",
        epsilon: float = 1e-6,
        sample_variance: float = 1.0,
        doppler: DopplerLike = None,
        fading: FadingLike = None,
        label: Optional[str] = None,
    ) -> int:
        """Append one scenario and return its plan index.

        ``covariance`` may be a :class:`CovarianceSpec` or a raw complex
        covariance matrix (branch powers read off the diagonal, as the
        generators do).  ``doppler`` may be a :class:`DopplerSpec`, a bare
        normalized Doppler frequency (defaults for block length and input
        variance), or ``None`` for snapshot mode.  ``fading`` may be a
        :class:`~repro.models.fading.FadingSpec`, a model name, a mapping
        (the JSON schema), or ``None`` for Rayleigh.
        """
        if not isinstance(covariance, CovarianceSpec):
            covariance = CovarianceSpec.from_covariance_matrix(
                np.asarray(covariance, dtype=complex)
            )
        entry = PlanEntry(
            spec=covariance,
            seed=seed,
            coloring_method=coloring_method,
            psd_method=psd_method,
            epsilon=epsilon,
            sample_variance=sample_variance,
            doppler=coerce_doppler(doppler),
            fading=coerce_fading(fading),
            label=label,
        )
        self._entries.append(entry)
        return len(self._entries) - 1

    def add_scenario(
        self,
        scenario: Any,
        gaussian_powers: np.ndarray,
        *,
        seed: SeedLike = None,
        coloring_method: str = "eigen",
        psd_method: str = "clip",
        epsilon: float = 1e-6,
        sample_variance: float = 1.0,
        doppler: DopplerLike = None,
        fading: FadingLike = None,
        label: Optional[str] = None,
    ) -> int:
        """Append a physical scenario (any object with ``covariance_spec``)."""
        if not hasattr(scenario, "covariance_spec"):
            raise SpecificationError(
                "scenario must expose a covariance_spec(gaussian_powers) method; got "
                f"{type(scenario).__name__}"
            )
        spec = scenario.covariance_spec(np.asarray(gaussian_powers, dtype=float))
        return self.add(
            spec,
            seed=seed,
            coloring_method=coloring_method,
            psd_method=psd_method,
            epsilon=epsilon,
            sample_variance=sample_variance,
            doppler=doppler,
            fading=fading,
            label=label,
        )

    @classmethod
    def from_specs(
        cls,
        specs: Sequence[Union[CovarianceSpec, np.ndarray]],
        *,
        seed: SeedLike = None,
        seeds: Optional[Sequence[SeedLike]] = None,
        coloring_method: str = "eigen",
        psd_method: str = "clip",
        epsilon: float = 1e-6,
        sample_variance: float = 1.0,
        doppler: DopplerLike = None,
        fading: FadingLike = None,
        labels: Optional[Sequence[Optional[str]]] = None,
    ) -> "SimulationPlan":
        """Build a plan from a sequence of specs with derived per-entry seeds.

        Parameters
        ----------
        specs:
            Covariance specs or raw matrices, one per entry.
        seed:
            Root seed; when given (and ``seeds`` is not), every entry
            receives an independent integer seed derived deterministically
            from it — mirroring
            :func:`repro.parallel.partition.build_worker_tasks`.
        seeds:
            Explicit per-entry seeds (overrides ``seed``); must match
            ``len(specs)``.
        doppler:
            Doppler mode applied to every entry (``None``, a normalized
            Doppler frequency, or a :class:`DopplerSpec`).
        fading:
            Fading model applied to every entry (``None``, a model name, a
            mapping, or a :class:`~repro.models.fading.FadingSpec`).
        """
        specs = list(specs)
        if seeds is not None:
            seeds = list(seeds)
            if len(seeds) != len(specs):
                raise SpecificationError(
                    f"seeds must have one entry per spec: got {len(seeds)} seeds "
                    f"for {len(specs)} specs"
                )
        elif seed is not None and specs:
            from ..random import spawn_rngs

            children = spawn_rngs(seed, len(specs))
            # Plain integer seeds keep entries picklable for process pools.
            seeds = [int(child.integers(0, np.iinfo(np.int64).max)) for child in children]
        else:
            seeds = [None] * len(specs)
        if labels is not None and len(labels) != len(specs):
            raise SpecificationError(
                f"labels must have one entry per spec: got {len(labels)} labels "
                f"for {len(specs)} specs"
            )
        plan = cls()
        doppler_spec = coerce_doppler(doppler)
        fading_spec = coerce_fading(fading)
        for index, spec in enumerate(specs):
            plan.add(
                spec,
                seed=seeds[index],
                coloring_method=coloring_method,
                psd_method=psd_method,
                epsilon=epsilon,
                sample_variance=sample_variance,
                doppler=doppler_spec,
                fading=fading_spec,
                label=None if labels is None else labels[index],
            )
        return plan

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def entries(self) -> Tuple[PlanEntry, ...]:
        """The plan entries, in insertion order."""
        return tuple(self._entries)

    @property
    def n_entries(self) -> int:
        """Number of scenarios in the plan."""
        return len(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[PlanEntry]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> PlanEntry:
        return self._entries[index]

    def group_sizes(self) -> Dict[Tuple, int]:
        """Entries per compilation group (diagnostic)."""
        sizes: Dict[Tuple, int] = {}
        for entry in self._entries:
            sizes[entry.group_key] = sizes.get(entry.group_key, 0) + 1
        return sizes

    # ------------------------------------------------------------------ #
    # Partitioning (for the parallel layer)
    # ------------------------------------------------------------------ #
    def partition(self, n_parts: int) -> List["SimulationPlan"]:
        """Split the plan into at most ``n_parts`` contiguous sub-plans.

        Entry order is preserved (sub-plan ``k`` holds a contiguous slice),
        counts differ by at most one, and empty sub-plans are dropped — the
        same contract as :func:`repro.parallel.partition.partition_counts`.
        """
        from ..parallel.partition import partition_counts

        counts = partition_counts(len(self._entries), n_parts)
        plans: List[SimulationPlan] = []
        cursor = 0
        for count in counts:
            if count == 0:
                continue
            plans.append(SimulationPlan(self._entries[cursor : cursor + count]))
            cursor += count
        return plans
