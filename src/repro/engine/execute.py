"""Plan execution: batched white-sample drawing and stacked coloring.

The execute step turns a :class:`repro.engine.compile.CompiledPlan` into
correlated samples:

* each entry draws its white complex Gaussian samples from its *own* seeded
  stream — exactly the stream a standalone
  :class:`repro.core.generator.RayleighFadingGenerator` would use, which is
  what makes batched and looped generation bit-identical;
* Doppler-mode entries replace the white draws with Young–Beaulieu IDFT
  branch streams: every branch of every entry in a group draws its Gaussian
  input sequences from its own spawned child stream (exactly the streams a
  standalone :class:`repro.core.realtime.RealTimeRayleighGenerator` would
  spawn), the group's shared filter weights all frequency-domain blocks, and
  one stacked ``(B·N·n_blocks, M)`` backend IDFT produces every time-domain
  block at once (:func:`repro.channels.idft_generator.batched_doppler_blocks`);
* each compiled group colors all of its entries with a single stacked
  ``matmul`` (one BLAS gufunc dispatch for the whole ``(B, N, n)`` batch),
  normalized per entry by the effective sample variance — for Doppler
  groups the Eq. (19) filter-output variance;
* long records stream through :func:`stream_plan` in fixed-size blocks with
  persistent per-entry generators, so memory stays bounded at one block.
  Doppler groups produce samples in multiples of the IDFT length ``M`` and
  buffer the remainder, so any ``block_size`` (and any ``n_samples`` not
  divisible by ``M``) works; the buffered leftover never exceeds ``M - 1``
  samples per branch.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional, Union

import numpy as np

from ..channels.idft_generator import batched_doppler_blocks
from ..exceptions import GenerationError
from ..random import complex_gaussian, ensure_rng, spawn_rngs
from ..types import GaussianBlock
from .compile import CompiledGroup, CompiledPlan
from .result import BatchResult

__all__ = ["execute_plan", "stream_plan"]


class _ExecutionState:
    """Per-execution random streams and Doppler sample buffers.

    One state object lives for the duration of an :func:`execute_plan` call
    or across every block of a :func:`stream_plan` iteration, so streams (and
    partially consumed Doppler IDFT blocks) persist exactly like the
    generators of a loop of standalone instances would.

    * ``streams[i]`` is the entry's generator (snapshot entries) or the list
      of its per-branch child generators (Doppler entries) — spawned from the
      entry seed exactly like ``RealTimeRayleighGenerator`` spawns its branch
      streams.
    * ``buffers[g]`` holds a Doppler group's colored-but-unconsumed samples
      as a ``(B, N, leftover)`` array (samples are produced in multiples of
      the IDFT length ``M``; requests need not be).
    """

    def __init__(self, compiled: CompiledPlan) -> None:
        self.streams: List[Union[np.random.Generator, List[np.random.Generator]]] = []
        for entry in compiled.plan:
            if entry.doppler is None:
                self.streams.append(ensure_rng(entry.seed))
            else:
                self.streams.append(
                    spawn_rngs(ensure_rng(entry.seed), entry.n_branches)
                )
        self.buffers: Dict[int, np.ndarray] = {}


def _doppler_colored_blocks(
    group: CompiledGroup,
    state: _ExecutionState,
    group_index: int,
    n_samples: int,
    backend,
) -> np.ndarray:
    """Colored Doppler samples ``(B, N, n_samples)`` for one group.

    Generates whole IDFT blocks (all entries and branches through one
    stacked backend IDFT), colors each fresh multi-block record with one
    stacked matmul, and serves the request from the group buffer so
    arbitrary ``n_samples`` compose into bit-identical continuous streams.
    """
    doppler = group.doppler
    m = doppler.n_points
    buffer = state.buffers.get(group_index)
    available = 0 if buffer is None else buffer.shape[2]
    missing = n_samples - available
    if missing > 0:
        n_blocks = -(-missing // m)  # ceil division
        branch_rngs = [
            rng for index in group.indices for rng in state.streams[index]
        ]
        white = batched_doppler_blocks(
            group.doppler_filter,
            branch_rngs,
            n_blocks=n_blocks,
            input_variance_per_dim=doppler.input_variance_per_dim,
            backend=backend,
        ).reshape(group.batch_size, group.n_branches, n_blocks * m)
        if backend is None:
            colored = np.matmul(group.coloring_stack, white)
        else:
            colored = backend.matmul(group.coloring_stack, white)
        colored /= np.sqrt(group.sample_variances)[:, np.newaxis, np.newaxis]
        buffer = (
            colored if buffer is None else np.concatenate([buffer, colored], axis=2)
        )
    out = buffer[:, :, :n_samples]
    state.buffers[group_index] = buffer[:, :, n_samples:]
    return out


def _generate_block(
    compiled: CompiledPlan, n_samples: int, state: _ExecutionState
) -> List[GaussianBlock]:
    """Draw and color one block of ``n_samples`` for every entry.

    ``state`` holds one random stream per plan entry (plan order) plus the
    Doppler group buffers; drawing advances them, which is what lets
    :func:`stream_plan` produce consecutive blocks from continuous streams.
    The IDFT and coloring multiplies run through the backend the plan was
    compiled with (numpy when ``None``).
    """
    backend = compiled.backend
    backend_name = "numpy" if backend is None else backend.name
    blocks: List[Optional[GaussianBlock]] = [None] * compiled.n_entries
    for group_index, group in enumerate(compiled.groups):
        batch_size = group.batch_size
        n_branches = group.n_branches
        if group.is_doppler:
            colored = _doppler_colored_blocks(
                group, state, group_index, n_samples, backend
            )
        else:
            white = np.empty((batch_size, n_branches, n_samples), dtype=complex)
            for position, (index, entry) in enumerate(zip(group.indices, group.entries)):
                complex_gaussian(
                    (n_branches, n_samples),
                    variance=entry.sample_variance,
                    rng=state.streams[index],
                    out=white[position],
                )
            # One stacked BLAS dispatch colors the whole group; slice results
            # are bit-identical to per-entry `L @ w`.
            if backend is None:
                colored = np.matmul(group.coloring_stack, white)
            else:
                colored = backend.matmul(group.coloring_stack, white)
            colored /= np.sqrt(group.sample_variances)[:, np.newaxis, np.newaxis]
        for position, (index, entry) in enumerate(zip(group.indices, group.entries)):
            decomposition = group.decompositions[position]
            if group.is_doppler:
                metadata = {
                    "method": "realtime",
                    "normalized_doppler": entry.doppler.normalized_doppler,
                    "n_points": entry.doppler.n_points,
                    "filter_output_variance": group.doppler_output_variance,
                    "compensate_variance": entry.doppler.compensate_variance,
                }
            else:
                metadata = {"method": "snapshot"}
            metadata.update(
                {
                    "coloring_method": decomposition.method,
                    "was_repaired": decomposition.was_repaired,
                    "engine": "batch",
                    "backend": backend_name,
                    "plan_index": index,
                    "batch_size": batch_size,
                }
            )
            if entry.label is not None:
                metadata["label"] = entry.label
            blocks[index] = GaussianBlock(
                samples=colored[position],
                variances=entry.spec.gaussian_variances.copy(),
                metadata=metadata,
            )
    return blocks  # type: ignore[return-value]


def execute_plan(compiled: CompiledPlan, n_samples: int) -> BatchResult:
    """Execute a compiled plan, producing ``n_samples`` per entry.

    Parameters
    ----------
    compiled:
        The compiled plan (see :func:`repro.engine.compile.compile_plan`).
    n_samples:
        Time samples per branch for every entry.  Doppler entries generate
        ``ceil(n_samples / M)`` IDFT blocks and truncate.

    Returns
    -------
    BatchResult
        Per-entry Gaussian blocks, bit-identical to looping
        ``RayleighFadingGenerator(entry.spec, rng=entry.seed).generate_gaussian(n_samples)``
        — or, for Doppler entries,
        ``RealTimeRayleighGenerator(...).generate_gaussian(ceil(n_samples / M))``
        truncated to ``n_samples`` — over the plan.  The guarantee holds
        regardless of how ``compiled`` was obtained: a fresh compile, any
        memory-cache configuration, or a whole-plan disk artifact all
        execute to the same bytes (the cache-transparency invariant; see
        ``docs/ARCHITECTURE.md``).
    """
    if n_samples < 1:
        raise GenerationError(f"n_samples must be >= 1, got {n_samples}")
    start = time.perf_counter()
    blocks = _generate_block(compiled, int(n_samples), _ExecutionState(compiled))
    return BatchResult(
        blocks=tuple(blocks),
        n_samples=int(n_samples),
        compile_report=compiled.report,
        execute_seconds=time.perf_counter() - start,
        backend="numpy" if compiled.backend is None else compiled.backend.name,
    )


def stream_plan(
    compiled: CompiledPlan,
    *,
    block_size: int,
    n_blocks: int,
) -> Iterator[BatchResult]:
    """Yield ``n_blocks`` consecutive batched blocks of ``block_size`` samples.

    Memory stays bounded at one ``(B, N, block_size)`` batch regardless of
    the record length (plus at most ``M - 1`` buffered samples per Doppler
    branch).  Per-entry generators persist across blocks, so concatenating
    the streamed blocks of an entry equals one long :func:`execute_plan`
    record cut into pieces — the streaming analogue of the batch/single
    equivalence guarantee, for any block size, divisible into the IDFT
    length or not.
    """
    if block_size < 1:
        raise GenerationError(f"block_size must be >= 1, got {block_size}")
    if n_blocks < 1:
        raise GenerationError(f"n_blocks must be >= 1, got {n_blocks}")
    state = _ExecutionState(compiled)
    backend_name = "numpy" if compiled.backend is None else compiled.backend.name
    for _ in range(int(n_blocks)):
        start = time.perf_counter()
        blocks = _generate_block(compiled, int(block_size), state)
        yield BatchResult(
            blocks=tuple(blocks),
            n_samples=int(block_size),
            compile_report=compiled.report,
            execute_seconds=time.perf_counter() - start,
            backend=backend_name,
        )
