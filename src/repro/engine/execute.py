"""Plan execution: batched white-sample drawing and stacked coloring.

The execute step turns a :class:`repro.engine.compile.CompiledPlan` into
correlated samples:

* each entry draws its white complex Gaussian samples from its *own* seeded
  stream — exactly the stream a standalone
  :class:`repro.core.generator.RayleighFadingGenerator` would use, which is
  what makes batched and looped generation bit-identical;
* Doppler-mode entries replace the white draws with Young–Beaulieu IDFT
  branch streams: every branch of every entry in a group draws its Gaussian
  input sequences from its own spawned child stream (exactly the streams a
  standalone :class:`repro.core.realtime.RealTimeRayleighGenerator` would
  spawn), the group's shared filter weights all frequency-domain blocks, and
  one stacked ``(B·N·n_blocks, M)`` backend IDFT produces every time-domain
  block at once (:func:`repro.channels.idft_generator.batched_doppler_blocks`);
* each compiled group colors all of its entries with a single stacked
  ``matmul`` (one BLAS gufunc dispatch for the whole ``(B, N, n)`` batch),
  normalized per entry by the effective sample variance — for Doppler
  groups the Eq. (19) filter-output variance;
* groups with a non-trivial fading model (see :mod:`repro.models.fading`)
  apply their post-coloring transform in place right after normalization —
  before any Doppler remainder is banked — through stacked per-group
  operands and state-owned scratch; ``entry.fading is None`` skips the
  seam entirely, keeping plain Rayleigh byte-identical to the
  pre-model-zoo fast path;
* long records stream through :func:`stream_plan` in fixed-size blocks with
  persistent per-entry generators, so memory stays bounded at one block.
  Doppler groups produce samples in multiples of the IDFT length ``M`` and
  keep the remainder in a fixed ``(B, N, M)`` ring buffer, so any
  ``block_size`` (and any ``n_samples`` not divisible by ``M``) works; the
  buffered leftover never exceeds ``M - 1`` samples per branch;
* the hot path is allocation-light: :class:`_ExecutionState` owns reusable
  scratch (Doppler kernel workspaces, snapshot white-draw buffers,
  normalization columns) that persists across streamed blocks, the IDFT
  runs in place, and the coloring matmul writes straight into the per-call
  record via the backend's ``matmul_into`` hook.  At most two block-sized
  buffers are live at any instant; only the records handed to callers are
  freshly allocated.
"""

from __future__ import annotations

# reprolint: hot-module — the fused execute kernels are allocation-light by
# contract; every deliberate allocation below is marked explicitly.

import time
import tracemalloc
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..channels.idft_generator import batched_doppler_blocks
from ..exceptions import GenerationError
from ..models.fading import FadingStacks, apply_fading_block, build_fading_stacks
from ..random import complex_gaussian, ensure_rng, spawn_rngs
from ..types import GaussianBlock
from .compile import CompiledGroup, CompiledPlan
from .result import BatchResult

__all__ = ["execute_plan", "stream_plan"]


class _DopplerLeftover:
    """Ring buffer for one Doppler group's colored-but-unconsumed samples.

    Capacity is one IDFT block ``(B, N, M)``: a refill generates whole
    blocks, the request consumes at least one sample past every complete
    block but the last, so the remainder is always ``<= M - 1`` samples per
    branch.  ``start``/``length`` track the live window; a refill resets
    ``start`` to 0, a consume advances it.  The buffer is allocated once per
    group and never grows — the old per-refill ``np.concatenate`` copy (and
    the reference it kept to the whole multi-block record) is gone.
    """

    __slots__ = ("data", "start", "length")

    def __init__(self, batch_size: int, n_branches: int, m: int) -> None:  # reprolint: workspace-constructor
        self.data = np.empty((batch_size, n_branches, m), dtype=np.complex128)
        self.start = 0
        self.length = 0


class _ExecutionState:
    """Per-execution random streams, Doppler buffers, and reusable scratch.

    One state object lives for the duration of an :func:`execute_plan` call
    or across every block of a :func:`stream_plan` iteration, so streams (and
    partially consumed Doppler IDFT blocks) persist exactly like the
    generators of a loop of standalone instances would.

    * ``streams[i]`` is the entry's generator (snapshot entries) or the list
      of its per-branch child generators (Doppler entries) — spawned from the
      entry seed exactly like ``RealTimeRayleighGenerator`` spawns its branch
      streams.
    * ``leftovers[g]`` is a Doppler group's :class:`_DopplerLeftover` ring
      buffer (samples are produced in multiples of the IDFT length ``M``;
      requests need not be).

    Scratch ownership: the state owns every reusable buffer of the execute
    hot path — the per-group Doppler kernel workspaces (the weighted /
    transformed block buffer), the per-group snapshot white-draw scratch,
    the flattened branch-generator lists, and the cached normalization
    columns.  Scratch is *internal*: arrays handed to callers
    (``GaussianBlock.samples``) always view freshly allocated per-call
    records, never scratch, so results stay valid after the state produces
    its next block.  Colored records are deliberately *not* pooled: the
    caller keeps views of them, so pooling would pin a second resident
    copy and raise the execute peak by a full block.
    """

    def __init__(self, compiled: CompiledPlan) -> None:
        self.streams: List[Union[np.random.Generator, List[np.random.Generator]]] = []
        for entry in compiled.plan:
            if entry.doppler is None:
                self.streams.append(ensure_rng(entry.seed))
            else:
                self.streams.append(
                    spawn_rngs(ensure_rng(entry.seed), entry.n_branches)
                )
        self.leftovers: Dict[int, _DopplerLeftover] = {}
        self._workspaces: Dict[int, dict] = {}
        self._white: Dict[int, np.ndarray] = {}
        self._branch_rngs: Dict[int, List[np.random.Generator]] = {}
        self._norms: Dict[int, np.ndarray] = {}
        self._fading: Dict[int, Optional[FadingStacks]] = {}
        self._fading_scratch: Dict[
            int, Tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = {}

    def workspace(self, group_index: int) -> dict:
        """The group's ``batched_doppler_blocks`` scratch dict."""
        return self._workspaces.setdefault(group_index, {})

    def branch_rngs(
        self, group_index: int, group: CompiledGroup
    ) -> List[np.random.Generator]:
        """The group's branch generators, flattened once in entry order."""
        rngs = self._branch_rngs.get(group_index)
        if rngs is None:
            rngs = [rng for index in group.indices for rng in self.streams[index]]
            self._branch_rngs[group_index] = rngs
        return rngs

    def norm(self, group_index: int, group: CompiledGroup) -> np.ndarray:
        """The group's ``sqrt(sample_variances)`` column, computed once."""
        norm = self._norms.get(group_index)
        if norm is None:
            norm = np.sqrt(group.sample_variances)[:, np.newaxis, np.newaxis]
            self._norms[group_index] = norm
        return norm

    def white_scratch(self, group_index: int, shape: Tuple[int, ...]) -> np.ndarray:  # reprolint: workspace-constructor
        """Reusable snapshot white-draw input ``(B, N, n_samples)``."""
        array = self._white.get(group_index)
        if array is None or array.shape != shape:
            array = np.empty(shape, dtype=np.complex128)
            self._white[group_index] = array
        return array

    def fading(
        self, group_index: int, group: CompiledGroup
    ) -> Optional[FadingStacks]:
        """The group's stacked fading operands (``None`` = Rayleigh path)."""
        try:
            return self._fading[group_index]
        except KeyError:
            stacks = build_fading_stacks(group.entries)
            self._fading[group_index] = stacks
            return stacks

    def fading_scratch(  # reprolint: workspace-constructor
        self, group_index: int, shape: Tuple[int, ...]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Reusable envelope/target/mask scratch for the envelope transforms.

        Re-checked on shape because Doppler requests vary in block length.
        """
        scratch = self._fading_scratch.get(group_index)
        if scratch is None or scratch[0].shape != shape:
            scratch = (
                np.empty(shape, dtype=np.float64),
                np.empty(shape, dtype=np.float64),
                np.empty(shape, dtype=np.bool_),
            )
            self._fading_scratch[group_index] = scratch
        return scratch


def _matmul_into(backend, a: np.ndarray, b: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Stacked coloring matmul written into ``out`` through the backend."""
    if backend is None:
        return np.matmul(a, b, out=out)
    return backend.matmul_into(a, b, out)


def _apply_fading(  # reprolint: hot-path
    state: _ExecutionState,
    group_index: int,
    group: CompiledGroup,
    colored: np.ndarray,
) -> None:
    """Apply the group's fading transform to ``colored`` in place.

    A no-op for plain Rayleigh groups (``stacks is None``), so the default
    path never pays for the seam.  Envelope transforms (Nakagami, Weibull)
    run through the state-owned float/mask scratch to keep the hot path
    allocation-free.
    """
    stacks = state.fading(group_index, group)
    if stacks is None:
        return
    if stacks.needs_scratch:
        envelope, target, positive = state.fading_scratch(
            group_index, colored.shape
        )
        apply_fading_block(colored, stacks, envelope, target, positive)
    else:
        apply_fading_block(colored, stacks)


def _doppler_colored_blocks(
    group: CompiledGroup,
    state: _ExecutionState,
    group_index: int,
    n_samples: int,
    backend,
) -> np.ndarray:
    """Colored Doppler samples ``(B, N, n_samples)`` for one group.

    Serves the request leftover-first from the group's ring buffer, then
    generates whole IDFT blocks (all entries and branches through one
    stacked backend IDFT in reused workspace), colors the fresh record
    with one stacked ``matmul_into`` into a fresh exact-size record, and
    banks the sub-block remainder in the ring — so arbitrary ``n_samples``
    compose into bit-identical continuous streams.  When the request
    starts block-aligned (no leftover) the caller gets a view of the
    colored record directly, zero copies; otherwise a fresh output is
    assembled from the ring prefix and the record.  The colored record is
    deliberately *not* reused scratch: the caller keeps views of it, and a
    second resident copy would raise the execute peak by a full block.
    """
    doppler = group.doppler
    m = doppler.n_points
    leftover = state.leftovers.get(group_index)
    taken = 0
    if leftover is not None and leftover.length:
        taken = min(leftover.length, n_samples)
    missing = n_samples - taken
    colored = None
    if missing > 0:
        n_blocks = -(-missing // m)  # ceil division
        fresh = batched_doppler_blocks(
            group.doppler_filter,
            state.branch_rngs(group_index, group),
            n_blocks=n_blocks,
            input_variance_per_dim=doppler.input_variance_per_dim,
            backend=backend,
            workspace=state.workspace(group_index),
        ).reshape(group.batch_size, group.n_branches, n_blocks * m)
        # reprolint: disable=hot-path-allocation (fresh result record: callers keep views of it)
        colored = np.empty_like(fresh)
        _matmul_into(backend, group.coloring_stack, fresh, colored)
        colored /= state.norm(group_index, group)
        # Fading applies before the remainder is banked, so the ring buffer
        # only ever holds finished samples and any block split reads the
        # same bytes as one long record.
        _apply_fading(state, group_index, group, colored)
    if taken == 0:
        out = colored[:, :, :n_samples]
    else:
        # reprolint: disable=hot-path-allocation (fresh result record: callers keep views of it)
        out = np.empty(
            (group.batch_size, group.n_branches, n_samples), dtype=np.complex128
        )
        stop = leftover.start + taken
        out[:, :, :taken] = leftover.data[:, :, leftover.start : stop]
        leftover.start = stop
        leftover.length -= taken
        if missing > 0:
            out[:, :, taken:] = colored[:, :, :missing]
    if missing > 0:
        remainder = colored.shape[2] - missing
        if remainder:
            # Lazily allocated: a block-aligned request never pays for it.
            if leftover is None:
                leftover = _DopplerLeftover(group.batch_size, group.n_branches, m)
                state.leftovers[group_index] = leftover
            leftover.data[:, :, :remainder] = colored[:, :, missing:]
            leftover.start = 0
            leftover.length = remainder
        elif leftover is not None:
            leftover.start = 0
            leftover.length = 0
    assert leftover is None or leftover.length <= m - 1
    return out


def _generate_block(
    compiled: CompiledPlan, n_samples: int, state: _ExecutionState
) -> List[GaussianBlock]:
    """Draw and color one block of ``n_samples`` for every entry.

    ``state`` holds one random stream per plan entry (plan order) plus the
    Doppler group buffers; drawing advances them, which is what lets
    :func:`stream_plan` produce consecutive blocks from continuous streams.
    The IDFT and coloring multiplies run through the backend the plan was
    compiled with (numpy when ``None``).
    """
    backend = compiled.backend
    backend_name = "numpy" if backend is None else backend.name
    blocks: List[Optional[GaussianBlock]] = [None] * compiled.n_entries
    for group_index, group in enumerate(compiled.groups):
        batch_size = group.batch_size
        n_branches = group.n_branches
        if group.is_doppler:
            colored = _doppler_colored_blocks(
                group, state, group_index, n_samples, backend
            )
        else:
            white = state.white_scratch(
                group_index, (batch_size, n_branches, n_samples)
            )
            for position, (index, entry) in enumerate(zip(group.indices, group.entries)):
                complex_gaussian(
                    (n_branches, n_samples),
                    variance=entry.sample_variance,
                    rng=state.streams[index],
                    out=white[position],
                )
            # One stacked BLAS dispatch colors the whole group into a fresh
            # exact-size result (callers keep views of it); slice results
            # are bit-identical to per-entry `L @ w`.
            # reprolint: disable=hot-path-allocation (fresh result record: callers keep views of it)
            colored = np.empty((batch_size, n_branches, n_samples), dtype=np.complex128)
            _matmul_into(backend, group.coloring_stack, white, colored)
            colored /= state.norm(group_index, group)
            _apply_fading(state, group_index, group, colored)
        for position, (index, entry) in enumerate(zip(group.indices, group.entries)):
            decomposition = group.decompositions[position]
            if group.is_doppler:
                metadata = {
                    "method": "realtime",
                    "normalized_doppler": entry.doppler.normalized_doppler,
                    "n_points": entry.doppler.n_points,
                    "filter_output_variance": group.doppler_output_variance,
                    "compensate_variance": entry.doppler.compensate_variance,
                }
            else:
                metadata = {"method": "snapshot"}
            metadata.update(
                {
                    "coloring_method": decomposition.method,
                    "was_repaired": decomposition.was_repaired,
                    "engine": "batch",
                    "backend": backend_name,
                    "plan_index": index,
                    "batch_size": batch_size,
                }
            )
            if entry.fading is not None:
                metadata["fading"] = {
                    "model": entry.fading.model,
                    "shape": entry.fading.shape,
                    "shadowing_sigma_db": entry.fading.shadowing_sigma_db,
                }
            if entry.label is not None:
                metadata["label"] = entry.label
            blocks[index] = GaussianBlock(
                samples=colored[position],
                variances=entry.spec.gaussian_variances.copy(),  # reprolint: disable=hot-path-allocation (tiny per-entry metadata copy, caller-owned)
                metadata=metadata,
            )
    return blocks  # type: ignore[return-value]


def execute_plan(
    compiled: CompiledPlan, n_samples: int, *, measure_allocation: bool = False
) -> BatchResult:
    """Execute a compiled plan, producing ``n_samples`` per entry.

    Parameters
    ----------
    compiled:
        The compiled plan (see :func:`repro.engine.compile.compile_plan`).
    n_samples:
        Time samples per branch for every entry.  Doppler entries generate
        ``ceil(n_samples / M)`` IDFT blocks and truncate.
    measure_allocation:
        Trace the execute step with :mod:`tracemalloc` and report its peak
        allocation in :attr:`BatchResult.peak_alloc_bytes`.  Tracing slows
        generation down noticeably; off by default.  When tracing is already
        active (e.g. an outer profiler), the peak counter is reset instead
        of restarted and tracing is left running.

    Returns
    -------
    BatchResult
        Per-entry Gaussian blocks, bit-identical to looping
        ``RayleighFadingGenerator(entry.spec, rng=entry.seed).generate_gaussian(n_samples)``
        — or, for Doppler entries,
        ``RealTimeRayleighGenerator(...).generate_gaussian(ceil(n_samples / M))``
        truncated to ``n_samples`` — over the plan.  The guarantee holds
        regardless of how ``compiled`` was obtained: a fresh compile, any
        memory-cache configuration, or a whole-plan disk artifact all
        execute to the same bytes (the cache-transparency invariant; see
        ``docs/ARCHITECTURE.md``).
    """
    if n_samples < 1:
        raise GenerationError(f"n_samples must be >= 1, got {n_samples}")
    start = time.perf_counter()
    peak: Optional[int] = None
    if measure_allocation:
        started_here = not tracemalloc.is_tracing()
        if started_here:
            tracemalloc.start()
        else:
            tracemalloc.reset_peak()
        try:
            blocks = _generate_block(compiled, int(n_samples), _ExecutionState(compiled))
            peak = tracemalloc.get_traced_memory()[1]
        finally:
            if started_here:
                tracemalloc.stop()
    else:
        blocks = _generate_block(compiled, int(n_samples), _ExecutionState(compiled))
    return BatchResult(
        blocks=tuple(blocks),
        n_samples=int(n_samples),
        compile_report=compiled.report,
        execute_seconds=time.perf_counter() - start,
        backend="numpy" if compiled.backend is None else compiled.backend.name,
        peak_alloc_bytes=peak,
    )


def stream_plan(
    compiled: CompiledPlan,
    *,
    block_size: int,
    n_blocks: int,
) -> Iterator[BatchResult]:
    """Yield ``n_blocks`` consecutive batched blocks of ``block_size`` samples.

    Memory stays bounded at one ``(B, N, block_size)`` batch regardless of
    the record length (plus at most ``M - 1`` buffered samples per Doppler
    branch).  Per-entry generators persist across blocks, so concatenating
    the streamed blocks of an entry equals one long :func:`execute_plan`
    record cut into pieces — the streaming analogue of the batch/single
    equivalence guarantee, for any block size, divisible into the IDFT
    length or not.
    """
    if block_size < 1:
        raise GenerationError(f"block_size must be >= 1, got {block_size}")
    if n_blocks < 1:
        raise GenerationError(f"n_blocks must be >= 1, got {n_blocks}")
    state = _ExecutionState(compiled)
    backend_name = "numpy" if compiled.backend is None else compiled.backend.name
    for _ in range(int(n_blocks)):
        start = time.perf_counter()
        blocks = _generate_block(compiled, int(block_size), state)
        yield BatchResult(
            blocks=tuple(blocks),
            n_samples=int(block_size),
            compile_report=compiled.report,
            execute_seconds=time.perf_counter() - start,
            backend=backend_name,
        )
