"""Plan execution: batched white-sample drawing and stacked coloring.

The execute step turns a :class:`repro.engine.compile.CompiledPlan` into
correlated samples:

* each entry draws its white complex Gaussian samples from its *own* seeded
  stream — exactly the stream a standalone
  :class:`repro.core.generator.RayleighFadingGenerator` would use, which is
  what makes batched and looped generation bit-identical;
* each compiled group colors all of its entries with a single stacked
  ``np.matmul`` (one BLAS gufunc dispatch for the whole ``(B, N, n)``
  batch);
* long records stream through :func:`stream_plan` in fixed-size blocks with
  persistent per-entry generators, so memory stays bounded at one block.
"""

from __future__ import annotations

import time
from typing import Iterator, List, Optional

import numpy as np

from ..exceptions import GenerationError
from ..random import complex_gaussian, ensure_rng
from ..types import GaussianBlock
from .compile import CompiledPlan
from .result import BatchResult

__all__ = ["execute_plan", "stream_plan"]


def _generate_block(
    compiled: CompiledPlan, n_samples: int, rngs: List[np.random.Generator]
) -> List[GaussianBlock]:
    """Draw and color one block of ``n_samples`` for every entry.

    ``rngs`` holds one generator per plan entry (plan order); drawing
    advances them, which is what lets :func:`stream_plan` produce
    consecutive blocks from continuous streams.  The coloring multiply runs
    through the backend the plan was compiled with (numpy when ``None``).
    """
    backend = compiled.backend
    backend_name = "numpy" if backend is None else backend.name
    blocks: List[Optional[GaussianBlock]] = [None] * compiled.n_entries
    for group in compiled.groups:
        batch_size = group.batch_size
        n_branches = group.n_branches
        white = np.empty((batch_size, n_branches, n_samples), dtype=complex)
        for position, (index, entry) in enumerate(zip(group.indices, group.entries)):
            complex_gaussian(
                (n_branches, n_samples),
                variance=entry.sample_variance,
                rng=rngs[index],
                out=white[position],
            )
        # One stacked BLAS dispatch colors the whole group; slice results are
        # bit-identical to per-entry `L @ w`.
        if backend is None:
            colored = np.matmul(group.coloring_stack, white)
        else:
            colored = backend.matmul(group.coloring_stack, white)
        colored /= np.sqrt(group.sample_variances)[:, np.newaxis, np.newaxis]
        for position, (index, entry) in enumerate(zip(group.indices, group.entries)):
            decomposition = group.decompositions[position]
            metadata = {
                "method": "snapshot",
                "coloring_method": decomposition.method,
                "was_repaired": decomposition.was_repaired,
                "engine": "batch",
                "backend": backend_name,
                "plan_index": index,
                "batch_size": batch_size,
            }
            if entry.label is not None:
                metadata["label"] = entry.label
            blocks[index] = GaussianBlock(
                samples=colored[position],
                variances=entry.spec.gaussian_variances.copy(),
                metadata=metadata,
            )
    return blocks  # type: ignore[return-value]


def _entry_rngs(compiled: CompiledPlan) -> List[np.random.Generator]:
    """One independent generator per plan entry, from the entries' seeds."""
    return [ensure_rng(entry.seed) for entry in compiled.plan]


def execute_plan(compiled: CompiledPlan, n_samples: int) -> BatchResult:
    """Execute a compiled plan, producing ``n_samples`` per entry.

    Parameters
    ----------
    compiled:
        The compiled plan (see :func:`repro.engine.compile.compile_plan`).
    n_samples:
        Time samples per branch for every entry.

    Returns
    -------
    BatchResult
        Per-entry Gaussian blocks, bit-identical to looping
        ``RayleighFadingGenerator(entry.spec, rng=entry.seed).generate_gaussian(n_samples)``
        over the plan.
    """
    if n_samples < 1:
        raise GenerationError(f"n_samples must be >= 1, got {n_samples}")
    start = time.perf_counter()
    blocks = _generate_block(compiled, int(n_samples), _entry_rngs(compiled))
    return BatchResult(
        blocks=tuple(blocks),
        n_samples=int(n_samples),
        compile_report=compiled.report,
        execute_seconds=time.perf_counter() - start,
        backend="numpy" if compiled.backend is None else compiled.backend.name,
    )


def stream_plan(
    compiled: CompiledPlan,
    *,
    block_size: int,
    n_blocks: int,
) -> Iterator[BatchResult]:
    """Yield ``n_blocks`` consecutive batched blocks of ``block_size`` samples.

    Memory stays bounded at one ``(B, N, block_size)`` batch regardless of
    the record length.  Per-entry generators persist across blocks, so
    concatenating the streamed blocks of an entry equals calling
    ``generate_gaussian(block_size)`` repeatedly on one standalone generator
    seeded with the entry's seed — the streaming analogue of the
    batch/single equivalence guarantee.
    """
    if block_size < 1:
        raise GenerationError(f"block_size must be >= 1, got {block_size}")
    if n_blocks < 1:
        raise GenerationError(f"n_blocks must be >= 1, got {n_blocks}")
    rngs = _entry_rngs(compiled)
    backend_name = "numpy" if compiled.backend is None else compiled.backend.name
    for _ in range(int(n_blocks)):
        start = time.perf_counter()
        blocks = _generate_block(compiled, int(block_size), rngs)
        yield BatchResult(
            blocks=tuple(blocks),
            n_samples=int(block_size),
            compile_report=compiled.report,
            execute_seconds=time.perf_counter() - start,
            backend=backend_name,
        )
