"""The unified artifact store: one disk-tier implementation for every cache.

PR 4 gave both expensive compile artifacts — coloring decompositions and
Young–Beaulieu Doppler filters — a persistent disk tier, but each cache
carried its own copy of the protocol: atomic write-then-rename, SHA-256
digest verification, quarantine of corrupt entries, sweeping of stale
temporary files, and LRU byte-bounded eviction.  :class:`ArtifactStore` is
that protocol extracted once, parameterized by payload *dump/load*
callbacks, so :class:`repro.engine.cache.DecompositionCache`,
:class:`repro.engine.filters.DopplerFilterCache`, and the compiled-plan
cache (:mod:`repro.engine.plancache`) are thin clients and a format or
fsync change lands in exactly one place.

Layout and protocol
-------------------
Each store owns one *namespace* sub-directory of a shared ``cache_dir``
(``decompositions/``, ``filters/``, ``plans/``); several processes may share
one directory.  Entries are ``<namespace>/<key>.npz`` archives holding the
client's named arrays plus two reserved members:

* ``__meta__`` — a JSON envelope ``{format, namespace, key, meta}`` where
  ``meta`` is the client's JSON-serializable metadata;
* ``__digest__`` — a SHA-256 over the array names, shapes, dtypes and raw
  bytes together with the envelope, re-verified on every load.

The write path is *atomic*: payloads are serialized into a ``.tmp`` file
created with :func:`tempfile.mkstemp` in the destination directory and
published with :func:`os.replace`, so a concurrent reader (another process
sharing the ``cache_dir``) never observes a half-written entry.  Concurrent
writers of the same key write identical bytes, so that race is benign.

The read path *never raises* on bad data: a truncated archive, non-npz
garbage, a missing member, a namespace/format/key mismatch, a digest
mismatch, or a client ``load`` rejection all count as a **miss**.  The
offending file is *quarantined* — renamed to ``<key>.quarantine`` so the
next lookup is a clean miss and the re-spilled entry does not fight the
corrupt bytes — and the corruption counter increments.  Quarantine files
are kept briefly for postmortem inspection and swept once stale (they are
age-bounded exactly like orphaned ``.tmp`` files), so repeated corruption
cannot grow a ``cache_dir`` without bound; the sweep runs when a store
opens a directory and piggybacks on eviction passes.

The tier is LRU-bounded by total ``.npz`` bytes (``max_bytes``): file
mtimes order the entries, hits refresh them via :func:`os.utime`, and an
eviction pass drops least-recently-used files once the running total
exceeds the bound.  The running total is maintained incrementally and
recalibrated by directory scans, so populating *n* entries costs ``O(n)``
stat calls overall rather than ``O(n^2)``.

Eviction passes are coordinated *across processes* by an advisory file
lock (``.evict.lock`` per namespace): readers hold it shared around each
entry load, eviction passes hold it exclusive (non-blocking — a contended
pass is skipped, someone else is already evicting), so workers hammering
one shared ``cache_dir`` (the sharded sweep runner, :mod:`repro.shard`)
never observe an artifact unlinked mid-read.  The lock is best-effort
coordination: without :mod:`fcntl` the store runs uncoordinated and a
lost race stays what it always was — a quarantine-or-miss, never an
error.

All filesystem I/O happens outside the store lock — only counter and
bookkeeping updates take it — so a client's memory-tier lookups never queue
behind another thread's file read.  An unusable directory (a regular file
in the way, no permission, a full disk) degrades the client to memory-only
caching, never an error, and failed spills are remembered per key so an
unwritable tier does not re-pay serialization on every subsequent hit.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

try:  # pragma: no cover - always present on POSIX
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "ArtifactStore",
    "StoreStats",
    "DEFAULT_DISK_MAX_BYTES",
    "TMP_SWEEP_AGE_SECONDS",
]

#: Default byte bound of one store's disk tier.
DEFAULT_DISK_MAX_BYTES = 512 * 1024 * 1024

#: Age after which an orphaned ``.tmp`` file (a writer died between
#: ``mkstemp`` and the atomic rename) or a ``.quarantine`` file (corrupt
#: bytes kept for postmortem) is swept; old enough that no live writer can
#: still be producing the former, and long enough that the latter can still
#: be inspected after a failure.
TMP_SWEEP_AGE_SECONDS = 3600.0

#: Reserved ``.npz`` member names; client array names must not use them.
_META_MEMBER = "__meta__"
_DIGEST_MEMBER = "__digest__"

#: Name of the per-namespace advisory lock file coordinating eviction
#: passes with readers across processes (not an entry: no ``.npz`` suffix,
#: so it is invisible to lookups and usage scans; ``clear`` removes it
#: along with everything else).
_EVICTION_LOCK_NAME = ".evict.lock"


@contextmanager
def _advisory_lock(
    disk_dir: Path, *, exclusive: bool, blocking: bool = True
) -> Iterator[bool]:
    """Advisory file lock over one namespace directory; yields *acquired*.

    Readers take the lock shared around a single entry load; eviction
    passes take it exclusive (non-blocking — a contended pass is simply
    skipped, another process is already evicting), so a concurrent worker
    sharing the ``cache_dir`` never unlinks an artifact mid-read.  This is
    coordination, not correctness: on a platform without :mod:`fcntl`, or
    when the lock file cannot be opened, the caller proceeds uncoordinated
    and a racing eviction degrades the read to a quarantine-or-miss, never
    an error.  A worker killed while holding the lock releases it with its
    file descriptors, so crashed shards cannot wedge the shared store.
    """
    if fcntl is None or not disk_dir.is_dir():
        yield True
        return
    try:
        fd = os.open(
            str(disk_dir / _EVICTION_LOCK_NAME),
            os.O_RDWR | os.O_CREAT,
            0o644,
        )
    except OSError:
        yield True
        return
    acquired = False
    try:
        flags = fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH
        if not blocking:
            flags |= fcntl.LOCK_NB
        try:
            fcntl.flock(fd, flags)
            acquired = True
        except OSError:
            pass
        yield acquired
    finally:
        if acquired:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            except OSError:
                pass
        os.close(fd)

#: ``dump(payload) -> (arrays, meta) | None``: split a payload into named
#: arrays plus JSON-serializable metadata, or ``None`` when the payload
#: cannot be persisted (the entry then stays memory-only).
DumpFn = Callable[[Any], Optional[Tuple[Dict[str, np.ndarray], Dict[str, Any]]]]

#: ``load(arrays, meta) -> payload | None``: rebuild a payload from
#: digest-verified arrays and metadata; ``None`` (or any exception) marks
#: the entry corrupt.
LoadFn = Callable[[Dict[str, np.ndarray], Dict[str, Any]], Optional[Any]]


@dataclass(frozen=True)
class StoreStats:
    """Immutable snapshot of one store's activity counters.

    Attributes
    ----------
    hits:
        Lookups served by loading (and digest-verifying) a disk entry.
    misses:
        Probes that found no usable entry — absent, corrupt, or rejected by
        verification.  Only counted while a ``cache_dir`` is attached.
    corruptions:
        Entries rejected by verification (each one is also a miss; the file
        is quarantined).
    evictions:
        Entries removed to respect the byte bound.
    """

    hits: int = 0
    misses: int = 0
    corruptions: int = 0
    evictions: int = 0


class ArtifactStore:
    """One namespace of the persistent artifact cache (see the module docs).

    Parameters
    ----------
    namespace:
        Sub-directory of ``cache_dir`` this store owns (``decompositions``,
        ``filters``, ``plans``).  The namespace is folded into every entry's
        digest envelope, so an archive copied between namespaces reads as a
        miss instead of garbage.
    dump, load:
        The payload serialization pair (see :data:`DumpFn` / :data:`LoadFn`).
        Everything else — atomicity, digests, quarantine, eviction — is the
        store's job.
    cache_dir:
        Root of the shared artifact cache, or ``None`` (the default) for a
        detached store: lookups miss silently and spills are dropped, so
        clients need no "is there a disk tier?" branching.
    format_version:
        Client payload-layout version, embedded in the envelope; entries
        written by other versions read as misses rather than garbage.
    max_bytes:
        LRU byte bound of this namespace.
    """

    def __init__(
        self,
        namespace: str,
        *,
        dump: DumpFn,
        load: LoadFn,
        cache_dir: Union[None, str, Path] = None,
        format_version: int = 1,
        max_bytes: int = DEFAULT_DISK_MAX_BYTES,
    ) -> None:
        if not namespace or "/" in namespace or namespace.startswith("."):
            raise ValueError(f"invalid store namespace {namespace!r}")
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be non-negative, got {max_bytes}")
        self._namespace = namespace
        self._dump = dump
        self._load = load
        self._format_version = int(format_version)
        self._max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._corruptions = 0
        self._evictions = 0
        self._dir: Optional[Path] = None
        # Keys this store will not spill again: known to be on disk, or a
        # spill already failed (an unwritable tier must not re-pay payload
        # serialization and hashing on every memory hit of the client).
        # Reset whenever the tier is (re)attached, so a new directory gets
        # fresh attempts.
        self._no_spill: set = set()
        # Running byte total of the tier (None = unknown, recalibrated by
        # the next eviction pass), so spills do not re-scan the directory.
        self._total: Optional[int] = None
        self.set_cache_dir(cache_dir)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def namespace(self) -> str:
        """The sub-directory name this store owns."""
        return self._namespace

    @property
    def cache_dir(self) -> Optional[Path]:
        """Root of the shared artifact cache (``None`` when detached)."""
        with self._lock:
            return None if self._dir is None else self._dir.parent

    @property
    def attached(self) -> bool:
        """Whether a disk tier is currently attached (lock-free, advisory).

        Clients use this to skip spill bookkeeping (key hashing, a ``put``
        call) on memory-tier hits of detached stores; a racing
        ``set_cache_dir`` at worst delays one lazy spill to the next hit,
        which the idempotent :meth:`put` absorbs.
        """
        # reprolint: disable=lock-discipline (documented advisory read)
        return self._dir is not None

    @property
    def max_bytes(self) -> int:
        """LRU byte bound of this namespace."""
        return self._max_bytes

    @property
    def stats(self) -> StoreStats:
        """Snapshot of the hit/miss/corruption/eviction counters."""
        with self._lock:
            return StoreStats(
                hits=self._hits,
                misses=self._misses,
                corruptions=self._corruptions,
                evictions=self._evictions,
            )

    def usage(self) -> Tuple[int, int]:
        """``(n_entries, total_bytes)`` currently on disk (``(0, 0)`` if none).

        Measured by scanning the directory (outside the lock — usage is
        maintenance, lookups must not queue behind it), so the numbers
        reflect every process sharing the ``cache_dir``.
        """
        with self._lock:
            disk_dir = self._dir
        if disk_dir is None or not disk_dir.is_dir():
            return 0, 0
        count = 0
        total = 0
        try:
            listing = list(disk_dir.iterdir())
        except OSError:
            return 0, 0
        for path in listing:
            if path.suffix != ".npz":
                continue
            try:
                total += path.stat().st_size
            except OSError:
                continue
            count += 1
        return count, total

    # ------------------------------------------------------------------ #
    # Attachment and sweeping
    # ------------------------------------------------------------------ #
    def set_cache_dir(self, cache_dir: Union[None, str, Path]) -> None:
        """Attach (or detach, with ``None``) the disk tier.

        Existing entries under the directory become immediately visible;
        counters are kept.  Opening a directory sweeps leftovers of past
        failures — stale ``.tmp`` files of writers that died mid-spill *and*
        stale ``.quarantine`` files of corrupt entries — so long-lived
        shared cache directories cannot accumulate them without bound.
        """
        with self._lock:
            self._no_spill = set()
            self._total = None
            if cache_dir is None:
                self._dir = None
                return
            self._dir = Path(cache_dir) / self._namespace
            disk_dir = self._dir
        self._sweep_stale(disk_dir)

    @staticmethod
    def _sweep_stale(disk_dir: Path) -> None:
        """Drop stale ``.tmp`` and ``.quarantine`` leftovers.

        Recent files are presumed live — an in-flight write of another
        process, or a corrupt entry someone may still want to inspect — and
        kept until they age past :data:`TMP_SWEEP_AGE_SECONDS`.
        """
        now = time.time()
        try:
            listing = list(disk_dir.iterdir()) if disk_dir.is_dir() else []
        except OSError:
            return
        for path in listing:
            if path.suffix not in (".tmp", ".quarantine"):
                continue
            try:
                if now - path.stat().st_mtime > TMP_SWEEP_AGE_SECONDS:
                    path.unlink()
            except OSError:
                continue

    # ------------------------------------------------------------------ #
    # Serialization internals
    # ------------------------------------------------------------------ #
    def _envelope(self, key: str, meta: Dict[str, Any]) -> Optional[str]:
        try:
            return json.dumps(
                {
                    "format": self._format_version,
                    "namespace": self._namespace,
                    "key": key,
                    "meta": meta,
                },
                sort_keys=True,
            )
        except (TypeError, ValueError):
            return None

    @staticmethod
    def _payload_digest(arrays: Dict[str, np.ndarray], envelope: str) -> str:
        """SHA-256 over the exact bytes an entry stores (verification tag)."""
        hasher = hashlib.sha256()
        for name in sorted(arrays):
            arr = np.ascontiguousarray(arrays[name])
            hasher.update(repr((name, arr.shape, arr.dtype.str)).encode("utf8"))
            hasher.update(arr.tobytes())
        hasher.update(envelope.encode("utf8"))
        return hasher.hexdigest()

    def _write(self, disk_dir: Path, key: str, payload: Any) -> Tuple[bool, int]:
        """Serialize and atomically publish one entry; ``(written, size)``."""
        try:
            dumped = self._dump(payload)
        except Exception:
            dumped = None
        if dumped is None:
            return False, 0
        arrays, meta = dumped
        if any(name in (_META_MEMBER, _DIGEST_MEMBER) for name in arrays):
            return False, 0
        envelope = self._envelope(key, meta)
        if envelope is None:
            # Non-JSON-serializable metadata (exotic diagnostics) simply
            # stays memory-only rather than failing the run.
            return False, 0
        digest = self._payload_digest(arrays, envelope)
        path = disk_dir / f"{key}.npz"
        try:
            disk_dir.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=str(disk_dir), prefix=path.stem, suffix=".tmp"
            )
        except OSError:
            return False, 0
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(
                    handle,
                    **{name: np.ascontiguousarray(arr) for name, arr in arrays.items()},
                    **{
                        _META_MEMBER: np.frombuffer(
                            envelope.encode("utf8"), dtype=np.uint8
                        ),
                        _DIGEST_MEMBER: np.frombuffer(
                            digest.encode("ascii"), dtype=np.uint8
                        ),
                    },
                )
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            return False, 0
        try:
            size = path.stat().st_size
        except OSError:
            size = 0
        return True, size

    def _read(self, path: Path, key: str) -> Optional[Any]:
        """Load and verify one entry; ``None`` on any defect."""
        try:
            with np.load(path, allow_pickle=False) as archive:
                arrays = {
                    name: archive[name]
                    for name in archive.files
                    if name not in (_META_MEMBER, _DIGEST_MEMBER)
                }
                envelope = bytes(archive[_META_MEMBER].tobytes()).decode("utf8")
                digest = bytes(archive[_DIGEST_MEMBER].tobytes()).decode("ascii")
        except Exception:
            # np.load raises zipfile/OSError/KeyError/ValueError flavors on
            # corruption; all of them mean "not a usable entry".
            return None
        if self._payload_digest(arrays, envelope) != digest:
            return None
        try:
            parsed = json.loads(envelope)
        except ValueError:
            return None
        if (
            not isinstance(parsed, dict)
            or parsed.get("format") != self._format_version
            or parsed.get("namespace") != self._namespace
            or parsed.get("key") != key
        ):
            return None
        meta = parsed.get("meta")
        try:
            return self._load(arrays, meta if isinstance(meta, dict) else {})
        except Exception:
            return None

    @staticmethod
    def _quarantine(path: Path) -> None:
        """Move a corrupt entry aside so the next lookup is a clean miss.

        The bytes are kept (briefly — see :meth:`_sweep_stale`) for
        postmortem inspection; repeated corruption of one key overwrites
        the same quarantine file, so growth stays bounded per key.
        """
        try:
            os.replace(path, path.with_suffix(".quarantine"))
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------ #
    # Core operations
    # ------------------------------------------------------------------ #
    def lookup(self, key: str) -> Optional[Any]:
        """Return the stored payload for ``key`` or ``None`` (a miss).

        A detached store (no ``cache_dir``) misses silently without
        counting.  Hits refresh the entry's LRU position; every defect
        quarantines the file and counts a corruption.
        """
        with self._lock:
            disk_dir = self._dir
        if disk_dir is None:
            return None
        path = disk_dir / f"{key}.npz"
        # Shared advisory lock around the single-entry read: a concurrent
        # eviction pass (exclusive holder) of another process sharing the
        # cache_dir cannot unlink the file mid-load.  Uncoordinated
        # platforms degrade gracefully — a lost race is a quarantine-or-
        # miss, never an error.
        with _advisory_lock(disk_dir, exclusive=False):
            present = path.exists()
            payload = self._read(path, key) if present else None
        if payload is None:
            if present:
                self._quarantine(path)
            with self._lock:
                if present:
                    self._corruptions += 1
                    if self._dir == disk_dir:
                        self._no_spill.discard(key)
                        self._total = None  # force recalibration
                self._misses += 1
            return None
        try:
            os.utime(path)  # refresh the LRU position
        except OSError:
            pass
        with self._lock:
            if self._dir == disk_dir:
                # Guard against a concurrent set_cache_dir: the key is only
                # known to exist in the directory it was loaded from.
                self._no_spill.add(key)
            self._hits += 1
        return payload

    def invalidate(self, key: str) -> None:
        """Quarantine an entry whose *content* the client rejected.

        The digest protects bytes, not meaning: an artifact can verify yet
        fail the client's re-binding (a layout change shipped without a
        format bump, a key collision).  Without this, such an entry would
        poison its key forever — ``lookup`` counts a hit and marks the key
        no-spill, so the recomputed result would never be re-spilled over
        the stale file.  Invalidation quarantines the file, clears the
        no-spill mark so the next :meth:`put` rewrites it, and corrects the
        already-counted hit into a corruption miss.
        """
        with self._lock:
            disk_dir = self._dir
        if disk_dir is None:
            return
        path = disk_dir / f"{key}.npz"
        if path.exists():
            self._quarantine(path)
        with self._lock:
            if self._dir == disk_dir:
                self._no_spill.discard(key)
                self._total = None  # force recalibration
            self._hits -= 1
            self._misses += 1
            self._corruptions += 1

    def put(self, key: str, payload: Any) -> bool:
        """Spill one payload (idempotent per key); ``True`` if written.

        Keys already known to be on disk — or whose spill already failed —
        return immediately without re-paying serialization, so clients may
        call ``put`` on every memory hit to lazily persist entries that
        predate the tier.  Concurrent spillers of the same key write
        identical bytes through atomic renames, so the race is benign; the
        byte total may double-count briefly, which the next eviction pass
        recalibrates.
        """
        with self._lock:
            disk_dir = self._dir
            if disk_dir is None or key in self._no_spill:
                return False
        written, size = self._write(disk_dir, key, payload)
        needs_evict = False
        with self._lock:
            if self._dir != disk_dir:
                return written  # tier detached or redirected while writing
            # A *failed* write also marks the key: an unusable tier degrades
            # to memory-only caching instead of re-paying serialization on
            # every subsequent hit (re-attaching the tier retries).
            self._no_spill.add(key)
            if written:
                if self._total is not None:
                    self._total += size
                needs_evict = self._total is None or self._total > self._max_bytes
        if needs_evict:
            self._evict(disk_dir)
        return written

    def _evict(self, disk_dir: Path) -> bool:
        """Scan the tier, recalibrate the byte total, drop LRU files past the bound.

        Runs only when the running total is unknown or exceeds the bound —
        not on every spill.  The scan doubles as recalibration against other
        processes sharing the directory and sweeps stale ``.tmp`` and
        ``.quarantine`` leftovers.

        The whole pass holds the namespace's advisory lock *exclusive* and
        *non-blocking*: concurrent readers (shared holders) are never
        interrupted mid-load, and a pass contended by another process's
        eviction is skipped — that process is already recalibrating, and
        this store's stale running total re-triggers a pass on the next
        spill.  Returns whether the pass ran.
        """
        with _advisory_lock(disk_dir, exclusive=True, blocking=False) as acquired:
            if not acquired:
                return False
            files: List[Tuple[float, int, Path]] = []
            total = 0
            now = time.time()
            try:
                listing = list(disk_dir.iterdir()) if disk_dir.is_dir() else []
            except OSError:
                listing = []
            for path in listing:
                try:
                    stat = path.stat()
                except OSError:
                    continue
                if path.suffix in (".tmp", ".quarantine"):
                    # Invisible to lookups and to the byte bound; sweep once
                    # clearly not an in-flight write / fresh postmortem.
                    if now - stat.st_mtime > TMP_SWEEP_AGE_SECONDS:
                        try:
                            path.unlink()
                        except OSError:
                            pass
                    continue
                if path.suffix != ".npz":
                    continue
                files.append((stat.st_mtime, stat.st_size, path))
                total += stat.st_size
            evicted = []
            for _, size, path in sorted(files):
                if total <= self._max_bytes:
                    break
                try:
                    path.unlink()
                except OSError:
                    continue
                evicted.append(path.stem)  # file name is the key
                total -= size
        with self._lock:
            if self._dir != disk_dir:
                return True  # tier detached or redirected while scanning
            for key in evicted:
                self._no_spill.discard(key)
            self._evictions += len(evicted)
            self._total = total
        return True

    def evict_pass(self) -> bool:
        """Run one LRU eviction/recalibration pass now (maintenance).

        The same pass :meth:`put` triggers once the running total passes
        the bound, exposed so maintenance callers — the CLI, tests, a
        shared-``cache_dir`` coordinator after its workers finish — can
        re-establish the byte bound without spilling anything.  Returns
        whether a pass ran (``False`` when detached or when another
        process held the eviction lock).
        """
        with self._lock:
            disk_dir = self._dir
        if disk_dir is None:
            return False
        return self._evict(disk_dir)

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def clear(self) -> int:
        """Remove every file of this namespace (``.tmp`` and ``.quarantine``
        leftovers and the advisory lock file included); returns the number
        of *entries* removed.

        Like every other operation, the filesystem walk happens outside the
        lock — only the bookkeeping update takes it — so concurrent
        lookups never queue behind the unlinks.
        """
        with self._lock:
            disk_dir = self._dir
        removed_keys: List[str] = []
        try:
            listing = (
                list(disk_dir.iterdir())
                if disk_dir is not None and disk_dir.is_dir()
                else []
            )
        except OSError:
            listing = []
        for path in listing:
            if (
                path.suffix not in (".npz", ".tmp", ".quarantine")
                and path.name != _EVICTION_LOCK_NAME
            ):
                continue
            try:
                path.unlink()
            except OSError:
                continue
            if path.suffix == ".npz":
                removed_keys.append(path.stem)
        with self._lock:
            if self._dir == disk_dir:
                for key in removed_keys:
                    self._no_spill.discard(key)
                # Concurrent spills may have landed after the walk; let the
                # next eviction pass recalibrate instead of assuming empty.
                self._total = None
        return len(removed_keys)

    def reset_stats(self) -> None:
        """Zero the hit/miss/corruption/eviction counters (entries kept)."""
        with self._lock:
            self._hits = 0
            self._misses = 0
            self._corruptions = 0
            self._evictions = 0
