"""Batched simulation engine: plan → compile → execute.

The classic API generates one covariance specification at a time; every
:class:`repro.core.generator.RayleighFadingGenerator` eigendecomposes its own
matrix and experiments loop scenarios serially in Python.  This subpackage
turns generation into a three-stage pipeline that scales to large parameter
sweeps and Monte-Carlo grids:

:mod:`repro.engine.plan`
    :class:`SimulationPlan` collects many :class:`~repro.core.covariance.CovarianceSpec`
    entries (each with its own seed and algorithm options) before any linear
    algebra runs.
:mod:`repro.engine.compile`
    :func:`compile_plan` groups same-shape entries, deduplicates covariance
    matrices by content hash against the LRU
    :class:`~repro.engine.cache.DecompositionCache`, and decomposes the
    misses with *stacked* ``np.linalg.eigh`` / ``cholesky`` calls
    (:func:`repro.core.coloring.compute_coloring_batch`).
:mod:`repro.engine.execute`
    :func:`execute_plan` draws per-entry seeded white samples and colors each
    group with one stacked ``np.matmul``; :func:`stream_plan` iterates long
    records in fixed-size blocks with bounded memory.  Doppler-mode entries
    (a :class:`DopplerSpec` on the plan entry) draw Young–Beaulieu IDFT
    branch streams instead — all branches of all entries of a group through
    one stacked backend ``ifft`` — and normalize the coloring by the
    Eq. (19) filter-output variance.
:mod:`repro.engine.backends`
    The :class:`LinalgBackend` decompose-stack / matmul / fft contract the
    compile and execute steps run on, with a registry of implementations
    (``"numpy"`` default, ``"scipy"`` LAPACK-driver variant, import-gated
    GPU backends) so backend choice is a constructor argument of
    :class:`SimulationEngine` / :class:`repro.api.Simulator`.
:mod:`repro.engine.store` / :mod:`repro.engine.cache` /
:mod:`repro.engine.filters` / :mod:`repro.engine.plancache`
    The persistent artifact cache.  :class:`ArtifactStore` is the single
    disk-tier implementation (atomic writes, digest verification,
    quarantine-on-corrupt, LRU byte-bounded eviction) parameterized by
    payload dump/load; its three namespaces under one ``cache_dir`` (CLI
    ``--cache-dir``, env ``REPRO_CACHE_DIR``) are the content-hashed LRU
    :class:`DecompositionCache`, the process-wide
    :class:`DopplerFilterCache` of Young–Beaulieu filters, and the
    executor-level :class:`CompiledPlanCache` that loads *whole* compiled
    plans without touching ``eigh``/``cholesky`` or filter construction.
    A disk hit is bit-identical to a fresh computation and a corrupt file
    is a miss, never an error.

**Equivalence guarantee.**  For the same per-entry seeds, batched execution
is bit-identical to looping single-spec generators — the single-spec path is
literally the ``B = 1`` case (the :mod:`repro.core.pipeline` helpers route
through :func:`default_engine`).  The guarantee holds because numpy's stacked
``eigh``/``cholesky``/``matmul`` gufuncs run the same LAPACK/BLAS routine per
slice, pocketfft transforms each row of a stacked IDFT exactly like a 1-D
IDFT of that row, and the white-sample streams are drawn per entry (per
branch, for Doppler entries) from the same seeds.  Doppler entries are
bit-identical to looping :class:`repro.core.realtime.RealTimeRayleighGenerator`.
"""

from .backends import (
    BackendSpec,
    CupyBackend,
    LinalgBackend,
    NumpyBackend,
    ScipyBackend,
    TorchBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from .cache import (
    CacheStats,
    DecompositionCache,
    decomposition_cache_key,
    default_decomposition_cache,
)
from .filters import DopplerFilterCache, FilterCacheStats, default_filter_cache
from .plan import DopplerSpec, FadingSpec, PlanEntry, SimulationPlan
from .plancache import (
    CompiledPlanCache,
    PlanCacheStats,
    compiled_plan_cache_key,
    default_plan_cache,
)
from .store import ArtifactStore, StoreStats
from .compile import CompiledGroup, CompiledPlan, CompileReport, compile_plan
from .execute import execute_plan, stream_plan
from .result import BatchResult
from .engine import SimulationEngine, default_engine

__all__ = [
    "BackendSpec",
    "CupyBackend",
    "LinalgBackend",
    "NumpyBackend",
    "ScipyBackend",
    "TorchBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "CacheStats",
    "DecompositionCache",
    "decomposition_cache_key",
    "default_decomposition_cache",
    "DopplerFilterCache",
    "FilterCacheStats",
    "default_filter_cache",
    "ArtifactStore",
    "StoreStats",
    "CompiledPlanCache",
    "PlanCacheStats",
    "compiled_plan_cache_key",
    "default_plan_cache",
    "DopplerSpec",
    "FadingSpec",
    "PlanEntry",
    "SimulationPlan",
    "CompiledGroup",
    "CompiledPlan",
    "CompileReport",
    "compile_plan",
    "execute_plan",
    "stream_plan",
    "BatchResult",
    "SimulationEngine",
    "default_engine",
]
