"""Process-wide + on-disk cache of Young–Beaulieu Doppler filters.

Building the Eq. (21) filter ``F[k]`` is cheap next to an ``O(N^3)``
decomposition, but it is pure overhead to repeat: the filter depends only on
``(M, f_m)`` and its Eq. (19) output variance additionally on
``sigma_orig^2``, and real workloads reuse a handful of keys across
thousands of scenarios.  PR 3 memoized the build *per compile pass*;
:class:`DopplerFilterCache` promotes that memo to a process-wide cache with
an optional disk tier under the same ``cache_dir`` as the decomposition
spill, so:

* every :func:`repro.engine.compile.compile_plan` pass in a process shares
  one build per unique ``(M, f_m, sigma_orig^2)``;
* every :class:`repro.core.realtime.RealTimeRayleighGenerator` constructed
  for the same Doppler settings shares the same coefficients;
* repeated *processes* (CLI sweeps with ``--cache-dir``, CI phases) load the
  coefficients from ``<cache_dir>/filters/*.npz`` instead of rebuilding.

The disk tier is one namespace (``filters/``) of the unified
:class:`repro.engine.store.ArtifactStore`, which owns the persistence
protocol — atomic writes, digest verification, quarantine-on-corrupt,
stale-file sweeping, eviction; this module only defines what a filter looks
like on disk (a single coefficient array).  Cached coefficient arrays are
frozen read-only — they are shared across compiles and generators.  A cache
hit is bit-identical to a fresh
:func:`repro.channels.doppler.young_beaulieu_filter` build: the disk
round-trip stores the raw float64 binary, and the output variance is
recomputed from the verified coefficients rather than trusted from the
file.  A corrupt or truncated file is a miss, never an error.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from ..config import cache_dir_from_env
from .store import ArtifactStore

__all__ = [
    "FilterCacheStats",
    "DopplerFilterCache",
    "default_filter_cache",
]

#: On-disk payload-layout version (bumped in PR 5: store-envelope format).
_DISK_FORMAT_VERSION = 2

#: A filter key: ``(M, f_m, sigma_orig^2)``, matching
#: :attr:`repro.engine.plan.DopplerSpec.filter_key`.
FilterKey = Tuple[int, float, float]


@dataclass(frozen=True)
class FilterCacheStats:
    """Immutable snapshot of filter-cache activity counters.

    Attributes
    ----------
    hits:
        Lookups served without building (memory or disk).
    misses:
        Lookups that built the filter.
    disk_hits:
        Hits served by loading (and verifying) a disk entry.
    disk_misses:
        Disk probes that found no usable entry (absent or corrupt).
    disk_corruptions:
        Disk entries rejected by digest verification (files quarantined).
    size:
        Filters currently held in memory.
    """

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    disk_misses: int = 0
    disk_corruptions: int = 0
    size: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def builds(self) -> int:
        """Filters actually constructed (alias of ``misses``)."""
        return self.misses


def _key_hash(key: FilterKey) -> str:
    """File-name hash of a filter key (exact float reprs, no rounding)."""
    n_points, normalized_doppler, input_variance = key
    token = "|".join(
        (
            repr(int(n_points)),
            repr(float(normalized_doppler)),
            repr(float(input_variance)),
        )
    )
    return hashlib.sha256(token.encode("utf8")).hexdigest()


def _dump_filter(
    coefficients: np.ndarray,
) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Store payload of one filter: the raw coefficient array."""
    return {"coefficients": np.ascontiguousarray(coefficients)}, {}


def _load_filter(arrays: Dict[str, np.ndarray], meta: Dict[str, Any]) -> np.ndarray:
    """Rebuild a filter from digest-verified store payload."""
    return arrays["coefficients"]


class DopplerFilterCache:
    """Thread-safe cache of Young–Beaulieu filters and their output variances.

    The memory tier is a plain dict keyed by ``(M, f_m, sigma_orig^2)``; the
    optional disk tier lives next to the decomposition spill, so one
    ``cache_dir`` (CLI ``--cache-dir``, env ``REPRO_CACHE_DIR``, or
    ``Simulator(cache_dir=...)``) configures every artifact cache at once.

    Parameters
    ----------
    cache_dir:
        Directory of the persistent disk tier, or ``None`` (default) for a
        memory-only cache.  Entries live as ``<cache_dir>/filters/<hash>.npz``.
    """

    def __init__(self, cache_dir: Union[None, str, Path] = None) -> None:
        self._entries: Dict[FilterKey, Tuple[np.ndarray, float]] = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._store = ArtifactStore(
            "filters",
            dump=_dump_filter,
            load=_load_filter,
            cache_dir=cache_dir,
            format_version=_DISK_FORMAT_VERSION,
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def cache_dir(self) -> Optional[Path]:
        """Root directory of the disk tier (``None`` when memory-only)."""
        return self._store.cache_dir

    @property
    def artifact_store(self) -> ArtifactStore:
        """The underlying artifact store of the disk tier."""
        return self._store

    @property
    def stats(self) -> FilterCacheStats:
        """Snapshot of the hit/miss counters."""
        disk = self._store.stats
        with self._lock:
            return FilterCacheStats(
                hits=self._hits,
                misses=self._misses,
                disk_hits=disk.hits,
                disk_misses=disk.misses,
                disk_corruptions=disk.corruptions,
                size=len(self._entries),
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def set_cache_dir(self, cache_dir: Union[None, str, Path]) -> None:
        """Attach (or detach, with ``None``) the persistent disk tier."""
        self._store.set_cache_dir(cache_dir)

    # ------------------------------------------------------------------ #
    # Core operation
    # ------------------------------------------------------------------ #
    def get(
        self,
        n_points: int,
        normalized_doppler: float,
        input_variance_per_dim: float = 0.5,
    ) -> Tuple[np.ndarray, float, bool]:
        """Return ``(coefficients, output_variance, was_cached)`` for a key.

        On a miss the filter is built with
        :func:`repro.channels.doppler.young_beaulieu_filter`, stored in
        memory (frozen read-only) and — when a ``cache_dir`` is configured —
        spilled to disk.  ``was_cached`` reports whether any tier served the
        coefficients without building, which is how the compile report's
        filter-reuse counters distinguish builds from shared-cache hits.

        The Eq. (19) output variance is always recomputed from the
        coefficients (it is a cheap reduction), so a tampered disk entry can
        never smuggle in an inconsistent variance.
        """
        from ..channels.doppler import filter_output_variance, young_beaulieu_filter

        key: FilterKey = (
            int(n_points),
            float(normalized_doppler),
            float(input_variance_per_dim),
        )
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._hits += 1
        if cached is not None:
            coefficients, variance = cached
            if self._store.attached:
                # Spill entries that predate the disk tier, so attaching a
                # cache_dir to a warm cache still persists them; the store
                # makes repeat calls free for keys already persisted (or
                # unwritable).  Guarded so the common memory-only
                # configuration pays no key hashing on its hot path.
                self._store.put(_key_hash(key), coefficients)
            return coefficients, variance, True

        coefficients = self._store.lookup(_key_hash(key))
        if coefficients is not None:
            coefficients.flags.writeable = False
            variance = filter_output_variance(coefficients, key[2])
            with self._lock:
                # Raced with a concurrent build/load of the same key: keep
                # handing out the already-shared tuple.
                coefficients, variance = self._entries.setdefault(
                    key, (coefficients, variance)
                )
                self._hits += 1
            return coefficients, variance, True

        with self._lock:
            self._misses += 1
        # Build outside the lock: validation may raise, and concurrent
        # builders of the same key produce identical bytes anyway.
        coefficients = young_beaulieu_filter(key[0], key[1])
        coefficients.flags.writeable = False
        variance = filter_output_variance(coefficients, key[2])
        with self._lock:
            coefficients, variance = self._entries.setdefault(
                key, (coefficients, variance)
            )
        if self._store.attached:
            self._store.put(_key_hash(key), coefficients)
        return coefficients, variance, False

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def disk_usage(self) -> Tuple[int, int]:
        """``(n_files, total_bytes)`` of the disk tier (``(0, 0)`` if none)."""
        return self._store.usage()

    def clear(self) -> None:
        """Drop every filter held in memory (counters and disk kept)."""
        with self._lock:
            self._entries.clear()

    def clear_disk(self) -> int:
        """Remove every file of the disk tier (``.tmp`` and quarantine
        leftovers included); returns the number of entries removed."""
        return self._store.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss counters (entries are kept)."""
        with self._lock:
            self._hits = 0
            self._misses = 0
        self._store.reset_stats()


#: Process-wide filter cache (created lazily so ``REPRO_CACHE_DIR`` is
#: honored at first use), shared by plan compilation and the standalone
#: real-time generator.
_DEFAULT_FILTER_CACHE: Optional[DopplerFilterCache] = None
_DEFAULT_FILTER_LOCK = threading.Lock()


def default_filter_cache() -> DopplerFilterCache:
    """The process-wide Young–Beaulieu filter cache.

    Shared by every :func:`repro.engine.compile.compile_plan` pass and every
    :class:`repro.core.realtime.RealTimeRayleighGenerator` that is not given
    an explicit cache, so each unique ``(M, f_m, sigma_orig^2)`` is built
    once per process — and, with ``REPRO_CACHE_DIR`` / ``--cache-dir``, once
    ever.
    """
    global _DEFAULT_FILTER_CACHE
    with _DEFAULT_FILTER_LOCK:
        if _DEFAULT_FILTER_CACHE is None:
            _DEFAULT_FILTER_CACHE = DopplerFilterCache(cache_dir=cache_dir_from_env())
        return _DEFAULT_FILTER_CACHE
