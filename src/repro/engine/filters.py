"""Process-wide + on-disk cache of Young–Beaulieu Doppler filters.

Building the Eq. (21) filter ``F[k]`` is cheap next to an ``O(N^3)``
decomposition, but it is pure overhead to repeat: the filter depends only on
``(M, f_m)`` and its Eq. (19) output variance additionally on
``sigma_orig^2``, and real workloads reuse a handful of keys across
thousands of scenarios.  PR 3 memoized the build *per compile pass*;
:class:`DopplerFilterCache` promotes that memo to a process-wide cache with
an optional disk tier under the same ``cache_dir`` as the decomposition
spill, so:

* every :func:`repro.engine.compile.compile_plan` pass in a process shares
  one build per unique ``(M, f_m, sigma_orig^2)``;
* every :class:`repro.core.realtime.RealTimeRayleighGenerator` constructed
  for the same Doppler settings shares the same coefficients;
* repeated *processes* (CLI sweeps with ``--cache-dir``, CI phases) load the
  coefficients from ``<cache_dir>/filters/*.npz`` instead of rebuilding.

Cached coefficient arrays are frozen read-only — they are shared across
compiles and generators.  Disk entries embed a SHA-256 payload digest that
is re-verified on load; corrupt or truncated files are misses, never
errors (the file is removed).  A cache hit is bit-identical to a fresh
:func:`repro.channels.doppler.young_beaulieu_filter` build: the disk
round-trip stores the raw float64 binary, and the output variance is
recomputed from the verified coefficients rather than trusted from the
file.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..config import cache_dir_from_env
from .cache import _TMP_SWEEP_AGE_SECONDS

__all__ = [
    "FilterCacheStats",
    "DopplerFilterCache",
    "default_filter_cache",
]

#: Sub-directory of ``cache_dir`` holding spilled filters (sibling of the
#: decomposition spill; see :mod:`repro.engine.cache`).
_DISK_SUBDIR = "filters"

#: On-disk format version; stale layouts read as misses.
_DISK_FORMAT_VERSION = 1

#: A filter key: ``(M, f_m, sigma_orig^2)``, matching
#: :attr:`repro.engine.plan.DopplerSpec.filter_key`.
FilterKey = Tuple[int, float, float]


@dataclass(frozen=True)
class FilterCacheStats:
    """Immutable snapshot of filter-cache activity counters.

    Attributes
    ----------
    hits:
        Lookups served without building (memory or disk).
    misses:
        Lookups that built the filter.
    disk_hits:
        Hits served by loading (and verifying) a disk entry.
    disk_misses:
        Disk probes that found no usable entry (absent or corrupt).
    disk_corruptions:
        Disk entries rejected by digest verification (files removed).
    size:
        Filters currently held in memory.
    """

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    disk_misses: int = 0
    disk_corruptions: int = 0
    size: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def builds(self) -> int:
        """Filters actually constructed (alias of ``misses``)."""
        return self.misses


def _key_hash(key: FilterKey) -> str:
    """File-name hash of a filter key (exact float reprs, no rounding)."""
    n_points, normalized_doppler, input_variance = key
    token = "|".join(
        (
            repr(int(n_points)),
            repr(float(normalized_doppler)),
            repr(float(input_variance)),
        )
    )
    return hashlib.sha256(token.encode("utf8")).hexdigest()


def _payload_digest(coefficients: np.ndarray, token: str) -> str:
    hasher = hashlib.sha256()
    hasher.update(token.encode("utf8"))
    hasher.update(repr((coefficients.shape, coefficients.dtype.str)).encode("utf8"))
    hasher.update(np.ascontiguousarray(coefficients).tobytes())
    return hasher.hexdigest()


class DopplerFilterCache:
    """Thread-safe cache of Young–Beaulieu filters and their output variances.

    Parameters
    ----------
    cache_dir:
        Directory of the persistent disk tier, or ``None`` (default) for a
        memory-only cache.  Entries live as ``<cache_dir>/filters/<hash>.npz``
        next to the decomposition spill, so one ``--cache-dir`` configures
        both artifact caches.
    """

    def __init__(self, cache_dir: Union[None, str, Path] = None) -> None:
        self._entries: Dict[FilterKey, Tuple[np.ndarray, float]] = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._disk_hits = 0
        self._disk_misses = 0
        self._disk_corruptions = 0
        self._disk_dir: Optional[Path] = None
        # Keys this instance will not spill again: known to be on disk, or a
        # spill already failed (an unwritable tier must not re-pay the write
        # attempt on every memory hit).  Reset when the tier is
        # (re)attached, so a new directory gets fresh attempts.
        self._persisted: set = set()
        self.set_cache_dir(cache_dir)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def cache_dir(self) -> Optional[Path]:
        """Root directory of the disk tier (``None`` when memory-only)."""
        with self._lock:
            return None if self._disk_dir is None else self._disk_dir.parent

    @property
    def stats(self) -> FilterCacheStats:
        """Snapshot of the hit/miss counters."""
        with self._lock:
            return FilterCacheStats(
                hits=self._hits,
                misses=self._misses,
                disk_hits=self._disk_hits,
                disk_misses=self._disk_misses,
                disk_corruptions=self._disk_corruptions,
                size=len(self._entries),
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def set_cache_dir(self, cache_dir: Union[None, str, Path]) -> None:
        """Attach (or detach, with ``None``) the persistent disk tier."""
        with self._lock:
            self._persisted = set()
            self._disk_dir = (
                None if cache_dir is None else Path(cache_dir) / _DISK_SUBDIR
            )

    # ------------------------------------------------------------------ #
    # Disk tier (all file I/O happens outside the lock; only counter and
    # bookkeeping updates take it, so concurrent get() calls served by the
    # memory tier never queue behind another thread's file access)
    # ------------------------------------------------------------------ #
    def _disk_load(self, key: FilterKey, disk_dir: Path) -> Optional[np.ndarray]:
        path = disk_dir / f"{_key_hash(key)}.npz"
        present = path.exists()
        coefficients = None
        if present:
            token = f"{_DISK_FORMAT_VERSION}|{_key_hash(key)}"
            try:
                with np.load(path, allow_pickle=False) as payload:
                    coefficients = payload["coefficients"]
                    digest = bytes(payload["digest"].tobytes()).decode("ascii")
            except Exception:
                coefficients, digest = None, None
            if (
                coefficients is not None
                and _payload_digest(coefficients, token) != digest
            ):
                coefficients = None
            if coefficients is None:
                try:
                    path.unlink()  # quarantine the corrupt entry
                except OSError:
                    pass
            else:
                try:
                    os.utime(path)
                except OSError:
                    pass
        if coefficients is None:
            with self._lock:
                if present:
                    self._disk_corruptions += 1
                    if self._disk_dir == disk_dir:
                        self._persisted.discard(key)
                self._disk_misses += 1
        return coefficients

    def _disk_store(
        self, key: FilterKey, coefficients: np.ndarray, disk_dir: Path
    ) -> None:
        """Spill one filter (I/O outside the lock); failures are remembered.

        An unusable tier (read-only directory, full disk) must degrade to
        memory-only caching, not re-pay the write attempt on every memory
        hit — so the key enters ``_persisted`` whether or not the write
        landed (re-attaching the tier retries).
        """
        path = disk_dir / f"{_key_hash(key)}.npz"
        token = f"{_DISK_FORMAT_VERSION}|{_key_hash(key)}"
        digest = _payload_digest(coefficients, token)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=str(path.parent), prefix=path.stem, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    np.savez(
                        handle,
                        coefficients=np.ascontiguousarray(coefficients),
                        digest=np.frombuffer(digest.encode("ascii"), dtype=np.uint8),
                    )
                os.replace(tmp_name, path)
                self._sweep_stale_tmp(path.parent)
            except OSError:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
        except OSError:
            pass
        with self._lock:
            if self._disk_dir == disk_dir:
                self._persisted.add(key)

    @staticmethod
    def _sweep_stale_tmp(directory: Path) -> None:
        """Drop ``.tmp`` leftovers of writers that died mid-spill.

        Stores are rare (one per unique filter key), so piggybacking the
        sweep on them bounds orphan growth in long-lived shared cache
        directories without a per-lookup cost.  Recent files are presumed
        in-flight writes of a live process and kept.
        """
        now = time.time()
        try:
            listing = list(directory.iterdir())
        except OSError:
            return
        for stale in listing:
            if stale.suffix != ".tmp":
                continue
            try:
                if now - stale.stat().st_mtime > _TMP_SWEEP_AGE_SECONDS:
                    stale.unlink()
            except OSError:
                continue

    # ------------------------------------------------------------------ #
    # Core operation
    # ------------------------------------------------------------------ #
    def get(
        self,
        n_points: int,
        normalized_doppler: float,
        input_variance_per_dim: float = 0.5,
    ) -> Tuple[np.ndarray, float, bool]:
        """Return ``(coefficients, output_variance, was_cached)`` for a key.

        On a miss the filter is built with
        :func:`repro.channels.doppler.young_beaulieu_filter`, stored in
        memory (frozen read-only) and — when a ``cache_dir`` is configured —
        spilled to disk.  ``was_cached`` reports whether any tier served the
        coefficients without building, which is how the compile report's
        filter-reuse counters distinguish builds from shared-cache hits.

        The Eq. (19) output variance is always recomputed from the
        coefficients (it is a cheap reduction), so a tampered disk entry can
        never smuggle in an inconsistent variance.
        """
        from ..channels.doppler import filter_output_variance, young_beaulieu_filter

        key: FilterKey = (
            int(n_points),
            float(normalized_doppler),
            float(input_variance_per_dim),
        )
        with self._lock:
            cached = self._entries.get(key)
            disk_dir = self._disk_dir
            if cached is not None:
                self._hits += 1
                needs_spill = disk_dir is not None and key not in self._persisted
        if cached is not None:
            coefficients, variance = cached
            if needs_spill:
                # Spill entries that predate the disk tier, so attaching a
                # cache_dir to a warm cache still persists them.
                self._disk_store(key, coefficients, disk_dir)
            return coefficients, variance, True
        if disk_dir is not None:
            coefficients = self._disk_load(key, disk_dir)
            if coefficients is not None:
                coefficients.flags.writeable = False
                variance = filter_output_variance(coefficients, key[2])
                with self._lock:
                    # Raced with a concurrent build/load of the same key:
                    # keep handing out the already-shared tuple.
                    coefficients, variance = self._entries.setdefault(
                        key, (coefficients, variance)
                    )
                    if self._disk_dir == disk_dir:
                        self._persisted.add(key)
                    self._disk_hits += 1
                    self._hits += 1
                return coefficients, variance, True
        with self._lock:
            self._misses += 1
        # Build outside the lock: validation may raise, and concurrent
        # builders of the same key produce identical bytes anyway.
        coefficients = young_beaulieu_filter(key[0], key[1])
        coefficients.flags.writeable = False
        variance = filter_output_variance(coefficients, key[2])
        with self._lock:
            coefficients, variance = self._entries.setdefault(
                key, (coefficients, variance)
            )
            disk_dir = self._disk_dir
            needs_spill = disk_dir is not None and key not in self._persisted
        if needs_spill:
            self._disk_store(key, coefficients, disk_dir)
        return coefficients, variance, False

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def disk_usage(self) -> Tuple[int, int]:
        """``(n_files, total_bytes)`` of the disk tier (``(0, 0)`` if none)."""
        with self._lock:
            disk_dir = self._disk_dir
        if disk_dir is None or not disk_dir.is_dir():
            return 0, 0
        count = 0
        total = 0
        for path in disk_dir.iterdir():
            if path.suffix != ".npz":
                continue
            try:
                total += path.stat().st_size
            except OSError:
                continue
            count += 1
        return count, total

    def clear(self) -> None:
        """Drop every filter held in memory (counters and disk kept)."""
        with self._lock:
            self._entries.clear()

    def clear_disk(self) -> int:
        """Remove every file of the disk tier (``.tmp`` leftovers included);
        returns the number of entries removed."""
        with self._lock:
            if self._disk_dir is None or not self._disk_dir.is_dir():
                return 0
            removed = 0
            for path in list(self._disk_dir.iterdir()):
                if path.suffix not in (".npz", ".tmp"):
                    continue
                try:
                    path.unlink()
                except OSError:
                    continue
                if path.suffix == ".npz":
                    removed += 1
            self._persisted = set()
            return removed

    def reset_stats(self) -> None:
        """Zero the hit/miss counters (entries are kept)."""
        with self._lock:
            self._hits = 0
            self._misses = 0
            self._disk_hits = 0
            self._disk_misses = 0
            self._disk_corruptions = 0


#: Process-wide filter cache (created lazily so ``REPRO_CACHE_DIR`` is
#: honored at first use), shared by plan compilation and the standalone
#: real-time generator.
_DEFAULT_FILTER_CACHE: Optional[DopplerFilterCache] = None
_DEFAULT_FILTER_LOCK = threading.Lock()


def default_filter_cache() -> DopplerFilterCache:
    """The process-wide Young–Beaulieu filter cache.

    Shared by every :func:`repro.engine.compile.compile_plan` pass and every
    :class:`repro.core.realtime.RealTimeRayleighGenerator` that is not given
    an explicit cache, so each unique ``(M, f_m, sigma_orig^2)`` is built
    once per process — and, with ``REPRO_CACHE_DIR`` / ``--cache-dir``, once
    ever.
    """
    global _DEFAULT_FILTER_CACHE
    with _DEFAULT_FILTER_LOCK:
        if _DEFAULT_FILTER_CACHE is None:
            _DEFAULT_FILTER_CACHE = DopplerFilterCache(cache_dir=cache_dir_from_env())
        return _DEFAULT_FILTER_CACHE
