"""Pluggable linear-algebra backends for the batched engine.

The engine's compile step reduces to two stacked decompositions —
``eigh`` over a ``(B, N, N)`` covariance stack and ``cholesky`` over the
same shape — and the execute step to one stacked ``matmul`` plus, for
Doppler-mode entries, one stacked ``fft``/``ifft`` over the frequency-domain
block stack.  A :class:`LinalgBackend` supplies exactly those operations,
which makes backend choice a constructor argument of
:class:`repro.api.Simulator` / :class:`repro.engine.SimulationEngine`
instead of a code path:

* ``"numpy"`` (default) — ``np.linalg`` gufuncs, the reference
  implementation every other backend is measured against;
* ``"scipy"`` — per-slice :func:`scipy.linalg.eigh` with an explicit LAPACK
  driver.  The default ``"evd"`` driver calls the same LAPACK routine
  (``?heevd``) as numpy's ``eigh``, so its results are expected
  bit-identical and it shares the numpy decomposition cache; other drivers
  (``"ev"``, ``"evr"``, ``"evx"``) produce valid but not bitwise-equal
  decompositions and are cached under their own key;
* ``"cupy"`` / ``"torch"`` — GPU backends, gated on import and registered
  lazily; they carry a documented elementwise tolerance instead of the
  bitwise guarantee (device math is not bit-identical to the CPU path).

Backends are registered by name in a process-wide registry
(:func:`register_backend` / :func:`get_backend` /
:func:`available_backends`), so downstream code — and tests — can add new
implementations without touching the engine.

**Contract.**  All arguments and results are host (numpy) arrays; backends
that compute elsewhere transfer internally.  ``eigh`` must return
eigenvalues in ascending order per slice (numpy's convention — the engine
flips to the paper's descending order itself), and ``cholesky`` must raise
``np.linalg.LinAlgError`` on a non-positive-definite slice so the engine's
error translation keeps working.  ``fft``/``ifft`` transform along one axis
of an arbitrary-rank array with numpy's normalization (``ifft`` carries the
``1/M`` factor of Eq. 17); for backends claiming ``tolerance == 0.0`` they
must be bit-identical to ``np.fft`` per slice — scipy's pocketfft satisfies
this (asserted by the parity suite), device FFTs do not.  The optional
``matmul_into``/``ifft_into`` hooks write the same results into
caller-owned buffers (the execute kernels' allocation-light path); the base
class provides copying fallbacks, so overriding them is purely a
performance decision and never changes bytes.
"""

from __future__ import annotations

import abc
import threading
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..exceptions import BackendError

__all__ = [
    "LinalgBackend",
    "NumpyBackend",
    "ScipyBackend",
    "CupyBackend",
    "TorchBackend",
    "register_backend",
    "get_backend",
    "resolve_backend",
    "available_backends",
    "BackendSpec",
]

#: What callers may pass wherever a backend is expected: a registered name,
#: a ready instance, or ``None`` for the numpy default.
BackendSpec = Union[None, str, "LinalgBackend"]


class LinalgBackend(abc.ABC):
    """Decompose-stack / matmul contract the engine compiles and executes on.

    Attributes
    ----------
    name:
        Registry name, also recorded in result metadata.
    tolerance:
        Documented elementwise deviation from the numpy backend for the
        same inputs.  ``0.0`` means bit-identical (the backend runs the same
        LAPACK routine); ``None`` means no sample-level parity guarantee at
        all (e.g. a LAPACK driver that may flip eigenvector signs — the
        decomposition is still a valid coloring, ``L L^H = K``, but raw
        samples are not comparable).  Positive values are the per-element
        absolute tolerance GPU parity tests check against.
    """

    name: str = "abstract"
    tolerance: Optional[float] = 0.0

    @property
    def cache_token(self) -> str:
        """Decomposition-cache namespace for this backend.

        Backends that are bit-identical to numpy (``tolerance == 0.0``)
        share the ``"numpy"`` namespace — a cached decomposition is the same
        bytes no matter which of them computed it.  Everything else is
        cached under its own name so a GPU decomposition can never be
        served to a numpy run (or vice versa).
        """
        return "numpy" if self.tolerance == 0.0 else self.name

    @abc.abstractmethod
    def eigh(self, stack: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Eigendecompose every Hermitian matrix in a ``(B, N, N)`` stack.

        Returns ``(eigenvalues, eigenvectors)`` with eigenvalues ascending
        per slice, exactly like ``np.linalg.eigh``.
        """

    @abc.abstractmethod
    def cholesky(self, stack: np.ndarray) -> np.ndarray:
        """Lower-triangular Cholesky factors of a ``(B, N, N)`` stack.

        Must raise ``np.linalg.LinAlgError`` when a slice is not positive
        definite.
        """

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Stacked matrix product (the execute step's coloring multiply)."""
        return np.matmul(a, b)

    def matmul_into(self, a: np.ndarray, b: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Stacked matrix product written into a caller-owned ``out`` array.

        The allocation-light hook of the execute kernels: backends that can
        compute directly into ``out`` override this (numpy/scipy route the
        gufunc's ``out=``); the base implementation computes through
        :meth:`matmul` and copies, so every backend satisfies the contract.
        ``out`` must have the result's shape and dtype.  The written values
        must be bit-identical to :meth:`matmul` on the same operands.
        """
        np.copyto(out, self.matmul(a, b))
        return out

    def fft(self, array: np.ndarray, axis: int = -1) -> np.ndarray:
        """Discrete Fourier transform along ``axis`` (numpy normalization)."""
        return np.fft.fft(array, axis=axis)

    def ifft(self, array: np.ndarray, axis: int = -1) -> np.ndarray:
        """Inverse DFT along ``axis`` — the Doppler substrate's stacked IDFT.

        Carries numpy's ``1/M`` factor, i.e. the normalization of Eq. (17).
        """
        return np.fft.ifft(array, axis=axis)

    def ifft_into(
        self, array: np.ndarray, out: np.ndarray, axis: int = -1
    ) -> np.ndarray:
        """Inverse DFT written into a caller-owned complex ``out`` array.

        Same contract as :meth:`matmul_into`: bit-identical to
        :meth:`ifft`, with the base implementation copying through it so
        backends without an ``out=``-capable transform still work.
        """
        np.copyto(out, self.ifft(array, axis=axis))
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r} tolerance={self.tolerance!r}>"


class NumpyBackend(LinalgBackend):
    """The reference backend: numpy's stacked LAPACK/BLAS gufuncs."""

    name = "numpy"
    tolerance: Optional[float] = 0.0

    def eigh(self, stack: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        eigenvalues, eigenvectors = np.linalg.eigh(stack)
        return eigenvalues, eigenvectors

    def cholesky(self, stack: np.ndarray) -> np.ndarray:
        return np.linalg.cholesky(stack)

    def matmul_into(self, a: np.ndarray, b: np.ndarray, out: np.ndarray) -> np.ndarray:
        # The gufunc writes into ``out`` directly — same BLAS dispatch, same
        # bits, one less (B, N, n) allocation per block.
        return np.matmul(a, b, out=out)

    def ifft_into(
        self, array: np.ndarray, out: np.ndarray, axis: int = -1
    ) -> np.ndarray:
        # pocketfft's out= writes the same transform into the caller's
        # buffer (numpy >= 2.0).
        return np.fft.ifft(array, axis=axis, out=out)


class ScipyBackend(LinalgBackend):
    """Per-slice :func:`scipy.linalg.eigh` with an explicit LAPACK driver.

    Parameters
    ----------
    driver:
        LAPACK eigensolver driver (``"evd"``, ``"ev"``, ``"evr"``,
        ``"evx"``).  The default ``"evd"`` calls the divide-and-conquer
        ``?heevd`` — the routine numpy's ``eigh`` uses — so its output is
        expected bit-identical to the numpy backend and it shares the numpy
        cache namespace.  Other drivers run different eigensolvers whose
        eigenvectors can differ by sign/phase; they get ``tolerance = None``
        (valid coloring, no raw-sample parity) and a private cache
        namespace.

    Raises
    ------
    BackendError
        If scipy is not installed.
    """

    _DRIVERS = ("evd", "ev", "evr", "evx")

    def __init__(self, driver: str = "evd") -> None:
        if driver not in self._DRIVERS:
            raise BackendError(
                f"unknown scipy eigh driver {driver!r}; choose from {self._DRIVERS}"
            )
        try:
            import scipy.fft as _scipy_fft
            import scipy.linalg as _scipy_linalg
        except ImportError as exc:  # pragma: no cover - scipy ships in the image
            raise BackendError(
                "the 'scipy' backend requires scipy, which is not installed"
            ) from exc
        self._linalg = _scipy_linalg
        self._fft = _scipy_fft
        self.driver = driver
        self.name = "scipy" if driver == "evd" else f"scipy-{driver}"
        self.tolerance = 0.0 if driver == "evd" else None

    def eigh(self, stack: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        # scipy.linalg.eigh is 2-D only; loop the slices with the chosen
        # LAPACK driver (the decompositions are independent).
        values = np.empty(stack.shape[:2], dtype=float)
        vectors = np.empty(stack.shape, dtype=stack.dtype)
        for index in range(stack.shape[0]):
            values[index], vectors[index] = self._linalg.eigh(
                stack[index], driver=self.driver, check_finite=False
            )
        return values, vectors

    def cholesky(self, stack: np.ndarray) -> np.ndarray:
        factors = np.empty_like(stack)
        for index in range(stack.shape[0]):
            # scipy raises scipy.linalg.LinAlgError, which *is*
            # np.linalg.LinAlgError, satisfying the contract.
            factors[index] = self._linalg.cholesky(
                stack[index], lower=True, check_finite=False
            )
        return factors

    def matmul_into(self, a: np.ndarray, b: np.ndarray, out: np.ndarray) -> np.ndarray:
        # The coloring multiply is numpy's BLAS gufunc either way; writing
        # into ``out`` keeps the scipy backend on the fused execute path.
        return np.matmul(a, b, out=out)

    def fft(self, array: np.ndarray, axis: int = -1) -> np.ndarray:
        # scipy.fft and np.fft are both pocketfft: bit-identical per slice,
        # so the bitwise guarantee (and the shared cache namespace of the
        # evd driver) extends to the Doppler substrate.
        return self._fft.fft(array, axis=axis)

    def ifft(self, array: np.ndarray, axis: int = -1) -> np.ndarray:
        # scipy.fft has no out= parameter; ifft_into stays on the base
        # class's copying fallback (bit-identical, one extra copy).
        return self._fft.ifft(array, axis=axis)

    def __reduce__(self):
        # The held scipy.linalg module is not picklable; reduce to the
        # constructor arguments so instances can cross process boundaries
        # (Simulator's parallel runs ship the backend to workers).
        return (type(self), (self.driver,))


class CupyBackend(LinalgBackend):  # pragma: no cover - requires a GPU runtime
    """GPU backend on cupy, gated on import.

    Stacks are transferred to the device, decomposed with cusolver, and
    transferred back.  Device math is not bit-identical to LAPACK on the
    host, so parity against the numpy backend is only guaranteed within
    :attr:`tolerance` — and the backend is cached under its own namespace.
    """

    name = "cupy"
    tolerance: Optional[float] = 1e-8

    def __init__(self) -> None:
        try:
            import cupy
        except ImportError as exc:
            raise BackendError(
                "the 'cupy' backend requires cupy, which is not installed"
            ) from exc
        self._cupy = cupy

    def eigh(self, stack: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        cp = self._cupy
        device = cp.asarray(stack)
        values = cp.empty(stack.shape[:2], dtype=cp.float64)
        vectors = cp.empty(stack.shape, dtype=device.dtype)
        for index in range(stack.shape[0]):
            values[index], vectors[index] = cp.linalg.eigh(device[index])
        return cp.asnumpy(values), cp.asnumpy(vectors)

    def cholesky(self, stack: np.ndarray) -> np.ndarray:
        cp = self._cupy
        factors = cp.linalg.cholesky(cp.asarray(stack))
        host = cp.asnumpy(factors)
        if not np.all(np.isfinite(host)):
            # cusolver signals failure through NaNs rather than raising.
            raise np.linalg.LinAlgError("matrix is not positive definite")
        return host

    def __reduce__(self):
        return (type(self), ())

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        cp = self._cupy
        return cp.asnumpy(cp.matmul(cp.asarray(a), cp.asarray(b)))

    def fft(self, array: np.ndarray, axis: int = -1) -> np.ndarray:
        cp = self._cupy
        return cp.asnumpy(cp.fft.fft(cp.asarray(array), axis=axis))

    def ifft(self, array: np.ndarray, axis: int = -1) -> np.ndarray:
        # cuFFT is not bit-identical to pocketfft; parity only within
        # :attr:`tolerance`, like the decompositions.
        cp = self._cupy
        return cp.asnumpy(cp.fft.ifft(cp.asarray(array), axis=axis))


class TorchBackend(LinalgBackend):  # pragma: no cover - requires torch
    """Torch backend (CPU or GPU), gated on import.

    Uses ``torch.linalg`` batched kernels in double precision and converts
    results back to numpy.  Carries an elementwise tolerance, not the
    bitwise guarantee.
    """

    name = "torch"
    tolerance: Optional[float] = 1e-8

    def __init__(self, device: Optional[str] = None) -> None:
        try:
            import torch
        except ImportError as exc:
            raise BackendError(
                "the 'torch' backend requires torch, which is not installed"
            ) from exc
        self._torch = torch
        self.device = device or ("cuda" if torch.cuda.is_available() else "cpu")

    def _to_device(self, array: np.ndarray):
        return self._torch.as_tensor(np.ascontiguousarray(array), device=self.device)

    def eigh(self, stack: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        values, vectors = self._torch.linalg.eigh(self._to_device(stack))
        return values.cpu().numpy(), vectors.cpu().numpy()

    def cholesky(self, stack: np.ndarray) -> np.ndarray:
        try:
            factors = self._torch.linalg.cholesky(self._to_device(stack))
        except Exception as exc:
            raise np.linalg.LinAlgError(str(exc)) from exc
        return factors.cpu().numpy()

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self._torch.matmul(self._to_device(a), self._to_device(b)).cpu().numpy()

    def fft(self, array: np.ndarray, axis: int = -1) -> np.ndarray:
        return self._torch.fft.fft(self._to_device(array), dim=axis).cpu().numpy()

    def ifft(self, array: np.ndarray, axis: int = -1) -> np.ndarray:
        # torch's FFT is not guaranteed bit-identical to pocketfft; parity
        # only within :attr:`tolerance`, like the decompositions.
        return self._torch.fft.ifft(self._to_device(array), dim=axis).cpu().numpy()

    def __reduce__(self):
        return (type(self), (self.device,))


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #

_REGISTRY: Dict[str, Callable[[], LinalgBackend]] = {}
_INSTANCES: Dict[str, LinalgBackend] = {}
_LOCK = threading.Lock()


def register_backend(
    name: str, factory: Callable[[], LinalgBackend], *, replace: bool = False
) -> None:
    """Register a backend factory under ``name``.

    The factory is called lazily on first :func:`get_backend` lookup and may
    raise :class:`repro.exceptions.BackendError` for missing dependencies —
    which is how the GPU backends stay registered but unavailable on
    CPU-only hosts.
    """
    if not name or not isinstance(name, str):
        raise BackendError(f"backend name must be a non-empty string, got {name!r}")
    with _LOCK:
        if name in _REGISTRY and not replace:
            raise BackendError(
                f"backend {name!r} is already registered; pass replace=True to override"
            )
        _REGISTRY[name] = factory
        _INSTANCES.pop(name, None)


def get_backend(spec: BackendSpec = None) -> LinalgBackend:
    """Resolve a backend name (or instance, or ``None``) to an instance.

    Instances are memoized per name, so every engine asking for ``"numpy"``
    shares one stateless backend object.

    Raises
    ------
    BackendError
        For unregistered names, or when the backend's dependency is missing
        (the underlying cause is chained).
    """
    if spec is None:
        spec = "numpy"
    if isinstance(spec, LinalgBackend):
        return spec
    if not isinstance(spec, str):
        raise BackendError(
            f"backend must be a name, a LinalgBackend instance, or None; got "
            f"{type(spec).__name__}"
        )
    with _LOCK:
        instance = _INSTANCES.get(spec)
        if instance is not None:
            return instance
        factory = _REGISTRY.get(spec)
        registered = sorted(_REGISTRY)
    if factory is None:
        raise BackendError(
            f"unknown backend {spec!r}; registered backends: {registered}"
        )
    instance = factory()  # may raise BackendError for missing dependencies
    with _LOCK:
        return _INSTANCES.setdefault(spec, instance)


#: Alias used by the engine internals where ``None`` means "numpy default".
resolve_backend = get_backend


def available_backends() -> List[str]:
    """Names of registered backends whose dependencies import successfully.

    Backends are probed by construction; ones that raise
    :class:`BackendError` (e.g. cupy/torch on a CPU-only host) are simply
    omitted rather than raising.
    """
    with _LOCK:
        registered = sorted(_REGISTRY)
    names: List[str] = []
    for name in registered:
        try:
            get_backend(name)
        except BackendError:
            continue
        names.append(name)
    return names


register_backend("numpy", NumpyBackend)
register_backend("scipy", ScipyBackend)
register_backend("scipy-evr", lambda: ScipyBackend(driver="evr"))
register_backend("cupy", CupyBackend)
register_backend("torch", TorchBackend)
