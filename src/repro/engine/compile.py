"""Plan compilation: stacked decompositions with cache-aware deduplication.

Compiling a :class:`repro.engine.plan.SimulationPlan` turns its declarative
entries into ready-to-execute coloring matrices:

1. entries are grouped by ``(N, coloring_method, psd_method, epsilon)`` so
   each group stacks into one ``(B, N, N)`` array;
2. within a group, covariance matrices are deduplicated by content hash and
   looked up in the :class:`repro.engine.cache.DecompositionCache`;
3. the remaining *misses* are decomposed together by
   :func:`repro.core.coloring.compute_coloring_batch` — one stacked
   ``np.linalg.eigh`` / ``cholesky`` call per group — and stored back in the
   cache;
4. per-entry coloring matrices are assembled into a ``(B, N, N)`` stack the
   executor multiplies white samples through.

Every decomposition is bit-identical to what the single-spec path computes,
so compiled execution reproduces a loop of
:class:`repro.core.generator.RayleighFadingGenerator` exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config import DEFAULTS, NumericDefaults
from ..linalg import ColoringDecomposition
from .backends import BackendSpec, LinalgBackend, resolve_backend
from .cache import DecompositionCache, default_decomposition_cache
from .plan import PlanEntry, SimulationPlan

__all__ = ["CompileReport", "CompiledGroup", "CompiledPlan", "compile_plan"]


@dataclass(frozen=True)
class CompileReport:
    """Statistics of one compilation pass.

    Attributes
    ----------
    n_entries:
        Scenarios in the plan.
    n_groups:
        Same-shape/same-options groups formed.
    n_unique_matrices:
        Distinct covariance computations after content-hash deduplication.
    cache_hits, cache_misses:
        Unique matrices served from / absent from the decomposition cache.
    compile_seconds:
        Wall-clock time of the compilation pass.
    """

    n_entries: int
    n_groups: int
    n_unique_matrices: int
    cache_hits: int
    cache_misses: int
    compile_seconds: float

    @property
    def deduplicated(self) -> int:
        """Entries that reused another entry's decomposition within the batch."""
        return self.n_entries - self.n_unique_matrices


@dataclass(frozen=True)
class CompiledGroup:
    """One batch of same-shape entries, ready to execute.

    Attributes
    ----------
    indices:
        Plan indices of the entries, in plan order.
    entries:
        The corresponding plan entries.
    coloring_stack:
        ``(B, N, N)`` stack of coloring matrices, one per entry.
    sample_variances:
        ``(B,)`` white-sample variances ``sigma_w^2`` per entry.
    decompositions:
        Full per-entry decompositions (diagnostics: repairs, eigenvalues).
    """

    indices: Tuple[int, ...]
    entries: Tuple[PlanEntry, ...]
    coloring_stack: np.ndarray
    sample_variances: np.ndarray
    decompositions: Tuple[ColoringDecomposition, ...]

    @property
    def batch_size(self) -> int:
        """Number of entries in this group."""
        return len(self.indices)

    @property
    def n_branches(self) -> int:
        """Number of correlated branches ``N`` shared by the group."""
        return int(self.coloring_stack.shape[1])


@dataclass(frozen=True)
class CompiledPlan:
    """A fully compiled plan: groups of stacked coloring matrices.

    The executor (:mod:`repro.engine.execute`) consumes this object; it can
    be executed many times (different sample counts, streaming blocks)
    without recompiling.  ``backend`` records the linalg backend the plan
    was compiled with; the executor colors samples through the same backend
    (``None`` means the numpy default).
    """

    plan: SimulationPlan
    groups: Tuple[CompiledGroup, ...]
    report: CompileReport
    backend: Optional[LinalgBackend] = None

    @property
    def n_entries(self) -> int:
        """Number of scenarios in the compiled plan."""
        return self.plan.n_entries

    def decomposition_for(self, plan_index: int) -> ColoringDecomposition:
        """The decomposition used for the entry at ``plan_index``."""
        for group in self.groups:
            if plan_index in group.indices:
                return group.decompositions[group.indices.index(plan_index)]
        raise IndexError(f"plan index {plan_index} out of range")


def compile_plan(
    plan: SimulationPlan,
    *,
    cache: Optional[DecompositionCache] = None,
    defaults: NumericDefaults = DEFAULTS,
    backend: BackendSpec = None,
) -> CompiledPlan:
    """Compile a plan into stacked, cached coloring decompositions.

    Parameters
    ----------
    plan:
        The simulation plan to compile.
    cache:
        Decomposition cache to consult and populate; defaults to the
        process-wide cache.  Pass ``DecompositionCache(maxsize=0)`` to
        disable reuse (e.g. for cold-path benchmarking).
    defaults:
        Numeric tolerance bundle forwarded to the decomposition pipeline.
    backend:
        Linalg backend performing the stacked decompositions — a registered
        name, a :class:`repro.engine.backends.LinalgBackend` instance, or
        ``None`` for the numpy default.  Cache keys are namespaced by the
        backend's :attr:`~repro.engine.backends.LinalgBackend.cache_token`,
        so only backends bit-identical to numpy share cached
        decompositions.
    """
    from ..core.coloring import compute_coloring_batch

    backend_obj = resolve_backend(backend)
    cache_token = backend_obj.cache_token
    if cache is None:
        cache = default_decomposition_cache()

    start = time.perf_counter()

    # 1. Group entries by stacking signature, preserving first-seen order.
    group_members: Dict[Tuple[int, str, str, float], List[int]] = {}
    for index, entry in enumerate(plan):
        group_members.setdefault(entry.group_key, []).append(index)

    entries = plan.entries
    hits = 0
    misses = 0
    unique_total = 0
    groups: List[CompiledGroup] = []
    for group_key, indices in group_members.items():
        _, coloring_method, psd_method, epsilon = group_key
        group_entries = tuple(entries[i] for i in indices)

        # 2. Deduplicate matrices by content hash; consult the cache once
        #    per unique key.
        resolved: Dict[str, ColoringDecomposition] = {}
        missing_keys: List[str] = []
        missing_set: set = set()
        missing_matrices: List[np.ndarray] = []
        entry_keys: List[str] = []
        for entry in group_entries:
            key = entry.cache_key(defaults, cache_token)
            entry_keys.append(key)
            if key in resolved or key in missing_set:
                continue
            cached = cache.lookup(key)
            if cached is not None:
                resolved[key] = cached
                hits += 1
            else:
                missing_keys.append(key)
                missing_set.add(key)
                missing_matrices.append(entry.spec.matrix)
                misses += 1
        unique_total += len(resolved) + len(missing_keys)

        # 3. Batch-decompose the misses with one stacked call.
        if missing_matrices:
            computed = compute_coloring_batch(
                np.stack(missing_matrices),
                method=coloring_method,
                psd_method=psd_method,
                epsilon=epsilon,
                defaults=defaults,
                backend=backend_obj,
            )
            for key, decomposition in zip(missing_keys, computed):
                resolved[key] = decomposition
                cache.store(key, decomposition)

        # 4. Assemble the per-entry coloring stack.
        decompositions = tuple(resolved[key] for key in entry_keys)
        coloring_stack = np.stack([d.coloring_matrix for d in decompositions])
        sample_variances = np.array(
            [entry.sample_variance for entry in group_entries], dtype=float
        )
        groups.append(
            CompiledGroup(
                indices=tuple(indices),
                entries=group_entries,
                coloring_stack=coloring_stack,
                sample_variances=sample_variances,
                decompositions=decompositions,
            )
        )

    report = CompileReport(
        n_entries=plan.n_entries,
        n_groups=len(groups),
        n_unique_matrices=unique_total,
        cache_hits=hits,
        cache_misses=misses,
        compile_seconds=time.perf_counter() - start,
    )
    return CompiledPlan(
        plan=plan, groups=tuple(groups), report=report, backend=backend_obj
    )
