"""Plan compilation: stacked decompositions with cache-aware deduplication.

Compiling a :class:`repro.engine.plan.SimulationPlan` turns its declarative
entries into ready-to-execute coloring matrices:

1. entries are grouped by ``(N, coloring_method, psd_method, epsilon)`` —
   plus ``(M, f_m, sigma_orig^2)`` for Doppler-mode entries and the fading
   model family ``(model, has_shadowing)`` for non-Rayleigh entries — so
   each group stacks into one ``(B, N, N)`` array and applies one stacked
   post-coloring transform;
2. within a group, covariance matrices are deduplicated by content hash and
   looked up in the :class:`repro.engine.cache.DecompositionCache`;
3. the remaining *misses* are decomposed together by
   :func:`repro.core.coloring.compute_coloring_batch` — one stacked
   ``np.linalg.eigh`` / ``cholesky`` call per group — and stored back in the
   cache;
4. per-entry coloring matrices are assembled into a ``(B, N, N)`` stack the
   executor multiplies white samples through;
5. Doppler groups additionally resolve the Young–Beaulieu filter ``F[k]``
   of Eq. (21) **once** per unique ``(M, f_m, sigma_orig^2)`` in the plan
   (the looped path builds ``N + 1`` filters per scenario) through the
   process-wide :class:`repro.engine.filters.DopplerFilterCache` — so a key
   any earlier compile (or, with a ``cache_dir``, any earlier *process*)
   already built is served from the shared cache instead of rebuilt —
   record its Eq. (19) output variance, and set each entry's effective
   sample variance to that output variance (or 1.0 when the entry opts out
   of compensation).

Every decomposition is bit-identical to what the single-spec path computes,
so compiled execution reproduces a loop of
:class:`repro.core.generator.RayleighFadingGenerator` (or, for Doppler
entries, :class:`repro.core.realtime.RealTimeRayleighGenerator`) exactly.
The covariance decomposition does not depend on the Doppler mode, so a
Doppler entry and a snapshot entry over the same matrix share one cache
entry (the cache key is Doppler-agnostic).
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from ..config import DEFAULTS, NumericDefaults
from ..linalg import ColoringDecomposition
from .backends import BackendSpec, LinalgBackend, resolve_backend
from .cache import DecompositionCache, default_decomposition_cache
from .plan import DopplerSpec, PlanEntry, SimulationPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from .filters import DopplerFilterCache
    from .plancache import CompiledPlanCache

__all__ = ["CompileReport", "CompiledGroup", "CompiledPlan", "compile_plan"]


@dataclass(frozen=True)
class CompileReport:
    """Statistics of one compilation pass.

    Attributes
    ----------
    n_entries:
        Scenarios in the plan.
    n_groups:
        Same-shape/same-options groups formed.
    n_unique_matrices:
        Distinct covariance computations after content-hash deduplication.
    cache_hits, cache_misses:
        Unique matrices served from / absent from the decomposition cache.
    compile_seconds:
        Wall-clock time of the compilation pass.
    doppler_filters_built:
        Distinct Young–Beaulieu filters this pass resolved (one per unique
        ``(M, f_m, sigma_orig^2)`` in the plan); 0 for snapshot-only plans.
        The looped path would build one per scenario *per branch*.  On a
        compiled-plan cache hit the value is restored from the artifact —
        it still counts the plan's unique filters, but none were
        constructed during this pass (``plan_cache_hits`` tells the two
        apart; ``summary()`` prints "restored" instead of "built").
    doppler_entries:
        Doppler-mode entries served by those filters — the looped path would
        have built ``N + 1`` filters for each of them.
    doppler_filter_cache_hits:
        How many of the ``doppler_filters_built`` keys were served by the
        process-wide (or on-disk) filter cache instead of being constructed
        during this pass.
    plan_cache_hits:
        1 when this whole compilation was served from the compiled-plan
        cache (see :mod:`repro.engine.plancache`) — either tier — in which
        case no decomposition or filter lookups ran at all and
        ``compile_seconds`` measures the load/re-bind; 0 for a computed
        pass.  Merged parallel results sum the flag across workers.
    plan_memory_hits:
        1 when that compiled-plan hit was served by the in-memory tier —
        zero disk I/O, zero array copies, only the per-call seed/label
        re-bind; 0 when the hit loaded a disk artifact (or on a computed
        pass).  Always ``<= plan_cache_hits``.
    plan_inflight_hits:
        1 when this pass *coalesced* onto a concurrent compilation of the
        same key (the singleflight table of
        :class:`repro.engine.plancache.CompiledPlanCache`): the thread
        waited for the in-flight leader and was then served from the warm
        cache instead of compiling.  Implies ``plan_cache_hits == 1``.
    """

    n_entries: int
    n_groups: int
    n_unique_matrices: int
    cache_hits: int
    cache_misses: int
    compile_seconds: float
    doppler_filters_built: int = 0
    doppler_entries: int = 0
    doppler_filter_cache_hits: int = 0
    plan_cache_hits: int = 0
    plan_memory_hits: int = 0
    plan_inflight_hits: int = 0

    @property
    def deduplicated(self) -> int:
        """Entries that reused another entry's decomposition within the batch."""
        return self.n_entries - self.n_unique_matrices


@dataclass(frozen=True)
class CompiledGroup:
    """One batch of same-shape entries, ready to execute.

    Attributes
    ----------
    indices:
        Plan indices of the entries, in plan order.
    entries:
        The corresponding plan entries.
    coloring_stack:
        ``(B, N, N)`` stack of coloring matrices, one per entry.
    sample_variances:
        ``(B,)`` white-sample variances ``sigma_w^2`` per entry.  For
        Doppler groups these are the *effective* variances of the Section 5
        coloring step: the Eq. (19) filter-output variance, or 1.0 for
        entries with ``compensate_variance=False``.
    decompositions:
        Full per-entry decompositions (diagnostics: repairs, eigenvalues).
    doppler:
        Group Doppler parameters ``(M, f_m, sigma_orig^2)`` as a
        :class:`~repro.engine.plan.DopplerSpec`, or ``None`` for snapshot
        groups.  Per-entry compensation flags live on the entries.
    doppler_filter:
        The shared Young–Beaulieu filter ``F[k]`` (Doppler groups only).
    doppler_output_variance:
        The Eq. (19) output variance ``sigma_g^2`` of that filter.
    fading_family:
        The group's fading-model family ``(model, has_shadowing)``, or
        ``None`` for plain Rayleigh groups.  Grouping is uniform in the
        family (it is part of :attr:`PlanEntry.group_key`); per-entry shape
        parameters live on the entries, and the executor stacks them into
        broadcast columns once per execution state
        (:func:`repro.models.fading.build_fading_stacks`).
    """

    indices: Tuple[int, ...]
    entries: Tuple[PlanEntry, ...]
    coloring_stack: np.ndarray
    sample_variances: np.ndarray
    decompositions: Tuple[ColoringDecomposition, ...]
    doppler: Optional[DopplerSpec] = None
    doppler_filter: Optional[np.ndarray] = None
    doppler_output_variance: Optional[float] = None
    fading_family: Optional[Tuple[str, bool]] = None

    @property
    def batch_size(self) -> int:
        """Number of entries in this group."""
        return len(self.indices)

    @property
    def n_branches(self) -> int:
        """Number of correlated branches ``N`` shared by the group."""
        return int(self.coloring_stack.shape[1])

    @property
    def is_doppler(self) -> bool:
        """Whether this group runs the Section 5 real-time algorithm."""
        return self.doppler is not None


@dataclass(frozen=True)
class CompiledPlan:
    """A fully compiled plan: groups of stacked coloring matrices.

    The executor (:mod:`repro.engine.execute`) consumes this object; it can
    be executed many times (different sample counts, streaming blocks)
    without recompiling.  ``backend`` records the linalg backend the plan
    was compiled with; the executor colors samples through the same backend
    (``None`` means the numpy default).
    """

    plan: SimulationPlan
    groups: Tuple[CompiledGroup, ...]
    report: CompileReport
    backend: Optional[LinalgBackend] = None

    @property
    def n_entries(self) -> int:
        """Number of scenarios in the compiled plan."""
        return self.plan.n_entries

    def decomposition_for(self, plan_index: int) -> ColoringDecomposition:
        """The decomposition used for the entry at ``plan_index``."""
        for group in self.groups:
            if plan_index in group.indices:
                return group.decompositions[group.indices.index(plan_index)]
        raise IndexError(f"plan index {plan_index} out of range")


def compile_plan(
    plan: SimulationPlan,
    *,
    cache: Optional[DecompositionCache] = None,
    defaults: NumericDefaults = DEFAULTS,
    backend: BackendSpec = None,
    filter_cache: Optional["DopplerFilterCache"] = None,
    plan_cache: Optional["CompiledPlanCache"] = None,
) -> CompiledPlan:
    """Compile a plan into stacked, cached coloring decompositions.

    When a compiled-plan disk cache is attached (``plan_cache``, or the
    process-wide default with ``REPRO_CACHE_DIR``), the whole pass is first
    looked up by the content hash of the ``(plan, backend namespace)`` pair:
    on a hit the full :class:`CompiledPlan` — coloring stacks, Doppler
    filters, per-entry variances — loads from one verified artifact with
    *zero* ``eigh``/``cholesky``/filter-build calls, bit-identical to a
    fresh compilation; on a miss the compiled result is spilled for the
    next process.

    Parameters
    ----------
    plan:
        The simulation plan to compile.
    cache:
        Decomposition cache to consult and populate; defaults to the
        process-wide cache.  Pass ``DecompositionCache(maxsize=0)`` to
        disable reuse (e.g. for cold-path benchmarking), or one built with
        ``cache_dir=`` to persist decompositions across processes.
    defaults:
        Numeric tolerance bundle forwarded to the decomposition pipeline.
    backend:
        Linalg backend performing the stacked decompositions — a registered
        name, a :class:`repro.engine.backends.LinalgBackend` instance, or
        ``None`` for the numpy default.  Cache keys are namespaced by the
        backend's :attr:`~repro.engine.backends.LinalgBackend.cache_token`,
        so only backends bit-identical to numpy share cached
        decompositions.
    filter_cache:
        Young–Beaulieu filter cache for Doppler-mode entries; defaults to
        the process-wide :func:`repro.engine.filters.default_filter_cache`.
        The filter does not depend on the linalg backend (it is a closed-form
        coefficient vector), so filter entries are never backend-namespaced.
    plan_cache:
        Compiled-plan disk cache (the executor-level tier).  When ``None``,
        the default *follows the decomposition cache*: a default-cache
        compile uses the process-wide
        :func:`repro.engine.plancache.default_plan_cache` (a no-op unless a
        ``cache_dir`` is attached), while an **explicit** ``cache`` keeps
        the plan tier detached — so a caller who configured caching by hand
        (e.g. ``DecompositionCache(maxsize=0)`` as a documented no-reuse
        baseline) is never silently short-circuited by an env-attached
        ``plans/`` tier.  Pass a ``CompiledPlanCache`` explicitly to
        combine an explicit decomposition cache with plan caching.
    """
    from .filters import default_filter_cache
    from .plancache import (
        CompiledPlanCache,
        compiled_plan_cache_key,
        default_plan_cache,
    )

    backend_obj = resolve_backend(backend)
    cache_token = backend_obj.cache_token
    if plan_cache is None:
        plan_cache = default_plan_cache() if cache is None else CompiledPlanCache()
    if cache is None:
        cache = default_decomposition_cache()
    if filter_cache is None:
        filter_cache = default_filter_cache()

    # Executor-level short-circuit: a stored compiled plan skips grouping,
    # hashing-per-matrix, decomposition and filter resolution entirely.
    loaded = plan_cache.lookup(plan, defaults=defaults, backend=backend_obj)
    if loaded is not None:
        return loaded

    if not plan_cache.enabled:
        # Detached plan cache: no tier to share results through, so no
        # singleflight either — compile directly (the documented no-op).
        return _compile_plan_fresh(
            plan, cache, defaults, backend_obj, cache_token, filter_cache, plan_cache
        )

    # In-flight coalescing (singleflight): when another thread is already
    # compiling this exact (plan, backend) key, wait for its result to land
    # in the cache instead of duplicating the eigh/cholesky work.  Exactly
    # one waiter per round becomes the leader; a leader that fails wakes the
    # waiters, which miss and elect a new leader — so the loop terminates.
    inflight_key = compiled_plan_cache_key(
        plan, defaults=defaults, cache_token=cache_token
    )
    while True:
        event = plan_cache.join_inflight(inflight_key)
        if event is None:
            break  # this thread leads the compile for the key
        event.wait()
        loaded = plan_cache.lookup(plan, defaults=defaults, backend=backend_obj)
        if loaded is not None:
            return dataclasses.replace(
                loaded,
                report=dataclasses.replace(loaded.report, plan_inflight_hits=1),
            )
    try:
        return _compile_plan_fresh(
            plan, cache, defaults, backend_obj, cache_token, filter_cache, plan_cache
        )
    finally:
        plan_cache.finish_inflight(inflight_key)


def _compile_plan_fresh(
    plan: SimulationPlan,
    cache: DecompositionCache,
    defaults: NumericDefaults,
    backend_obj: LinalgBackend,
    cache_token: str,
    filter_cache: "DopplerFilterCache",
    plan_cache: "CompiledPlanCache",
) -> CompiledPlan:
    """The uncached compilation pass: group, deduplicate, decompose, spill."""
    from ..core.coloring import compute_coloring_batch

    start = time.perf_counter()

    # 1. Group entries by stacking signature, preserving first-seen order.
    group_members: Dict[Tuple, List[int]] = {}
    for index, entry in enumerate(plan):
        group_members.setdefault(entry.group_key, []).append(index)

    entries = plan.entries
    hits = 0
    misses = 0
    unique_total = 0
    doppler_entries = 0
    # Young–Beaulieu filters are resolved once per unique
    # (M, f_m, sigma_orig^2) across the whole plan — groups differing only
    # in N share a resolution — through the process-wide filter cache, which
    # serves keys built by earlier compiles (or earlier processes, with a
    # disk tier) without rebuilding.  The per-plan memo also keeps the
    # "literally shared array" guarantee within one compiled plan.
    filter_memo: Dict[Tuple[int, float, float], Tuple[np.ndarray, float]] = {}
    filter_cache_hits = 0
    groups: List[CompiledGroup] = []
    for group_key, indices in group_members.items():
        _, coloring_method, psd_method, epsilon, _, fading_family = group_key
        group_entries = tuple(entries[i] for i in indices)

        # 2. Deduplicate matrices by content hash; consult the cache once
        #    per unique key.
        resolved: Dict[str, ColoringDecomposition] = {}
        missing_keys: List[str] = []
        missing_set: set = set()
        missing_matrices: List[np.ndarray] = []
        entry_keys: List[str] = []
        for entry in group_entries:
            key = entry.cache_key(defaults, cache_token)
            entry_keys.append(key)
            if key in resolved or key in missing_set:
                continue
            cached = cache.lookup(key)
            if cached is not None:
                resolved[key] = cached
                hits += 1
            else:
                missing_keys.append(key)
                missing_set.add(key)
                missing_matrices.append(entry.spec.matrix)
                misses += 1
        unique_total += len(resolved) + len(missing_keys)

        # 3. Batch-decompose the misses with one stacked call.
        if missing_matrices:
            computed = compute_coloring_batch(
                np.stack(missing_matrices),
                method=coloring_method,
                psd_method=psd_method,
                epsilon=epsilon,
                defaults=defaults,
                backend=backend_obj,
            )
            for key, decomposition in zip(missing_keys, computed):
                resolved[key] = decomposition
                cache.store(key, decomposition)

        # 4. Assemble the per-entry coloring stack.
        decompositions = tuple(resolved[key] for key in entry_keys)
        coloring_stack = np.stack([d.coloring_matrix for d in decompositions])

        # 5. Doppler groups: one shared filter build, per-entry effective
        #    variances (Eq. 19 compensation, or 1.0 when opted out).
        group_doppler = group_entries[0].doppler
        if group_doppler is None:
            doppler_filter = None
            output_variance = None
            sample_variances = np.array(
                [entry.sample_variance for entry in group_entries], dtype=float
            )
        else:
            memoized = filter_memo.get(group_doppler.filter_key)
            if memoized is None:
                coefficients, output_variance, was_cached = filter_cache.get(
                    group_doppler.n_points,
                    group_doppler.normalized_doppler,
                    group_doppler.input_variance_per_dim,
                )
                memoized = (coefficients, output_variance)
                filter_memo[group_doppler.filter_key] = memoized
                if was_cached:
                    filter_cache_hits += 1
            doppler_filter, output_variance = memoized
            doppler_entries += len(group_entries)
            sample_variances = np.array(
                [
                    output_variance if entry.doppler.compensate_variance else 1.0
                    for entry in group_entries
                ],
                dtype=float,
            )
        groups.append(
            CompiledGroup(
                indices=tuple(indices),
                entries=group_entries,
                coloring_stack=coloring_stack,
                sample_variances=sample_variances,
                decompositions=decompositions,
                doppler=group_doppler,
                doppler_filter=doppler_filter,
                doppler_output_variance=output_variance,
                fading_family=fading_family,
            )
        )

    report = CompileReport(
        n_entries=plan.n_entries,
        n_groups=len(groups),
        n_unique_matrices=unique_total,
        cache_hits=hits,
        cache_misses=misses,
        compile_seconds=time.perf_counter() - start,
        doppler_filters_built=len(filter_memo),
        doppler_entries=doppler_entries,
        doppler_filter_cache_hits=filter_cache_hits,
    )
    compiled = CompiledPlan(
        plan=plan, groups=tuple(groups), report=report, backend=backend_obj
    )
    # Spill the whole pass for the next process (no-op without a disk tier;
    # idempotent per key, so repeated compiles serialize once).
    plan_cache.put(compiled, defaults=defaults)
    return compiled
