"""The compiled-plan cache: whole :class:`CompiledPlan` objects, two tiers.

The decomposition and Doppler-filter tiers (PR 4) persist the *per-matrix*
artifacts of compilation, but the compiled plan itself — grouping, coloring
stacks, filter assembly, per-entry effective variances — was still rebuilt
on every process start: a warm compile re-hashed every entry, probed the
decomposition store once per unique matrix, and re-assembled every stack.
:class:`CompiledPlanCache` is the executor-level cache on top of the
unified :class:`repro.engine.store.ArtifactStore` (namespace ``plans/``)
that short-circuits all of it: :func:`repro.engine.compile.compile_plan`
content-hashes the ``(plan, backend namespace)`` pair and, on a hit, serves
the full :class:`~repro.engine.compile.CompiledPlan` without touching
``eigh``/``cholesky`` or filter construction at all.

Two tiers, probed memory-first:

* the **memory tier** — a byte-bounded LRU of compiled groups inside the
  cache instance.  A hit re-binds the cached groups to the caller's plan
  (seeds and labels come from it) with **zero disk I/O and zero array
  copies**: the coloring stacks, decompositions, variances, and filter
  arrays are the very objects of the original compile, shared read-only.
  This is what makes a warm ``run(plan)``/``stream(plan)`` on one engine a
  hash-plus-rebind, nothing more.
* the **disk tier** — one verified artifact per key under ``plans/``,
  unchanged from PR 5.  A disk hit is promoted into the memory tier, so
  the first warm run of a process pays the load once and subsequent runs
  hit memory.

The memory tier is **enabled by default exactly when a disk tier is
attached** (a ``cache_dir``), matching the engine configurations that opt
into plan caching (``SimulationEngine(cache_dir=...)``, ``REPRO_CACHE_DIR``,
the CLI's ``--cache-dir``); a detached cache stays the documented no-op so
explicitly hand-configured engines and benchmarks keep their counters.
Pass ``memory_max_bytes`` explicitly to run a pure-memory tier without a
disk tier (or ``0`` to disable the memory tier of an attached cache).
Coherence: :meth:`CompiledPlanCache.invalidate` evicts a key from *both*
tiers — a quarantined disk artifact never leaves a stale memory entry
behind.

Keying
------
:func:`compiled_plan_cache_key` folds, per entry *in plan order*, the
decomposition cache key (covariance bytes, coloring/PSD methods, epsilon,
numeric tolerances, backend ``cache_token``) plus the white-sample variance,
the full Doppler tuple (``M``, ``f_m``, ``sigma_orig^2``, the Eq. (19)
compensation flag), and the fading-model token
(:meth:`repro.models.fading.FadingSpec.fading_token`: model, shape
parameter, shadowing spread).  Seeds and labels are deliberately *excluded*: they do
not influence compilation, so a sweep that only re-seeds its scenarios
warm-starts from the same artifact.  Because grouping is a pure function of
the hashed fields and of entry order, two plans with equal keys compile to
structurally identical plans — which is what lets a loaded artifact be
re-bound to the *caller's* plan object (carrying the caller's seeds and
labels) without any recomputation.

Serialization
-------------
One artifact stores, deduplicated across groups: the unique
:class:`~repro.linalg.ColoringDecomposition` arrays plus diagnostics, the
unique Young–Beaulieu filter coefficient arrays, and per group its entry
indices, decomposition map, sample variances and Eq. (19) output variance.
Coloring stacks are *not* stored — they are re-stacked from the
decomposition arrays exactly as a fresh compile stacks them, which keeps
the artifact small and the bytes identical.  The store handles atomic
writes, digest verification, quarantine and eviction; a corrupt or
truncated artifact is a **miss** (the plan recompiles and re-spills), never
an error, and a disk hit is bit-identical to a fresh compilation — the two
standing cache invariants carried over from PR 4.
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple, Union

import numpy as np

from ..config import DEFAULTS, NumericDefaults, cache_dir_from_env
from ..linalg import ColoringDecomposition
from .store import DEFAULT_DISK_MAX_BYTES, ArtifactStore, StoreStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from .backends import LinalgBackend
    from .compile import CompiledGroup, CompiledPlan, CompileReport
    from .plan import SimulationPlan

__all__ = [
    "DEFAULT_MEMORY_MAX_BYTES",
    "PlanCacheStats",
    "CompiledPlanCache",
    "compiled_plan_cache_key",
    "default_plan_cache",
]

#: On-disk payload-layout version of compiled-plan artifacts.  Version 2
#: folds the per-entry fading token into the key (the version is part of
#: the key prefix, so pre-fading v1 artifacts simply never hit again —
#: clean invalidation, no migration).
_DISK_FORMAT_VERSION = 2

#: Default byte bound of the in-memory tier when a disk tier is attached.
DEFAULT_MEMORY_MAX_BYTES = 256 * 1024 * 1024


def compiled_plan_cache_key(
    plan: "SimulationPlan",
    *,
    defaults: NumericDefaults = DEFAULTS,
    cache_token: str = "numpy",
) -> str:
    """Content hash identifying one ``(plan, backend namespace)`` compilation.

    Two plans receive the same key exactly when :func:`compile_plan` would
    produce structurally identical compiled plans for them: every
    compilation input — per-entry covariance bytes, algorithm options,
    numeric tolerances, sample variance, Doppler parameters, fading-model
    token, and the
    backend's :attr:`~repro.engine.backends.LinalgBackend.cache_token` — is
    folded in, in plan order.  Seeds and labels are excluded (they are
    execution-time inputs), so re-seeded sweeps share one artifact.
    """
    hasher = hashlib.sha256()
    hasher.update(f"compiled-plan|{_DISK_FORMAT_VERSION}|{cache_token}".encode("utf8"))
    for entry in plan:
        # The entry cache key already folds the matrix bytes, methods,
        # epsilon, tolerances, and the backend token (memoized per entry).
        hasher.update(entry.cache_key(defaults, cache_token).encode("ascii"))
        doppler = entry.doppler
        doppler_token = (
            None
            if doppler is None
            else (
                doppler.n_points,
                doppler.normalized_doppler,
                doppler.input_variance_per_dim,
                doppler.compensate_variance,
            )
        )
        fading = entry.fading
        fading_token = None if fading is None else fading.fading_token()
        hasher.update(
            repr(
                (float(entry.sample_variance), doppler_token, fading_token)
            ).encode("utf8")
        )
    return hasher.hexdigest()


def _identity_dump(payload: Any) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    return payload


def _identity_load(
    arrays: Dict[str, np.ndarray], meta: Dict[str, Any]
) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    return arrays, meta


def _artifact_from_compiled(
    compiled: "CompiledPlan",
) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Split a compiled plan into store payload (arrays + JSON meta).

    Decompositions and filter arrays shared between groups are stored once
    and referenced by index, mirroring the sharing a fresh compile creates.
    """
    arrays: Dict[str, np.ndarray] = {}
    decomp_index: Dict[int, int] = {}
    decomp_meta = []
    filter_index: Dict[int, int] = {}
    groups_meta = []
    for g, group in enumerate(compiled.groups):
        decomp_map = []
        for decomposition in group.decompositions:
            index = decomp_index.get(id(decomposition))
            if index is None:
                index = len(decomp_meta)
                decomp_index[id(decomposition)] = index
                arrays[f"decomp_{index}_coloring"] = decomposition.coloring_matrix
                arrays[f"decomp_{index}_effective"] = (
                    decomposition.effective_covariance
                )
                arrays[f"decomp_{index}_requested"] = (
                    decomposition.requested_covariance
                )
                decomp_meta.append(
                    {
                        "method": decomposition.method,
                        "was_repaired": bool(decomposition.was_repaired),
                        "negative_eigenvalue_count": int(
                            decomposition.negative_eigenvalue_count
                        ),
                        "min_eigenvalue": float(decomposition.min_eigenvalue),
                        "extra": decomposition.extra,
                    }
                )
            decomp_map.append(index)
        arrays[f"group_{g}_indices"] = np.asarray(group.indices, dtype=np.int64)
        arrays[f"group_{g}_decomp_map"] = np.asarray(decomp_map, dtype=np.int64)
        arrays[f"group_{g}_sample_variances"] = np.ascontiguousarray(
            group.sample_variances, dtype=float
        )
        group_meta: Dict[str, Any] = {"filter": None}
        if group.is_doppler:
            findex = filter_index.get(id(group.doppler_filter))
            if findex is None:
                findex = len(filter_index)
                filter_index[id(group.doppler_filter)] = findex
                arrays[f"filter_{findex}"] = group.doppler_filter
            group_meta["filter"] = findex
            arrays[f"group_{g}_output_variance"] = np.asarray(
                [group.doppler_output_variance], dtype=float
            )
        groups_meta.append(group_meta)
    report = compiled.report
    meta = {
        "n_entries": int(compiled.n_entries),
        "n_groups": len(compiled.groups),
        "n_decompositions": len(decomp_meta),
        "decompositions": decomp_meta,
        "groups": groups_meta,
        "report": {
            "n_unique_matrices": int(report.n_unique_matrices),
            "doppler_filters_built": int(report.doppler_filters_built),
            "doppler_entries": int(report.doppler_entries),
        },
    }
    return arrays, meta


def _compiled_from_artifact(
    arrays: Dict[str, np.ndarray],
    meta: Dict[str, Any],
    plan: "SimulationPlan",
    backend: "LinalgBackend",
    load_seconds: float,
) -> Optional["CompiledPlan"]:
    """Re-bind a stored artifact to the caller's plan object.

    Entries (and with them seeds, labels, and Doppler specs) come from the
    *caller's* plan; only the numeric artifacts come from disk.  Returns
    ``None`` on any structural mismatch — the caller treats that as a miss
    and recompiles.
    """
    from .compile import CompiledGroup, CompiledPlan, CompileReport

    if int(meta["n_entries"]) != plan.n_entries:
        return None
    entries = plan.entries
    decompositions = []
    for index, decomp_meta in enumerate(meta["decompositions"]):
        coloring = arrays[f"decomp_{index}_coloring"]
        effective = arrays[f"decomp_{index}_effective"]
        # Frozen like every cache-served decomposition: the arrays are
        # shared, an in-place mutation must fail loudly.
        coloring.flags.writeable = False
        effective.flags.writeable = False
        decompositions.append(
            ColoringDecomposition(
                coloring_matrix=coloring,
                effective_covariance=effective,
                requested_covariance=arrays[f"decomp_{index}_requested"],
                method=str(decomp_meta["method"]),
                was_repaired=bool(decomp_meta["was_repaired"]),
                negative_eigenvalue_count=int(
                    decomp_meta["negative_eigenvalue_count"]
                ),
                min_eigenvalue=float(decomp_meta["min_eigenvalue"]),
                extra=dict(decomp_meta.get("extra") or {}),
            )
        )
    filters: Dict[int, np.ndarray] = {}
    groups = []
    covered = 0
    for g, group_meta in enumerate(meta["groups"]):
        indices = tuple(int(i) for i in arrays[f"group_{g}_indices"])
        group_entries = tuple(entries[i] for i in indices)
        covered += len(indices)
        group_decomps = tuple(
            decompositions[int(j)] for j in arrays[f"group_{g}_decomp_map"]
        )
        if len(group_decomps) != len(indices):
            return None
        # Re-stacked from the stored arrays exactly as a fresh compile
        # stacks them — np.stack copies bytes, so the stack is bit-identical.
        coloring_stack = np.stack([d.coloring_matrix for d in group_decomps])
        doppler = group_entries[0].doppler
        if (doppler is None) != (group_meta["filter"] is None):
            return None
        fading = group_entries[0].fading
        fading_family = None if fading is None else fading.family
        if doppler is None:
            doppler_filter = None
            output_variance = None
        else:
            findex = int(group_meta["filter"])
            doppler_filter = filters.get(findex)
            if doppler_filter is None:
                doppler_filter = arrays[f"filter_{findex}"]
                doppler_filter.flags.writeable = False
                filters[findex] = doppler_filter
            output_variance = float(arrays[f"group_{g}_output_variance"][0])
        groups.append(
            CompiledGroup(
                indices=indices,
                entries=group_entries,
                coloring_stack=coloring_stack,
                sample_variances=arrays[f"group_{g}_sample_variances"],
                decompositions=group_decomps,
                doppler=doppler,
                doppler_filter=doppler_filter,
                doppler_output_variance=output_variance,
                fading_family=fading_family,
            )
        )
    if covered != plan.n_entries:
        return None
    stored_report = meta.get("report") or {}
    report = CompileReport(
        n_entries=plan.n_entries,
        n_groups=len(groups),
        n_unique_matrices=int(stored_report.get("n_unique_matrices", 0)),
        cache_hits=0,
        cache_misses=0,
        compile_seconds=load_seconds,
        doppler_filters_built=int(stored_report.get("doppler_filters_built", 0)),
        doppler_entries=int(stored_report.get("doppler_entries", 0)),
        doppler_filter_cache_hits=0,
        plan_cache_hits=1,
    )
    return CompiledPlan(plan=plan, groups=tuple(groups), report=report, backend=backend)


class _MemoryEntry:
    """One resident compiled plan: its groups, canonical report, and size."""

    __slots__ = ("groups", "report", "n_entries", "nbytes")

    def __init__(
        self,
        groups: Tuple["CompiledGroup", ...],
        report: "CompileReport",
        n_entries: int,
        nbytes: int,
    ) -> None:
        self.groups = groups
        self.report = report
        self.n_entries = n_entries
        self.nbytes = nbytes


def _canonical_report(report: "CompileReport") -> "CompileReport":
    """Strip the pass-specific counters so a hit can re-stamp its own.

    What survives is the plan's structure (entries, groups, unique
    matrices, Doppler filter counts) — the same fields a disk artifact
    stores; what a served compile never did (decomposition lookups, filter
    cache probes) is zeroed, exactly like a disk hit's report.
    """
    return dataclasses.replace(
        report,
        cache_hits=0,
        cache_misses=0,
        compile_seconds=0.0,
        doppler_filter_cache_hits=0,
        plan_cache_hits=0,
        plan_memory_hits=0,
    )


def _resident_bytes(groups: Tuple["CompiledGroup", ...]) -> int:
    """Bytes the groups' arrays keep resident, deduplicated by identity.

    Shared arrays (a decomposition reused across entries, a filter shared
    between groups) count once — the same sharing the artifact format
    deduplicates on disk.
    """
    seen = set()
    total = 0

    def add(array: Optional[np.ndarray]) -> None:
        nonlocal total
        if array is None or id(array) in seen:
            return
        seen.add(id(array))
        total += array.nbytes

    for group in groups:
        add(group.coloring_stack)
        add(group.sample_variances)
        add(group.doppler_filter)
        for decomposition in group.decompositions:
            add(decomposition.coloring_matrix)
            add(decomposition.effective_covariance)
            add(decomposition.requested_covariance)
    return total


def _freeze_groups(groups: Tuple["CompiledGroup", ...]) -> None:
    """Freeze the arrays a memory entry shares with every future hit.

    Same rule as cache-served decompositions and disk-loaded artifacts:
    shared arrays are read-only, an in-place mutation must fail loudly
    instead of silently poisoning later re-binds.
    """
    for group in groups:
        for array in (
            group.coloring_stack,
            group.sample_variances,
            group.doppler_filter,
        ):
            if array is not None:
                array.flags.writeable = False
        for decomposition in group.decompositions:
            decomposition.coloring_matrix.flags.writeable = False
            decomposition.effective_covariance.flags.writeable = False


def _rebind_memory_entry(
    entry: _MemoryEntry,
    plan: "SimulationPlan",
    backend: "LinalgBackend",
    elapsed: float,
) -> Optional["CompiledPlan"]:
    """Re-bind a resident compiled plan to the caller's plan object.

    The memory-tier analogue of :func:`_compiled_from_artifact`, minus all
    array work: groups are copied structurally (a ``dataclasses.replace``
    per group swaps in the caller's entries and Doppler specs) while every
    numeric array — coloring stacks, decompositions, variances, filters —
    is shared by reference.  Returns ``None`` on structural mismatch (key
    collision), which the caller treats as a miss and evicts.
    """
    from .compile import CompiledPlan

    if entry.n_entries != plan.n_entries:
        return None
    entries = plan.entries
    covered = 0
    groups = []
    for group in entry.groups:
        group_entries = tuple(entries[i] for i in group.indices)
        covered += len(group.indices)
        doppler = group_entries[0].doppler
        if (doppler is None) != (group.doppler is None):
            return None
        fading = group_entries[0].fading
        fading_family = None if fading is None else fading.family
        if fading_family != group.fading_family:
            return None
        groups.append(
            dataclasses.replace(group, entries=group_entries, doppler=doppler)
        )
    if covered != plan.n_entries:
        return None
    report = dataclasses.replace(
        entry.report,
        compile_seconds=elapsed,
        plan_cache_hits=1,
        plan_memory_hits=1,
    )
    return CompiledPlan(
        plan=plan, groups=tuple(groups), report=report, backend=backend
    )


@dataclass(frozen=True)
class PlanCacheStats(StoreStats):
    """Immutable snapshot of compiled-plan cache activity counters.

    Extends the disk-tier counters of :class:`repro.engine.store.StoreStats`
    (``hits`` are compilations served whole from a verified artifact,
    ``corruptions`` are rejected-and-quarantined artifacts) with the memory
    tier's: ``memory_hits`` / ``memory_misses`` count probes of the
    in-memory LRU (a memory miss falls through to the disk tier, so disk
    counters are unchanged by the tier above them), ``memory_evictions``
    counts byte-bound LRU evictions, and ``memory_entries`` /
    ``memory_bytes`` describe current residency.

    The singleflight counters describe cross-thread compile coalescing
    (see :meth:`CompiledPlanCache.join_inflight`): ``inflight_leads``
    counts compilations that registered as the in-flight leader of their
    key, ``inflight_coalesced`` counts compilations that attached to a
    concurrent leader instead of duplicating its work.
    """

    memory_hits: int = 0
    memory_misses: int = 0
    memory_evictions: int = 0
    memory_entries: int = 0
    memory_bytes: int = 0
    inflight_leads: int = 0
    inflight_coalesced: int = 0

    @property
    def lookups(self) -> int:
        """Total cache probes: memory hits plus disk probes."""
        return self.memory_hits + self.hits + self.misses


class CompiledPlanCache:
    """Two-tier cache of whole compiled plans (the executor-level cache).

    A byte-bounded in-memory LRU above the ``plans/`` disk namespace.
    Lookups probe memory first: a memory hit re-binds the resident groups
    to the caller's plan with zero disk I/O and zero array copies (only
    the per-call seed/label re-bind); a memory miss falls through to the
    disk tier, and a disk hit is promoted into memory so the load is paid
    once per process.  A fully detached cache (no ``cache_dir``, no
    explicit ``memory_max_bytes``) is a no-op: lookups miss silently —
    before hashing the plan — and stores are dropped.

    Parameters
    ----------
    cache_dir:
        Root of the shared artifact cache; artifacts live under
        ``<cache_dir>/plans/<key>.npz``, as the third namespace next to
        ``decompositions/`` and ``filters/``.
    disk_max_bytes:
        LRU byte bound of the ``plans/`` namespace.
    memory_max_bytes:
        Byte bound of the in-memory tier.  ``None`` (default) resolves to
        :data:`DEFAULT_MEMORY_MAX_BYTES` while a disk tier is attached and
        to ``0`` (disabled) while detached — so engines that opted into
        plan caching get the memory tier for free, and hand-configured
        cache-less setups keep their exact counters.  Pass a positive
        value for a pure-memory tier without disk, or ``0`` to disable the
        memory tier of an attached cache (e.g. a warm-disk benchmark
        baseline).
    """

    def __init__(
        self,
        cache_dir: Union[None, str, Path] = None,
        *,
        disk_max_bytes: int = DEFAULT_DISK_MAX_BYTES,
        memory_max_bytes: Optional[int] = None,
    ) -> None:
        self._store = ArtifactStore(
            "plans",
            dump=_identity_dump,
            load=_identity_load,
            cache_dir=cache_dir,
            format_version=_DISK_FORMAT_VERSION,
            max_bytes=disk_max_bytes,
        )
        self._memory_config = (
            None if memory_max_bytes is None else int(memory_max_bytes)
        )
        self._memory: "OrderedDict[str, _MemoryEntry]" = OrderedDict()
        self._memory_bytes = 0
        self._memory_lock = threading.Lock()
        self._memory_hits = 0
        self._memory_misses = 0
        self._memory_evictions = 0
        # Singleflight table of in-flight compilations: key -> the event the
        # leader sets once its result landed in the cache (or its compile
        # failed).  Guarded by its own lock so waiters registering never
        # contend with memory-tier traffic.
        self._inflight: Dict[str, threading.Event] = {}
        self._inflight_lock = threading.Lock()
        self._inflight_leads = 0
        self._inflight_coalesced = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def cache_dir(self) -> Optional[Path]:
        """Root directory of the disk tier (``None`` when detached)."""
        return self._store.cache_dir

    @property
    def artifact_store(self) -> ArtifactStore:
        """The underlying artifact store of the ``plans/`` namespace."""
        return self._store

    @property
    def memory_max_bytes(self) -> int:
        """Resolved byte bound of the memory tier (``0`` = disabled)."""
        if self._memory_config is not None:
            return self._memory_config
        return (
            DEFAULT_MEMORY_MAX_BYTES if self._store.cache_dir is not None else 0
        )

    @property
    def enabled(self) -> bool:
        """Whether any tier is active (a detached cache is a strict no-op)."""
        return self.memory_max_bytes > 0 or self._store.cache_dir is not None

    @property
    def stats(self) -> PlanCacheStats:
        """Snapshot of the per-tier hit/miss/corruption/eviction counters."""
        with self._memory_lock:
            memory = {
                "memory_hits": self._memory_hits,
                "memory_misses": self._memory_misses,
                "memory_evictions": self._memory_evictions,
                "memory_entries": len(self._memory),
                "memory_bytes": self._memory_bytes,
            }
        with self._inflight_lock:
            inflight = {
                "inflight_leads": self._inflight_leads,
                "inflight_coalesced": self._inflight_coalesced,
            }
        return PlanCacheStats(**asdict(self._store.stats), **memory, **inflight)

    def set_cache_dir(self, cache_dir: Union[None, str, Path]) -> None:
        """Attach (or detach, with ``None``) the persistent disk tier.

        The memory tier follows the defaulting rule of ``memory_max_bytes``:
        attaching enables it (unless explicitly bounded), detaching a
        defaulted cache disables it and drops every resident entry.
        Resident entries are content-addressed, so entries kept across a
        directory change remain valid — only the byte bound is re-applied.
        """
        self._store.set_cache_dir(cache_dir)
        with self._memory_lock:
            self._trim_locked()

    # ------------------------------------------------------------------ #
    # Core operations
    # ------------------------------------------------------------------ #
    def lookup(
        self,
        plan: "SimulationPlan",
        *,
        defaults: NumericDefaults = DEFAULTS,
        backend: "LinalgBackend",
    ) -> Optional["CompiledPlan"]:
        """Serve the compiled form of ``plan``, or ``None`` (a miss).

        A fully detached cache returns ``None`` immediately — before
        hashing the plan — so plain in-memory compiles pay nothing for
        this cache.  Tiers are probed memory-first; either kind of hit is
        re-bound to the caller's ``plan`` (seeds and labels come from it),
        records ``plan_cache_hits=1`` (plus ``plan_memory_hits=1`` for the
        memory tier) with ``compile_seconds`` measuring the serve, and is
        bit-identical to a fresh compilation.  A disk hit is promoted into
        the memory tier.
        """
        memory_bound = self.memory_max_bytes
        disk_attached = self._store.cache_dir is not None
        if memory_bound <= 0 and not disk_attached:
            return None
        start = time.perf_counter()
        key = compiled_plan_cache_key(
            plan, defaults=defaults, cache_token=backend.cache_token
        )
        if memory_bound > 0:
            with self._memory_lock:
                entry = self._memory.get(key)
                if entry is None:
                    self._memory_misses += 1
                else:
                    self._memory.move_to_end(key)
                    self._memory_hits += 1
            if entry is not None:
                rebound = _rebind_memory_entry(
                    entry, plan, backend, time.perf_counter() - start
                )
                if rebound is not None:
                    return rebound
                # A resident entry that does not fit the plan (key
                # collision) is dropped; the disk probe below re-checks the
                # artifact and quarantines it through the store's protocol.
                self._memory_drop(key)
        if not disk_attached:
            return None
        artifact = self._store.lookup(key)
        if artifact is None:
            return None
        arrays, meta = artifact
        try:
            rebound = _compiled_from_artifact(
                arrays, meta, plan, backend, time.perf_counter() - start
            )
        except Exception:
            rebound = None
        if rebound is None:
            # A digest-verified artifact that still does not fit the plan
            # (key collision, layout bug) degrades to a recompile — and is
            # quarantined so the recompiled result can re-spill over it
            # instead of the stale bytes poisoning the key forever.  Both
            # tiers evict together (the coherence rule).
            self.invalidate(key)
            return None
        if memory_bound > 0:
            self._memory_insert(key, rebound)
        return rebound

    def put(
        self,
        compiled: "CompiledPlan",
        *,
        defaults: NumericDefaults = DEFAULTS,
    ) -> bool:
        """Store one compiled plan in both tiers; ``True`` if disk-written.

        Idempotent per key (the store remembers persisted and unwritable
        keys; the memory tier keeps its first insert), so compiling the
        same plan repeatedly serializes it once.
        """
        memory_bound = self.memory_max_bytes
        disk_attached = self._store.cache_dir is not None
        if memory_bound <= 0 and not disk_attached:
            return False
        backend = compiled.backend
        key = compiled_plan_cache_key(
            compiled.plan,
            defaults=defaults,
            cache_token="numpy" if backend is None else backend.cache_token,
        )
        if memory_bound > 0:
            self._memory_insert(key, compiled)
        if not disk_attached:
            return False
        try:
            artifact = _artifact_from_compiled(compiled)
        except Exception:
            return False
        return self._store.put(key, artifact)

    def invalidate(self, key: str) -> None:
        """Evict ``key`` from *both* tiers after a rejected hit.

        The memory entry is dropped and the disk artifact quarantined in
        one call, so the tiers can never disagree about a poisoned key —
        the coherence rule of the memory tier.  Like
        :meth:`repro.engine.store.ArtifactStore.invalidate`, this is meant
        for entries whose content a lookup just rejected (the store
        re-counts that hit as a corruption miss).
        """
        self._memory_drop(key)
        self._store.invalidate(key)

    # ------------------------------------------------------------------ #
    # In-flight compile coalescing (singleflight)
    # ------------------------------------------------------------------ #
    def join_inflight(self, key: str) -> Optional[threading.Event]:
        """Register interest in the in-flight compilation of ``key``.

        Returns ``None`` when the caller becomes the **leader** of the key
        — it must compile, :meth:`put` the result, and then call
        :meth:`finish_inflight` (from a ``finally``) so waiters re-probe a
        warm cache.  Returns the leader's event otherwise: the caller
        waits on it, then re-probes :meth:`lookup` instead of duplicating
        the compile.  A detached cache never registers (with no tier to
        share results through, waiters would have nothing to re-probe), so
        the documented no-op contract is preserved.
        """
        if not self.enabled:
            return None
        with self._inflight_lock:
            event = self._inflight.get(key)
            if event is None:
                self._inflight[key] = threading.Event()
                self._inflight_leads += 1
                return None
            self._inflight_coalesced += 1
            return event

    def finish_inflight(self, key: str) -> None:
        """Release the in-flight entry of ``key`` and wake every waiter.

        Safe for keys that never registered (the detached-cache case) —
        leaders call this from a ``finally`` so a failed compile can never
        strand its waiters; they wake, miss, and elect a new leader.
        """
        with self._inflight_lock:
            event = self._inflight.pop(key, None)
        if event is not None:
            event.set()

    # ------------------------------------------------------------------ #
    # Memory-tier internals
    # ------------------------------------------------------------------ #
    def _memory_drop(self, key: str) -> None:
        with self._memory_lock:
            entry = self._memory.pop(key, None)
            if entry is not None:
                self._memory_bytes -= entry.nbytes

    def _memory_insert(self, key: str, compiled: "CompiledPlan") -> None:
        bound = self.memory_max_bytes
        if bound <= 0:
            return
        nbytes = _resident_bytes(compiled.groups)
        if nbytes > bound:
            # Larger than the whole tier: caching it would evict everything
            # for a single entry that may never be re-requested.
            return
        entry = _MemoryEntry(
            groups=compiled.groups,
            report=_canonical_report(compiled.report),
            n_entries=compiled.n_entries,
            nbytes=nbytes,
        )
        _freeze_groups(compiled.groups)
        with self._memory_lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                return
            self._memory[key] = entry
            self._memory_bytes += nbytes
            self._trim_locked(bound)

    def _trim_locked(self, bound: Optional[int] = None) -> None:
        """Evict least-recently-used entries down to the byte bound."""
        if bound is None:
            bound = self.memory_max_bytes
        while self._memory and self._memory_bytes > bound:
            _, evicted = self._memory.popitem(last=False)
            self._memory_bytes -= evicted.nbytes
            self._memory_evictions += 1

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def disk_usage(self) -> Tuple[int, int]:
        """``(n_files, total_bytes)`` of the disk tier (``(0, 0)`` if none)."""
        return self._store.usage()

    def memory_usage(self) -> Tuple[int, int]:
        """``(n_entries, resident_bytes)`` of the memory tier."""
        with self._memory_lock:
            return len(self._memory), self._memory_bytes

    def clear_disk(self) -> int:
        """Remove every artifact of the disk tier (``.tmp`` and quarantine
        leftovers included); returns the number of entries removed."""
        return self._store.clear()

    def clear_memory(self) -> int:
        """Drop every memory-tier entry; returns the number removed."""
        with self._memory_lock:
            removed = len(self._memory)
            self._memory.clear()
            self._memory_bytes = 0
            return removed

    def reset_stats(self) -> None:
        """Zero the per-tier hit/miss counters (entries are kept)."""
        self._store.reset_stats()
        with self._memory_lock:
            self._memory_hits = 0
            self._memory_misses = 0
            self._memory_evictions = 0
        with self._inflight_lock:
            self._inflight_leads = 0
            self._inflight_coalesced = 0


#: Process-wide compiled-plan cache (created lazily so ``REPRO_CACHE_DIR``
#: is honored at first use), shared by every ``compile_plan`` call that is
#: not given an explicit cache.
_DEFAULT_PLAN_CACHE: Optional[CompiledPlanCache] = None
_DEFAULT_PLAN_LOCK = threading.Lock()


def default_plan_cache() -> CompiledPlanCache:
    """The process-wide compiled-plan cache.

    Detached (a no-op) unless ``REPRO_CACHE_DIR`` is set at first use or
    the CLI's ``--cache-dir`` attaches a directory; engines built with
    ``cache_dir=`` use their own private instances instead.
    """
    global _DEFAULT_PLAN_CACHE
    with _DEFAULT_PLAN_LOCK:
        if _DEFAULT_PLAN_CACHE is None:
            _DEFAULT_PLAN_CACHE = CompiledPlanCache(cache_dir=cache_dir_from_env())
        return _DEFAULT_PLAN_CACHE
