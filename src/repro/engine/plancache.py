"""The compiled-plan cache: whole :class:`CompiledPlan` objects on disk.

The decomposition and Doppler-filter tiers (PR 4) persist the *per-matrix*
artifacts of compilation, but the compiled plan itself — grouping, coloring
stacks, filter assembly, per-entry effective variances — was still rebuilt
on every process start: a warm compile re-hashed every entry, probed the
decomposition store once per unique matrix, and re-assembled every stack.
:class:`CompiledPlanCache` is the executor-level tier on top of the unified
:class:`repro.engine.store.ArtifactStore` (namespace ``plans/``) that
short-circuits all of it: :func:`repro.engine.compile.compile_plan`
content-hashes the ``(plan, backend namespace)`` pair and, on a disk hit,
loads the full :class:`~repro.engine.compile.CompiledPlan` without touching
``eigh``/``cholesky`` or filter construction at all.

Keying
------
:func:`compiled_plan_cache_key` folds, per entry *in plan order*, the
decomposition cache key (covariance bytes, coloring/PSD methods, epsilon,
numeric tolerances, backend ``cache_token``) plus the white-sample variance
and the full Doppler tuple (``M``, ``f_m``, ``sigma_orig^2``, the Eq. (19)
compensation flag).  Seeds and labels are deliberately *excluded*: they do
not influence compilation, so a sweep that only re-seeds its scenarios
warm-starts from the same artifact.  Because grouping is a pure function of
the hashed fields and of entry order, two plans with equal keys compile to
structurally identical plans — which is what lets a loaded artifact be
re-bound to the *caller's* plan object (carrying the caller's seeds and
labels) without any recomputation.

Serialization
-------------
One artifact stores, deduplicated across groups: the unique
:class:`~repro.linalg.ColoringDecomposition` arrays plus diagnostics, the
unique Young–Beaulieu filter coefficient arrays, and per group its entry
indices, decomposition map, sample variances and Eq. (19) output variance.
Coloring stacks are *not* stored — they are re-stacked from the
decomposition arrays exactly as a fresh compile stacks them, which keeps
the artifact small and the bytes identical.  The store handles atomic
writes, digest verification, quarantine and eviction; a corrupt or
truncated artifact is a **miss** (the plan recompiles and re-spills), never
an error, and a disk hit is bit-identical to a fresh compilation — the two
standing cache invariants carried over from PR 4.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple, Union

import numpy as np

from ..config import DEFAULTS, NumericDefaults, cache_dir_from_env
from ..linalg import ColoringDecomposition
from .store import DEFAULT_DISK_MAX_BYTES, ArtifactStore, StoreStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from .backends import LinalgBackend
    from .compile import CompiledPlan
    from .plan import SimulationPlan

__all__ = [
    "PlanCacheStats",
    "CompiledPlanCache",
    "compiled_plan_cache_key",
    "default_plan_cache",
]

#: On-disk payload-layout version of compiled-plan artifacts.
_DISK_FORMAT_VERSION = 1


def compiled_plan_cache_key(
    plan: "SimulationPlan",
    *,
    defaults: NumericDefaults = DEFAULTS,
    cache_token: str = "numpy",
) -> str:
    """Content hash identifying one ``(plan, backend namespace)`` compilation.

    Two plans receive the same key exactly when :func:`compile_plan` would
    produce structurally identical compiled plans for them: every
    compilation input — per-entry covariance bytes, algorithm options,
    numeric tolerances, sample variance, Doppler parameters, and the
    backend's :attr:`~repro.engine.backends.LinalgBackend.cache_token` — is
    folded in, in plan order.  Seeds and labels are excluded (they are
    execution-time inputs), so re-seeded sweeps share one artifact.
    """
    hasher = hashlib.sha256()
    hasher.update(f"compiled-plan|{_DISK_FORMAT_VERSION}|{cache_token}".encode("utf8"))
    for entry in plan:
        # The entry cache key already folds the matrix bytes, methods,
        # epsilon, tolerances, and the backend token (memoized per entry).
        hasher.update(entry.cache_key(defaults, cache_token).encode("ascii"))
        doppler = entry.doppler
        doppler_token = (
            None
            if doppler is None
            else (
                doppler.n_points,
                doppler.normalized_doppler,
                doppler.input_variance_per_dim,
                doppler.compensate_variance,
            )
        )
        hasher.update(
            repr((float(entry.sample_variance), doppler_token)).encode("utf8")
        )
    return hasher.hexdigest()


def _identity_dump(payload: Any) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    return payload


def _identity_load(
    arrays: Dict[str, np.ndarray], meta: Dict[str, Any]
) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    return arrays, meta


def _artifact_from_compiled(
    compiled: "CompiledPlan",
) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Split a compiled plan into store payload (arrays + JSON meta).

    Decompositions and filter arrays shared between groups are stored once
    and referenced by index, mirroring the sharing a fresh compile creates.
    """
    arrays: Dict[str, np.ndarray] = {}
    decomp_index: Dict[int, int] = {}
    decomp_meta = []
    filter_index: Dict[int, int] = {}
    groups_meta = []
    for g, group in enumerate(compiled.groups):
        decomp_map = []
        for decomposition in group.decompositions:
            index = decomp_index.get(id(decomposition))
            if index is None:
                index = len(decomp_meta)
                decomp_index[id(decomposition)] = index
                arrays[f"decomp_{index}_coloring"] = decomposition.coloring_matrix
                arrays[f"decomp_{index}_effective"] = (
                    decomposition.effective_covariance
                )
                arrays[f"decomp_{index}_requested"] = (
                    decomposition.requested_covariance
                )
                decomp_meta.append(
                    {
                        "method": decomposition.method,
                        "was_repaired": bool(decomposition.was_repaired),
                        "negative_eigenvalue_count": int(
                            decomposition.negative_eigenvalue_count
                        ),
                        "min_eigenvalue": float(decomposition.min_eigenvalue),
                        "extra": decomposition.extra,
                    }
                )
            decomp_map.append(index)
        arrays[f"group_{g}_indices"] = np.asarray(group.indices, dtype=np.int64)
        arrays[f"group_{g}_decomp_map"] = np.asarray(decomp_map, dtype=np.int64)
        arrays[f"group_{g}_sample_variances"] = np.ascontiguousarray(
            group.sample_variances, dtype=float
        )
        group_meta: Dict[str, Any] = {"filter": None}
        if group.is_doppler:
            findex = filter_index.get(id(group.doppler_filter))
            if findex is None:
                findex = len(filter_index)
                filter_index[id(group.doppler_filter)] = findex
                arrays[f"filter_{findex}"] = group.doppler_filter
            group_meta["filter"] = findex
            arrays[f"group_{g}_output_variance"] = np.asarray(
                [group.doppler_output_variance], dtype=float
            )
        groups_meta.append(group_meta)
    report = compiled.report
    meta = {
        "n_entries": int(compiled.n_entries),
        "n_groups": len(compiled.groups),
        "n_decompositions": len(decomp_meta),
        "decompositions": decomp_meta,
        "groups": groups_meta,
        "report": {
            "n_unique_matrices": int(report.n_unique_matrices),
            "doppler_filters_built": int(report.doppler_filters_built),
            "doppler_entries": int(report.doppler_entries),
        },
    }
    return arrays, meta


def _compiled_from_artifact(
    arrays: Dict[str, np.ndarray],
    meta: Dict[str, Any],
    plan: "SimulationPlan",
    backend: "LinalgBackend",
    load_seconds: float,
) -> Optional["CompiledPlan"]:
    """Re-bind a stored artifact to the caller's plan object.

    Entries (and with them seeds, labels, and Doppler specs) come from the
    *caller's* plan; only the numeric artifacts come from disk.  Returns
    ``None`` on any structural mismatch — the caller treats that as a miss
    and recompiles.
    """
    from .compile import CompiledGroup, CompiledPlan, CompileReport

    if int(meta["n_entries"]) != plan.n_entries:
        return None
    entries = plan.entries
    decompositions = []
    for index, decomp_meta in enumerate(meta["decompositions"]):
        coloring = arrays[f"decomp_{index}_coloring"]
        effective = arrays[f"decomp_{index}_effective"]
        # Frozen like every cache-served decomposition: the arrays are
        # shared, an in-place mutation must fail loudly.
        coloring.flags.writeable = False
        effective.flags.writeable = False
        decompositions.append(
            ColoringDecomposition(
                coloring_matrix=coloring,
                effective_covariance=effective,
                requested_covariance=arrays[f"decomp_{index}_requested"],
                method=str(decomp_meta["method"]),
                was_repaired=bool(decomp_meta["was_repaired"]),
                negative_eigenvalue_count=int(
                    decomp_meta["negative_eigenvalue_count"]
                ),
                min_eigenvalue=float(decomp_meta["min_eigenvalue"]),
                extra=dict(decomp_meta.get("extra") or {}),
            )
        )
    filters: Dict[int, np.ndarray] = {}
    groups = []
    covered = 0
    for g, group_meta in enumerate(meta["groups"]):
        indices = tuple(int(i) for i in arrays[f"group_{g}_indices"])
        group_entries = tuple(entries[i] for i in indices)
        covered += len(indices)
        group_decomps = tuple(
            decompositions[int(j)] for j in arrays[f"group_{g}_decomp_map"]
        )
        if len(group_decomps) != len(indices):
            return None
        # Re-stacked from the stored arrays exactly as a fresh compile
        # stacks them — np.stack copies bytes, so the stack is bit-identical.
        coloring_stack = np.stack([d.coloring_matrix for d in group_decomps])
        doppler = group_entries[0].doppler
        if (doppler is None) != (group_meta["filter"] is None):
            return None
        if doppler is None:
            doppler_filter = None
            output_variance = None
        else:
            findex = int(group_meta["filter"])
            doppler_filter = filters.get(findex)
            if doppler_filter is None:
                doppler_filter = arrays[f"filter_{findex}"]
                doppler_filter.flags.writeable = False
                filters[findex] = doppler_filter
            output_variance = float(arrays[f"group_{g}_output_variance"][0])
        groups.append(
            CompiledGroup(
                indices=indices,
                entries=group_entries,
                coloring_stack=coloring_stack,
                sample_variances=arrays[f"group_{g}_sample_variances"],
                decompositions=group_decomps,
                doppler=doppler,
                doppler_filter=doppler_filter,
                doppler_output_variance=output_variance,
            )
        )
    if covered != plan.n_entries:
        return None
    stored_report = meta.get("report") or {}
    report = CompileReport(
        n_entries=plan.n_entries,
        n_groups=len(groups),
        n_unique_matrices=int(stored_report.get("n_unique_matrices", 0)),
        cache_hits=0,
        cache_misses=0,
        compile_seconds=load_seconds,
        doppler_filters_built=int(stored_report.get("doppler_filters_built", 0)),
        doppler_entries=int(stored_report.get("doppler_entries", 0)),
        doppler_filter_cache_hits=0,
        plan_cache_hits=1,
    )
    return CompiledPlan(plan=plan, groups=tuple(groups), report=report, backend=backend)


@dataclass(frozen=True)
class PlanCacheStats(StoreStats):
    """Immutable snapshot of compiled-plan cache activity counters.

    The plan cache has no memory tier, so its counters are exactly its
    store's (:class:`repro.engine.store.StoreStats` — hits are
    compilations served whole from a verified artifact, corruptions are
    rejected-and-quarantined artifacts); this subclass only adds the
    ``lookups`` convenience.
    """

    @property
    def lookups(self) -> int:
        """Total disk probes."""
        return self.hits + self.misses


class CompiledPlanCache:
    """Disk cache of whole compiled plans (the executor-level tier).

    Unlike the decomposition and filter caches there is no memory tier:
    within a process, callers hold the :class:`CompiledPlan` object itself
    (``Simulator.compile`` exists precisely for repeated runs), and the
    memory-tier role for cross-plan sharing already belongs to the
    decomposition cache.  A detached cache (no ``cache_dir``) is a no-op:
    lookups miss silently and stores are dropped.

    Parameters
    ----------
    cache_dir:
        Root of the shared artifact cache; artifacts live under
        ``<cache_dir>/plans/<key>.npz``, as the third namespace next to
        ``decompositions/`` and ``filters/``.
    disk_max_bytes:
        LRU byte bound of the ``plans/`` namespace.
    """

    def __init__(
        self,
        cache_dir: Union[None, str, Path] = None,
        *,
        disk_max_bytes: int = DEFAULT_DISK_MAX_BYTES,
    ) -> None:
        self._store = ArtifactStore(
            "plans",
            dump=_identity_dump,
            load=_identity_load,
            cache_dir=cache_dir,
            format_version=_DISK_FORMAT_VERSION,
            max_bytes=disk_max_bytes,
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def cache_dir(self) -> Optional[Path]:
        """Root directory of the disk tier (``None`` when detached)."""
        return self._store.cache_dir

    @property
    def artifact_store(self) -> ArtifactStore:
        """The underlying artifact store of the ``plans/`` namespace."""
        return self._store

    @property
    def stats(self) -> PlanCacheStats:
        """Snapshot of the hit/miss/corruption/eviction counters."""
        return PlanCacheStats(**asdict(self._store.stats))

    def set_cache_dir(self, cache_dir: Union[None, str, Path]) -> None:
        """Attach (or detach, with ``None``) the persistent disk tier."""
        self._store.set_cache_dir(cache_dir)

    # ------------------------------------------------------------------ #
    # Core operations
    # ------------------------------------------------------------------ #
    def lookup(
        self,
        plan: "SimulationPlan",
        *,
        defaults: NumericDefaults = DEFAULTS,
        backend: "LinalgBackend",
    ) -> Optional["CompiledPlan"]:
        """Load the compiled form of ``plan`` from disk, or ``None`` (a miss).

        A detached cache returns ``None`` immediately — before hashing the
        plan — so plain in-memory compiles pay nothing for this tier.  On a
        hit the artifact is re-bound to the caller's ``plan`` (seeds and
        labels come from it), the report records ``plan_cache_hits=1`` with
        ``compile_seconds`` measuring the load, and the result is
        bit-identical to a fresh compilation.
        """
        if self._store.cache_dir is None:
            return None
        start = time.perf_counter()
        key = compiled_plan_cache_key(
            plan, defaults=defaults, cache_token=backend.cache_token
        )
        artifact = self._store.lookup(key)
        if artifact is None:
            return None
        arrays, meta = artifact
        try:
            rebound = _compiled_from_artifact(
                arrays, meta, plan, backend, time.perf_counter() - start
            )
        except Exception:
            rebound = None
        if rebound is None:
            # A digest-verified artifact that still does not fit the plan
            # (key collision, layout bug) degrades to a recompile — and is
            # quarantined so the recompiled result can re-spill over it
            # instead of the stale bytes poisoning the key forever.
            self._store.invalidate(key)
        return rebound

    def put(
        self,
        compiled: "CompiledPlan",
        *,
        defaults: NumericDefaults = DEFAULTS,
    ) -> bool:
        """Spill one compiled plan to disk; ``True`` if written.

        Idempotent per key (the store remembers persisted and unwritable
        keys), so compiling the same plan repeatedly serializes it once.
        """
        if self._store.cache_dir is None:
            return False
        backend = compiled.backend
        key = compiled_plan_cache_key(
            compiled.plan,
            defaults=defaults,
            cache_token="numpy" if backend is None else backend.cache_token,
        )
        try:
            artifact = _artifact_from_compiled(compiled)
        except Exception:
            return False
        return self._store.put(key, artifact)

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def disk_usage(self) -> Tuple[int, int]:
        """``(n_files, total_bytes)`` of the disk tier (``(0, 0)`` if none)."""
        return self._store.usage()

    def clear_disk(self) -> int:
        """Remove every artifact of the disk tier (``.tmp`` and quarantine
        leftovers included); returns the number of entries removed."""
        return self._store.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss counters (artifacts are kept)."""
        self._store.reset_stats()


#: Process-wide compiled-plan cache (created lazily so ``REPRO_CACHE_DIR``
#: is honored at first use), shared by every ``compile_plan`` call that is
#: not given an explicit cache.
_DEFAULT_PLAN_CACHE: Optional[CompiledPlanCache] = None
_DEFAULT_PLAN_LOCK = threading.Lock()


def default_plan_cache() -> CompiledPlanCache:
    """The process-wide compiled-plan cache.

    Detached (a no-op) unless ``REPRO_CACHE_DIR`` is set at first use or
    the CLI's ``--cache-dir`` attaches a directory; engines built with
    ``cache_dir=`` use their own private instances instead.
    """
    global _DEFAULT_PLAN_CACHE
    with _DEFAULT_PLAN_LOCK:
        if _DEFAULT_PLAN_CACHE is None:
            _DEFAULT_PLAN_CACHE = CompiledPlanCache(cache_dir=cache_dir_from_env())
        return _DEFAULT_PLAN_CACHE
