"""Baseline [6]: Sorooshyari & Daut's method, including its real-time defect.

Sorooshyari & Daut (PIMRC 2003) generate ``N`` equal-power correlated
Rayleigh envelopes and relax the positive-definiteness requirement by
approximating an indefinite covariance matrix with a positive-definite one:
every non-positive eigenvalue is replaced by a small ``epsilon > 0`` so that
a Cholesky factorization is always possible.

For real-time (Doppler-shaped) generation they feed the outputs of
Young–Beaulieu IDFT Rayleigh generators into their coloring step while
assuming those outputs have **unit variance**.  In reality the Doppler filter
changes the variance to ``sigma_g^2 = 2 sigma_orig^2 / M^2 * sum F[k]^2``
(Eq. 19 of the paper), so the realized covariance is scaled by that factor —
the central defect the proposed algorithm fixes by measuring and compensating
the filter-output variance.

Both behaviours are reproduced here:

* :meth:`SorooshyariDautGenerator.generate` — snapshot mode with the epsilon
  PSD approximation and Cholesky coloring;
* :meth:`SorooshyariDautGenerator.generate_realtime` — Doppler mode *without*
  variance compensation, so the achieved covariance differs from the request
  by the factor ``sigma_g^2``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..channels.idft_generator import IDFTRayleighGenerator
from ..core.covariance import CovarianceSpec
from ..core.psd import force_positive_semidefinite
from ..linalg import cholesky_factor, try_cholesky
from ..random import complex_gaussian, ensure_rng, spawn_rngs
from ..types import ComplexArray, SeedLike
from .base import BaselineGenerator, require_equal_powers

__all__ = ["SorooshyariDautGenerator"]


class SorooshyariDautGenerator(BaselineGenerator):
    """Equal-power generator with epsilon PSD approximation and Cholesky coloring.

    Parameters
    ----------
    spec:
        Covariance specification (or raw complex covariance matrix) with
        equal branch powers.
    epsilon:
        Replacement value for non-positive eigenvalues (the method's
        positive-definiteness repair).
    rng:
        Seed or generator.
    """

    name = "sorooshyari-daut"
    reference = "[6]"

    def __init__(self, spec, *, epsilon: float = 1e-6, rng: SeedLike = None) -> None:
        super().__init__(rng=rng)
        if not isinstance(spec, CovarianceSpec):
            spec = CovarianceSpec.from_covariance_matrix(np.asarray(spec, dtype=complex))
        self._spec = spec
        self._power = require_equal_powers(spec.gaussian_variances, self.name)
        self._epsilon = float(epsilon)

        # Epsilon repair (their approximation), then Cholesky (their coloring).
        forcing = force_positive_semidefinite(spec.matrix, method="epsilon", epsilon=self._epsilon)
        self._effective_covariance = forcing.matrix
        self._approximation_error = forcing.frobenius_error
        result = try_cholesky(self._effective_covariance, allow_jitter=True)
        if not result.success:
            # Mirror the documented MATLAB behaviour: the factorization can
            # still fail through round-off; surface it as the dedicated error.
            self._coloring = cholesky_factor(self._effective_covariance)
        else:
            self._coloring = result.factor

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def n_branches(self) -> int:
        """Number of correlated branches."""
        return self._spec.n_branches

    @property
    def epsilon(self) -> float:
        """The eigenvalue replacement value used by the PSD repair."""
        return self._epsilon

    @property
    def effective_covariance(self) -> np.ndarray:
        """The (epsilon-repaired) covariance matrix actually targeted (copy)."""
        return self._effective_covariance.copy()

    @property
    def approximation_error(self) -> float:
        """Frobenius distance between the repaired and the requested covariance."""
        return self._approximation_error

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #
    def generate(self, n_samples: int, rng: Optional[SeedLike] = None) -> ComplexArray:
        """Snapshot mode: ``(N, n_samples)`` correlated complex Gaussian samples."""
        n_samples = self._validate_n_samples(n_samples)
        gen = self._resolve_rng(rng)
        white = complex_gaussian((self.n_branches, n_samples), variance=1.0, rng=gen)
        return self._coloring @ white

    def generate_realtime(
        self,
        normalized_doppler: float,
        n_points: int = 4096,
        input_variance_per_dim: float = 0.5,
        rng: Optional[SeedLike] = None,
    ) -> ComplexArray:
        """Doppler mode *without* variance compensation (the method's defect).

        The Young–Beaulieu branch outputs are colored directly, assuming unit
        variance; the realized covariance therefore equals the desired one
        multiplied by the filter-output variance of Eq. (19) — i.e. it is
        wrong by several orders of magnitude for typical parameters.

        Returns
        -------
        numpy.ndarray
            Complex samples of shape ``(N, n_points)``.
        """
        gen = ensure_rng(rng) if rng is not None else self._rng
        branch_rngs = spawn_rngs(gen, self.n_branches)
        white = np.empty((self.n_branches, int(n_points)), dtype=complex)
        for index, branch_rng in enumerate(branch_rngs):
            branch = IDFTRayleighGenerator(
                n_points=int(n_points),
                normalized_doppler=float(normalized_doppler),
                input_variance_per_dim=float(input_variance_per_dim),
                rng=branch_rng,
            )
            white[index] = branch.generate_block()
        # No division by the filter-output standard deviation: this is the
        # uncompensated combination of [6].
        return self._coloring @ white
