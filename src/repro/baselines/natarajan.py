"""Baseline [5]: Natarajan, Nassar & Chandrasekhar's arbitrary-power method.

Natarajan et al. (IEEE Commun. Lett. 2000) extended the Cholesky-coloring
approach to envelopes with arbitrary (unequal) powers, targeting spread
spectrum applications.  Two restrictions remain, both reproduced here exactly
as the paper describes them:

* the covariances of the complex Gaussian branches are **forced to be
  real** (Eq. 8 of [5]) — the imaginary parts of the requested covariance
  entries are discarded, so any scenario whose physical covariances are
  genuinely complex (e.g. the paper's Eq. 22 spectral-correlation matrix) is
  realized incorrectly;
* the (realified) covariance matrix must still be **positive definite** for
  the Cholesky factorization to exist.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.covariance import CovarianceSpec
from ..linalg import cholesky_factor
from ..random import complex_gaussian
from ..types import ComplexArray, SeedLike
from .base import BaselineGenerator

__all__ = ["NatarajanGenerator"]


class NatarajanGenerator(BaselineGenerator):
    """Arbitrary-power, Cholesky-based generator with real-forced covariances.

    Parameters
    ----------
    spec:
        Covariance specification (or raw complex covariance matrix).  Unequal
        powers are supported; the off-diagonal covariances are replaced by
        their real parts before factorization (the method's documented
        limitation).
    rng:
        Seed or generator.

    Raises
    ------
    repro.exceptions.CholeskyError
        If the real-forced covariance matrix is not positive definite.
    """

    name = "natarajan"
    reference = "[5]"

    def __init__(self, spec, rng: SeedLike = None) -> None:
        super().__init__(rng=rng)
        if not isinstance(spec, CovarianceSpec):
            spec = CovarianceSpec.from_covariance_matrix(np.asarray(spec, dtype=complex))
        self._spec = spec
        # Eq. (8) of [5]: the covariances are taken to be real.
        self._realified = np.real(spec.matrix).astype(float)
        self._coloring = cholesky_factor(self._realified)

    @property
    def n_branches(self) -> int:
        """Number of correlated branches."""
        return self._spec.n_branches

    @property
    def realified_covariance(self) -> np.ndarray:
        """The covariance matrix actually realized (real parts only; copy)."""
        return self._realified.copy()

    def covariance_distortion(self) -> float:
        """Frobenius norm of the imaginary covariance content this method discards."""
        return float(np.linalg.norm(np.imag(self._spec.matrix), ord="fro"))

    def generate(self, n_samples: int, rng: Optional[SeedLike] = None) -> ComplexArray:
        """Generate ``(N, n_samples)`` correlated complex Gaussian samples."""
        n_samples = self._validate_n_samples(n_samples)
        gen = self._resolve_rng(rng)
        white = complex_gaussian((self.n_branches, n_samples), variance=1.0, rng=gen)
        return self._coloring @ white
