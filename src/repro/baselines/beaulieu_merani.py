"""Baseline [3]/[4]: Beaulieu's method generalized to N branches by Beaulieu & Merani.

Beaulieu (IEEE Commun. Lett. 1999) generated two equal-power correlated
Rayleigh envelopes; Beaulieu & Merani (WCNC 2000) generalized the approach to
``N >= 2`` branches by Cholesky-factorizing the covariance matrix of the
underlying complex Gaussians and coloring independent Gaussian vectors with
the triangular factor.

Shortcomings reproduced here (Section 1 of the paper):

* **equal powers only** — the construction normalizes every branch to the
  same power;
* the covariance matrix must be **positive definite** so that the Cholesky
  factorization exists; on an indefinite or singular request the method
  raises :class:`repro.exceptions.CholeskyError` (matching the behaviour the
  paper criticizes) instead of repairing the matrix.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.covariance import CovarianceSpec
from ..linalg import cholesky_factor
from ..random import complex_gaussian
from ..types import ComplexArray, SeedLike
from .base import BaselineGenerator, require_equal_powers

__all__ = ["BeaulieuMeraniGenerator"]


class BeaulieuMeraniGenerator(BaselineGenerator):
    """Equal-power, Cholesky-based correlated Rayleigh generator for N branches.

    Parameters
    ----------
    spec:
        Covariance specification (or raw complex covariance matrix).  All
        branch powers must be equal and the matrix must be positive definite.
    rng:
        Seed or generator.

    Raises
    ------
    repro.exceptions.PowerError
        If branch powers are unequal.
    repro.exceptions.CholeskyError
        If the covariance matrix is not positive definite.
    """

    name = "beaulieu-merani"
    reference = "[3],[4]"

    def __init__(self, spec, rng: SeedLike = None) -> None:
        super().__init__(rng=rng)
        if not isinstance(spec, CovarianceSpec):
            spec = CovarianceSpec.from_covariance_matrix(np.asarray(spec, dtype=complex))
        self._spec = spec
        self._power = require_equal_powers(spec.gaussian_variances, self.name)
        # The defining operation of the conventional approach: a Cholesky
        # factorization of the covariance matrix, with no PSD repair.
        self._coloring = cholesky_factor(spec.matrix)

    @property
    def n_branches(self) -> int:
        """Number of correlated branches."""
        return self._spec.n_branches

    @property
    def coloring_matrix(self) -> np.ndarray:
        """The lower-triangular Cholesky coloring factor (copy)."""
        return self._coloring.copy()

    def generate(self, n_samples: int, rng: Optional[SeedLike] = None) -> ComplexArray:
        """Generate ``(N, n_samples)`` correlated complex Gaussian samples."""
        n_samples = self._validate_n_samples(n_samples)
        gen = self._resolve_rng(rng)
        white = complex_gaussian((self.n_branches, n_samples), variance=1.0, rng=gen)
        return self._coloring @ white
