"""Baseline [1]: Salz & Winters' real-composite coloring method.

Salz & Winters (IEEE Trans. Veh. Technol. 1994) generate the fades of an
``M``-element antenna array by stacking the real and imaginary parts of the
``M`` complex Gaussians into a single vector of ``2M`` real Gaussian
variables, forming its ``2M x 2M`` real covariance matrix from the
closed-form spatial covariances, and coloring a vector of independent real
Gaussians with a matrix square root of that covariance.

Shortcomings reproduced here (as analyzed in Section 1 of the paper):

* the construction assumes **equal branch powers** — the covariance blocks
  are all scaled by the single ``sigma^2/2`` of the array model;
* when the desired covariance matrix is **not positive semi-definite**, the
  real square root does not exist (the coloring matrix becomes complex), so
  the method cannot realize the requested correlation.  This implementation
  raises :class:`repro.exceptions.NotPositiveSemiDefiniteError` in that case
  instead of silently producing wrong statistics.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.covariance import CovarianceSpec, decompose_covariance_entry
from ..exceptions import NotPositiveSemiDefiniteError
from ..types import ComplexArray, SeedLike
from .base import BaselineGenerator, require_equal_powers

__all__ = ["SalzWintersGenerator"]


class SalzWintersGenerator(BaselineGenerator):
    """Equal-power correlated Rayleigh generator via a 2N-dimensional real coloring.

    Parameters
    ----------
    spec:
        Covariance specification (or raw complex covariance matrix).  All
        branch powers must be equal.
    rng:
        Seed or generator.
    """

    name = "salz-winters"
    reference = "[1]"

    def __init__(self, spec, rng: SeedLike = None) -> None:
        super().__init__(rng=rng)
        if not isinstance(spec, CovarianceSpec):
            spec = CovarianceSpec.from_covariance_matrix(np.asarray(spec, dtype=complex))
        self._spec = spec
        self._power = require_equal_powers(spec.gaussian_variances, self.name)
        self._real_covariance = self._build_real_covariance(spec)
        self._coloring = self._real_square_root(self._real_covariance)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _build_real_covariance(spec: CovarianceSpec) -> np.ndarray:
        """Covariance of the stacked real vector ``[x_1..x_N, y_1..y_N]``.

        The blocks are::

            [[Rxx, Rxy],
             [Ryx, Ryy]]

        with diagonals ``sigma^2 / 2`` (the per-dimension variance) and the
        off-diagonal components recovered from the complex covariance under
        the circular-symmetry conditions (``Rxx = Ryy``, ``Rxy = -Ryx``).
        """
        n = spec.n_branches
        rxx = np.zeros((n, n))
        rxy = np.zeros((n, n))
        for k in range(n):
            for j in range(n):
                if k == j:
                    continue
                xx, _, xy, _ = decompose_covariance_entry(spec.matrix[k, j])
                rxx[k, j] = xx
                rxy[k, j] = xy
        per_dim = np.real(np.diag(spec.matrix)) / 2.0
        np.fill_diagonal(rxx, per_dim)
        composite = np.block([[rxx, rxy], [rxy.T, rxx]])
        return composite

    @staticmethod
    def _real_square_root(matrix: np.ndarray) -> np.ndarray:
        """Symmetric square root of a real covariance matrix.

        Raises
        ------
        NotPositiveSemiDefiniteError
            When the matrix has negative eigenvalues, in which case the real
            square root does not exist and the method of [1] breaks down.
        """
        eigenvalues, eigenvectors = np.linalg.eigh(0.5 * (matrix + matrix.T))
        min_eig = float(np.min(eigenvalues))
        scale = max(float(np.max(np.abs(eigenvalues))), 1.0)
        if min_eig < -1e-10 * scale:
            raise NotPositiveSemiDefiniteError(
                "the Salz-Winters construction requires a positive semi-definite "
                f"covariance matrix (min eigenvalue {min_eig:.3e}); the coloring matrix "
                "would be complex and the requested correlation cannot be realized",
                min_eigenvalue=min_eig,
            )
        return eigenvectors * np.sqrt(np.clip(eigenvalues, 0.0, None))

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #
    @property
    def n_branches(self) -> int:
        """Number of correlated branches."""
        return self._spec.n_branches

    @property
    def real_covariance(self) -> np.ndarray:
        """The 2N x 2N real composite covariance matrix (copy)."""
        return self._real_covariance.copy()

    def generate(self, n_samples: int, rng: Optional[SeedLike] = None) -> ComplexArray:
        """Generate ``(N, n_samples)`` correlated complex Gaussian samples."""
        n_samples = self._validate_n_samples(n_samples)
        gen = self._resolve_rng(rng)
        n = self.n_branches
        white = gen.standard_normal((2 * n, n_samples))
        colored = self._coloring @ white
        return colored[:n] + 1j * colored[n:]
