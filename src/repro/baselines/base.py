"""Common interface for the conventional baseline generators.

All baselines produce, per call, an ``(N, n_samples)`` array of complex
Gaussian samples whose moduli are the Rayleigh envelopes; they differ in the
restrictions they place on the covariance input and in how (or whether) they
survive covariance matrices that are not positive definite.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from ..exceptions import GenerationError, PowerError
from ..random import ensure_rng
from ..types import ComplexArray, EnvelopeBlock, SeedLike

__all__ = ["BaselineGenerator", "require_equal_powers"]


def require_equal_powers(gaussian_variances: np.ndarray, method_name: str) -> float:
    """Validate the equal-power restriction shared by several baselines.

    Returns the common power.  Raises :class:`repro.exceptions.PowerError`
    when the branch powers differ — the restriction the generalized algorithm
    removes.
    """
    variances = np.asarray(gaussian_variances, dtype=float)
    if variances.size == 0:
        raise PowerError("at least one branch power is required")
    if np.any(variances <= 0):
        raise PowerError("branch powers must be positive")
    if not np.allclose(variances, variances[0], rtol=1e-12, atol=0.0):
        raise PowerError(
            f"the {method_name} method only supports equal-power envelopes; "
            f"got powers {variances.tolist()}"
        )
    return float(variances[0])


class BaselineGenerator(abc.ABC):
    """Abstract base class for conventional correlated-Rayleigh generators.

    Subclasses set :attr:`name` and :attr:`reference` (the paper's citation
    index) and implement :meth:`generate`, producing complex Gaussian samples
    of shape ``(n_branches, n_samples)``.
    """

    #: Human-readable method name.
    name: str = "baseline"
    #: Citation index used in the paper ("[1]" ... "[6]").
    reference: str = ""

    def __init__(self, rng: SeedLike = None) -> None:
        self._rng = ensure_rng(rng)

    @property
    @abc.abstractmethod
    def n_branches(self) -> int:
        """Number of correlated branches produced per sample."""

    @abc.abstractmethod
    def generate(self, n_samples: int, rng: Optional[SeedLike] = None) -> ComplexArray:
        """Generate ``(n_branches, n_samples)`` correlated complex Gaussian samples."""

    def generate_envelopes(self, n_samples: int, rng: Optional[SeedLike] = None) -> EnvelopeBlock:
        """Generate Rayleigh envelopes (moduli of :meth:`generate`)."""
        samples = self.generate(n_samples, rng=rng)
        power = np.mean(np.abs(samples) ** 2, axis=1) if n_samples > 1 else np.abs(samples) ** 2
        return EnvelopeBlock(
            envelopes=np.abs(samples),
            gaussian_variances=np.asarray(power, dtype=float),
            metadata={"method": self.name, "reference": self.reference},
        )

    def _resolve_rng(self, rng: Optional[SeedLike]) -> np.random.Generator:
        return self._rng if rng is None else ensure_rng(rng)

    @staticmethod
    def _validate_n_samples(n_samples: int) -> int:
        if n_samples < 1:
            raise GenerationError(f"n_samples must be >= 1, got {n_samples}")
        return int(n_samples)
