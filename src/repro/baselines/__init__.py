"""Conventional correlated-Rayleigh generation methods (paper references [1]–[6]).

Section 1 of the paper reviews six earlier methods and identifies a specific
shortcoming in each; the proposed algorithm is motivated by removing all of
them.  This package implements each baseline faithfully enough to exhibit its
documented shortcoming, so the comparison experiments can demonstrate:

============================  =====================================================
Baseline                      Shortcoming reproduced
============================  =====================================================
:class:`SalzWintersGenerator`        equal power only; fails (complex coloring matrix)
                              when the covariance matrix is not positive
                              semi-definite [1]
:class:`ErtelReedGenerator`          exactly two equal-power envelopes [2]
:class:`BeaulieuMeraniGenerator`     N >= 2 but equal power and positive-definite
                              covariance (Cholesky) [3, 4]
:class:`NatarajanGenerator`          arbitrary power but Cholesky + covariances forced
                              to be real [5]
:class:`SorooshyariDautGenerator`    equal power; epsilon PSD approximation (less
                              precise than clipping); real-time combination
                              ignores the Doppler filter's variance change [6]
============================  =====================================================

Each generator exposes the same ``generate(n_samples)`` /
``generate_envelopes(n_samples)`` interface as the proposed method so the
benchmark harness can swap them freely.
"""

from .base import BaselineGenerator
from .salz_winters import SalzWintersGenerator
from .ertel_reed import ErtelReedGenerator
from .beaulieu_merani import BeaulieuMeraniGenerator
from .natarajan import NatarajanGenerator
from .sorooshyari_daut import SorooshyariDautGenerator

__all__ = [
    "BaselineGenerator",
    "SalzWintersGenerator",
    "ErtelReedGenerator",
    "BeaulieuMeraniGenerator",
    "NatarajanGenerator",
    "SorooshyariDautGenerator",
]
