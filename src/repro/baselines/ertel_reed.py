"""Baseline [2]: Ertel & Reed's two-envelope generator.

Ertel & Reed (IEEE Commun. Lett. 1998) generate exactly **two** equal-power
Rayleigh envelopes with a prescribed envelope cross-correlation coefficient.
The construction draws two independent circular complex Gaussians ``g1, g2``
and forms

.. math::

    z_1 = g_1, \\qquad
    z_2 = \\rho_g\\, g_1 + \\sqrt{1 - |\\rho_g|^2}\\; g_2,

where ``rho_g`` is the complex correlation coefficient of the underlying
Gaussians; the envelope (power) correlation then equals ``|rho_g|^2`` (the
standard relation between Gaussian and Rayleigh-power correlation).

Shortcomings reproduced here, as listed in Section 1 of the paper:

* exactly two branches;
* equal powers only.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import SpecificationError
from ..random import complex_gaussian
from ..types import ComplexArray, SeedLike
from .base import BaselineGenerator

__all__ = ["ErtelReedGenerator"]


class ErtelReedGenerator(BaselineGenerator):
    """Two equal-power correlated Rayleigh envelopes.

    Parameters
    ----------
    envelope_correlation:
        Desired power/envelope correlation coefficient in ``[0, 1)``.
        Alternatively pass ``gaussian_correlation`` directly.
    gaussian_correlation:
        Complex correlation coefficient of the underlying Gaussians with
        ``|rho| < 1``; overrides ``envelope_correlation`` when given.
    power:
        Common complex-Gaussian power ``sigma_g^2`` of both branches.
    rng:
        Seed or generator.
    """

    name = "ertel-reed"
    reference = "[2]"

    def __init__(
        self,
        envelope_correlation: Optional[float] = None,
        *,
        gaussian_correlation: Optional[complex] = None,
        power: float = 1.0,
        rng: SeedLike = None,
    ) -> None:
        super().__init__(rng=rng)
        if power <= 0:
            raise SpecificationError(f"power must be positive, got {power}")
        if gaussian_correlation is None:
            if envelope_correlation is None:
                raise SpecificationError(
                    "provide either envelope_correlation or gaussian_correlation"
                )
            if not 0.0 <= envelope_correlation < 1.0:
                raise SpecificationError(
                    f"envelope_correlation must be in [0, 1), got {envelope_correlation}"
                )
            gaussian_correlation = complex(np.sqrt(envelope_correlation))
        rho = complex(gaussian_correlation)
        if abs(rho) >= 1.0:
            raise SpecificationError(
                f"|gaussian_correlation| must be < 1, got {abs(rho):.4f}"
            )
        self._rho = rho
        self._power = float(power)

    @property
    def n_branches(self) -> int:
        """Always 2 — the method's defining restriction."""
        return 2

    @property
    def gaussian_correlation(self) -> complex:
        """The complex Gaussian correlation coefficient being realized."""
        return self._rho

    def covariance_matrix(self) -> np.ndarray:
        """The 2 x 2 complex covariance matrix this generator realizes."""
        sigma2 = self._power
        return np.array(
            [[sigma2, sigma2 * self._rho], [sigma2 * np.conj(self._rho), sigma2]],
            dtype=complex,
        )

    def generate(self, n_samples: int, rng: Optional[SeedLike] = None) -> ComplexArray:
        """Generate ``(2, n_samples)`` correlated complex Gaussian samples."""
        n_samples = self._validate_n_samples(n_samples)
        gen = self._resolve_rng(rng)
        g1 = complex_gaussian(n_samples, variance=self._power, rng=gen)
        g2 = complex_gaussian(n_samples, variance=self._power, rng=gen)
        z1 = g1
        # Using conj(rho) as the mixing weight makes E{z1 conj(z2)} = rho * power,
        # i.e. the realized covariance matches covariance_matrix().
        z2 = np.conj(self._rho) * g1 + np.sqrt(1.0 - abs(self._rho) ** 2) * g2
        return np.vstack([z1, z2])
