"""Experiment ``unequal-power`` — arbitrary (unequal) envelope powers.

The generalized algorithm accepts any per-branch power, specified either as
complex-Gaussian powers ``sigma_g^2`` or as envelope variances ``sigma_r^2``
converted through Eq. (11).  Most conventional methods ([1], [2], [3], [4],
[6]) support equal powers only.  This experiment

* generates four branches with powers spanning nearly an order of magnitude,
  both in snapshot and in real-time (Doppler) mode,
* verifies the measured branch powers, envelope means (Eq. 14) and envelope
  variances (Eq. 15) against the requested values, and
* verifies the round trip "envelope power -> Gaussian power -> generated
  envelope variance" when the request is made in envelope units.
"""

from __future__ import annotations

import numpy as np

from ..core.covariance import CovarianceSpec
from ..core.generator import RayleighFadingGenerator
from ..core.realtime import RealTimeRayleighGenerator
from ..core.statistics import envelope_power_report
from ..core.variance import envelope_power_to_gaussian_power
from . import paper_values as pv
from .reporting import ExperimentResult, Table

__all__ = ["run"]

#: Complex-Gaussian powers of the four branches.
GAUSSIAN_POWERS = np.array([0.5, 1.0, 2.0, 4.0])

#: Complex correlation coefficients between adjacent branches.
ADJACENT_CORRELATION = 0.55 + 0.25j


def _correlation_matrix(n: int) -> np.ndarray:
    """Unit-diagonal Hermitian correlation matrix with geometric decay."""
    rho = ADJACENT_CORRELATION
    matrix = np.eye(n, dtype=complex)
    for k in range(n):
        for j in range(n):
            if k < j:
                matrix[k, j] = rho ** (j - k)
            elif k > j:
                matrix[k, j] = np.conj(rho) ** (k - j)
    return matrix


def run(seed: int = 20050410, n_samples: int = 400_000, n_blocks: int = 6) -> ExperimentResult:
    """Run the experiment in both generation modes."""
    n = GAUSSIAN_POWERS.size
    correlation = _correlation_matrix(n)
    scale = np.sqrt(np.outer(GAUSSIAN_POWERS, GAUSSIAN_POWERS))
    covariance = correlation * scale
    spec = CovarianceSpec.from_covariance_matrix(covariance)

    table = Table(
        title="Unequal-power branches: requested vs. measured statistics",
        columns=["mode", "branch", "requested sigma_g^2", "measured power", "rel err"],
    )
    metrics = {}

    # Snapshot mode.
    snapshot = RayleighFadingGenerator(spec, rng=seed)
    snap_env = snapshot.generate_envelopes(n_samples)
    snap_report = envelope_power_report(snap_env.envelopes, GAUSSIAN_POWERS)
    for j in range(n):
        measured = float(snap_report.measured_power[j])
        table.add_row(
            "snapshot",
            j + 1,
            float(GAUSSIAN_POWERS[j]),
            measured,
            abs(measured - GAUSSIAN_POWERS[j]) / GAUSSIAN_POWERS[j],
        )
    metrics["snapshot_max_power_error"] = snap_report.max_relative_power_error()
    metrics["snapshot_max_mean_error"] = snap_report.max_relative_mean_error()

    # Real-time (Doppler) mode.
    realtime = RealTimeRayleighGenerator(
        spec,
        normalized_doppler=pv.NORMALIZED_DOPPLER,
        n_points=pv.IDFT_POINTS,
        rng=seed + 1,
    )
    rt_env = realtime.generate_envelopes(n_blocks)
    rt_report = envelope_power_report(rt_env.envelopes, GAUSSIAN_POWERS)
    for j in range(n):
        measured = float(rt_report.measured_power[j])
        table.add_row(
            "realtime",
            j + 1,
            float(GAUSSIAN_POWERS[j]),
            measured,
            abs(measured - GAUSSIAN_POWERS[j]) / GAUSSIAN_POWERS[j],
        )
    metrics["realtime_max_power_error"] = rt_report.max_relative_power_error()
    metrics["realtime_max_mean_error"] = rt_report.max_relative_mean_error()

    # Envelope-power entry point (step 1 / Eq. 11): ask for envelope variances
    # directly and check the generated envelope variances.
    envelope_variances = np.array([0.1, 0.25, 0.6, 1.2])
    gaussian_from_envelope = envelope_power_to_gaussian_power(envelope_variances)
    spec_env = CovarianceSpec.from_envelope_variances(envelope_variances, _correlation_matrix(4))
    env_generator = RayleighFadingGenerator(spec_env, rng=seed + 2)
    env_block = env_generator.generate_envelopes(n_samples)
    measured_env_variance = np.var(env_block.envelopes, axis=1)
    env_error = float(
        np.max(np.abs(measured_env_variance - envelope_variances) / envelope_variances)
    )
    env_table = Table(
        title="Envelope-power entry point (Eq. 11 round trip)",
        columns=["branch", "requested sigma_r^2", "implied sigma_g^2", "measured Var{r}", "rel err"],
    )
    for j in range(4):
        env_table.add_row(
            j + 1,
            float(envelope_variances[j]),
            float(gaussian_from_envelope[j]),
            float(measured_env_variance[j]),
            float(abs(measured_env_variance[j] - envelope_variances[j]) / envelope_variances[j]),
        )
    metrics["envelope_variance_max_error"] = env_error

    passed = (
        snap_report.max_relative_power_error() <= 0.05
        and rt_report.max_relative_power_error() <= 0.08
        and env_error <= 0.05
    )

    result = ExperimentResult(
        experiment_id="unequal-power",
        paper_artifact="Section 4.4 step 1 / Eq. (11), Section 7 (unequal power claim)",
        description=(
            "Four correlated branches with powers 0.5/1/2/4 generated in snapshot and "
            "Doppler mode; measured branch powers, envelope means and variances match "
            "the Rayleigh relations, including when the request is made in envelope-"
            "power units via Eq. (11)."
        ),
        parameters={
            "gaussian_powers": GAUSSIAN_POWERS.tolist(),
            "adjacent_correlation": str(ADJACENT_CORRELATION),
            "n_samples": n_samples,
            "n_blocks": n_blocks,
            "seed": seed,
        },
        metrics=metrics,
        passed=passed,
    )
    result.add_table(table)
    result.add_table(env_table)
    return result
