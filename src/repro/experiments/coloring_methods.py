"""Experiment ``coloring-methods`` — eigendecomposition vs. Cholesky vs. SVD coloring.

Section 4.3 replaces the conventional Cholesky coloring with the
eigendecomposition coloring ``L = V sqrt(Lambda)``.  For positive definite
covariances both (and the SVD variant) are valid — they produce different
``L`` but identical statistics; for positive *semi*-definite or indefinite
requests only the eigen/SVD path survives.  This experiment runs all three
strategies over three matrix classes (definite, singular-PSD, indefinite) and
records which succeed and how exact their reconstruction ``L L^H`` is.
"""

from __future__ import annotations

import numpy as np

from ..core.coloring import compute_coloring
from ..exceptions import DecompositionError
from ..linalg import frobenius_distance
from . import paper_values as pv
from .non_psd import make_indefinite_covariance
from .reporting import ExperimentResult, Table

__all__ = ["run", "make_singular_psd_covariance"]


def make_singular_psd_covariance(size: int, seed: int = 0) -> np.ndarray:
    """Hermitian PSD matrix that is *exactly* singular (not just numerically).

    The fully correlated case — every branch identical, unit power — gives the
    all-ones matrix, whose Cholesky factorization fails deterministically
    (zero pivots are exact in floating point), which is precisely the
    "eigenvalues equal or close to zero" situation Section 4.3 cites as the
    weakness of the conventional coloring.  The ``seed`` argument is accepted
    for interface symmetry but unused.
    """
    return np.ones((size, size), dtype=complex)


def run(seed: int = 20050411, size: int = 6) -> ExperimentResult:
    """Run the experiment over the three matrix classes."""
    cases = {
        "positive definite (Eq. 22)": pv.EQ22_COVARIANCE,
        "singular PSD": make_singular_psd_covariance(size, seed),
        "indefinite": make_indefinite_covariance(size, seed + 1),
    }
    methods = ("eigen", "svd", "cholesky")

    table = Table(
        title="Coloring strategies across covariance classes",
        columns=["matrix class", "method", "succeeds", "||LL^H - K_bar||_F", "repaired"],
    )
    metrics = {}
    eigen_always_works = True
    cholesky_fails_on_singular = False

    for case_name, matrix in cases.items():
        for method in methods:
            try:
                coloring = compute_coloring(matrix, method=method, psd_method="clip")
                reconstruction_error = frobenius_distance(
                    coloring.reconstruction(), coloring.effective_covariance
                )
                table.add_row(
                    case_name, method, True, reconstruction_error, coloring.was_repaired
                )
                metrics[f"{method}_reconstruction_{case_name.split()[0]}"] = reconstruction_error
            except DecompositionError:
                table.add_row(case_name, method, False, float("nan"), "-")
                if method == "eigen":
                    eigen_always_works = False
                if method == "cholesky" and case_name != "positive definite (Eq. 22)":
                    cholesky_fails_on_singular = True

    result = ExperimentResult(
        experiment_id="coloring-methods",
        paper_artifact="Section 4.3 (eigendecomposition vs. Cholesky)",
        description=(
            "The eigendecomposition (and SVD) coloring succeeds on positive definite, "
            "singular PSD and (after the forced-PSD step) indefinite covariance "
            "requests with an exact reconstruction L L^H = K_bar, while the Cholesky "
            "coloring requires strict positive definiteness."
        ),
        parameters={"size": size, "seed": seed},
        metrics=metrics,
        passed=eigen_always_works and cholesky_fails_on_singular,
        notes=(
            "The Cholesky row for the indefinite class operates on the *forced-PSD* "
            "matrix (the pipeline repairs first), which is singular by construction, "
            "so the factorization still fails - the residual weakness the paper notes."
        ),
    )
    result.add_table(table)
    return result
