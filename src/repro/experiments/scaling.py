"""Experiment ``scaling-n`` — throughput scaling with the number of branches.

The paper presents the algorithm as applicable "for an arbitrary number N of
Rayleigh envelopes"; this experiment measures how the generation cost scales
with ``N`` for both modes (snapshot and real-time) and confirms that the
statistical accuracy does not degrade as ``N`` grows.  It doubles as the
kernel behind the ``bench_scaling`` benchmark.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.covariance import CovarianceSpec
from ..core.generator import RayleighFadingGenerator
from ..core.realtime import RealTimeRayleighGenerator
from ..validation.metrics import relative_frobenius_error
from . import paper_values as pv
from .reporting import ExperimentResult, Table

__all__ = ["run", "exponential_correlation_covariance"]


def exponential_correlation_covariance(n: int, rho: complex = 0.5 + 0.3j) -> np.ndarray:
    """Hermitian covariance with correlation ``rho^{|k-j|}`` and unit powers.

    The exponential (AR-1 style) correlation profile is a standard synthetic
    family that stays positive definite for ``|rho| < 1`` at every size, so
    it isolates the scaling behaviour from PSD-repair effects.
    """
    if not 0 <= abs(rho) < 1:
        raise ValueError(f"|rho| must be < 1, got {abs(rho)}")
    matrix = np.eye(n, dtype=complex)
    for k in range(n):
        for j in range(n):
            if k < j:
                matrix[k, j] = rho ** (j - k)
            elif k > j:
                matrix[k, j] = np.conj(rho) ** (k - j)
    return matrix


def run(
    seed: int = 20050413,
    branch_counts=(2, 4, 8, 16, 32, 64),
    snapshot_samples: int = 50_000,
    realtime_points: int = 1024,
) -> ExperimentResult:
    """Run the scaling sweep."""
    table = Table(
        title="Generation throughput and accuracy vs. number of branches",
        columns=[
            "N",
            "snapshot time [s]",
            "snapshot Msamples/s",
            "snapshot cov err",
            "realtime time [s]",
            "realtime Msamples/s",
        ],
    )
    metrics = {}
    accuracy_ok = True

    for n in branch_counts:
        covariance = exponential_correlation_covariance(n)
        spec = CovarianceSpec.from_covariance_matrix(covariance)

        snapshot = RayleighFadingGenerator(spec, rng=seed)
        start = time.perf_counter()
        samples = snapshot.generate(snapshot_samples)
        snapshot_time = time.perf_counter() - start
        achieved = samples @ samples.conj().T / snapshot_samples
        snapshot_error = relative_frobenius_error(achieved, covariance)
        accuracy_ok &= snapshot_error <= 0.1
        snapshot_rate = n * snapshot_samples / snapshot_time / 1e6

        realtime = RealTimeRayleighGenerator(
            spec,
            normalized_doppler=pv.NORMALIZED_DOPPLER,
            n_points=realtime_points,
            rng=seed + 1,
        )
        start = time.perf_counter()
        realtime.generate(1)
        realtime_time = time.perf_counter() - start
        realtime_rate = n * realtime_points / realtime_time / 1e6

        table.add_row(n, snapshot_time, snapshot_rate, snapshot_error, realtime_time, realtime_rate)
        metrics[f"snapshot_time_n{n}"] = snapshot_time
        metrics[f"snapshot_error_n{n}"] = snapshot_error
        metrics[f"realtime_time_n{n}"] = realtime_time

    result = ExperimentResult(
        experiment_id="scaling-n",
        paper_artifact="Generality claim (arbitrary N), Sections 4.4 and 7",
        description=(
            "Wall-clock cost and covariance accuracy of the snapshot and real-time "
            "generators as the number of correlated branches grows from 2 to 64 with an "
            "exponential correlation profile."
        ),
        parameters={
            "branch_counts": list(branch_counts),
            "snapshot_samples": snapshot_samples,
            "realtime_points": realtime_points,
            "seed": seed,
        },
        metrics=metrics,
        passed=accuracy_ok,
        notes=(
            "Timings are informational (they depend on the host); the acceptance "
            "criterion is that the covariance accuracy does not degrade with N."
        ),
    )
    result.add_table(table)
    return result
