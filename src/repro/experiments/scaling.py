"""Experiments ``scaling-n``, ``scaling-batch``, ``scaling-doppler-batch``.

The paper presents the algorithm as applicable "for an arbitrary number N of
Rayleigh envelopes"; :func:`run` measures how the generation cost scales with
``N`` for both modes (snapshot and real-time) and confirms that the
statistical accuracy does not degrade as ``N`` grows.  It doubles as the
kernel behind the ``bench_scaling`` benchmark.

:func:`run_batch` measures the batched engine (:mod:`repro.engine`) against
the looped single-spec path over a sweep of batch sizes ``B``: the same
``B`` scenarios are generated once by looping
:class:`repro.core.generator.RayleighFadingGenerator` and once through
plan → compile → execute, cold (empty decomposition cache) and warm (all
decompositions cached).  The experiment's *acceptance criterion* is
bit-identity of the batched and looped samples — deterministic, so the
registry sweep never depends on host timing; the speedups and cache counters
are reported as metrics and exercised by ``bench_engine_batch``.

:func:`run_doppler_batch` is the Doppler-mode analogue: the same ``B``
scenarios are generated once by looping
:class:`repro.core.realtime.RealTimeRayleighGenerator` (per scenario: one
Young–Beaulieu filter build, one decomposition, one ``(N, M)`` IDFT
dispatch, one coloring matmul) and once as a Doppler plan of the batched
engine (one shared filter build, stacked decompositions, one stacked IDFT
over all ``B·N`` branches, one stacked coloring matmul).  Acceptance is
again bit-identity; the filter-reuse counters (``doppler_filters_built`` vs
``doppler_entries``) and speedups are metrics, exercised by
``bench_doppler_batch``.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.covariance import CovarianceSpec
from ..core.generator import RayleighFadingGenerator
from ..core.realtime import RealTimeRayleighGenerator
from ..engine import (
    DecompositionCache,
    DopplerFilterCache,
    DopplerSpec,
    SimulationEngine,
    SimulationPlan,
)
from ..models import coerce_fading, reference_fading_samples
from ..validation.metrics import relative_frobenius_error
from . import paper_values as pv
from .reporting import ExperimentResult, Table

__all__ = [
    "run",
    "run_batch",
    "run_doppler_batch",
    "batch_sweep_specs",
    "shard_sweep_plan",
    "exponential_correlation_covariance",
]


def exponential_correlation_covariance(n: int, rho: complex = 0.5 + 0.3j) -> np.ndarray:
    """Hermitian covariance with correlation ``rho^{|k-j|}`` and unit powers.

    The exponential (AR-1 style) correlation profile is a standard synthetic
    family that stays positive definite for ``|rho| < 1`` at every size, so
    it isolates the scaling behaviour from PSD-repair effects.
    """
    if not 0 <= abs(rho) < 1:
        raise ValueError(f"|rho| must be < 1, got {abs(rho)}")
    matrix = np.eye(n, dtype=complex)
    for k in range(n):
        for j in range(n):
            if k < j:
                matrix[k, j] = rho ** (j - k)
            elif k > j:
                matrix[k, j] = np.conj(rho) ** (k - j)
    return matrix


def run(
    seed: int = 20050413,
    branch_counts=(2, 4, 8, 16, 32, 64),
    snapshot_samples: int = 50_000,
    realtime_points: int = 1024,
) -> ExperimentResult:
    """Run the scaling sweep."""
    table = Table(
        title="Generation throughput and accuracy vs. number of branches",
        columns=[
            "N",
            "snapshot time [s]",
            "snapshot Msamples/s",
            "snapshot cov err",
            "realtime time [s]",
            "realtime Msamples/s",
        ],
    )
    metrics = {}
    accuracy_ok = True

    for n in branch_counts:
        covariance = exponential_correlation_covariance(n)
        spec = CovarianceSpec.from_covariance_matrix(covariance)

        snapshot = RayleighFadingGenerator(spec, rng=seed)
        start = time.perf_counter()
        samples = snapshot.generate(snapshot_samples)
        snapshot_time = time.perf_counter() - start
        achieved = samples @ samples.conj().T / snapshot_samples
        snapshot_error = relative_frobenius_error(achieved, covariance)
        accuracy_ok &= snapshot_error <= 0.1
        snapshot_rate = n * snapshot_samples / snapshot_time / 1e6

        realtime = RealTimeRayleighGenerator(
            spec,
            normalized_doppler=pv.NORMALIZED_DOPPLER,
            n_points=realtime_points,
            rng=seed + 1,
        )
        start = time.perf_counter()
        realtime.generate(1)
        realtime_time = time.perf_counter() - start
        realtime_rate = n * realtime_points / realtime_time / 1e6

        table.add_row(n, snapshot_time, snapshot_rate, snapshot_error, realtime_time, realtime_rate)
        metrics[f"snapshot_time_n{n}"] = snapshot_time
        metrics[f"snapshot_error_n{n}"] = snapshot_error
        metrics[f"realtime_time_n{n}"] = realtime_time

    result = ExperimentResult(
        experiment_id="scaling-n",
        paper_artifact="Generality claim (arbitrary N), Sections 4.4 and 7",
        description=(
            "Wall-clock cost and covariance accuracy of the snapshot and real-time "
            "generators as the number of correlated branches grows from 2 to 64 with an "
            "exponential correlation profile."
        ),
        parameters={
            "branch_counts": list(branch_counts),
            "snapshot_samples": snapshot_samples,
            "realtime_points": realtime_points,
            "seed": seed,
        },
        metrics=metrics,
        passed=accuracy_ok,
        notes=(
            "Timings are informational (they depend on the host); the acceptance "
            "criterion is that the covariance accuracy does not degrade with N."
        ),
    )
    result.add_table(table)
    return result


def batch_sweep_specs(batch_size: int, n_branches: int = 4):
    """``batch_size`` distinct small covariance specs for the batch sweep.

    Each spec scales the same exponential-correlation profile by a distinct
    per-branch power vector (a power sweep), so every matrix in the batch is
    unique — the decomposition cache gets no free intra-batch hits and the
    cold-path comparison is honest.
    """
    base = exponential_correlation_covariance(n_branches)
    specs = []
    for index in range(batch_size):
        powers = 1.0 + (index + 1) / batch_size * np.linspace(0.5, 1.5, n_branches)
        matrix = base * np.sqrt(np.outer(powers, powers))
        specs.append(CovarianceSpec.from_covariance_matrix(matrix))
    return specs


def shard_sweep_plan(
    n_entries: int,
    n_branches: int = 4,
    seed: int = 20050413,
    *,
    doppler_every: int = 0,
    normalized_doppler: float = 0.05,
    n_points: int = 64,
    fading=None,
) -> SimulationPlan:
    """A deterministic labelled sweep plan for the sharded runner.

    Builds on :func:`batch_sweep_specs` (every matrix unique, so shards
    share decompositions only through the disk tier, never by accident)
    with per-entry seeds ``seed + index`` and labels ``sweep-<index>``.
    With ``doppler_every=k`` every ``k``-th entry becomes a Doppler entry
    sharing one filter key — the mixed-workload shape the `shard` CLI,
    ``bench_shard_scaling``, and the cross-process property suite all run.
    """
    if n_entries < 1:
        raise ValueError(f"n_entries must be >= 1, got {n_entries}")
    specs = batch_sweep_specs(n_entries, n_branches)
    plan = SimulationPlan()
    for index, spec in enumerate(specs):
        doppler = None
        if doppler_every and index % doppler_every == doppler_every - 1:
            doppler = DopplerSpec(
                normalized_doppler=normalized_doppler, n_points=n_points
            )
        plan.add(
            spec,
            seed=seed + index,
            doppler=doppler,
            fading=fading,
            label=f"sweep-{index}",
        )
    return plan


def _best_time(kernel, repeats: int):
    """Best-of-``repeats`` wall-clock time of ``kernel`` plus its last result."""
    best = float("inf")
    result = None
    for _ in range(max(1, int(repeats))):
        start = time.perf_counter()
        result = kernel()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_batch(
    seed: int = 20050413,
    batch_sizes=(1, 16, 256),
    n_branches: int = 4,
    n_samples: int = 64,
    repeats: int = 3,
    backend: str = "numpy",
    fading=None,
) -> ExperimentResult:
    """Run the batched-engine vs. looped-generation sweep.

    ``backend`` selects the engine's linalg backend
    (:mod:`repro.engine.backends`); the looped baseline always runs the
    plain numpy single-spec path, so the bit-identity acceptance criterion
    doubles as a backend parity check.

    ``fading`` optionally applies one fading model (a name, mapping, or
    :class:`repro.models.FadingSpec`) to every plan entry.  The looped
    baseline then runs the plain Rayleigh generator and transforms its
    samples through the scalar reference oracle
    (:func:`repro.models.reference_fading_samples`); acceptance is
    byte-identity for exact models (``rician``, shadowing) and the model's
    declared ``rtol`` otherwise (``nakagami``, ``weibull``).

    For every batch size ``B`` the same scenarios (distinct matrices,
    independent derived seeds) are generated four ways:

    * **looped** — one :class:`RayleighFadingGenerator` per spec, each with a
      disabled cache (every construction pays its own decomposition), the
      pre-engine execution model;
    * **batched cold** — one plan → compile → execute pass against an empty
      decomposition cache (stacked decompositions, all misses);
    * **batched warm** — the same pass again (compile is all cache hits);
    * **execute only** — re-executing the already-compiled plan (the
      compile-once / execute-many usage the pipeline split exists for).

    Passing requires the batched samples to be bit-identical to the looped
    samples for every entry at every ``B``.  Speedups and cache hit/miss
    counts are recorded as metrics.
    """
    table = Table(
        title="Batched engine vs. looped generation",
        columns=[
            "B",
            "looped [s]",
            "batch cold [s]",
            "batch warm [s]",
            "execute only [s]",
            "speedup warm",
            "speedup execute",
            "cache hits",
            "cache misses",
            "identical",
        ],
    )
    metrics = {}
    all_identical = True
    total_warm_hits = 0
    total_warm_misses = 0
    total_cold_misses = 0
    fading_spec = coerce_fading(fading)
    if fading_spec is None or fading_spec.descriptor.exact:
        matches = np.array_equal
    else:
        rtol = fading_spec.descriptor.rtol

        def matches(reference, candidate):
            return bool(np.allclose(candidate, reference, rtol=rtol, atol=1e-15))

    for batch_size in batch_sizes:
        specs = batch_sweep_specs(batch_size, n_branches)
        plan = SimulationPlan.from_specs(
            specs, seed=seed + batch_size, fading=fading_spec
        )
        entry_seeds = [entry.seed for entry in plan]

        # Looped baseline: per-spec generators with caching disabled (the
        # pre-engine execution model pays one decomposition per generator).
        looped_time, looped_blocks = _best_time(
            lambda: [
                RayleighFadingGenerator(
                    spec, rng=entry_seed, cache=DecompositionCache(maxsize=0)
                ).generate_gaussian(n_samples)
                for spec, entry_seed in zip(specs, entry_seeds)
            ],
            repeats,
        )

        # Cold: a fresh cache per repeat, so every repeat pays the stacked
        # decomposition (the best-of timing stays a true cold measurement).
        cold_time, cold = _best_time(
            lambda: SimulationEngine(cache=DecompositionCache(), backend=backend).run(
                plan, n_samples
            ),
            repeats,
        )

        engine = SimulationEngine(cache=DecompositionCache(), backend=backend)
        engine.run(plan, n_samples)  # populate the cache
        engine.cache.reset_stats()
        warm_time, warm = _best_time(lambda: engine.run(plan, n_samples), repeats)

        compiled = engine.compile(plan)
        execute_time, executed = _best_time(
            lambda: engine.run(compiled, n_samples), repeats
        )

        # The acceptance reference: looped Rayleigh samples, pushed through
        # the scalar fading oracle when a model is in play (untimed — the
        # timing columns compare the Rayleigh-generation cost both paths
        # share, the transform cost shows up only in the batched columns).
        if fading_spec is None:
            references = [looped.samples for looped in looped_blocks]
        else:
            references = [
                reference_fading_samples(
                    looped.samples,
                    spec.gaussian_variances,
                    fading_spec,
                    seed=entry_seed,
                )
                for looped, spec, entry_seed in zip(
                    looped_blocks, specs, entry_seeds
                )
            ]

        identical = all(
            matches(reference, batched.samples)
            and matches(reference, rerun.samples)
            and matches(reference, direct.samples)
            for reference, batched, rerun, direct in zip(
                references, cold.blocks, warm.blocks, executed.blocks
            )
        )
        all_identical &= identical

        speedup_cold = looped_time / cold_time
        speedup_warm = looped_time / warm_time
        speedup_execute = looped_time / execute_time
        # Per-compile cache counters: the warm compile serves every entry
        # from the cache, the cold compile misses every unique matrix.
        warm_hits = warm.compile_report.cache_hits
        cold_misses = cold.compile_report.cache_misses
        table.add_row(
            batch_size,
            looped_time,
            cold_time,
            warm_time,
            execute_time,
            speedup_warm,
            speedup_execute,
            warm_hits,
            cold_misses,
            identical,
        )
        metrics[f"looped_time_b{batch_size}"] = looped_time
        metrics[f"batch_cold_time_b{batch_size}"] = cold_time
        metrics[f"batch_warm_time_b{batch_size}"] = warm_time
        metrics[f"execute_only_time_b{batch_size}"] = execute_time
        metrics[f"speedup_cold_b{batch_size}"] = speedup_cold
        metrics[f"speedup_warm_b{batch_size}"] = speedup_warm
        metrics[f"speedup_execute_b{batch_size}"] = speedup_execute
        metrics[f"warm_cache_hits_b{batch_size}"] = float(warm_hits)
        metrics[f"cold_cache_misses_b{batch_size}"] = float(cold_misses)
        total_warm_hits += int(warm_hits)
        total_warm_misses += int(warm.compile_report.cache_misses)
        total_cold_misses += int(cold_misses)

    # Per-phase totals: cold compiles pay the decompositions, warm compiles
    # should serve every lookup from the cache.  Kept separate so consumers
    # (the CLI summary) can report honest per-phase rates instead of mixing
    # two different runs into one statistic.
    metrics["warm_cache_hits_total"] = float(total_warm_hits)
    metrics["warm_cache_misses_total"] = float(total_warm_misses)
    metrics["cold_cache_misses_total"] = float(total_cold_misses)

    result = ExperimentResult(
        experiment_id="scaling-batch",
        paper_artifact=(
            "Scaling extension: plan/compile/execute engine over the Section 4.4 "
            "snapshot algorithm"
        ),
        description=(
            "Wall-clock comparison of the batched engine (stacked eigendecomposition "
            "+ decomposition cache + stacked coloring matmul) against looping the "
            "single-spec generator over B scenarios, with bit-identity of the two "
            "paths as the acceptance criterion."
        ),
        parameters={
            "batch_sizes": list(batch_sizes),
            "n_branches": n_branches,
            "n_samples": n_samples,
            "seed": seed,
            "backend": backend,
            "fading": (
                None
                if fading_spec is None
                else {
                    "model": fading_spec.model,
                    "shape": fading_spec.shape,
                    "shadowing_sigma_db": fading_spec.shadowing_sigma_db,
                }
            ),
        },
        metrics=metrics,
        passed=all_identical,
        notes=(
            "Speedups are informational (host-dependent); the acceptance criterion "
            "is bit-identity of batched and looped samples for the same per-entry "
            "seeds. The defaults sit in the decomposition-bound regime (small "
            "matrices, short blocks) the engine targets; as blocks grow, both paths "
            "converge to the RNG-bound cost and the ratio approaches 1. The "
            "bench_engine_batch benchmark tracks the >=5x speedup target at B=256."
        ),
    )
    result.add_table(table)
    return result


def run_doppler_batch(
    seed: int = 20050413,
    batch_sizes=(1, 16, 256),
    n_branches: int = 4,
    n_points: int = 128,
    normalized_doppler: float = pv.NORMALIZED_DOPPLER,
    repeats: int = 3,
    backend: str = "numpy",
) -> ExperimentResult:
    """Run the batched-Doppler vs. looped real-time generation sweep.

    For every batch size ``B`` the same scenarios (distinct matrices,
    independent derived seeds, a shared Doppler mode) are generated three
    ways:

    * **looped** — one :class:`RealTimeRayleighGenerator` per spec with a
      disabled decomposition cache: every scenario pays its own filter
      build, its own decomposition, its own IDFT dispatch, and its own
      coloring matmul — the pre-engine execution model;
    * **batched warm** — one Doppler plan through plan → compile → execute
      with every decomposition cached (one shared filter build, one stacked
      IDFT over all ``B·N`` branch blocks, one stacked coloring matmul);
    * **execute only** — re-executing the already-compiled plan.

    Passing requires the batched samples to be bit-identical to the looped
    samples for every entry at every ``B``.  Speedups and the Doppler
    filter-reuse counters (filters built vs. entries served) are recorded as
    metrics; the CLI ``batch --doppler`` mode prints them.
    """
    doppler = DopplerSpec(
        normalized_doppler=float(normalized_doppler), n_points=int(n_points)
    )
    table = Table(
        title="Batched Doppler substrate vs. looped real-time generation",
        columns=[
            "B",
            "looped [s]",
            "batch warm [s]",
            "execute only [s]",
            "speedup warm",
            "speedup execute",
            "filters built",
            "entries served",
            "identical",
        ],
    )
    metrics = {}
    all_identical = True
    total_filters_built = 0
    total_entries_served = 0

    for batch_size in batch_sizes:
        specs = batch_sweep_specs(batch_size, n_branches)
        plan = SimulationPlan.from_specs(specs, seed=seed + batch_size, doppler=doppler)
        entry_seeds = [entry.seed for entry in plan]

        # Looped baseline: per-spec real-time generators with caching
        # disabled (the pre-engine model pays a decomposition and a filter
        # build per generator, and runs one IDFT per branch).  Each
        # generator gets a private filter cache so the process-wide filter
        # cache cannot quietly serve the baseline.
        looped_time, looped_blocks = _best_time(
            lambda: [
                RealTimeRayleighGenerator(
                    spec,
                    normalized_doppler=doppler.normalized_doppler,
                    n_points=doppler.n_points,
                    rng=entry_seed,
                    cache=DecompositionCache(maxsize=0),
                    filter_cache=DopplerFilterCache(),
                ).generate_gaussian(1)
                for spec, entry_seed in zip(specs, entry_seeds)
            ],
            repeats,
        )

        engine = SimulationEngine(cache=DecompositionCache(), backend=backend)
        engine.run(plan, n_points)  # populate the decomposition cache
        warm_time, warm = _best_time(lambda: engine.run(plan, n_points), repeats)

        compiled = engine.compile(plan)
        execute_time, executed = _best_time(
            lambda: engine.run(compiled, n_points), repeats
        )

        identical = all(
            np.array_equal(looped.samples, batched.samples)
            and np.array_equal(looped.samples, direct.samples)
            for looped, batched, direct in zip(
                looped_blocks, warm.blocks, executed.blocks
            )
        )
        all_identical &= identical

        speedup_warm = looped_time / warm_time
        speedup_execute = looped_time / execute_time
        filters_built = warm.compile_report.doppler_filters_built
        entries_served = warm.compile_report.doppler_entries
        table.add_row(
            batch_size,
            looped_time,
            warm_time,
            execute_time,
            speedup_warm,
            speedup_execute,
            filters_built,
            entries_served,
            identical,
        )
        metrics[f"looped_time_b{batch_size}"] = looped_time
        metrics[f"batch_warm_time_b{batch_size}"] = warm_time
        metrics[f"execute_only_time_b{batch_size}"] = execute_time
        metrics[f"speedup_warm_b{batch_size}"] = speedup_warm
        metrics[f"speedup_execute_b{batch_size}"] = speedup_execute
        metrics[f"doppler_filters_built_b{batch_size}"] = float(filters_built)
        metrics[f"doppler_entries_b{batch_size}"] = float(entries_served)
        total_filters_built += int(filters_built)
        total_entries_served += int(entries_served)

    metrics["doppler_filters_built_total"] = float(total_filters_built)
    metrics["doppler_entries_total"] = float(total_entries_served)

    result = ExperimentResult(
        experiment_id="scaling-doppler-batch",
        paper_artifact=(
            "Scaling extension: batched Doppler substrate (stacked IDFTs) over the "
            "Section 5 real-time algorithm"
        ),
        description=(
            "Wall-clock comparison of the batched Doppler substrate (one shared "
            "Young-Beaulieu filter + one stacked IDFT over all branches of all "
            "scenarios + stacked coloring matmul with Eq. (19) compensation) "
            "against looping the real-time generator over B scenarios, with "
            "bit-identity of the two paths as the acceptance criterion."
        ),
        parameters={
            "batch_sizes": list(batch_sizes),
            "n_branches": n_branches,
            "n_points": int(n_points),
            "normalized_doppler": float(normalized_doppler),
            "seed": seed,
            "backend": backend,
        },
        metrics=metrics,
        passed=all_identical,
        notes=(
            "Speedups are informational (host-dependent); the acceptance criterion "
            "is bit-identity of batched and looped samples for the same per-entry "
            "seeds. The looped path pays B filter builds, B decompositions, and B "
            "separate IDFT dispatches where the batched path pays one build, "
            "stacked decompositions, and one stacked transform. The "
            "bench_doppler_batch benchmark tracks the >=3x speedup target at B=256."
        ),
    )
    result.add_table(table)
    return result
