"""Reproduction of the paper's evaluation (Section 6) plus ablations.

Each module implements one experiment from the index in ``DESIGN.md`` and
returns an :class:`repro.experiments.reporting.ExperimentResult` that records
the paper's stated values next to the measured ones.  The registry in
:mod:`repro.experiments.runner` maps experiment identifiers to callables and
backs both the command line (``python -m repro``) and the benchmark harness.

Experiments
-----------
``eq22-spectral-covariance``   Eq. (22): the spectral-correlation covariance matrix.
``eq23-spatial-covariance``    Eq. (23): the spatial-correlation covariance matrix.
``fig4a-spectral-envelopes``   Fig. 4(a): three spectrally correlated envelopes (real-time).
``fig4b-spatial-envelopes``    Fig. 4(b): three spatially correlated envelopes (real-time).
``doppler-autocorrelation``    Eq. (16)-(20): IDFT branch autocorrelation vs. J0.
``doppler-substrate``          Ablation: IDFT substrate vs. sum-of-sinusoids substrate.
``variance-compensation``      Section 5: with/without the Eq. (19) compensation.
``non-psd-recovery``           Sections 4.2-4.3: behaviour on non-PSD covariances.
``psd-forcing-precision``      Section 4.2: clipping vs. epsilon replacement.
``unequal-power``              Section 4.4: arbitrary unequal envelope powers.
``coloring-methods``           Section 4.3: eigen vs. Cholesky vs. SVD coloring.
``baseline-comparison``        Section 1: shortcomings of methods [1]-[6].
``scaling-n``                  Throughput scaling with the number of branches.
``scaling-batch``              Batched engine vs. looped single-spec generation.
``scaling-doppler-batch``      Batched Doppler substrate vs. looped real-time generation.
"""

from .reporting import ExperimentResult, Table
from .runner import EXPERIMENTS, run_experiment, list_experiments, run_all

__all__ = [
    "ExperimentResult",
    "Table",
    "EXPERIMENTS",
    "run_experiment",
    "list_experiments",
    "run_all",
]
