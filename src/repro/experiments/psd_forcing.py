"""Experiment ``psd-forcing-precision`` — clipping vs. epsilon replacement.

Section 4.2 claims the proposed eigenvalue-clipping approximation is closer
to the desired covariance matrix (in the Frobenius sense) than the epsilon
replacement of Sorooshyari & Daut [6].  Mathematically the claim is
guaranteed (clipping is the Frobenius projection onto the PSD cone); this
experiment quantifies the margin on an ensemble of random indefinite
covariance requests across matrix sizes and epsilon values, so the practical
magnitude of the difference is on record.
"""

from __future__ import annotations

import numpy as np

from ..core.psd import compare_forcing_methods
from .non_psd import make_indefinite_covariance
from .reporting import ExperimentResult, Table

__all__ = ["run"]


def run(
    seed: int = 20050409,
    sizes=(3, 6, 12),
    epsilons=(1e-6, 1e-3, 1e-1),
    n_matrices: int = 10,
) -> ExperimentResult:
    """Run the experiment.

    Parameters
    ----------
    seed:
        Root seed for the random indefinite matrices.
    sizes:
        Matrix sizes swept.
    epsilons:
        Epsilon values for the replacement method.
    n_matrices:
        Number of random matrices per (size, epsilon) cell.
    """
    table = Table(
        title="Frobenius distance of the forced-PSD matrix from the request",
        columns=["N", "epsilon", "clip (proposed)", "epsilon method [6]", "clip wins"],
    )
    metrics = {}
    clip_always_at_least_as_close = True

    for size in sizes:
        for epsilon in epsilons:
            clip_errors = []
            eps_errors = []
            for matrix_index in range(n_matrices):
                request = make_indefinite_covariance(size, seed + 1000 * size + matrix_index)
                results = compare_forcing_methods(request, epsilon=epsilon)
                clip_errors.append(results["clip"].frobenius_error)
                eps_errors.append(results["epsilon"].frobenius_error)
                if results["epsilon"].frobenius_error + 1e-12 < results["clip"].frobenius_error:
                    clip_always_at_least_as_close = False
            clip_mean = float(np.mean(clip_errors))
            eps_mean = float(np.mean(eps_errors))
            table.add_row(size, epsilon, clip_mean, eps_mean, clip_mean <= eps_mean)
            metrics[f"clip_error_n{size}_eps{epsilon:g}"] = clip_mean
            metrics[f"epsilon_error_n{size}_eps{epsilon:g}"] = eps_mean

    result = ExperimentResult(
        experiment_id="psd-forcing-precision",
        paper_artifact="Section 4.2 (approximation comparison with [6])",
        description=(
            "Frobenius distance between the desired (indefinite) covariance matrix and "
            "its forced-PSD approximation, for the proposed eigenvalue clipping versus "
            "the epsilon replacement of [6], over random indefinite requests."
        ),
        parameters={
            "sizes": list(sizes),
            "epsilons": list(epsilons),
            "matrices_per_cell": n_matrices,
            "seed": seed,
        },
        metrics=metrics,
        passed=clip_always_at_least_as_close,
        notes=(
            "Clipping is the Frobenius projection onto the PSD cone, so it can never "
            "lose; the table records by how much the epsilon method overshoots, which "
            "grows with epsilon and with the matrix size."
        ),
    )
    result.add_table(table)
    return result
