"""Experiment ``variance-compensation`` — the paper's central real-time correction.

Section 5 argues that the method of Sorooshyari & Daut [6] fails in real-time
mode because it assumes the Doppler-filtered branch sequences still have unit
variance, whereas the filter changes the variance to the value of Eq. (19).
The proposed algorithm measures that variance and divides it out in the
coloring step.

This experiment generates the Fig. 4(a) scenario (covariance Eq. 22) twice —
once with the compensation (the proposed algorithm) and once without (the
baseline's combination) — and reports the achieved covariance and branch
powers.  The expected outcome, and the acceptance criterion, is that the
uncompensated run realizes a covariance scaled by ``sigma_g^2`` (orders of
magnitude off for the paper's parameters, since ``sigma_g^2 ~ 1.9e-5``) while
the compensated run matches the request.
"""

from __future__ import annotations

import numpy as np

from ..channels.doppler import filter_output_variance, young_beaulieu_filter
from ..core.realtime import RealTimeRayleighGenerator
from ..validation.metrics import relative_frobenius_error
from . import paper_values as pv
from .reporting import ExperimentResult, Table

__all__ = ["run"]


def run(seed: int = 20050407, n_blocks: int = 6) -> ExperimentResult:
    """Run the experiment.

    Parameters
    ----------
    seed:
        Random seed shared by both runs so they see identical noise.
    n_blocks:
        Number of ``M``-sample blocks used for the covariance estimates.
    """
    scenario = pv.paper_ofdm_scenario()
    spec = scenario.covariance_spec(np.ones(pv.N_BRANCHES))
    desired = spec.matrix

    coefficients = young_beaulieu_filter(pv.IDFT_POINTS, pv.NORMALIZED_DOPPLER)
    sigma_g2 = filter_output_variance(coefficients, pv.INPUT_VARIANCE_PER_DIM)

    def realized_covariance(compensate: bool) -> np.ndarray:
        generator = RealTimeRayleighGenerator(
            spec,
            normalized_doppler=pv.NORMALIZED_DOPPLER,
            n_points=pv.IDFT_POINTS,
            input_variance_per_dim=pv.INPUT_VARIANCE_PER_DIM,
            compensate_variance=compensate,
            rng=seed,
        )
        samples = generator.generate(n_blocks)
        return samples @ samples.conj().T / samples.shape[1]

    compensated = realized_covariance(True)
    uncompensated = realized_covariance(False)

    error_compensated = relative_frobenius_error(compensated, desired)
    error_uncompensated = relative_frobenius_error(uncompensated, desired)
    # The uncompensated run should instead match the desired covariance scaled
    # by the filter-output variance — the precise failure mode of [6].
    error_uncompensated_rescaled = relative_frobenius_error(uncompensated, desired * sigma_g2)

    table = Table(
        title="Achieved covariance vs. desired covariance (Eq. 22 scenario)",
        columns=["variant", "rel. Frobenius error vs K", "mean branch power"],
    )
    table.add_row(
        "proposed (Eq. 19 compensation)",
        error_compensated,
        float(np.mean(np.real(np.diag(compensated)))),
    )
    table.add_row(
        "uncompensated (method of [6])",
        error_uncompensated,
        float(np.mean(np.real(np.diag(uncompensated)))),
    )
    table.add_row(
        "uncompensated vs sigma_g^2 * K",
        error_uncompensated_rescaled,
        sigma_g2,
    )

    result = ExperimentResult(
        experiment_id="variance-compensation",
        paper_artifact="Section 5 (steps 6-7) and the critique of [6] in Section 1",
        description=(
            "Effect of the Doppler-filter variance compensation of Eq. (19): the "
            "proposed real-time algorithm achieves the desired covariance, while the "
            "uncompensated combination used by [6] realizes the covariance scaled by "
            "the filter-output variance."
        ),
        parameters={
            "idft_points": pv.IDFT_POINTS,
            "normalized_doppler": pv.NORMALIZED_DOPPLER,
            "input_variance_per_dim": pv.INPUT_VARIANCE_PER_DIM,
            "n_blocks": n_blocks,
            "seed": seed,
        },
        metrics={
            "filter_output_variance": sigma_g2,
            "compensated_relative_error": error_compensated,
            "uncompensated_relative_error": error_uncompensated,
            "uncompensated_rescaled_error": error_uncompensated_rescaled,
            "error_ratio": error_uncompensated / max(error_compensated, 1e-12),
        },
        passed=(
            error_compensated <= 0.08
            and error_uncompensated >= 0.9  # essentially 100% off: the power collapses
            and error_uncompensated_rescaled <= 0.08
        ),
        notes=(
            "The uncompensated run is not noisy-but-unbiased: it is biased by exactly "
            "the factor sigma_g^2 of Eq. (19), as the third table row confirms."
        ),
    )
    result.add_table(table)
    return result
