"""Experiment ``doppler-substrate`` — IDFT synthesis vs. sum-of-sinusoids (ablation).

Section 5 builds the real-time algorithm on the Young–Beaulieu IDFT
generator; the classical alternative substrate is the Clarke/Jakes
sum-of-sinusoids construction.  This ablation compares the two single-branch
generators on the three properties the real-time algorithm needs from its
substrate:

* normalized autocorrelation close to ``J0(2 pi f_m d)``,
* Rayleigh-distributed envelope (circular Gaussian samples), and
* a *known* output variance (the IDFT generator's variance is given exactly
  by Eq. (19); the SoS generator is constructed to a target variance).

The expected outcome — and the reason the paper's choice is kept as the
default — is that both substrates match the Clarke autocorrelation, but the
IDFT generator's envelope is exactly Rayleigh for any block size while the
SoS generator is only asymptotically Gaussian in the number of sinusoids.
"""

from __future__ import annotations

import numpy as np

from ..channels.autocorrelation import autocorrelation_error
from ..channels.idft_generator import IDFTRayleighGenerator
from ..channels.sum_of_sinusoids import SumOfSinusoidsGenerator
from ..signal.correlation import normalized_autocorrelation
from ..validation.hypothesis_tests import rayleigh_ks_test
from . import paper_values as pv
from .reporting import ExperimentResult, Table

__all__ = ["run"]


def _evaluate(generator, n_blocks: int, max_lag: int) -> dict:
    """Average autocorrelation error, Rayleigh KS statistic and power over blocks.

    Generators exposing ``generate_blocks`` (the IDFT substrate) produce all
    blocks through one stacked transform — the engine's batched Doppler path,
    bit-identical to per-block generation; the sum-of-sinusoids substrate
    falls back to its per-block loop.
    """
    if hasattr(generator, "generate_blocks"):
        blocks = generator.generate_blocks(n_blocks)
    else:
        blocks = [generator.generate_block() for _ in range(n_blocks)]
    acf_accumulator = np.zeros(max_lag + 1)
    ks_statistics = []
    powers = []
    for block in blocks:
        acf_accumulator += np.real(normalized_autocorrelation(block, max_lag=max_lag))
        power = float(np.mean(np.abs(block) ** 2))
        powers.append(power)
        ks_statistics.append(rayleigh_ks_test(np.abs(block), power).statistic)
    acf = acf_accumulator / n_blocks
    rms_error, max_error = autocorrelation_error(acf, generator.normalized_doppler)
    return {
        "acf_rms_error": rms_error,
        "acf_max_error": max_error,
        "rayleigh_ks": float(np.mean(ks_statistics)),
        "mean_power": float(np.mean(powers)),
    }


def run(
    seed: int = 20050414,
    n_points: int = pv.IDFT_POINTS,
    n_blocks: int = 12,
    max_lag: int = 100,
    sinusoid_counts=(16, 64, 256),
) -> ExperimentResult:
    """Run the substrate comparison."""
    table = Table(
        title="Doppler substrate comparison (fm = 0.05, averages over blocks)",
        columns=[
            "substrate",
            "acf rms error vs J0",
            "Rayleigh KS statistic",
            "mean output power",
        ],
    )
    metrics = {}

    idft = IDFTRayleighGenerator(
        n_points=n_points,
        normalized_doppler=pv.NORMALIZED_DOPPLER,
        input_variance_per_dim=pv.INPUT_VARIANCE_PER_DIM,
        rng=seed,
    )
    idft_stats = _evaluate(idft, n_blocks, max_lag)
    table.add_row(
        "IDFT (Young-Beaulieu, paper)",
        idft_stats["acf_rms_error"],
        idft_stats["rayleigh_ks"],
        idft_stats["mean_power"] / idft.output_variance,  # normalized to Eq. (19)
    )
    metrics["idft_acf_rms_error"] = idft_stats["acf_rms_error"]
    metrics["idft_rayleigh_ks"] = idft_stats["rayleigh_ks"]

    sos_ks_by_count = {}
    for count in sinusoid_counts:
        sos = SumOfSinusoidsGenerator(
            n_points=n_points,
            normalized_doppler=pv.NORMALIZED_DOPPLER,
            n_sinusoids=count,
            rng=seed + count,
        )
        stats = _evaluate(sos, n_blocks, max_lag)
        table.add_row(
            f"sum-of-sinusoids (Ns = {count})",
            stats["acf_rms_error"],
            stats["rayleigh_ks"],
            stats["mean_power"],
        )
        metrics[f"sos{count}_acf_rms_error"] = stats["acf_rms_error"]
        metrics[f"sos{count}_rayleigh_ks"] = stats["rayleigh_ks"]
        sos_ks_by_count[count] = stats["rayleigh_ks"]

    smallest, largest = min(sinusoid_counts), max(sinusoid_counts)
    passed = (
        idft_stats["acf_rms_error"] <= 0.1
        and metrics[f"sos{largest}_acf_rms_error"] <= 0.15
        # The IDFT envelope is exactly Rayleigh; the small-Ns SoS envelope is
        # measurably less Gaussian than the large-Ns one.
        and idft_stats["rayleigh_ks"] <= sos_ks_by_count[smallest]
        and sos_ks_by_count[largest] <= sos_ks_by_count[smallest]
    )

    result = ExperimentResult(
        experiment_id="doppler-substrate",
        paper_artifact="Section 5 substrate choice (ablation; not a paper figure)",
        description=(
            "Ablation of the single-branch Doppler substrate: the Young-Beaulieu IDFT "
            "generator used by the paper versus the classical sum-of-sinusoids "
            "construction, compared on Clarke-autocorrelation accuracy and envelope "
            "Rayleigh-ness as the number of sinusoids grows."
        ),
        parameters={
            "n_points": n_points,
            "n_blocks": n_blocks,
            "normalized_doppler": pv.NORMALIZED_DOPPLER,
            "sinusoid_counts": list(sinusoid_counts),
            "seed": seed,
        },
        metrics=metrics,
        passed=passed,
        notes=(
            "The IDFT substrate is exactly Gaussian per block (its KS statistic only "
            "reflects finite-sample noise); the SoS substrate approaches it as Ns grows, "
            "which is why the paper's choice is kept as the library default."
        ),
    )
    result.add_table(table)
    return result
