"""Experiment ``doppler-autocorrelation`` — verify the IDFT generator against Eq. (16)–(20).

Section 5 of the paper relies on the Young–Beaulieu result that the filter of
Eq. (21) produces complex Gaussian sequences whose normalized autocorrelation
is ``J0(2 pi fm d)`` and whose real/imaginary cross-correlation vanishes.
This experiment verifies both the *theoretical* autocorrelation implied by
the designed filter (Eq. 16–18, computed exactly from ``g = IDFT(F^2)``) and
the *empirical* autocorrelation of generated branches, across several
normalized Doppler values, and also checks the output-variance formula of
Eq. (19) against the measured sample variance — the quantity the paper's
variance compensation depends on.
"""

from __future__ import annotations

import numpy as np

from ..channels.autocorrelation import autocorrelation_error, clarke_autocorrelation
from ..channels.doppler import (
    filter_autocorrelation,
    filter_output_variance,
    young_beaulieu_filter,
)
from ..channels.idft_generator import IDFTRayleighGenerator
from ..signal.correlation import normalized_autocorrelation
from . import paper_values as pv
from .reporting import ExperimentResult, Table

__all__ = ["run"]

#: Doppler values swept (the paper's 0.05 plus a slower and a faster channel).
DOPPLER_VALUES = (0.01, 0.05, 0.1)


def run(
    seed: int = 20050406,
    n_points: int = pv.IDFT_POINTS,
    n_blocks: int = 16,
    max_lag: int = 100,
) -> ExperimentResult:
    """Run the experiment.

    Parameters
    ----------
    seed:
        Root random seed.
    n_points:
        IDFT length ``M``.
    n_blocks:
        Number of independent blocks averaged for the empirical estimates.
    max_lag:
        Largest sample lag compared against ``J0``.
    """
    table = Table(
        title="IDFT generator accuracy vs. the Clarke reference",
        columns=[
            "fm",
            "theory acf rms err",
            "empirical acf rms err",
            "variance rel err (Eq.19)",
            "max |r_RI| / r_RR[0]",
        ],
    )

    metrics = {}
    worst_theory = 0.0
    worst_empirical = 0.0
    worst_variance = 0.0

    for index, fm in enumerate(DOPPLER_VALUES):
        coefficients = young_beaulieu_filter(n_points, fm)
        predicted_variance = filter_output_variance(coefficients, pv.INPUT_VARIANCE_PER_DIM)

        # Theoretical autocorrelation implied by the filter (Eq. 16-18).
        r_rr, r_ri = filter_autocorrelation(coefficients, pv.INPUT_VARIANCE_PER_DIM, max_lag)
        theory_normalized = r_rr / r_rr[0]
        theory_rms, _ = autocorrelation_error(theory_normalized, fm)
        cross_ratio = float(np.max(np.abs(r_ri)) / r_rr[0])

        # Empirical autocorrelation and variance of generated blocks.
        generator = IDFTRayleighGenerator(
            n_points=n_points,
            normalized_doppler=fm,
            input_variance_per_dim=pv.INPUT_VARIANCE_PER_DIM,
            rng=seed + index,
        )
        acf_accumulator = np.zeros(max_lag + 1)
        variance_accumulator = 0.0
        for _ in range(n_blocks):
            block = generator.generate_block()
            acf_accumulator += np.real(normalized_autocorrelation(block, max_lag=max_lag))
            variance_accumulator += float(np.mean(np.abs(block) ** 2))
        empirical_acf = acf_accumulator / n_blocks
        measured_variance = variance_accumulator / n_blocks
        empirical_rms, _ = autocorrelation_error(empirical_acf, fm)
        variance_rel_error = abs(measured_variance - predicted_variance) / predicted_variance

        table.add_row(fm, theory_rms, empirical_rms, variance_rel_error, cross_ratio)
        metrics[f"theory_acf_rms_error_fm_{fm}"] = theory_rms
        metrics[f"empirical_acf_rms_error_fm_{fm}"] = empirical_rms
        metrics[f"variance_relative_error_fm_{fm}"] = variance_rel_error
        worst_theory = max(worst_theory, theory_rms)
        worst_empirical = max(worst_empirical, empirical_rms)
        worst_variance = max(worst_variance, variance_rel_error)

    # Export the fm = 0.05 curves for plotting.
    lags = np.arange(max_lag + 1)
    reference = clarke_autocorrelation(lags, pv.NORMALIZED_DOPPLER)
    coefficients = young_beaulieu_filter(n_points, pv.NORMALIZED_DOPPLER)
    r_rr, _ = filter_autocorrelation(coefficients, pv.INPUT_VARIANCE_PER_DIM, max_lag)

    result = ExperimentResult(
        experiment_id="doppler-autocorrelation",
        paper_artifact="Eq. (16)-(20), Section 5",
        description=(
            "Accuracy of the Young-Beaulieu IDFT Rayleigh generator: the designed "
            "filter's implied autocorrelation and the empirical autocorrelation of "
            "generated branches are compared with the Clarke reference J0(2 pi fm d), "
            "and the output variance is compared with the Eq. (19) prediction."
        ),
        parameters={
            "idft_points": n_points,
            "doppler_values": list(DOPPLER_VALUES),
            "n_blocks": n_blocks,
            "max_lag": max_lag,
            "input_variance_per_dim": pv.INPUT_VARIANCE_PER_DIM,
        },
        series={
            "clarke_reference": reference,
            "filter_theory_acf": r_rr / r_rr[0],
        },
        metrics={
            **metrics,
            "worst_theory_acf_rms_error": worst_theory,
            "worst_empirical_acf_rms_error": worst_empirical,
            "worst_variance_relative_error": worst_variance,
        },
        passed=(worst_theory <= 0.03 and worst_empirical <= 0.15 and worst_variance <= 0.1),
    )
    result.add_table(table)
    return result
