"""Experiment ``fig4b-spatial-envelopes`` — reproduce Fig. 4(b).

Fig. 4(b) shows 200 samples of three *spatially* correlated, Doppler-shaped
Rayleigh envelopes generated with the covariance matrix of Eq. (23)
(D/lambda = 1, Delta = 10 degrees, Phi = 0) and the same Doppler parameters
as Fig. 4(a).  As for Fig. 4(a), the reproduction is statistical: the
regenerated traces are exported, and the covariance / Rayleigh /
autocorrelation properties the figure demonstrates are validated.

Because the spatial covariance of Eq. (23) is strongly correlated
(rho = 0.81 between adjacent antennas), the experiment additionally checks
that adjacent branches fade together more than the outer pair — the visually
obvious feature of Fig. 4(b).
"""

from __future__ import annotations

import numpy as np

from ..core.realtime import RealTimeRayleighGenerator
from ..signal.levels import envelope_db_around_rms
from ..validation.empirical import empirical_envelope_correlation
from ..validation.reports import validate_block
from . import paper_values as pv
from .reporting import ExperimentResult, Table

__all__ = ["run", "build_generator"]


def build_generator(seed: int = 20050405, n_points: int = pv.IDFT_POINTS) -> RealTimeRayleighGenerator:
    """The real-time generator configured exactly as in Section 6 (spatial case)."""
    scenario = pv.paper_mimo_scenario(n_points)
    spec = scenario.covariance_spec(np.ones(pv.N_BRANCHES))
    return RealTimeRayleighGenerator(
        spec,
        normalized_doppler=pv.NORMALIZED_DOPPLER,
        n_points=n_points,
        input_variance_per_dim=pv.INPUT_VARIANCE_PER_DIM,
        rng=seed,
    )


def run(seed: int = 20050405, n_blocks: int = 8) -> ExperimentResult:
    """Run the experiment (see :func:`repro.experiments.fig4a.run` for the pattern)."""
    generator = build_generator(seed)
    block = generator.generate_gaussian(n_blocks)
    desired = generator.spec.matrix

    report = validate_block(
        block,
        desired,
        covariance_tolerance=0.08,
        power_tolerance=0.08,
        rayleigh_statistic=0.05,
        normalized_doppler=pv.NORMALIZED_DOPPLER,
    )

    envelopes = np.abs(block.samples)
    db_traces = envelope_db_around_rms(envelopes[:, : pv.PLOTTED_SAMPLES])
    envelope_corr = empirical_envelope_correlation(envelopes)
    adjacent = float((envelope_corr[0, 1] + envelope_corr[1, 2]) / 2.0)
    outer = float(envelope_corr[0, 2])

    table = Table(
        title="Fig. 4(b) acceptance checks (statistical content of the figure)",
        columns=["check", "metric", "tolerance", "pass"],
    )
    for check in report.checks:
        table.add_row(check.name, check.metric, check.tolerance, check.passed)
    table.add_row(
        "adjacent branches more correlated than outer pair",
        adjacent - outer,
        0.0,
        adjacent > outer,
    )

    result = ExperimentResult(
        experiment_id="fig4b-spatial-envelopes",
        paper_artifact="Fig. 4(b), Section 6",
        description=(
            "Three equal-power, spatially correlated Rayleigh fading envelopes "
            "generated in real time with the covariance matrix of Eq. (23) "
            "(uniform linear array, D/lambda = 1, Delta = 10 deg, Phi = 0)."
        ),
        parameters={
            "n_branches": pv.N_BRANCHES,
            "idft_points": pv.IDFT_POINTS,
            "normalized_doppler": pv.NORMALIZED_DOPPLER,
            "spacing_wavelengths": pv.ANTENNA_SPACING_WAVELENGTHS,
            "angular_spread_deg": 10.0,
            "validation_blocks": n_blocks,
            "seed": seed,
        },
        series={
            f"envelope_{j + 1}_db": db_traces[j] for j in range(pv.N_BRANCHES)
        },
        metrics={
            "covariance_relative_error": report.checks[0].metric,
            "envelope_power_error": report.checks[1].metric,
            "rayleigh_ks_statistic": report.checks[2].metric,
            "autocorrelation_rms_error": report.checks[3].metric,
            "adjacent_envelope_correlation": adjacent,
            "outer_envelope_correlation": outer,
        },
        passed=report.passed and adjacent > outer,
        notes=(
            "The envelope correlation between adjacent antennas exceeds that of the "
            "outer pair, the qualitative feature visible in Fig. 4(b)."
        ),
    )
    result.add_table(table)
    return result
