"""Result containers and text rendering for the experiment harness.

Every experiment returns an :class:`ExperimentResult` holding

* the experiment id and which paper artifact it reproduces,
* the parameter set used (always the paper's values unless the experiment is
  an ablation sweep),
* one or more :class:`Table` objects — the rows the paper reports (or the
  quantitative acceptance values standing in for a qualitative figure),
* named numeric series (e.g. the envelope traces of Fig. 4) that callers can
  export, and
* scalar metrics plus a pass/fail verdict.

Rendering is plain text so the harness works in any terminal and the output
can be committed next to ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

__all__ = ["Table", "ExperimentResult", "format_complex_matrix", "ascii_series"]


def format_complex_matrix(matrix: np.ndarray, precision: int = 4) -> str:
    """Render a complex matrix with aligned columns, MATLAB-style."""
    arr = np.asarray(matrix)
    rows = []
    for row in np.atleast_2d(arr):
        cells = []
        for value in row:
            value = complex(value)
            if abs(value.imag) < 10 ** (-precision - 2):
                cells.append(f"{value.real:+.{precision}f}")
            else:
                cells.append(f"{value.real:+.{precision}f}{value.imag:+.{precision}f}i")
        rows.append("  ".join(f"{cell:>18s}" for cell in cells))
    return "\n".join(rows)


def ascii_series(
    values: np.ndarray,
    width: int = 72,
    height: int = 16,
    label: str = "",
) -> str:
    """Render a 1-D series as a small ASCII plot (used for the Fig. 4 traces)."""
    data = np.asarray(values, dtype=float)
    if data.ndim != 1 or data.size == 0:
        raise ValueError("ascii_series expects a non-empty 1-D array")
    # Resample to the plot width by block-averaging.
    if data.size > width:
        edges = np.linspace(0, data.size, width + 1).astype(int)
        data = np.array([data[a:b].mean() for a, b in zip(edges[:-1], edges[1:])])
    low, high = float(np.min(data)), float(np.max(data))
    span = high - low if high > low else 1.0
    rows = [[" "] * len(data) for _ in range(height)]
    for column, value in enumerate(data):
        level = int(round((value - low) / span * (height - 1)))
        rows[height - 1 - level][column] = "*"
    lines = ["".join(row) for row in rows]
    header = f"{label}  [min {low:.2f}, max {high:.2f}]" if label else f"[min {low:.2f}, max {high:.2f}]"
    return "\n".join([header] + lines)


@dataclass
class Table:
    """A simple column-oriented table.

    Attributes
    ----------
    title:
        Table caption.
    columns:
        Column headers.
    rows:
        Row values (any mix of strings and numbers; numbers are formatted
        with 6 significant digits).
    """

    title: str
    columns: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        """Append one row (must match the number of columns)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values but the table has {len(self.columns)} columns"
            )
        self.rows.append(values)

    @staticmethod
    def _format_cell(value: Any) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, (int, np.integer)):
            return str(int(value))
        if isinstance(value, (float, np.floating)):
            return f"{float(value):.6g}"
        if isinstance(value, complex):
            return f"{value.real:.4f}{value.imag:+.4f}i"
        return str(value)

    def render(self) -> str:
        """Render as fixed-width text."""
        header = [str(c) for c in self.columns]
        body = [[self._format_cell(v) for v in row] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(row[i]) for row in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [self.title]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)


@dataclass
class ExperimentResult:
    """Full record of one experiment run.

    Attributes
    ----------
    experiment_id:
        Identifier from the registry (e.g. ``"fig4a-spectral-envelopes"``).
    paper_artifact:
        Which figure/table/equation of the paper this reproduces.
    description:
        One-paragraph description.
    parameters:
        The parameter set used.
    tables:
        Result tables.
    series:
        Named numeric series (e.g. envelope traces in dB).
    metrics:
        Scalar summary metrics.
    passed:
        Overall pass/fail verdict of the experiment's acceptance criteria.
    notes:
        Free-form remarks (e.g. why a figure is validated statistically).
    """

    experiment_id: str
    paper_artifact: str
    description: str
    parameters: Dict[str, Any] = field(default_factory=dict)
    tables: List[Table] = field(default_factory=list)
    series: Dict[str, np.ndarray] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)
    passed: bool = True
    notes: str = ""

    def add_table(self, table: Table) -> None:
        """Append a table to the result."""
        self.tables.append(table)

    def render(self, include_series: bool = False) -> str:
        """Render the whole result as plain text."""
        lines = [
            f"experiment : {self.experiment_id}",
            f"reproduces : {self.paper_artifact}",
            f"status     : {'PASS' if self.passed else 'FAIL'}",
            "",
            self.description.strip(),
            "",
            "parameters:",
        ]
        for key, value in self.parameters.items():
            lines.append(f"  {key} = {value}")
        for table in self.tables:
            lines.append("")
            lines.append(table.render())
        if self.metrics:
            lines.append("")
            lines.append("metrics:")
            for key, value in self.metrics.items():
                lines.append(f"  {key} = {value:.6g}")
        if include_series and self.series:
            for name, values in self.series.items():
                lines.append("")
                lines.append(ascii_series(np.asarray(values, dtype=float), label=name))
        if self.notes:
            lines.append("")
            lines.append(f"notes: {self.notes}")
        return "\n".join(lines)

    def series_as_csv(self, name: Optional[str] = None) -> str:
        """Export one (or all) series as CSV text."""
        names = [name] if name is not None else list(self.series)
        missing = [n for n in names if n not in self.series]
        if missing:
            raise KeyError(f"unknown series {missing}; available: {list(self.series)}")
        arrays = [np.asarray(self.series[n], dtype=float) for n in names]
        length = max(a.shape[0] for a in arrays)
        lines = ["index," + ",".join(names)]
        for i in range(length):
            cells = [str(i)]
            for arr in arrays:
                cells.append(f"{arr[i]:.6g}" if i < arr.shape[0] else "")
            lines.append(",".join(cells))
        return "\n".join(lines)
