"""Experiment ``non-psd-recovery`` — behaviour on covariance matrices that are not PSD.

Sections 4.2–4.3 of the paper motivate the eigen-coloring + clipping pipeline
by the failure of Cholesky-based methods on covariance matrices that are not
positive (semi-)definite.  This experiment builds a family of synthetic
indefinite covariance requests (valid Hermitian matrices with unit diagonal
whose smallest eigenvalue is pushed negative), then

* confirms the Cholesky factorization fails on each of them,
* runs the proposed pipeline, and
* verifies the achieved sample covariance matches the *forced-PSD* matrix
  ``K_bar`` (the best realizable approximation), with the Frobenius gap
  between ``K_bar`` and the request reported as the unavoidable
  approximation cost.
"""

from __future__ import annotations

import numpy as np

from ..core.coloring import compute_coloring
from ..core.generator import RayleighFadingGenerator
from ..linalg import frobenius_distance, is_positive_semidefinite, try_cholesky
from ..validation.metrics import relative_frobenius_error
from .reporting import ExperimentResult, Table

__all__ = ["run", "make_indefinite_covariance"]


def make_indefinite_covariance(size: int, seed: int, *, strength: float = 0.25) -> np.ndarray:
    """Build a Hermitian, unit-diagonal covariance request that is **not** PSD.

    A random Hermitian correlation-like matrix is generated, then its smallest
    eigenvalue is pushed below zero by subtracting ``strength`` times the
    projector onto the smallest eigenvector, and the diagonal is restored to
    one.  The construction mimics what happens in practice when pairwise
    correlation estimates are assembled into a matrix without a joint
    consistency constraint.
    """
    rng = np.random.default_rng(seed)
    raw = rng.normal(size=(size, size)) + 1j * rng.normal(size=(size, size))
    hermitian = raw @ raw.conj().T / size
    scale = np.sqrt(np.outer(np.real(np.diag(hermitian)), np.real(np.diag(hermitian))))
    correlation = hermitian / scale

    eigenvalues, eigenvectors = np.linalg.eigh(correlation)
    weakest = eigenvectors[:, 0:1]
    perturbed = correlation - (eigenvalues[0] + strength) * (weakest @ weakest.conj().T)
    np.fill_diagonal(perturbed, 1.0)
    perturbed = 0.5 * (perturbed + perturbed.conj().T)
    if is_positive_semidefinite(perturbed):
        # Increase the push until the matrix is genuinely indefinite.
        return make_indefinite_covariance(size, seed + 1, strength=strength * 2.0)
    return perturbed


def run(seed: int = 20050408, sizes=(3, 4, 8, 16), n_samples: int = 200_000) -> ExperimentResult:
    """Run the experiment over several matrix sizes."""
    table = Table(
        title="Non-PSD covariance requests: Cholesky vs. the proposed pipeline",
        columns=[
            "N",
            "min eigenvalue",
            "cholesky succeeds",
            "forced-PSD gap ||K_bar-K||_F",
            "sample cov err vs K_bar",
        ],
    )
    metrics = {}
    all_cholesky_failed = True
    all_matched = True

    for index, size in enumerate(sizes):
        request = make_indefinite_covariance(size, seed + index)
        min_eig = float(np.min(np.linalg.eigvalsh(request)))

        cholesky_result = try_cholesky(request)
        all_cholesky_failed &= not cholesky_result.success

        coloring = compute_coloring(request, method="eigen", psd_method="clip")
        gap = frobenius_distance(coloring.effective_covariance, request)

        generator = RayleighFadingGenerator(request, rng=seed + 100 + index)
        samples = generator.generate(n_samples)
        sample_covariance = samples @ samples.conj().T / n_samples
        achieved_error = relative_frobenius_error(
            sample_covariance, coloring.effective_covariance
        )
        all_matched &= achieved_error <= 0.05

        table.add_row(size, min_eig, cholesky_result.success, gap, achieved_error)
        metrics[f"min_eigenvalue_n{size}"] = min_eig
        metrics[f"forced_psd_gap_n{size}"] = gap
        metrics[f"achieved_error_n{size}"] = achieved_error

    result = ExperimentResult(
        experiment_id="non-psd-recovery",
        paper_artifact="Sections 4.2-4.3 (forced PSD + eigen coloring)",
        description=(
            "Synthetic indefinite covariance requests of several sizes: Cholesky "
            "factorization (the conventional coloring) fails on all of them, while the "
            "proposed clip-and-eigendecompose pipeline produces envelopes whose sample "
            "covariance matches the forced-PSD approximation K_bar."
        ),
        parameters={"sizes": list(sizes), "n_samples": n_samples, "seed": seed},
        metrics=metrics,
        passed=all_cholesky_failed and all_matched,
    )
    result.add_table(table)
    return result
