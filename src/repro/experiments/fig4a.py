"""Experiment ``fig4a-spectral-envelopes`` — reproduce Fig. 4(a).

Fig. 4(a) of the paper shows 200 samples of three spectrally correlated,
Doppler-shaped Rayleigh fading envelopes (dB around the rms value) generated
by the real-time algorithm of Section 5 with the covariance matrix of
Eq. (22) and the Doppler parameters ``M = 4096``, ``sigma_orig^2 = 1/2``,
``fm = 0.05``.

The published figure is a single random realization, so it cannot be matched
sample-for-sample.  What *is* reproducible — and what this experiment checks
— are the statistics that figure is meant to demonstrate:

* the covariance of the generated complex Gaussian branches matches Eq. (22),
* every branch's envelope is Rayleigh with unit Gaussian power,
* every branch's temporal autocorrelation follows ``J0(2 pi fm d)``, and
* the generated traces exhibit the deep fades (tens of dB below rms) visible
  in the figure.

The 200-sample dB traces themselves are returned in ``result.series`` so they
can be plotted or exported (``ExperimentResult.series_as_csv``).
"""

from __future__ import annotations

import numpy as np

from ..core.realtime import RealTimeRayleighGenerator
from ..signal.levels import envelope_db_around_rms
from ..validation.reports import validate_block
from . import paper_values as pv
from .reporting import ExperimentResult, Table

__all__ = ["run", "build_generator"]


def build_generator(seed: int = 20050404, n_points: int = pv.IDFT_POINTS) -> RealTimeRayleighGenerator:
    """The real-time generator configured exactly as in Section 6 (spectral case)."""
    scenario = pv.paper_ofdm_scenario(n_points)
    spec = scenario.covariance_spec(np.ones(pv.N_BRANCHES))
    return RealTimeRayleighGenerator(
        spec,
        normalized_doppler=pv.NORMALIZED_DOPPLER,
        n_points=n_points,
        input_variance_per_dim=pv.INPUT_VARIANCE_PER_DIM,
        rng=seed,
    )


def run(seed: int = 20050404, n_blocks: int = 8) -> ExperimentResult:
    """Run the experiment.

    Parameters
    ----------
    seed:
        Random seed of the realization.
    n_blocks:
        Number of ``M``-sample blocks used for the statistical validation
        (the plotted trace always uses the first block, like the paper's
        single realization).
    """
    generator = build_generator(seed)
    block = generator.generate_gaussian(n_blocks)
    desired = generator.spec.matrix

    report = validate_block(
        block,
        desired,
        covariance_tolerance=0.08,
        power_tolerance=0.08,
        rayleigh_statistic=0.05,
        normalized_doppler=pv.NORMALIZED_DOPPLER,
    )

    envelopes = np.abs(block.samples)
    db_traces = envelope_db_around_rms(envelopes[:, : pv.PLOTTED_SAMPLES])
    deepest_fade_db = float(np.min(db_traces))

    table = Table(
        title="Fig. 4(a) acceptance checks (statistical content of the figure)",
        columns=["check", "metric", "tolerance", "pass"],
    )
    for check in report.checks:
        table.add_row(check.name, check.metric, check.tolerance, check.passed)
    table.add_row("deep fades below -10 dB", deepest_fade_db, -10.0, deepest_fade_db <= -10.0)

    result = ExperimentResult(
        experiment_id="fig4a-spectral-envelopes",
        paper_artifact="Fig. 4(a), Section 6",
        description=(
            "Three equal-power, spectrally correlated Rayleigh fading envelopes "
            "generated in real time (Doppler-shaped) with the covariance matrix of "
            "Eq. (22); the figure's 200-sample dB-around-rms traces are regenerated "
            "and the statistics it illustrates are validated."
        ),
        parameters={
            "n_branches": pv.N_BRANCHES,
            "idft_points": pv.IDFT_POINTS,
            "normalized_doppler": pv.NORMALIZED_DOPPLER,
            "input_variance_per_dim": pv.INPUT_VARIANCE_PER_DIM,
            "validation_blocks": n_blocks,
            "seed": seed,
        },
        series={
            f"envelope_{j + 1}_db": db_traces[j] for j in range(pv.N_BRANCHES)
        },
        metrics={
            "covariance_relative_error": report.checks[0].metric,
            "envelope_power_error": report.checks[1].metric,
            "rayleigh_ks_statistic": report.checks[2].metric,
            "autocorrelation_rms_error": report.checks[3].metric,
            "deepest_fade_db": deepest_fade_db,
        },
        passed=report.passed and deepest_fade_db <= -10.0,
        notes=(
            "The published figure is one random realization; reproduction is "
            "statistical (achieved covariance, Rayleigh fit, Doppler autocorrelation, "
            "fade depth), with the regenerated traces available in `series`."
        ),
    )
    result.add_table(table)
    return result
