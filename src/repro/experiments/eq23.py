"""Experiment ``eq23-spatial-covariance`` — reproduce the covariance matrix of Eq. (23).

The paper derives, from the Salz–Winters spatial-correlation model with
``D/lambda = 1``, ``Delta = 10 degrees`` and ``Phi = 0``, the real 3x3
covariance matrix of Eq. (23).  This experiment rebuilds that matrix from the
physical parameters via :class:`repro.channels.scenario.MIMOArrayScenario`
and compares it against the printed values.
"""

from __future__ import annotations

import numpy as np

from ..validation.metrics import max_absolute_error, relative_frobenius_error
from . import paper_values as pv
from .reporting import ExperimentResult, Table, format_complex_matrix

__all__ = ["run"]

#: The paper prints 4 decimals; allow a 1-ulp-of-print rounding margin.
ENTRY_TOLERANCE = 2e-4


def run(seed: int = 0) -> ExperimentResult:
    """Run the experiment.  The seed is unused (the computation is deterministic)."""
    scenario = pv.paper_mimo_scenario()
    spec = scenario.covariance_spec(np.ones(pv.N_BRANCHES))
    computed = spec.matrix
    reference = pv.EQ23_COVARIANCE

    entry_error = max_absolute_error(computed, reference)
    frob_error = relative_frobenius_error(computed, reference)
    max_imaginary = float(np.max(np.abs(np.imag(computed))))

    table = Table(
        title="Eq. (23) covariance entries (upper triangle): paper vs. computed",
        columns=["entry", "paper", "computed", "abs error"],
    )
    for k in range(pv.N_BRANCHES):
        for j in range(k, pv.N_BRANCHES):
            table.add_row(
                f"K[{k + 1},{j + 1}]",
                float(np.real(reference[k, j])),
                float(np.real(computed[k, j])),
                float(abs(computed[k, j] - reference[k, j])),
            )

    result = ExperimentResult(
        experiment_id="eq23-spatial-covariance",
        paper_artifact="Eq. (23), Section 6",
        description=(
            "Covariance matrix of three spatially correlated complex Gaussian "
            "branches (equal power 1) from the Salz-Winters Bessel-series model "
            "(Eq. 5-7) for a uniform linear array with D/lambda = 1, angular spread "
            "Delta = 10 degrees and mean angle Phi = 0."
        ),
        parameters={
            "n_antennas": pv.N_BRANCHES,
            "spacing_wavelengths": pv.ANTENNA_SPACING_WAVELENGTHS,
            "angular_spread_deg": 10.0,
            "mean_angle_rad": pv.MEAN_ANGLE_RAD,
            "gaussian_power": 1.0,
        },
        metrics={
            "max_entry_error": entry_error,
            "relative_frobenius_error": frob_error,
            "max_imaginary_part": max_imaginary,
            "min_eigenvalue": float(np.min(np.linalg.eigvalsh(computed))),
        },
        passed=entry_error <= ENTRY_TOLERANCE and max_imaginary <= 1e-12,
        notes=(
            "computed matrix:\n"
            + format_complex_matrix(computed)
            + "\nWith Phi = 0 the Rxy/Ryx covariances vanish, so the matrix is real "
            "and positive definite, matching the paper's remarks."
        ),
    )
    result.add_table(table)
    return result
