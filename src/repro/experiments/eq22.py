"""Experiment ``eq22-spectral-covariance`` — reproduce the covariance matrix of Eq. (22).

The paper derives, from the Jakes spectral-correlation model with the GSM-900
style parameters of Section 6, the 3x3 covariance matrix of Eq. (22).  This
experiment rebuilds that matrix from the physical parameters via
:class:`repro.channels.scenario.OFDMScenario` and compares it entry by entry
against the values printed in the paper.
"""

from __future__ import annotations

import numpy as np

from ..validation.metrics import max_absolute_error, relative_frobenius_error
from . import paper_values as pv
from .reporting import ExperimentResult, Table, format_complex_matrix

__all__ = ["run"]

#: Accept entry-wise deviations up to this value: the paper prints 4 decimals.
ENTRY_TOLERANCE = 5e-4


def run(seed: int = 0) -> ExperimentResult:
    """Run the experiment.  The seed is unused (the computation is deterministic)."""
    scenario = pv.paper_ofdm_scenario()
    spec = scenario.covariance_spec(np.ones(pv.N_BRANCHES))
    computed = spec.matrix
    reference = pv.EQ22_COVARIANCE

    entry_error = max_absolute_error(computed, reference)
    frob_error = relative_frobenius_error(computed, reference)

    table = Table(
        title="Eq. (22) covariance entries (upper triangle): paper vs. computed",
        columns=["entry", "paper", "computed", "abs error"],
    )
    for k in range(pv.N_BRANCHES):
        for j in range(k, pv.N_BRANCHES):
            table.add_row(
                f"K[{k + 1},{j + 1}]",
                complex(reference[k, j]),
                complex(computed[k, j]),
                float(abs(computed[k, j] - reference[k, j])),
            )

    result = ExperimentResult(
        experiment_id="eq22-spectral-covariance",
        paper_artifact="Eq. (22), Section 6",
        description=(
            "Covariance matrix of three spectrally correlated complex Gaussian "
            "branches (equal power 1) computed from the Jakes model (Eq. 3-4) with "
            "Fm = 50 Hz, rms delay spread 1 us, 200 kHz carrier separation and "
            "arrival delays (1, 3, 4) ms, assembled via Eq. (12)-(13)."
        ),
        parameters={
            "max_doppler_hz": pv.MAX_DOPPLER_HZ,
            "frequency_separation_hz": pv.FREQUENCY_SEPARATION_HZ,
            "rms_delay_spread_s": pv.RMS_DELAY_SPREAD_S,
            "arrival_delays_ms": [1.0, 3.0, 4.0],
            "gaussian_power": 1.0,
        },
        metrics={
            "max_entry_error": entry_error,
            "relative_frobenius_error": frob_error,
            "min_eigenvalue": float(np.min(np.linalg.eigvalsh(computed))),
        },
        passed=entry_error <= ENTRY_TOLERANCE,
        notes=(
            "computed matrix:\n"
            + format_complex_matrix(computed)
            + "\nThe matrix is positive definite, matching the paper's remark."
        ),
    )
    result.add_table(table)
    return result
