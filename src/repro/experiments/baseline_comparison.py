"""Experiment ``baseline-comparison`` — the shortcoming matrix of Section 1.

The paper's introduction reviews six conventional methods and lists, for
each, the restriction that prevents it from covering the general case the
proposed algorithm handles.  This experiment exercises every baseline
implementation on four probe scenarios:

* ``equal-pd``      — equal powers, positive definite complex covariance
  (Eq. 22): the friendly case most baselines support;
* ``unequal-pd``    — unequal powers, positive definite covariance;
* ``complex-cov``   — a covariance with significant imaginary parts, probing
  the real-forcing of [5];
* ``indefinite``    — a non-PSD request, probing the Cholesky/PSD repairs.

For each (baseline, scenario) cell the table records whether the method runs
at all and, if it does, the relative error between the achieved sample
covariance and the requested one.  The proposed generator is included as the
reference row and is expected to handle every cell (matching the forced-PSD
matrix in the indefinite case).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from ..baselines import (
    BeaulieuMeraniGenerator,
    ErtelReedGenerator,
    NatarajanGenerator,
    SalzWintersGenerator,
    SorooshyariDautGenerator,
)
from ..core.coloring import compute_coloring
from ..core.covariance import CovarianceSpec
from ..core.generator import RayleighFadingGenerator
from ..exceptions import ReproError
from ..validation.metrics import relative_frobenius_error
from . import paper_values as pv
from .non_psd import make_indefinite_covariance
from .reporting import ExperimentResult, Table

__all__ = ["run", "probe_scenarios"]

#: Number of samples per probe.
PROBE_SAMPLES = 150_000


def probe_scenarios(seed: int) -> Dict[str, np.ndarray]:
    """The four probe covariance requests described in the module docstring."""
    unequal_powers = np.array([0.5, 1.0, 2.0])
    rho = 0.6
    unequal = rho ** np.abs(np.subtract.outer(range(3), range(3))) * np.sqrt(
        np.outer(unequal_powers, unequal_powers)
    )
    return {
        "equal-pd": pv.EQ22_COVARIANCE,
        "unequal-pd": unequal.astype(complex),
        "complex-cov": pv.EQ22_COVARIANCE,  # Eq. 22 has genuinely complex covariances
        "indefinite": make_indefinite_covariance(3, seed),
    }


def _attempt(
    build: Callable[[], object],
    generate: Callable[[object], np.ndarray],
    desired: np.ndarray,
    reference: Optional[np.ndarray] = None,
) -> tuple:
    """Run one (baseline, scenario) cell; returns (runs, error or None, failure reason)."""
    try:
        generator = build()
        samples = generate(generator)
    except ReproError as exc:
        return False, None, type(exc).__name__
    target = desired if reference is None else reference
    achieved = samples @ samples.conj().T / samples.shape[1]
    return True, relative_frobenius_error(achieved, target), ""


def run(seed: int = 20050412) -> ExperimentResult:
    """Run every baseline on every probe scenario."""
    scenarios = probe_scenarios(seed)
    table = Table(
        title="Baselines vs. the proposed algorithm (relative covariance error; '-' = cannot run)",
        columns=["method", "scenario", "runs", "rel. error", "failure"],
    )
    metrics = {}

    def add_row(name: str, scenario: str, runs: bool, error, failure: str) -> None:
        table.add_row(name, scenario, runs, error if error is not None else "-", failure)
        if error is not None:
            metrics[f"{name}_{scenario}"] = float(error)

    proposed_ok = True
    for scenario_name, covariance in scenarios.items():
        spec_matrix = np.asarray(covariance, dtype=complex)

        # Proposed algorithm: always runs; in the indefinite case it matches
        # the forced-PSD matrix, which is the best realizable target.
        reference = None
        if scenario_name == "indefinite":
            reference = compute_coloring(spec_matrix).effective_covariance
        runs, error, failure = _attempt(
            lambda m=spec_matrix: RayleighFadingGenerator(m, rng=seed),
            lambda g: g.generate(PROBE_SAMPLES),
            spec_matrix,
            reference,
        )
        add_row("proposed", scenario_name, runs, error, failure)
        proposed_ok &= runs and error is not None and error <= 0.06

        # Salz-Winters [1]: equal power, PSD required.
        runs, error, failure = _attempt(
            lambda m=spec_matrix: SalzWintersGenerator(m, rng=seed),
            lambda g: g.generate(PROBE_SAMPLES),
            spec_matrix,
        )
        add_row("salz-winters [1]", scenario_name, runs, error, failure)

        # Ertel-Reed [2]: two branches only - probe with the leading 2x2 block.
        two_branch = spec_matrix[:2, :2]
        sigma2 = float(np.real(two_branch[0, 0]))
        rho = complex(two_branch[0, 1] / sigma2)
        equal_power_2x2 = bool(
            np.isclose(np.real(two_branch[0, 0]), np.real(two_branch[1, 1]))
        )
        if equal_power_2x2 and abs(rho) < 1.0:
            runs, error, failure = _attempt(
                lambda r=rho, s=sigma2: ErtelReedGenerator(
                    gaussian_correlation=r, power=s, rng=seed
                ),
                lambda g: g.generate(PROBE_SAMPLES),
                two_branch,
            )
            add_row("ertel-reed [2] (2x2 block)", scenario_name, runs, error, failure)
        else:
            add_row("ertel-reed [2] (2x2 block)", scenario_name, False, None, "PowerError")

        # Beaulieu-Merani [3,4]: equal power + Cholesky.
        runs, error, failure = _attempt(
            lambda m=spec_matrix: BeaulieuMeraniGenerator(m, rng=seed),
            lambda g: g.generate(PROBE_SAMPLES),
            spec_matrix,
        )
        add_row("beaulieu-merani [3,4]", scenario_name, runs, error, failure)

        # Natarajan [5]: arbitrary power, real-forced covariances + Cholesky.
        runs, error, failure = _attempt(
            lambda m=spec_matrix: NatarajanGenerator(m, rng=seed),
            lambda g: g.generate(PROBE_SAMPLES),
            spec_matrix,
        )
        add_row("natarajan [5]", scenario_name, runs, error, failure)

        # Sorooshyari-Daut [6]: equal power, epsilon repair + Cholesky.
        runs, error, failure = _attempt(
            lambda m=spec_matrix: SorooshyariDautGenerator(m, rng=seed),
            lambda g: g.generate(PROBE_SAMPLES),
            spec_matrix,
        )
        add_row("sorooshyari-daut [6]", scenario_name, runs, error, failure)

    # Acceptance: the proposed method covers every scenario; the documented
    # restrictions show up as failures or inflated errors in the baselines.
    natarajan_complex_error = metrics.get("natarajan [5]_complex-cov", 0.0)
    result = ExperimentResult(
        experiment_id="baseline-comparison",
        paper_artifact="Section 1 (shortcoming analysis of [1]-[6])",
        description=(
            "Each conventional method is exercised on equal-power / unequal-power / "
            "complex-covariance / indefinite probes; the failures and errors in the "
            "table are the shortcomings the paper's introduction enumerates, while the "
            "proposed algorithm covers every probe."
        ),
        parameters={"probe_samples": PROBE_SAMPLES, "seed": seed},
        metrics=metrics,
        passed=proposed_ok and natarajan_complex_error > 0.2,
        notes=(
            "The Natarajan [5] row on the complex-covariance probe runs but realizes "
            "only the real part of the requested covariance, hence its large error - "
            "exactly the limitation the paper points out (its Eq. 8)."
        ),
    )
    result.add_table(table)
    return result
