"""Experiment registry and execution helpers.

Maps the experiment identifiers documented in ``DESIGN.md`` to their ``run``
callables.  Used by the command line (``python -m repro``), the benchmark
harness, and the integration tests.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, Iterable, List

from ..exceptions import ExperimentError
from . import (
    baseline_comparison,
    coloring_methods,
    doppler_accuracy,
    doppler_substrate,
    eq22,
    eq23,
    fig4a,
    fig4b,
    non_psd,
    psd_forcing,
    scaling,
    unequal_power,
    variance_compensation,
)
from .reporting import ExperimentResult

__all__ = ["EXPERIMENTS", "run_experiment", "list_experiments", "run_all"]

#: Registry: experiment id -> zero-config run callable.
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "eq22-spectral-covariance": eq22.run,
    "eq23-spatial-covariance": eq23.run,
    "fig4a-spectral-envelopes": fig4a.run,
    "fig4b-spatial-envelopes": fig4b.run,
    "doppler-autocorrelation": doppler_accuracy.run,
    "doppler-substrate": doppler_substrate.run,
    "variance-compensation": variance_compensation.run,
    "non-psd-recovery": non_psd.run,
    "psd-forcing-precision": psd_forcing.run,
    "unequal-power": unequal_power.run,
    "coloring-methods": coloring_methods.run,
    "baseline-comparison": baseline_comparison.run,
    "scaling-n": scaling.run,
    "scaling-batch": scaling.run_batch,
    "scaling-doppler-batch": scaling.run_doppler_batch,
}


def list_experiments() -> List[str]:
    """Identifiers of all registered experiments, in DESIGN.md order."""
    return list(EXPERIMENTS)


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment by id.

    A ``backend`` keyword (the engine's linalg backend, selected via the
    CLI's ``--backend``) is forwarded only to experiments whose ``run``
    callable declares the parameter; experiments that never touch the
    batched engine silently ignore it, so ``run all --backend scipy``
    works across the whole registry.

    Raises
    ------
    ExperimentError
        If the identifier is unknown.
    """
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError as exc:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; available: {list_experiments()}"
        ) from exc
    if "backend" in kwargs:
        parameters = inspect.signature(runner).parameters
        accepts_backend = "backend" in parameters or any(
            parameter.kind is inspect.Parameter.VAR_KEYWORD
            for parameter in parameters.values()
        )
        if not accepts_backend:
            kwargs = {key: value for key, value in kwargs.items() if key != "backend"}
    return runner(**kwargs)


def run_all(experiment_ids: Iterable[str] | None = None, **kwargs) -> List[ExperimentResult]:
    """Run several (default: all) experiments and return their results."""
    ids = list(experiment_ids) if experiment_ids is not None else list_experiments()
    return [run_experiment(experiment_id, **kwargs) for experiment_id in ids]
