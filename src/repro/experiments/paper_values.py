"""Constants quoted in the paper's simulation section (Section 6).

Every experiment pulls its parameter values and reference matrices from this
module so that the correspondence between the code and the paper is recorded
in exactly one place.
"""

from __future__ import annotations

import numpy as np

from ..channels.scenario import DopplerSettings, MIMOArrayScenario, OFDMScenario

__all__ = [
    "N_BRANCHES",
    "IDFT_POINTS",
    "INPUT_VARIANCE_PER_DIM",
    "SAMPLING_FREQUENCY_HZ",
    "MAX_DOPPLER_HZ",
    "NORMALIZED_DOPPLER",
    "KM_EXPECTED",
    "CARRIER_FREQUENCY_HZ",
    "MOBILE_SPEED_KMH",
    "FREQUENCY_SEPARATION_HZ",
    "RMS_DELAY_SPREAD_S",
    "ARRIVAL_DELAYS_S",
    "ANTENNA_SPACING_WAVELENGTHS",
    "ANGULAR_SPREAD_RAD",
    "MEAN_ANGLE_RAD",
    "PLOTTED_SAMPLES",
    "EQ22_COVARIANCE",
    "EQ23_COVARIANCE",
    "paper_doppler_settings",
    "paper_ofdm_scenario",
    "paper_mimo_scenario",
]

#: Number of correlated envelopes in both simulation scenarios.
N_BRANCHES = 3

#: Number of IDFT points (Section 6: "M = 4096").
IDFT_POINTS = 4096

#: Variance per dimension of the Doppler-filter input sequences ("sigma_orig^2 = 1/2").
INPUT_VARIANCE_PER_DIM = 0.5

#: Sampling frequency of the transmitted signal ("Fs = 1 kHz").
SAMPLING_FREQUENCY_HZ = 1_000.0

#: Maximum Doppler frequency ("Fm = 50 Hz", i.e. 900 MHz carrier at 60 km/h).
MAX_DOPPLER_HZ = 50.0

#: Normalized maximum Doppler frequency ("fm = 0.05").
NORMALIZED_DOPPLER = MAX_DOPPLER_HZ / SAMPLING_FREQUENCY_HZ

#: The paper's value of k_m = floor(fm * M) ("km = 204").
KM_EXPECTED = 204

#: Carrier frequency used to motivate Fm ("900 MHz").
CARRIER_FREQUENCY_HZ = 900e6

#: Mobile speed used to motivate Fm ("v = 60 km/hr").
MOBILE_SPEED_KMH = 60.0

#: Frequency separation between adjacent carriers ("200 kHz, e.g. GSM 900").
FREQUENCY_SEPARATION_HZ = 200e3

#: RMS delay spread of the channel ("sigma_tau = 1 microsecond").
RMS_DELAY_SPREAD_S = 1e-6

#: Pairwise arrival delays ("tau_12 = 1 ms, tau_23 = 3 ms, tau_13 = 4 ms").
ARRIVAL_DELAYS_S = np.array(
    [
        [0.0, 1e-3, 4e-3],
        [1e-3, 0.0, 3e-3],
        [4e-3, 3e-3, 0.0],
    ]
)

#: Antenna spacing for the spatial scenario ("D / lambda = 1").
ANTENNA_SPACING_WAVELENGTHS = 1.0

#: Angular spread ("Delta = pi/18 rad = 10 degrees").
ANGULAR_SPREAD_RAD = np.pi / 18.0

#: Mean angle of departure ("Phi = 0 rad").
MEAN_ANGLE_RAD = 0.0

#: Number of samples plotted in Fig. 4 (x-axis runs to 200).
PLOTTED_SAMPLES = 200

#: Eq. (22): the desired covariance matrix of the spectral-correlation scenario.
EQ22_COVARIANCE = np.array(
    [
        [1.0 + 0.0j, 0.3782 + 0.4753j, 0.0878 + 0.2207j],
        [0.3782 - 0.4753j, 1.0 + 0.0j, 0.3063 + 0.3849j],
        [0.0878 - 0.2207j, 0.3063 - 0.3849j, 1.0 + 0.0j],
    ]
)

#: Eq. (23): the desired covariance matrix of the spatial-correlation scenario.
EQ23_COVARIANCE = np.array(
    [
        [1.0, 0.8123, 0.3730],
        [0.8123, 1.0, 0.8123],
        [0.3730, 0.8123, 1.0],
    ],
    dtype=complex,
)


def paper_doppler_settings(n_points: int = IDFT_POINTS) -> DopplerSettings:
    """The Doppler settings of Section 6 (Fs = 1 kHz, Fm = 50 Hz, M = 4096)."""
    return DopplerSettings(
        sampling_frequency_hz=SAMPLING_FREQUENCY_HZ,
        max_doppler_hz=MAX_DOPPLER_HZ,
        n_points=n_points,
        input_variance_per_dim=INPUT_VARIANCE_PER_DIM,
    )


def paper_ofdm_scenario(n_points: int = IDFT_POINTS) -> OFDMScenario:
    """The spectral-correlation scenario of Section 6 (leads to Eq. 22).

    Carrier frequencies are 200 kHz apart with ``f1 > f2 > f3``; the absolute
    carrier (900 MHz band) only matters through the Doppler frequency, which
    the paper fixes directly at 50 Hz.
    """
    frequencies = CARRIER_FREQUENCY_HZ + FREQUENCY_SEPARATION_HZ * np.array([2.0, 1.0, 0.0])
    return OFDMScenario(
        carrier_frequencies_hz=frequencies,
        delays_s=ARRIVAL_DELAYS_S,
        rms_delay_spread_s=RMS_DELAY_SPREAD_S,
        doppler=paper_doppler_settings(n_points),
    )


def paper_mimo_scenario(n_points: int = IDFT_POINTS) -> MIMOArrayScenario:
    """The spatial-correlation scenario of Section 6 (leads to Eq. 23)."""
    return MIMOArrayScenario(
        n_antennas=N_BRANCHES,
        spacing_wavelengths=ANTENNA_SPACING_WAVELENGTHS,
        mean_angle_rad=MEAN_ANGLE_RAD,
        angular_spread_rad=ANGULAR_SPREAD_RAD,
        doppler=paper_doppler_settings(n_points),
    )
