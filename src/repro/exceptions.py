"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class.  More specific subclasses communicate which
stage of the correlated-Rayleigh generation pipeline failed: specification of
the covariance structure, matrix decomposition, Doppler shaping, or
validation of generated envelopes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SpecificationError",
    "DimensionError",
    "PowerError",
    "CovarianceError",
    "NotHermitianError",
    "NotPositiveSemiDefiniteError",
    "DecompositionError",
    "CholeskyError",
    "ColoringError",
    "DopplerError",
    "FilterDesignError",
    "GenerationError",
    "ValidationError",
    "ExperimentError",
    "ParallelExecutionError",
    "BackendError",
    "ServiceError",
    "BackpressureError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class SpecificationError(ReproError, ValueError):
    """A user-supplied specification (scenario, powers, delays) is invalid."""


class DimensionError(SpecificationError):
    """Array arguments have inconsistent or unsupported dimensions."""


class PowerError(SpecificationError):
    """A power / variance argument is negative, zero where forbidden, or malformed."""


class CovarianceError(ReproError, ValueError):
    """A covariance matrix violates a structural requirement."""


class NotHermitianError(CovarianceError):
    """Matrix expected to be Hermitian is not (within tolerance)."""


class NotPositiveSemiDefiniteError(CovarianceError):
    """Matrix expected to be positive semi-definite has negative eigenvalues.

    This is the condition that the paper's forced-PSD procedure (Section 4.2)
    removes; the error is raised only by strict code paths that intentionally
    refuse to repair the matrix (e.g. the Cholesky-based baselines).
    """

    def __init__(self, message: str, min_eigenvalue: float | None = None):
        super().__init__(message)
        #: The most negative eigenvalue encountered, if known.
        self.min_eigenvalue = min_eigenvalue


class DecompositionError(ReproError, RuntimeError):
    """A matrix decomposition failed."""


class CholeskyError(DecompositionError):
    """Cholesky factorization failed (matrix not positive definite).

    The proposed algorithm avoids this failure mode entirely; the exception is
    raised by the conventional baselines that rely on Cholesky decomposition,
    reproducing the shortcoming the paper describes.
    """


class ColoringError(DecompositionError):
    """Computation of a coloring matrix ``L`` with ``L L^H = K`` failed."""


class DopplerError(ReproError, ValueError):
    """Doppler-related parameters are invalid (e.g. normalized Doppler >= 0.5)."""


class FilterDesignError(DopplerError):
    """The Doppler filter cannot be designed for the requested parameters."""


class GenerationError(ReproError, RuntimeError):
    """Envelope generation failed at run time."""


class ValidationError(ReproError, AssertionError):
    """A statistical validation check on generated envelopes failed."""


class ExperimentError(ReproError, RuntimeError):
    """An experiment (paper figure/table reproduction) could not be run."""


class ParallelExecutionError(ReproError, RuntimeError):
    """A parallel/ensemble execution failed in one or more workers."""


class BackendError(ReproError, RuntimeError):
    """A linear-algebra backend is unknown, unavailable, or failed to load.

    Raised by :func:`repro.engine.backends.get_backend` when the requested
    backend name is not registered or its import-gated dependency (scipy,
    cupy, torch) is missing from the environment.
    """


class ServiceError(ReproError, RuntimeError):
    """The serving layer rejected or could not satisfy a request.

    Raised by :class:`repro.service.EnvelopeService` for protocol-level
    failures: submitting to a stopped service, requesting the result of an
    unknown request id, or malformed wire payloads.
    """


class BackpressureError(ServiceError):
    """The service's bounded submission queue is full.

    The request was rejected *without* blocking the event loop; the client
    should retry after ``retry_after`` seconds (the HTTP front end maps
    this to ``429 Too Many Requests`` with a ``Retry-After`` header).
    """

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        #: Suggested client back-off in seconds before resubmitting.
        self.retry_after = float(retry_after)
