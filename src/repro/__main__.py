"""Allow ``python -m repro`` to invoke the experiment command line."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
