"""Rule ``cache-key-purity`` — content-hash builders must be deterministic.

The cache keys (``decomposition_cache_key``, ``compiled_plan_cache_key``,
``PlanEntry.cache_key``, ``DopplerSpec.filter_key``, the filter-cache
``_key_hash``) are pure functions of *content*: the same covariance
matrices, tolerances, Doppler parameters, and backend cache token must
hash to the same key on every host and every run.  Seeds and labels are
deliberately excluded (execution re-binds them); wall-clock time, RNG
state, and environment variables must never leak in — at multi-host
scale an impure key silently splits (or worse, aliases) cache entries.

The rule builds a project-wide call graph from the key-builder roots
(functions named like the builders above) and flags any reachable
function that references ``seed(s)`` / ``label(s)`` identifiers,
``time.*``, ``random`` / ``np.random``, or ``os.environ``.  Call edges
resolve by name: plain calls to project top-level functions, and
attribute calls to project method names that are not ubiquitous builtin
names (``.get``, ``.update``, ...) — an over-approximation, which for a
gate is the safe direction (see docs/ARCHITECTURE.md, "Static
guarantees").
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple, Union

from .framework import Finding, ModuleInfo, Project, Rule, register_rule

__all__ = ["CacheKeyPurityRule", "ROOT_NAMES"]

#: Function/method names treated as cache-key builders (reachability roots).
ROOT_NAMES = frozenset(
    {
        "decomposition_cache_key",
        "compiled_plan_cache_key",
        "cache_key",
        "filter_key",
        "fading_token",
        "_key_hash",
    }
)

_FORBIDDEN_IDENTIFIERS = frozenset({"seed", "seeds", "label", "labels"})

#: Attribute names that are ubiquitous on builtins — never resolved as
#: project method calls (keeps ``memo.get`` from dragging in every
#: project class that happens to define ``get``).
_BUILTIN_ATTRS = frozenset(
    set(dir(dict))
    | set(dir(list))
    | set(dir(set))
    | set(dir(str))
    | set(dir(bytes))
    | set(dir(tuple))
    | set(dir(frozenset))
)

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


class _FunctionIndex:
    """Project-wide name → function-node index for call-graph edges."""

    def __init__(self, project: Project) -> None:
        #: module-top-level functions by name
        self.functions: Dict[str, List[Tuple[ModuleInfo, _FunctionNode, str]]] = {}
        #: class methods by bare method name
        self.methods: Dict[str, List[Tuple[ModuleInfo, _FunctionNode, str]]] = {}
        for module in project.modules:
            for statement in module.tree.body:
                if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self.functions.setdefault(statement.name, []).append(
                        (module, statement, statement.name)
                    )
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qualname = f"{node.name}.{item.name}"
                        self.methods.setdefault(item.name, []).append(
                            (module, item, qualname)
                        )

    def roots(self) -> List[Tuple[ModuleInfo, _FunctionNode, str]]:
        found = []
        for name in sorted(ROOT_NAMES):
            found.extend(self.functions.get(name, ()))
            found.extend(self.methods.get(name, ()))
        return found

    def resolve_call(
        self, call: ast.Call
    ) -> List[Tuple[ModuleInfo, _FunctionNode, str]]:
        func = call.func
        if isinstance(func, ast.Name):
            return list(self.functions.get(func.id, ()))
        if isinstance(func, ast.Attribute) and func.attr not in _BUILTIN_ATTRS:
            targets = list(self.functions.get(func.attr, ()))
            targets.extend(self.methods.get(func.attr, ()))
            return targets
        return []


@register_rule
class CacheKeyPurityRule(Rule):
    name = "cache-key-purity"
    description = (
        "functions reachable from cache-key builders must not touch "
        "seeds, labels, time, random state, or the environment"
    )

    def run(self, project: Project) -> Iterator[Finding]:
        index = _FunctionIndex(project)
        #: function node id -> (module, node, qualname, root qualname)
        reachable: Dict[int, Tuple[ModuleInfo, _FunctionNode, str, str]] = {}
        queue: List[Tuple[ModuleInfo, _FunctionNode, str, str]] = [
            (module, node, qualname, qualname)
            for module, node, qualname in index.roots()
        ]
        while queue:
            module, node, qualname, root = queue.pop()
            if id(node) in reachable:
                continue
            reachable[id(node)] = (module, node, qualname, root)
            for child in ast.walk(node):
                if isinstance(child, ast.Call):
                    for target in index.resolve_call(child):
                        if id(target[1]) not in reachable:
                            queue.append((*target, root))

        for module, node, qualname, root in sorted(
            reachable.values(), key=lambda item: (item[0].display_path, item[1].lineno)
        ):
            yield from self._check_function(module, node, qualname, root)

    def _check_function(
        self, module: ModuleInfo, node: _FunctionNode, qualname: str, root: str
    ) -> Iterator[Finding]:
        def finding(at: ast.AST, reference: str) -> Finding:
            via = "" if qualname == root else f" (reachable from '{root}')"
            return Finding(
                rule=self.name,
                path=module.display_path,
                line=at.lineno,
                col=at.col_offset,
                message=(
                    f"cache-key builder '{qualname}'{via} references "
                    f"'{reference}' — keys must be pure functions of content "
                    f"(no seeds/labels/time/random/environment)"
                ),
            )

        for arg in (
            *node.args.posonlyargs,
            *node.args.args,
            *node.args.kwonlyargs,
        ):
            if arg.arg in _FORBIDDEN_IDENTIFIERS:
                yield finding(arg, arg.arg)

        for child in ast.walk(node):
            if isinstance(child, ast.Attribute):
                if child.attr in _FORBIDDEN_IDENTIFIERS:
                    yield finding(child, f".{child.attr}")
                elif child.attr == "environ":
                    yield finding(child, "os.environ")
                elif child.attr == "random":
                    yield finding(child, "np.random")
                elif isinstance(child.value, ast.Name) and child.value.id == "time":
                    yield finding(child, f"time.{child.attr}")
            elif isinstance(child, ast.Name):
                if child.id in _FORBIDDEN_IDENTIFIERS or child.id == "random":
                    yield finding(child, child.id)
