"""Rule ``backend-into-contract`` — keep ``LinalgBackend`` subclasses honest.

Three checks per module that defines ``LinalgBackend`` subclasses:

* every subclass (transitively, within the module) provides the abstract
  methods of the base class (``eigh`` / ``cholesky`` today — derived from
  the ``@abstractmethod`` decorators when the base is in the same module,
  with a built-in fallback contract otherwise);
* overrides of contract methods keep the base signature (same parameter
  names, same defaults count, same star-args) — the engine calls these
  positionally from the hot path, so a renamed or reordered parameter is
  a latent crash;
* every ``*_into`` method returns its ``out`` parameter (either
  ``return out`` or ``return <call>(..., out=out)``, the gufunc idiom)
  and contains no allocating numpy constructors — ``_into`` is the
  allocation-free contract the execute kernels rely on
  (see docs/ARCHITECTURE.md, "Static guarantees").
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

from .framework import Finding, ModuleInfo, Rule, register_rule
from .hot_path import FORBIDDEN_NUMPY_CONSTRUCTORS, _NUMPY_ALIASES

__all__ = ["BackendIntoContractRule"]

_BASE_NAME = "LinalgBackend"

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: (ordered parameter names, n_defaults, has *args, has **kwargs)
_Signature = Tuple[Tuple[str, ...], int, bool, bool]

#: Contract used when the base class is not defined in the linted module.
_FALLBACK_ABSTRACT = frozenset({"eigh", "cholesky"})
_FALLBACK_SIGNATURES: Dict[str, _Signature] = {
    "eigh": (("self", "stack"), 0, False, False),
    "cholesky": (("self", "stack"), 0, False, False),
    "matmul": (("self", "a", "b"), 0, False, False),
    "matmul_into": (("self", "a", "b", "out"), 0, False, False),
    "fft": (("self", "array", "axis"), 1, False, False),
    "ifft": (("self", "array", "axis"), 1, False, False),
    "ifft_into": (("self", "array", "out", "axis"), 1, False, False),
}


def _signature(node: _FunctionNode) -> _Signature:
    args = node.args
    names = tuple(
        a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    )
    n_defaults = len(args.defaults) + sum(
        1 for default in args.kw_defaults if default is not None
    )
    return (names, n_defaults, args.vararg is not None, args.kwarg is not None)


def _format_signature(sig: _Signature) -> str:
    names, n_defaults, vararg, kwarg = sig
    parts = list(names)
    if vararg:
        parts.append("*args")
    if kwarg:
        parts.append("**kwargs")
    rendered = ", ".join(parts)
    return f"({rendered})" + (f" with {n_defaults} default(s)" if n_defaults else "")


def _is_abstract(node: _FunctionNode) -> bool:
    for decorator in node.decorator_list:
        name = decorator.attr if isinstance(decorator, ast.Attribute) else (
            decorator.id if isinstance(decorator, ast.Name) else ""
        )
        if name == "abstractmethod":
            return True
    return False


def _base_names(node: ast.ClassDef) -> List[str]:
    names = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _methods(node: ast.ClassDef) -> Dict[str, _FunctionNode]:
    return {
        item.name: item
        for item in node.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


@register_rule
class BackendIntoContractRule(Rule):
    name = "backend-into-contract"
    description = (
        "LinalgBackend subclasses must match the base contract; *_into "
        "methods must return 'out' and never allocate"
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        classes: Dict[str, ast.ClassDef] = {
            node.name: node
            for node in ast.walk(module.tree)
            if isinstance(node, ast.ClassDef)
        }
        if not classes:
            return
        base = classes.get(_BASE_NAME)
        if base is not None:
            base_methods = _methods(base)
            abstract = {
                name for name, fn in base_methods.items() if _is_abstract(fn)
            }
            signatures = {
                name: _signature(fn) for name, fn in base_methods.items()
            }
        else:
            abstract = set(_FALLBACK_ABSTRACT)
            signatures = dict(_FALLBACK_SIGNATURES)

        subclasses = self._backend_subclasses(classes)
        if not subclasses and base is None:
            return

        for name in subclasses:
            node = classes[name]
            provided = self._provided_methods(name, classes)
            missing = sorted(abstract - provided)
            if missing:
                yield Finding(
                    rule=self.name,
                    path=module.display_path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"backend class '{name}' does not override required "
                        f"LinalgBackend method(s): {', '.join(missing)}"
                    ),
                )
            for method_name, method in _methods(node).items():
                expected = signatures.get(method_name)
                if expected is not None and _signature(method) != expected:
                    yield Finding(
                        rule=self.name,
                        path=module.display_path,
                        line=method.lineno,
                        col=method.col_offset,
                        message=(
                            f"'{name}.{method_name}' signature "
                            f"{_format_signature(_signature(method))} does not "
                            f"match LinalgBackend.{method_name} "
                            f"{_format_signature(expected)}"
                        ),
                    )

        checked = set(subclasses)
        if base is not None:
            checked.add(_BASE_NAME)
        for class_name in checked:
            for method_name, method in _methods(classes[class_name]).items():
                if method_name.endswith("_into") and not _is_abstract(method):
                    yield from self._check_into_method(
                        module, class_name, method
                    )

    # ------------------------------------------------------------------ #
    def _backend_subclasses(self, classes: Dict[str, ast.ClassDef]) -> List[str]:
        """Names of classes deriving (transitively, in-module) from the base."""
        subclasses: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for name, node in classes.items():
                if name == _BASE_NAME or name in subclasses:
                    continue
                for base_name in _base_names(node):
                    if base_name == _BASE_NAME or base_name in subclasses:
                        subclasses.add(name)
                        changed = True
                        break
        return sorted(subclasses)

    def _provided_methods(
        self, name: str, classes: Dict[str, ast.ClassDef]
    ) -> Set[str]:
        """Concrete methods available on ``name`` via its in-module ancestry."""
        provided: Set[str] = set()
        seen: Set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            node = classes.get(current)
            if node is None:
                continue
            for method_name, method in _methods(node).items():
                if not _is_abstract(method):
                    provided.add(method_name)
            stack.extend(_base_names(node))
        return provided

    def _check_into_method(
        self, module: ModuleInfo, class_name: str, method: _FunctionNode
    ) -> Iterator[Finding]:
        qualname = f"{class_name}.{method.name}"
        params = {
            a.arg
            for a in (
                *method.args.posonlyargs,
                *method.args.args,
                *method.args.kwonlyargs,
            )
        }
        if "out" not in params:
            yield Finding(
                rule=self.name,
                path=module.display_path,
                line=method.lineno,
                col=method.col_offset,
                message=f"'{qualname}' is an *_into method but has no 'out' parameter",
            )
            return
        returns = [
            node
            for node in ast.walk(method)
            if isinstance(node, ast.Return)
        ]
        if not any(node.value is not None for node in returns):
            yield Finding(
                rule=self.name,
                path=module.display_path,
                line=method.lineno,
                col=method.col_offset,
                message=f"'{qualname}' must return its 'out' parameter",
            )
        for node in returns:
            if node.value is None or _returns_out(node.value):
                continue
            yield Finding(
                rule=self.name,
                path=module.display_path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"'{qualname}' must return 'out' (or a call writing "
                    f"into it via an 'out=out' keyword), not "
                    f"'{ast.unparse(node.value)}'"
                ),
            )
        for node in ast.walk(method):
            if isinstance(node, ast.Call):
                described = _allocating_call(node)
                if described:
                    yield Finding(
                        rule=self.name,
                        path=module.display_path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"allocating call '{described}' inside *_into "
                            f"method '{qualname}' — the _into contract is "
                            f"allocation-free"
                        ),
                    )


def _returns_out(value: ast.expr) -> bool:
    if isinstance(value, ast.Name) and value.id == "out":
        return True
    if isinstance(value, ast.Call):
        for keyword in value.keywords:
            if (
                keyword.arg == "out"
                and isinstance(keyword.value, ast.Name)
                and keyword.value.id == "out"
            ):
                return True
    return False


def _allocating_call(node: ast.Call) -> str:
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in _NUMPY_ALIASES
        and func.attr in FORBIDDEN_NUMPY_CONSTRUCTORS
    ):
        return f"{func.value.id}.{func.attr}"
    return ""
