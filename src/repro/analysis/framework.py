"""Core of ``reprolint`` — the project-invariant lint framework.

The analyzers in this package are deliberately zero-dependency (stdlib
``ast`` + ``tokenize`` only) so the static gate runs anywhere the library
imports, including minimal CI containers without the ``dev`` extras.

The framework provides:

* :class:`Finding` — one reported violation (rule, location, message);
* :class:`ModuleInfo` — a parsed source file plus its ``reprolint``
  directive comments;
* :class:`Project` — every module of one lint run (rules that need
  cross-module reachability, like cache-key purity, see the whole set);
* :class:`Rule` and :func:`register_rule` — the rule registry;
* :func:`run_lint` — load, check, filter suppressions, sort.

Directive comments
------------------
``# reprolint: disable=<rule>[,<rule>...]``
    Suppress the named rules (or ``all``) on this line.  On a ``def`` /
    ``class`` header line the suppression covers the whole body.  Trailing
    prose is encouraged: ``# reprolint: disable=lock-discipline (advisory
    lock-free read)``.
``# reprolint: hot-module``
    Mark every function in this module as a hot path for the
    ``hot-path-allocation`` rule.
``# reprolint: hot-path``
    On a ``def`` header line: mark just that function hot.
``# reprolint: workspace-constructor``
    On a ``def`` header line: the function owns workspace allocation and
    is exempt from the hot-path allocation ban.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

__all__ = [
    "AnalysisError",
    "Finding",
    "ModuleInfo",
    "Project",
    "Rule",
    "all_rules",
    "load_project",
    "register_rule",
    "resolve_rules",
    "run_lint",
    "LintReport",
]


class AnalysisError(Exception):
    """The analyzer itself failed (bad path, unparseable file, bad rule name).

    Distinct from findings: the CLI maps findings to exit code 1 and this
    to exit code 2, so CI can tell "the gate fired" from "the gate broke".
    """


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def to_json(self) -> Dict[str, Union[str, int]]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


_DIRECTIVE_RE = re.compile(r"#\s*reprolint:\s*(?P<body>[A-Za-z0-9_=,\-]+)")

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]
_ScopeNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef]


class ModuleInfo:
    """A parsed source file plus its ``reprolint`` directives."""

    def __init__(self, path: Path, display_path: str, source: str) -> None:
        self.path = path
        self.display_path = display_path
        self.source = source
        try:
            self.tree = ast.parse(source, filename=display_path)
        except SyntaxError as exc:  # pragma: no cover - exercised via run_lint
            raise AnalysisError(f"cannot parse {display_path}: {exc}") from exc
        self.hot_module = False
        #: line -> set of rule names (or "all") disabled on that line
        self.line_disables: Dict[int, Set[str]] = {}
        #: lines carrying a "hot-path" / "workspace-constructor" marker
        self.hot_path_lines: Set[int] = set()
        self.workspace_lines: Set[int] = set()
        self._scan_directives()
        #: (start, end, rules) suppression spans from def/class header disables
        self._suppress_spans: List[Tuple[int, int, Set[str]]] = []
        self._collect_spans(self.tree)

    # ------------------------------------------------------------------ #
    # Directives
    # ------------------------------------------------------------------ #
    def _scan_directives(self) -> None:
        source_lines = self.source.splitlines()
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            comments = [
                (token.start[0], token.start[1], token.string)
                for token in tokens
                if token.type == tokenize.COMMENT
            ]
        except tokenize.TokenError:  # pragma: no cover - parse already succeeded
            comments = [
                (number, line.index("#"), line)
                for number, line in enumerate(source_lines, start=1)
                if "#" in line
            ]
        for line, col, text in comments:
            match = _DIRECTIVE_RE.search(text)
            if match is None:
                continue
            body = match.group("body")
            if body.startswith("disable="):
                rules = {
                    "all" if name == "all" else name
                    for name in body[len("disable=") :].split(",")
                    if name
                }
                self.line_disables.setdefault(line, set()).update(rules)
                # A comment-only line suppresses the statement below it too
                # (the trailing-comment form stays available for short lines).
                standalone = not source_lines[line - 1][:col].strip()
                if standalone:
                    self.line_disables.setdefault(line + 1, set()).update(rules)
            elif body == "hot-module":
                self.hot_module = True
            elif body == "hot-path":
                self.hot_path_lines.add(line)
            elif body == "workspace-constructor":
                self.workspace_lines.add(line)
            # Unknown directives are ignored: forward compatibility with
            # rules added later (an old checkout linting newer sources).

    def _collect_spans(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            rules: Set[str] = set()
            for line in self.header_lines(node):
                rules.update(self.line_disables.get(line, ()))
            if rules and node.end_lineno is not None:
                self._suppress_spans.append((node.lineno, node.end_lineno, rules))

    def header_lines(self, node: _ScopeNode) -> range:
        """Source lines of a def/class header (signature, before the body)."""
        stop = node.body[0].lineno if node.body else node.lineno + 1
        return range(node.lineno, max(node.lineno + 1, stop))

    def has_header_marker(self, node: _FunctionNode, lines: Set[int]) -> bool:
        return any(line in lines for line in self.header_lines(node))

    def is_suppressed(self, rule: str, line: int) -> bool:
        rules = self.line_disables.get(line)
        if rules and (rule in rules or "all" in rules):
            return True
        for start, end, span_rules in self._suppress_spans:
            if start <= line <= end and (rule in span_rules or "all" in span_rules):
                return True
        return False


@dataclass
class Project:
    """Every module of one lint run, keyed by display path."""

    modules: List[ModuleInfo] = field(default_factory=list)

    def by_path(self, display_path: str) -> Optional[ModuleInfo]:
        for module in self.modules:
            if module.display_path == display_path:
                return module
        return None


class Rule:
    """Base class for reprolint rules.

    Per-module rules implement :meth:`check_module`; rules needing the
    whole project (cross-module reachability) override :meth:`run`.
    """

    name: str = ""
    description: str = ""

    def run(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            yield from self.check_module(module)

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        return ()


_REGISTRY: Dict[str, Rule] = {}


def register_rule(cls: type) -> type:
    """Class decorator: instantiate and register a :class:`Rule`."""
    rule = cls()
    if not rule.name:
        raise ValueError(f"rule class {cls.__name__} has no name")
    _REGISTRY[rule.name] = rule
    return cls


def all_rules() -> List[Rule]:
    return list(_REGISTRY.values())


def resolve_rules(names: Optional[Sequence[str]] = None) -> List[Rule]:
    if names is None:
        return all_rules()
    rules = []
    for name in names:
        rule = _REGISTRY.get(name)
        if rule is None:
            known = ", ".join(sorted(_REGISTRY))
            raise AnalysisError(f"unknown rule {name!r} (known rules: {known})")
        rules.append(rule)
    return rules


# --------------------------------------------------------------------- #
# Loading and running
# --------------------------------------------------------------------- #
def _display_path(path: Path) -> str:
    try:
        return str(path.resolve().relative_to(Path.cwd()))
    except ValueError:
        return str(path)


def iter_python_files(paths: Sequence[Union[str, Path]]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.is_file():
            yield path
        else:
            raise AnalysisError(f"no such file or directory: {path}")


def load_project(paths: Sequence[Union[str, Path]]) -> Project:
    project = Project()
    seen: Set[Path] = set()
    for path in iter_python_files(paths):
        resolved = path.resolve()
        if resolved in seen:
            continue
        seen.add(resolved)
        try:
            source = path.read_text(encoding="utf8")
        except OSError as exc:
            raise AnalysisError(f"cannot read {path}: {exc}") from exc
        project.modules.append(ModuleInfo(path, _display_path(path), source))
    return project


@dataclass
class LintReport:
    """Result of one :func:`run_lint` call."""

    findings: List[Finding]
    files: int
    rules: List[str]

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_json(self) -> Dict[str, object]:
        return {
            "version": 1,
            "files": self.files,
            "rules": self.rules,
            "findings": [finding.to_json() for finding in self.findings],
        }


def run_lint(
    paths: Sequence[Union[str, Path]],
    rule_names: Optional[Sequence[str]] = None,
) -> LintReport:
    """Lint ``paths`` with the named rules (default: all registered).

    Findings on suppressed lines (or inside suppressed def/class bodies)
    are dropped; the rest are sorted by location.  Raises
    :class:`AnalysisError` for bad paths, unparseable files, or unknown
    rule names.
    """
    rules = resolve_rules(rule_names)
    project = load_project(paths)
    findings: List[Finding] = []
    seen_findings: Set[Finding] = set()
    for rule in rules:
        for finding in rule.run(project):
            if finding in seen_findings:
                continue
            seen_findings.add(finding)
            module = project.by_path(finding.path)
            if module is not None and module.is_suppressed(finding.rule, finding.line):
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return LintReport(
        findings=findings,
        files=len(project.modules),
        rules=[rule.name for rule in rules],
    )
