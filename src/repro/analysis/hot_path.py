"""Rule ``hot-path-allocation`` — keep the fused execute kernels allocation-light.

Modules marked ``# reprolint: hot-module`` (all of ``engine/execute.py``)
and functions marked ``# reprolint: hot-path`` (the fused section of
``channels/idft_generator.py``) must not call allocating numpy
constructors (``np.concatenate`` / ``np.vstack`` / ``np.append`` /
``np.zeros|empty|ones`` and their ``*_like`` / ``full`` variants) or
``.copy()``.

Functions that *own* workspace allocation opt out with
``# reprolint: workspace-constructor`` on their ``def`` line; deliberate
per-call allocations (fresh result records handed to callers) carry an
inline ``# reprolint: disable=hot-path-allocation`` with a reason.  Either
way the exception is visible in the diff — the point of the rule is that
a stray ``np.concatenate`` can no longer sneak back into the fused path
silently (see docs/ARCHITECTURE.md, "Static guarantees").
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Union

from .framework import Finding, ModuleInfo, Rule, register_rule

__all__ = ["HotPathAllocationRule", "FORBIDDEN_NUMPY_CONSTRUCTORS"]

#: numpy module-level constructors that allocate a fresh array.
FORBIDDEN_NUMPY_CONSTRUCTORS = frozenset(
    {
        "append",
        "concatenate",
        "copy",
        "empty",
        "empty_like",
        "full",
        "full_like",
        "hstack",
        "ones",
        "ones_like",
        "stack",
        "vstack",
        "zeros",
        "zeros_like",
    }
)

_NUMPY_ALIASES = frozenset({"np", "numpy"})

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _forbidden_call(node: ast.Call) -> str:
    """Describe a forbidden allocating call, or return ''."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return ""
    if (
        isinstance(func.value, ast.Name)
        and func.value.id in _NUMPY_ALIASES
        and func.attr in FORBIDDEN_NUMPY_CONSTRUCTORS
    ):
        return f"{func.value.id}.{func.attr}"
    if func.attr == "copy" and not node.args and not node.keywords:
        return ".copy()"
    return ""


@register_rule
class HotPathAllocationRule(Rule):
    name = "hot-path-allocation"
    description = (
        "no allocating numpy constructors or .copy() in hot-path functions"
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node, parents in _walk_functions(module.tree):
            if module.has_header_marker(node, module.workspace_lines):
                continue
            hot = module.hot_module or module.has_header_marker(
                node, module.hot_path_lines
            )
            if not hot:
                continue
            yield from self._check_function(module, node)

    def _check_function(
        self, module: ModuleInfo, function: _FunctionNode
    ) -> Iterator[Finding]:
        for node in _walk_body(module, function):
            if not isinstance(node, ast.Call):
                continue
            described = _forbidden_call(node)
            if described:
                yield Finding(
                    rule=self.name,
                    path=module.display_path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"allocating call '{described}' in hot function "
                        f"'{function.name}' — reuse state-owned scratch, mark "
                        f"the function '# reprolint: workspace-constructor', "
                        f"or disable inline with a reason"
                    ),
                )


def _walk_functions(tree: ast.AST):
    """Yield every function node with its (unused) ancestry."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, ()


def _walk_body(module: ModuleInfo, function: _FunctionNode) -> Iterator[ast.AST]:
    """Walk a function body, skipping nested workspace-constructor defs."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(function))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs are visited independently by _walk_functions;
            # their hot/workspace markers are evaluated there.
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))
