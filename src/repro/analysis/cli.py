"""Command-line front end for reprolint.

Invoked as ``python -m repro.analysis`` or ``repro-experiments lint``.

Exit codes: 0 when the tree lints clean, 1 when any rule reports a
finding, 2 when the analyzer itself fails (bad path, unparseable file,
unknown rule) — so CI can tell "the gate fired" from "the gate broke".
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .framework import AnalysisError, LintReport, all_rules, run_lint

__all__ = ["build_parser", "main"]


def _default_target() -> Path:
    """Lint the installed ``repro`` package when no paths are given."""
    import repro

    return Path(repro.__file__).resolve().parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analysis",
        description=(
            "reprolint: static checks for the project invariants (lock "
            "discipline, hot-path allocation, backend _into contract, "
            "cache-key purity)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the installed repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="also write the report to this file (same format as stdout)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated subset of rules to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _render(report: LintReport, fmt: str) -> str:
    if fmt == "json":
        return json.dumps(report.to_json(), indent=2, sort_keys=True)
    lines = [finding.format() for finding in report.findings]
    if report.clean:
        lines.append(
            f"reprolint: clean — {report.files} file(s) checked against "
            f"{len(report.rules)} rule(s)"
        )
    else:
        lines.append(
            f"reprolint: {len(report.findings)} finding(s) in {report.files} "
            f"file(s)"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.name}: {rule.description}")
        return 0
    paths = args.paths or [_default_target()]
    rule_names = (
        [name.strip() for name in args.rules.split(",") if name.strip()]
        if args.rules
        else None
    )
    try:
        report = run_lint(paths, rule_names)
    except AnalysisError as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return 2
    rendered = _render(report, args.format)
    print(rendered)
    if args.output is not None:
        try:
            args.output.write_text(rendered + "\n", encoding="utf8")
        except OSError as exc:
            print(f"reprolint: error: cannot write {args.output}: {exc}", file=sys.stderr)
            return 2
    return 0 if report.clean else 1
