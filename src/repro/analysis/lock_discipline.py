"""Rule ``lock-discipline`` — a lightweight static race detector.

Two symbol spaces are checked, matching how the library guards shared
state (see docs/ARCHITECTURE.md, "Static guarantees"):

* **Instance attributes.**  Within a class, any ``self.<attr>`` that is
  ever *written* while holding ``with self.<lock>:`` (lock attributes are
  names ending in ``lock``, e.g. ``_lock`` / ``_memory_lock`` /
  ``_pool_lock``) is lock-guarded: every other read or write of it in that
  class must also hold the lock.  ``__init__``-family methods are
  construction-time and exempt; methods named ``*_locked`` are treated as
  called-with-lock-held (the codebase convention).

* **Module globals.**  Names written inside ``with <LOCK>:`` blocks of
  module functions (where ``<LOCK>`` is a module-level ``threading.Lock``)
  are guarded the same way — this covers the default-singleton and
  backend-registry patterns.

"Written" includes in-place mutation: direct assignment, ``+=``, ``del``,
subscript stores (``d[k] = v``), and mutating method calls (``.pop``,
``.setdefault``, ``.clear``, ...).  Locals captured under the lock and
used outside are fine — only the shared name itself is tracked.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

from .framework import Finding, ModuleInfo, Rule, register_rule

__all__ = ["LockDisciplineRule"]

_LOCK_NAME_RE = re.compile(r"(?:^|_)(?:lock|LOCK)$", re.IGNORECASE)

_INIT_METHODS = {"__init__", "__new__", "__post_init__"}

#: Method calls that mutate their receiver in place.
_MUTATORS = {
    "add",
    "append",
    "clear",
    "discard",
    "extend",
    "insert",
    "move_to_end",
    "pop",
    "popitem",
    "remove",
    "setdefault",
    "update",
}

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: (symbol, is_write, lock_held, line, col)
_Access = Tuple[str, bool, bool, int, int]


class _AccessCollector(ast.NodeVisitor):
    """Collect accesses of tracked symbols with lock-held context.

    ``match`` maps an AST expression node to a tracked symbol name (or
    ``None``); ``is_lock`` decides whether a ``with`` context expression
    takes a tracked lock.
    """

    def __init__(self, match, is_lock, assume_locked: bool = False) -> None:
        self._match = match
        self._is_lock = is_lock
        self.lock_held = assume_locked
        self.accesses: List[_Access] = []

    # -- write-context detection ------------------------------------- #
    def _record(self, node: ast.AST, is_write: bool) -> None:
        symbol = self._match(node)
        if symbol is not None:
            self.accesses.append(
                (symbol, is_write, self.lock_held, node.lineno, node.col_offset)
            )

    def _record_target(self, target: ast.expr) -> None:
        """Record an assignment/deletion target, unwrapping containers."""
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_target(element)
        elif isinstance(target, ast.Starred):
            self._record_target(target.value)
        elif isinstance(target, (ast.Name, ast.Attribute)):
            self._record(target, True)
            if isinstance(target, ast.Attribute):
                self.visit(target.value)
        elif isinstance(target, (ast.Subscript,)):
            # d[k] = v mutates d: the container itself is written.
            self._record(target.value, True)
            if self._match(target.value) is None:
                self.visit(target.value)
            self.visit(target.slice)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_target(target)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record_target(node.target)
        if node.value is not None:
            self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_target(node.target)
        self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._record_target(target)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATORS
            and self._match(func.value) is not None
        ):
            # Record the receiver once, as a write, not again as a read.
            self._record(func.value, True)
            if isinstance(func.value, ast.Attribute):
                self.visit(func.value.value)
            for arg in node.args:
                self.visit(arg)
            for keyword in node.keywords:
                self.visit(keyword.value)
            return
        self.generic_visit(node)

    # -- reads -------------------------------------------------------- #
    def visit_Attribute(self, node: ast.Attribute) -> None:
        self._record(node, False)
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        self._record(node, False)

    # -- lock scopes --------------------------------------------------- #
    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: Union[ast.With, ast.AsyncWith]) -> None:
        takes_lock = False
        for item in node.items:
            if self._is_lock(item.context_expr):
                takes_lock = True
            else:
                self.visit(item.context_expr)
            if item.optional_vars is not None:
                self._record_target(item.optional_vars)
        if takes_lock and not self.lock_held:
            self.lock_held = True
            for statement in node.body:
                self.visit(statement)
            self.lock_held = False
        else:
            for statement in node.body:
                self.visit(statement)

    # Nested defs share the enclosing lock state conservatively: a closure
    # defined under the lock is assumed to run under it.  (None of the
    # guarded classes define closures today.)


@register_rule
class LockDisciplineRule(Rule):
    name = "lock-discipline"
    description = (
        "state written under a lock must never be accessed without that lock"
    )

    # ------------------------------------------------------------------ #
    # Class scope
    # ------------------------------------------------------------------ #
    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)
        yield from self._check_module_globals(module)

    def _check_class(self, module: ModuleInfo, node: ast.ClassDef) -> Iterator[Finding]:
        def match(expr: ast.AST) -> Optional[str]:
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and not _LOCK_NAME_RE.search(expr.attr)
            ):
                return expr.attr
            return None

        def is_lock(expr: ast.AST) -> bool:
            return (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and _LOCK_NAME_RE.search(expr.attr) is not None
            )

        methods = [
            item
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        accesses: Dict[str, List[_Access]] = {}
        for method in methods:
            collector = _AccessCollector(
                match, is_lock, assume_locked=method.name.endswith("_locked")
            )
            for statement in method.body:
                collector.visit(statement)
            accesses[method.name] = collector.accesses

        guarded: Dict[str, int] = {}
        for name, method_accesses in accesses.items():
            if name in _INIT_METHODS:
                continue
            for symbol, is_write, lock_held, line, _col in method_accesses:
                if is_write and lock_held and symbol not in guarded:
                    guarded[symbol] = line
        if not guarded:
            return
        for name, method_accesses in accesses.items():
            if name in _INIT_METHODS:
                continue
            for symbol, is_write, lock_held, line, col in method_accesses:
                if symbol in guarded and not lock_held:
                    action = "written" if is_write else "read"
                    yield Finding(
                        rule=self.name,
                        path=module.display_path,
                        line=line,
                        col=col,
                        message=(
                            f"'self.{symbol}' is lock-guarded in class "
                            f"'{node.name}' (written under a lock at line "
                            f"{guarded[symbol]}) but {action} here without "
                            f"holding the lock"
                        ),
                    )

    # ------------------------------------------------------------------ #
    # Module scope
    # ------------------------------------------------------------------ #
    def _check_module_globals(self, module: ModuleInfo) -> Iterator[Finding]:
        lock_names: Set[str] = set()
        global_names: Set[str] = set()
        for statement in module.tree.body:
            targets: List[ast.expr] = []
            if isinstance(statement, ast.Assign):
                targets = statement.targets
            elif isinstance(statement, ast.AnnAssign):
                targets = [statement.target]
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if _LOCK_NAME_RE.search(target.id):
                    lock_names.add(target.id)
                else:
                    global_names.add(target.id)
        if not lock_names or not global_names:
            return

        def match(expr: ast.AST) -> Optional[str]:
            if isinstance(expr, ast.Name) and expr.id in global_names:
                return expr.id
            return None

        def is_lock(expr: ast.AST) -> bool:
            return isinstance(expr, ast.Name) and expr.id in lock_names

        functions = [
            item
            for item in module.tree.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        accesses: Dict[str, List[_Access]] = {}
        for function in functions:
            collector = _AccessCollector(
                match, is_lock, assume_locked=function.name.endswith("_locked")
            )
            for statement in function.body:
                collector.visit(statement)
            accesses[function.name] = collector.accesses

        guarded: Dict[str, int] = {}
        for function_accesses in accesses.values():
            for symbol, is_write, lock_held, line, _col in function_accesses:
                if is_write and lock_held and symbol not in guarded:
                    guarded[symbol] = line
        if not guarded:
            return
        for function_accesses in accesses.values():
            for symbol, is_write, lock_held, line, col in function_accesses:
                if symbol in guarded and not lock_held:
                    action = "written" if is_write else "read"
                    yield Finding(
                        rule=self.name,
                        path=module.display_path,
                        line=line,
                        col=col,
                        message=(
                            f"module global '{symbol}' is lock-guarded "
                            f"(written under a lock at line {guarded[symbol]}) "
                            f"but {action} here without holding the lock"
                        ),
                    )
