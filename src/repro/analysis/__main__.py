"""``python -m repro.analysis`` — run reprolint from the command line."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
