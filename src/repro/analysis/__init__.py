"""``repro.analysis`` — reprolint, the project-invariant static analyzer.

An AST-based, zero-dependency lint framework enforcing the invariants
that the property-test suites can only sample dynamically:

* ``lock-discipline`` — state written under a lock is never accessed
  without it (:mod:`repro.analysis.lock_discipline`);
* ``hot-path-allocation`` — no allocating numpy constructors in the
  fused execute kernels (:mod:`repro.analysis.hot_path`);
* ``backend-into-contract`` — ``LinalgBackend`` subclasses match the
  base contract and ``*_into`` methods return ``out`` without
  allocating (:mod:`repro.analysis.backend_contract`);
* ``cache-key-purity`` — content-hash builders stay deterministic
  (:mod:`repro.analysis.key_purity`).

Run it with ``python -m repro.analysis`` or ``repro-experiments lint``;
the committed tree lints clean, and ``tests/unit/test_analysis_selfcheck.py``
keeps it that way in tier 1.  Suppression and marker directives are
documented in :mod:`repro.analysis.framework` and docs/ARCHITECTURE.md
("Static guarantees").
"""

from .framework import (
    AnalysisError,
    Finding,
    LintReport,
    ModuleInfo,
    Project,
    Rule,
    all_rules,
    load_project,
    register_rule,
    resolve_rules,
    run_lint,
)

# Importing the rule modules registers them.
from . import backend_contract, hot_path, key_purity, lock_discipline  # noqa: F401
from .cli import build_parser, main

__all__ = [
    "AnalysisError",
    "Finding",
    "LintReport",
    "ModuleInfo",
    "Project",
    "Rule",
    "all_rules",
    "build_parser",
    "load_project",
    "main",
    "register_rule",
    "resolve_rules",
    "run_lint",
]
