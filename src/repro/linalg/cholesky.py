"""Cholesky factorization with explicit failure reporting.

The conventional correlated-Rayleigh generators reviewed in Section 1 of the
paper ([3], [4], [5], [6]) all obtain their coloring matrix from a Cholesky
factorization of the covariance matrix, which requires positive definiteness
and — as the paper stresses — breaks down through round-off even for some
matrices that are theoretically positive semi-definite.  The wrappers here
expose that failure mode explicitly (``CholeskyError`` / ``CholeskyResult``)
so the baselines can reproduce it and the benchmarks can count it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..config import DEFAULTS, NumericDefaults
from ..exceptions import CholeskyError
from .checks import assert_square, hermitian_part

__all__ = ["CholeskyResult", "cholesky_factor", "try_cholesky"]


@dataclass(frozen=True)
class CholeskyResult:
    """Outcome of an attempted Cholesky factorization.

    Attributes
    ----------
    factor:
        Lower-triangular factor ``L`` with ``L L^H = K`` when ``success`` is
        ``True``; ``None`` otherwise.
    success:
        Whether the factorization succeeded.
    jitter_used:
        Diagonal jitter added before the successful attempt (0.0 when no
        jitter was needed, ``None`` when the factorization failed outright).
    message:
        Human-readable description of the outcome.
    """

    factor: Optional[np.ndarray]
    success: bool
    jitter_used: Optional[float]
    message: str


def cholesky_factor(matrix: np.ndarray) -> np.ndarray:
    """Return the lower-triangular Cholesky factor of a Hermitian matrix.

    Raises
    ------
    CholeskyError
        If the matrix is not positive definite (numpy's LinAlgError is
        translated so callers can distinguish this failure from other linear
        algebra problems).
    """
    arr = assert_square(matrix, "matrix for Cholesky factorization")
    herm = hermitian_part(arr)
    try:
        return np.linalg.cholesky(herm)
    except np.linalg.LinAlgError as exc:
        raise CholeskyError(
            "Cholesky factorization failed: matrix is not positive definite "
            f"({exc}). The eigendecomposition coloring path does not have this requirement."
        ) from exc


def try_cholesky(
    matrix: np.ndarray,
    *,
    allow_jitter: bool = False,
    defaults: NumericDefaults = DEFAULTS,
    max_jitter_attempts: int = 3,
) -> CholeskyResult:
    """Attempt a Cholesky factorization without raising.

    Parameters
    ----------
    matrix:
        Hermitian matrix to factor.
    allow_jitter:
        If ``True`` and the plain factorization fails, retry with a small
        multiple of the identity added to the diagonal (growing by a factor
        of 10 each attempt).  This mimics the ad-hoc repairs practitioners
        apply to Cholesky-based generators; the proposed algorithm never
        needs it.
    defaults:
        Tolerance bundle supplying the initial jitter size.
    max_jitter_attempts:
        Number of jitter magnitudes to try.

    Returns
    -------
    CholeskyResult
    """
    arr = assert_square(matrix, "matrix for Cholesky factorization")
    herm = hermitian_part(arr)
    try:
        factor = np.linalg.cholesky(herm)
        return CholeskyResult(factor, True, 0.0, "factorization succeeded without jitter")
    except np.linalg.LinAlgError:
        pass

    if allow_jitter:
        scale = float(np.max(np.abs(np.diag(herm)))) or 1.0
        jitter = defaults.cholesky_jitter * scale
        identity = np.eye(herm.shape[0], dtype=herm.dtype)
        for _ in range(max_jitter_attempts):
            try:
                factor = np.linalg.cholesky(herm + jitter * identity)
                return CholeskyResult(
                    factor,
                    True,
                    jitter,
                    f"factorization succeeded after adding diagonal jitter {jitter:.3e}",
                )
            except np.linalg.LinAlgError:
                jitter *= 10.0

    return CholeskyResult(
        None,
        False,
        None,
        "factorization failed: matrix is not positive definite",
    )
