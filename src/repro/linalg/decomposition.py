"""Common result type for coloring-matrix computations.

A coloring matrix ``L`` of a covariance matrix ``K`` satisfies
``L L^H = K``.  Different strategies (eigendecomposition, Cholesky, SVD)
produce different ``L`` with different shapes/structure; the
:class:`ColoringDecomposition` dataclass records which strategy was used,
whether the covariance had to be repaired (forced PSD), and how far the
repaired matrix is from the requested one — the diagnostics the paper's
discussion revolves around.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

import numpy as np

from .nearest import frobenius_distance

__all__ = ["ColoringDecomposition"]


@dataclass(frozen=True)
class ColoringDecomposition:
    """A coloring matrix together with provenance diagnostics.

    Attributes
    ----------
    coloring_matrix:
        Matrix ``L`` with ``L L^H = effective_covariance``.
    effective_covariance:
        The covariance matrix actually realized (the forced-PSD matrix
        ``K_bar`` of the paper).  Equals ``requested_covariance`` whenever the
        request was already positive semi-definite.
    requested_covariance:
        The covariance matrix the caller asked for.
    method:
        Name of the strategy used (``"eigen"``, ``"cholesky"``, ``"svd"``).
    was_repaired:
        ``True`` if negative eigenvalues had to be clipped / replaced.
    negative_eigenvalue_count:
        Number of genuinely negative eigenvalues found in the request.
    min_eigenvalue:
        Smallest eigenvalue of the requested covariance.
    extra:
        Strategy-specific diagnostics.
    """

    coloring_matrix: np.ndarray
    effective_covariance: np.ndarray
    requested_covariance: np.ndarray
    method: str
    was_repaired: bool
    negative_eigenvalue_count: int
    min_eigenvalue: float
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Number of branches (rows of the coloring matrix)."""
        return int(self.coloring_matrix.shape[0])

    def reconstruction(self) -> np.ndarray:
        """Return ``L L^H`` (should equal ``effective_covariance``)."""
        return self.coloring_matrix @ self.coloring_matrix.conj().T

    def reconstruction_error(self) -> float:
        """Frobenius distance between ``L L^H`` and the effective covariance."""
        return frobenius_distance(self.reconstruction(), self.effective_covariance)

    def approximation_error(self) -> float:
        """Frobenius distance between the effective and the requested covariance.

        Zero when no repair was needed; otherwise this is the quantity the
        paper uses ("from Frobenius point of view") to argue that clipping
        approximates the desired covariance better than epsilon replacement.
        """
        return frobenius_distance(self.effective_covariance, self.requested_covariance)
