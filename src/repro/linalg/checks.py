"""Structural checks for covariance matrices.

Every predicate takes the matrix as-is (no copies unless needed) and uses the
package-wide tolerances from :mod:`repro.config` unless overridden, so that
the notion of "Hermitian" or "positive semi-definite" is identical everywhere
in the library.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import DEFAULTS, NumericDefaults
from ..exceptions import DimensionError, NotHermitianError

__all__ = [
    "assert_square",
    "is_hermitian",
    "assert_hermitian",
    "hermitian_part",
    "min_eigenvalue",
    "is_positive_semidefinite",
    "is_positive_definite",
]


def assert_square(matrix: np.ndarray, name: str = "matrix") -> np.ndarray:
    """Validate that ``matrix`` is a 2-D square array and return it as ndarray.

    Raises
    ------
    DimensionError
        If the array is not two-dimensional or not square.
    """
    arr = np.asarray(matrix)
    if arr.ndim != 2:
        raise DimensionError(f"{name} must be 2-D, got ndim={arr.ndim}")
    if arr.shape[0] != arr.shape[1]:
        raise DimensionError(f"{name} must be square, got shape {arr.shape}")
    if arr.shape[0] == 0:
        raise DimensionError(f"{name} must be non-empty")
    return arr


def is_hermitian(
    matrix: np.ndarray,
    *,
    defaults: NumericDefaults = DEFAULTS,
    atol: Optional[float] = None,
    rtol: Optional[float] = None,
) -> bool:
    """Return ``True`` if ``matrix`` equals its conjugate transpose within tolerance."""
    arr = assert_square(matrix)
    atol = defaults.hermitian_atol if atol is None else atol
    rtol = defaults.hermitian_rtol if rtol is None else rtol
    return bool(np.allclose(arr, arr.conj().T, atol=atol, rtol=rtol))


def assert_hermitian(
    matrix: np.ndarray,
    name: str = "covariance matrix",
    *,
    defaults: NumericDefaults = DEFAULTS,
) -> np.ndarray:
    """Validate Hermitian symmetry, returning the array.

    Raises
    ------
    NotHermitianError
        If the matrix is not Hermitian within tolerance.
    """
    arr = assert_square(matrix, name)
    if not is_hermitian(arr, defaults=defaults):
        max_asym = float(np.max(np.abs(arr - arr.conj().T)))
        raise NotHermitianError(
            f"{name} is not Hermitian (max |K - K^H| element = {max_asym:.3e})"
        )
    return arr


def hermitian_part(matrix: np.ndarray) -> np.ndarray:
    """Return the Hermitian part ``(K + K^H)/2`` of a square matrix.

    Used to remove tiny asymmetries introduced by floating-point assembly of
    covariance matrices before eigendecomposition.
    """
    arr = assert_square(matrix)
    return 0.5 * (arr + arr.conj().T)


def min_eigenvalue(matrix: np.ndarray) -> float:
    """Return the smallest eigenvalue of a Hermitian matrix.

    The matrix is symmetrized first so the result is always real.
    """
    herm = hermitian_part(matrix)
    return float(np.min(np.linalg.eigvalsh(herm)))


def is_positive_semidefinite(
    matrix: np.ndarray,
    *,
    defaults: NumericDefaults = DEFAULTS,
    tol: Optional[float] = None,
) -> bool:
    """Return ``True`` if the Hermitian matrix has no eigenvalue below ``-tol_eff``.

    The effective tolerance scales with the largest absolute eigenvalue so the
    predicate is invariant to uniform scaling of the matrix.
    """
    herm = hermitian_part(matrix)
    eigvals = np.linalg.eigvalsh(herm)
    scale = float(np.max(np.abs(eigvals))) if eigvals.size else 0.0
    base_tol = defaults.psd_tol if tol is None else tol
    tol_eff = base_tol * max(scale, 1.0)
    return bool(np.min(eigvals) >= -tol_eff)


def is_positive_definite(
    matrix: np.ndarray,
    *,
    defaults: NumericDefaults = DEFAULTS,
    tol: Optional[float] = None,
) -> bool:
    """Return ``True`` if the Hermitian matrix has all eigenvalues above ``tol_eff``."""
    herm = hermitian_part(matrix)
    eigvals = np.linalg.eigvalsh(herm)
    scale = float(np.max(np.abs(eigvals))) if eigvals.size else 0.0
    base_tol = defaults.psd_tol if tol is None else tol
    tol_eff = base_tol * max(scale, 1.0)
    return bool(np.min(eigvals) > tol_eff)
