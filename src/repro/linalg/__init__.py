"""Linear-algebra substrate.

This subpackage implements every matrix-analytic operation the paper relies
on — Hermitian / positive-semi-definiteness checks, Hermitian
eigendecomposition, Cholesky factorization with explicit failure reporting,
and nearest-PSD approximations — as thin, well-tested wrappers with
consistent tolerances from :mod:`repro.config`.

The higher-level :mod:`repro.core` modules build the paper's coloring-matrix
and forced-PSD procedures on top of these primitives.
"""

from .checks import (
    is_hermitian,
    is_positive_definite,
    is_positive_semidefinite,
    hermitian_part,
    assert_hermitian,
    assert_square,
    min_eigenvalue,
)
from .eigen import hermitian_eigendecomposition, EigenDecomposition, reconstruct_from_eigen
from .cholesky import cholesky_factor, try_cholesky, CholeskyResult
from .nearest import (
    clip_negative_eigenvalues,
    replace_nonpositive_eigenvalues,
    nearest_psd_higham,
    frobenius_distance,
)
from .decomposition import ColoringDecomposition
from .batched import (
    BatchedEigenDecomposition,
    assert_matrix_stack,
    batched_hermitian_part,
    batched_hermitian_eigendecomposition,
    batched_cholesky_factor,
    batched_reconstruct_from_eigen,
    batched_clip_negative_eigenvalues,
    batched_force_positive_semidefinite,
)

__all__ = [
    "is_hermitian",
    "is_positive_definite",
    "is_positive_semidefinite",
    "hermitian_part",
    "assert_hermitian",
    "assert_square",
    "min_eigenvalue",
    "hermitian_eigendecomposition",
    "EigenDecomposition",
    "reconstruct_from_eigen",
    "cholesky_factor",
    "try_cholesky",
    "CholeskyResult",
    "clip_negative_eigenvalues",
    "replace_nonpositive_eigenvalues",
    "nearest_psd_higham",
    "frobenius_distance",
    "ColoringDecomposition",
    "BatchedEigenDecomposition",
    "assert_matrix_stack",
    "batched_hermitian_part",
    "batched_hermitian_eigendecomposition",
    "batched_cholesky_factor",
    "batched_reconstruct_from_eigen",
    "batched_clip_negative_eigenvalues",
    "batched_force_positive_semidefinite",
]
