"""Batched linear algebra on stacks of covariance matrices.

The batched simulation engine (:mod:`repro.engine`) stacks many same-shape
covariance matrices into one ``(B, N, N)`` array and decomposes them with a
*single* call into numpy's stacked LAPACK dispatch.  Numpy's ``eigh``,
``cholesky`` and ``matmul`` gufuncs run the same LAPACK/BLAS routine on every
2-D slice of a stack, so every function in this module is **bit-identical**,
slice for slice, to its single-matrix counterpart in
:mod:`repro.linalg.eigen` / :mod:`repro.linalg.cholesky` /
:mod:`repro.core.psd` — the property the engine's batch/single equivalence
guarantee rests on (and that the test-suite verifies).

Heavy ``O(N^3)`` work (eigendecomposition, factorization, reconstruction) is
batched; cheap per-slice scalar diagnostics (Frobenius errors, eigenvalue
counts) are computed in ordinary Python loops, exactly as the single-matrix
code paths compute them.

Every heavy entry point accepts an optional ``backend`` — an object
satisfying the :class:`repro.engine.backends.LinalgBackend` contract
(``eigh`` / ``cholesky`` / ``matmul`` over host arrays).  ``None`` (the
default) runs numpy's gufuncs directly, which keeps this module importable
without the engine package and makes the default path byte-for-byte the
pre-backend implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..config import DEFAULTS, NumericDefaults
from ..exceptions import CholeskyError, CovarianceError, DimensionError

__all__ = [
    "BatchedEigenDecomposition",
    "assert_matrix_stack",
    "batched_hermitian_part",
    "batched_hermitian_eigendecomposition",
    "batched_cholesky_factor",
    "batched_reconstruct_from_eigen",
    "batched_clip_negative_eigenvalues",
    "batched_force_positive_semidefinite",
]


def assert_matrix_stack(stack: np.ndarray, name: str = "matrix stack") -> np.ndarray:
    """Validate that ``stack`` is a ``(B, N, N)`` array of square matrices.

    Raises
    ------
    DimensionError
        If the array is not three-dimensional with square trailing matrices.
    """
    arr = np.asarray(stack)
    if arr.ndim != 3:
        raise DimensionError(f"{name} must be 3-D (B, N, N), got ndim={arr.ndim}")
    if arr.shape[1] != arr.shape[2]:
        raise DimensionError(f"{name} matrices must be square, got shape {arr.shape}")
    if arr.shape[0] == 0 or arr.shape[1] == 0:
        raise DimensionError(f"{name} must be non-empty, got shape {arr.shape}")
    return arr


def batched_hermitian_part(stack: np.ndarray) -> np.ndarray:
    """Return the Hermitian part ``(K + K^H)/2`` of every matrix in a stack."""
    arr = assert_matrix_stack(stack)
    return 0.5 * (arr + arr.conj().transpose(0, 2, 1))


@dataclass(frozen=True)
class BatchedEigenDecomposition:
    """Stacked Hermitian eigendecompositions ``K_b = V_b diag(w_b) V_b^H``.

    Attributes
    ----------
    eigenvalues:
        ``(B, N)`` real eigenvalues, each row sorted in descending order
        (matching :class:`repro.linalg.EigenDecomposition`).
    eigenvectors:
        ``(B, N, N)`` matrices whose columns are the corresponding
        orthonormal eigenvectors.
    """

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray

    @property
    def batch_size(self) -> int:
        """Number of matrices in the stack."""
        return int(self.eigenvalues.shape[0])

    @property
    def size(self) -> int:
        """Dimension of each decomposed matrix."""
        return int(self.eigenvalues.shape[1])

    @property
    def min_eigenvalues(self) -> np.ndarray:
        """Per-matrix smallest eigenvalue, shape ``(B,)``."""
        return self.eigenvalues[:, -1]

    @property
    def max_eigenvalues(self) -> np.ndarray:
        """Per-matrix largest eigenvalue, shape ``(B,)``."""
        return self.eigenvalues[:, 0]


def batched_hermitian_eigendecomposition(
    stack: np.ndarray, *, backend=None
) -> BatchedEigenDecomposition:
    """Eigendecompose every (nearly) Hermitian matrix in a ``(B, N, N)`` stack.

    One ``np.linalg.eigh`` call on the symmetrized stack (or the given
    backend's ``eigh``); each slice of the default-backend result is
    bit-identical to
    :func:`repro.linalg.eigen.hermitian_eigendecomposition` applied to the
    corresponding single matrix, including the descending eigenvalue order.
    """
    herm = batched_hermitian_part(stack)
    if backend is None:
        eigenvalues, eigenvectors = np.linalg.eigh(herm)
    else:
        eigenvalues, eigenvectors = backend.eigh(herm)
    # eigh returns ascending order per slice; flip to descending with the
    # same argsort-and-reverse the single-matrix wrapper uses.
    order = np.argsort(eigenvalues, axis=-1)[:, ::-1]
    return BatchedEigenDecomposition(
        eigenvalues=np.ascontiguousarray(np.take_along_axis(eigenvalues, order, axis=-1)),
        eigenvectors=np.ascontiguousarray(
            np.take_along_axis(eigenvectors, order[:, np.newaxis, :], axis=-1)
        ),
    )


def batched_cholesky_factor(stack: np.ndarray, *, backend=None) -> np.ndarray:
    """Lower-triangular Cholesky factors of every matrix in a stack.

    Raises
    ------
    CholeskyError
        If any matrix in the stack is not positive definite; the message
        names the offending stack index (the diagnosis re-runs numpy
        slice-wise regardless of the backend).
    """
    herm = batched_hermitian_part(stack)
    try:
        if backend is None:
            return np.linalg.cholesky(herm)
        return backend.cholesky(herm)
    except np.linalg.LinAlgError as exc:
        # The stacked call fails as a whole; find the first offender so the
        # error is as informative as the single-matrix path's.
        for index in range(herm.shape[0]):
            try:
                np.linalg.cholesky(herm[index])
            except np.linalg.LinAlgError:
                raise CholeskyError(
                    f"Cholesky factorization failed for stack index {index}: matrix is "
                    f"not positive definite ({exc}). The eigendecomposition coloring "
                    "path does not have this requirement."
                ) from exc
        raise CholeskyError(  # pragma: no cover - stacked failure implies a slice fails
            f"Cholesky factorization failed on the stack ({exc})"
        ) from exc


def batched_reconstruct_from_eigen(
    eigenvalues: np.ndarray, eigenvectors: np.ndarray, *, backend=None
) -> np.ndarray:
    """Return ``V_b diag(w_b) V_b^H`` for every matrix in the stack."""
    eigenvalues = np.asarray(eigenvalues)
    eigenvectors = assert_matrix_stack(eigenvectors, "eigenvector stack")
    if eigenvalues.shape != eigenvectors.shape[:2]:
        raise DimensionError(
            f"eigenvalues must have shape {eigenvectors.shape[:2]}, got {eigenvalues.shape}"
        )
    scaled = eigenvectors * eigenvalues[:, np.newaxis, :]
    adjoint = eigenvectors.conj().transpose(0, 2, 1)
    if backend is None:
        return np.matmul(scaled, adjoint)
    return backend.matmul(scaled, adjoint)


def batched_clip_negative_eigenvalues(
    stack: np.ndarray,
    *,
    defaults: NumericDefaults = DEFAULTS,
    backend=None,
) -> np.ndarray:
    """Apply the paper's Section 4.2 clipping to every matrix in a stack."""
    decomp = batched_hermitian_eigendecomposition(stack, backend=backend)
    clipped = np.where(decomp.eigenvalues >= 0.0, decomp.eigenvalues, 0.0)
    return batched_reconstruct_from_eigen(clipped, decomp.eigenvectors, backend=backend)


def batched_force_positive_semidefinite(
    stack: np.ndarray,
    method: str = "clip",
    *,
    epsilon: float = 1e-6,
    defaults: NumericDefaults = DEFAULTS,
    backend=None,
) -> List["PSDForcingResult"]:
    """Force every matrix in a ``(B, N, N)`` stack positive semi-definite.

    Batched analogue of :func:`repro.core.psd.force_positive_semidefinite`:
    the eigendecompositions and reconstructions run as single stacked calls,
    and each returned :class:`repro.core.psd.PSDForcingResult` is bit-identical
    to the one the single-matrix function produces for that slice.

    The ``"higham"`` strategy iterates per matrix (alternating projections do
    not batch); it is provided for completeness and only pays the loop for
    matrices that actually need repair.
    """
    from ..core.psd import PSDForcingResult, force_positive_semidefinite

    arr = assert_matrix_stack(np.asarray(stack, dtype=complex))
    if method not in ("clip", "epsilon", "higham"):
        raise ValueError(
            f"unknown PSD forcing method {method!r}; choose from ('clip', 'epsilon', 'higham')"
        )

    decomp = batched_hermitian_eigendecomposition(arr, backend=backend)
    scales = np.maximum(np.abs(decomp.max_eigenvalues), 1.0)
    negative_mask = decomp.eigenvalues < (-defaults.eig_clip_tol * scales)[:, np.newaxis]
    already_psd = ~np.any(negative_mask, axis=-1)

    if method == "clip":
        clipped = np.where(decomp.eigenvalues >= 0.0, decomp.eigenvalues, 0.0)
        repaired_stack = batched_reconstruct_from_eigen(
            clipped, decomp.eigenvectors, backend=backend
        )
    elif method == "epsilon":
        replaced = np.where(decomp.eigenvalues > 0.0, decomp.eigenvalues, epsilon)
        repaired_stack = batched_reconstruct_from_eigen(
            replaced, decomp.eigenvectors, backend=backend
        )
    else:  # higham: no batched formulation; delegate slice-wise below.
        repaired_stack = arr

    from .checks import is_positive_semidefinite
    from .nearest import frobenius_distance

    results: List[PSDForcingResult] = []
    for index in range(arr.shape[0]):
        requested = arr[index]
        if method == "higham":
            # Reuse the full single-matrix implementation (iterative).
            results.append(
                force_positive_semidefinite(
                    requested, method="higham", epsilon=epsilon, defaults=defaults
                )
            )
            continue
        if method == "clip" and already_psd[index]:
            # Keep the caller's matrix bit-for-bit when nothing needs fixing.
            repaired = requested.copy()
        else:
            # Copy the slice so the result does not pin the whole stack's
            # memory (results are cached and can long outlive the batch).
            repaired = repaired_stack[index].copy()
        if not is_positive_semidefinite(repaired, defaults=defaults):
            raise CovarianceError(
                f"PSD forcing with method {method!r} failed to produce a positive "
                f"semi-definite matrix at stack index {index}; this indicates a "
                "severely ill-conditioned input"
            )
        extra = {"min_eigenvalue": float(decomp.min_eigenvalues[index])}
        if method == "epsilon":
            extra["epsilon"] = epsilon
        results.append(
            PSDForcingResult(
                matrix=repaired,
                requested=requested.copy(),
                method=method,
                was_modified=bool(not already_psd[index]) or method == "epsilon",
                negative_eigenvalues=decomp.eigenvalues[index][negative_mask[index]].copy(),
                frobenius_error=frobenius_distance(repaired, requested),
                extra=extra,
            )
        )
    return results
