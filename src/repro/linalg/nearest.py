"""Positive-semi-definite approximations of indefinite covariance matrices.

Three approximations are provided:

* :func:`clip_negative_eigenvalues` — the paper's proposed procedure
  (Section 4.2): negative eigenvalues are replaced by exactly zero.
* :func:`replace_nonpositive_eigenvalues` — the procedure of Sorooshyari &
  Daut [6]: non-positive eigenvalues are replaced by a small positive
  ``epsilon``.  Kept as a baseline so benchmarks can show the paper's claim
  that clipping is closer to the original matrix in Frobenius norm.
* :func:`nearest_psd_higham` — Higham's alternating-projections nearest
  correlation/covariance matrix, included as an extension for users who also
  need the diagonal preserved.

All functions operate on the Hermitian part of their input, return Hermitian
matrices, and never mutate their argument.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import DEFAULTS, NumericDefaults
from .checks import assert_square, hermitian_part, is_positive_semidefinite
from .eigen import hermitian_eigendecomposition, reconstruct_from_eigen

__all__ = [
    "clip_negative_eigenvalues",
    "replace_nonpositive_eigenvalues",
    "nearest_psd_higham",
    "frobenius_distance",
]


def frobenius_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Frobenius norm of the difference of two matrices of equal shape."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError(f"matrices must have the same shape, got {a.shape} and {b.shape}")
    return float(np.linalg.norm(a - b, ord="fro"))


def clip_negative_eigenvalues(
    matrix: np.ndarray,
    *,
    defaults: NumericDefaults = DEFAULTS,
) -> np.ndarray:
    """Force positive semi-definiteness by zeroing negative eigenvalues.

    Implements the approximation of Section 4.2 of the paper:

    .. math::

        \\hat\\lambda_j = \\begin{cases}\\lambda_j & \\lambda_j \\ge 0\\\\
        0 & \\lambda_j < 0\\end{cases}

    followed by the reconstruction ``K_bar = V diag(lambda_hat) V^H``.  When
    the input is already positive semi-definite the reconstruction equals the
    (Hermitian part of the) input up to floating-point error.
    """
    arr = assert_square(matrix, "covariance matrix")
    decomp = hermitian_eigendecomposition(arr)
    clipped = np.where(decomp.eigenvalues >= 0.0, decomp.eigenvalues, 0.0)
    return reconstruct_from_eigen(clipped, decomp.eigenvectors)


def replace_nonpositive_eigenvalues(
    matrix: np.ndarray,
    epsilon: float = 1e-6,
    *,
    defaults: NumericDefaults = DEFAULTS,
) -> np.ndarray:
    """Force positive definiteness by replacing non-positive eigenvalues with ``epsilon``.

    This is the approximation used by Sorooshyari & Daut [6]:

    .. math::

        \\hat\\lambda_j = \\begin{cases}\\lambda_j & \\lambda_j > 0\\\\
        \\varepsilon & \\lambda_j \\le 0\\end{cases}

    It guarantees Cholesky-factorizability but, as the paper notes, moves the
    matrix further (in Frobenius norm) from the desired covariance than the
    clipping procedure does, and perturbs matrices that were exactly
    semi-definite.
    """
    if epsilon <= 0.0 or not np.isfinite(epsilon):
        raise ValueError(f"epsilon must be a positive finite number, got {epsilon!r}")
    arr = assert_square(matrix, "covariance matrix")
    decomp = hermitian_eigendecomposition(arr)
    replaced = np.where(decomp.eigenvalues > 0.0, decomp.eigenvalues, epsilon)
    return reconstruct_from_eigen(replaced, decomp.eigenvectors)


def nearest_psd_higham(
    matrix: np.ndarray,
    *,
    preserve_diagonal: bool = False,
    max_iterations: int = 100,
    tol: float = 1e-10,
    defaults: NumericDefaults = DEFAULTS,
) -> np.ndarray:
    """Nearest positive-semi-definite matrix by Higham's alternating projections.

    Parameters
    ----------
    matrix:
        Hermitian (or nearly Hermitian) matrix.
    preserve_diagonal:
        If ``True`` the original diagonal is restored after each projection,
        which computes the nearest matrix in the *correlation-matrix* sense
        (unit/fixed diagonal), useful when the diagonal carries the branch
        powers that must not change.
    max_iterations:
        Maximum number of alternating-projection sweeps.
    tol:
        Convergence tolerance on the Frobenius norm of the update.

    Notes
    -----
    Without the diagonal constraint a single eigenvalue clipping already
    yields the Frobenius-nearest PSD matrix, so this function only iterates
    when ``preserve_diagonal`` is requested.
    """
    arr = hermitian_part(assert_square(matrix, "covariance matrix"))
    if not preserve_diagonal:
        return clip_negative_eigenvalues(arr, defaults=defaults)

    original_diagonal = np.diag(arr).copy()
    y = arr.copy()
    delta = np.zeros_like(arr)
    for _ in range(max_iterations):
        r = y - delta
        x = clip_negative_eigenvalues(r, defaults=defaults)
        delta = x - r
        y_next = x.copy()
        np.fill_diagonal(y_next, original_diagonal)
        change = frobenius_distance(y_next, y)
        y = y_next
        if change < tol and is_positive_semidefinite(y, defaults=defaults):
            break
    return y
