"""Hermitian eigendecomposition wrapper used by the coloring procedure.

The paper computes the coloring matrix from the eigendecomposition
``K = V G V^H`` (Section 4.3).  This module wraps numpy's ``eigh`` with the
symmetrization and bookkeeping the rest of the package relies on: a
:class:`EigenDecomposition` records eigenvalues in descending order together
with the matrix of eigenvectors and knows how to reconstruct the original
matrix, report negative eigenvalues, and expose the numerical rank.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import DEFAULTS, NumericDefaults
from .checks import assert_square, hermitian_part

__all__ = ["EigenDecomposition", "hermitian_eigendecomposition", "reconstruct_from_eigen"]


@dataclass(frozen=True)
class EigenDecomposition:
    """Result of a Hermitian eigendecomposition ``K = V diag(eigenvalues) V^H``.

    Attributes
    ----------
    eigenvalues:
        Real eigenvalues sorted in descending order.
    eigenvectors:
        Matrix whose columns are the corresponding orthonormal eigenvectors.
    """

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray

    @property
    def size(self) -> int:
        """Dimension of the decomposed matrix."""
        return int(self.eigenvalues.shape[0])

    @property
    def min_eigenvalue(self) -> float:
        """Smallest eigenvalue."""
        return float(self.eigenvalues[-1])

    @property
    def max_eigenvalue(self) -> float:
        """Largest eigenvalue."""
        return float(self.eigenvalues[0])

    def negative_count(self, *, defaults: NumericDefaults = DEFAULTS) -> int:
        """Number of eigenvalues below ``-eig_clip_tol`` (genuinely negative)."""
        return int(np.sum(self.eigenvalues < -defaults.eig_clip_tol))

    def numerical_rank(self, *, defaults: NumericDefaults = DEFAULTS) -> int:
        """Number of eigenvalues whose magnitude exceeds the clip tolerance."""
        scale = max(abs(self.max_eigenvalue), 1.0)
        return int(np.sum(np.abs(self.eigenvalues) > defaults.eig_clip_tol * scale))

    def reconstruct(self) -> np.ndarray:
        """Rebuild the (Hermitian) matrix ``V diag(lambda) V^H``."""
        return reconstruct_from_eigen(self.eigenvalues, self.eigenvectors)


def hermitian_eigendecomposition(matrix: np.ndarray) -> EigenDecomposition:
    """Eigendecompose a (nearly) Hermitian matrix.

    The matrix is symmetrized with :func:`repro.linalg.checks.hermitian_part`
    before calling ``numpy.linalg.eigh`` so that tiny floating-point
    asymmetries cannot produce complex eigenvalues.  Eigenvalues are returned
    in descending order (the paper's notation lists the dominant eigenvalue
    first).
    """
    arr = assert_square(matrix, "matrix for eigendecomposition")
    herm = hermitian_part(arr)
    eigenvalues, eigenvectors = np.linalg.eigh(herm)
    # eigh returns ascending order; flip to descending.
    order = np.argsort(eigenvalues)[::-1]
    return EigenDecomposition(
        eigenvalues=np.ascontiguousarray(eigenvalues[order]),
        eigenvectors=np.ascontiguousarray(eigenvectors[:, order]),
    )


def reconstruct_from_eigen(eigenvalues: np.ndarray, eigenvectors: np.ndarray) -> np.ndarray:
    """Return ``V diag(lambda) V^H`` for the given eigenpairs."""
    eigenvalues = np.asarray(eigenvalues)
    eigenvectors = np.asarray(eigenvectors)
    if eigenvectors.ndim != 2 or eigenvectors.shape[1] != eigenvalues.shape[0]:
        raise ValueError(
            "eigenvectors must be a 2-D matrix with one column per eigenvalue; "
            f"got eigenvectors {eigenvectors.shape} and {eigenvalues.shape[0]} eigenvalues"
        )
    return (eigenvectors * eigenvalues) @ eigenvectors.conj().T
