"""Library-wide numeric defaults, tolerances, and environment configuration.

Centralizing the tolerances keeps the numerical behaviour of the package
consistent:  the same Hermitian-symmetry tolerance is used when *checking*
covariance matrices and when *symmetrizing* them, the same eigenvalue cutoff
is used by the forced-PSD procedure and by the positive-semi-definiteness
predicate, and so on.

The values are module-level constants grouped in a frozen dataclass so they
can be read as ``config.DEFAULTS.hermitian_atol`` or overridden locally by
constructing a new :class:`NumericDefaults` and passing it to the few
functions that accept one.

Environment configuration is read through small helpers so every consumer
agrees on the variable names: ``REPRO_CACHE_DIR`` selects the directory of
the persistent artifact cache — all three store namespaces: decompositions,
Doppler filters, and compiled plans (:func:`cache_dir_from_env`) —
equivalent to the CLI's ``--cache-dir`` and the ``cache_dir=`` argument of
:class:`repro.api.Simulator`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Optional

__all__ = [
    "NumericDefaults",
    "DEFAULTS",
    "with_overrides",
    "CACHE_DIR_ENV",
    "cache_dir_from_env",
]

#: Environment variable naming the persistent artifact-cache directory
#: (the root shared by the ``decompositions/``, ``filters/``, and
#: ``plans/`` namespaces of :class:`repro.engine.store.ArtifactStore`).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def cache_dir_from_env() -> Optional[Path]:
    """The persistent cache directory named by ``REPRO_CACHE_DIR``, if any.

    Returns ``None`` when the variable is unset or blank.  The directory is
    not created here — the cache tiers create it lazily on first write — so
    merely importing the package never touches the filesystem.
    """
    value = os.environ.get(CACHE_DIR_ENV, "").strip()
    return Path(value) if value else None


@dataclass(frozen=True)
class NumericDefaults:
    """Collection of numeric tolerances used across the package.

    Attributes
    ----------
    hermitian_atol:
        Absolute tolerance when testing ``K == K^H``.
    hermitian_rtol:
        Relative tolerance when testing ``K == K^H``.
    eig_clip_tol:
        Eigenvalues in ``[-eig_clip_tol, 0)`` are treated as numerical zeros
        (clipped to zero without counting as "negative" for diagnostics).
    psd_tol:
        Eigenvalue threshold below which a matrix is declared *not* positive
        semi-definite (relative to the largest eigenvalue magnitude).
    cholesky_jitter:
        Diagonal jitter that baseline methods may add before retrying a
        failed Cholesky factorization (kept tiny; the proposed method never
        needs it).
    bessel_series_terms:
        Number of terms used when summing the Salz-Winters Bessel series
        (Eq. 5-6) before the adaptive stopping criterion kicks in.
    bessel_series_tol:
        Adaptive stopping tolerance for the Bessel series: summation stops
        once a term's magnitude drops below this value.
    default_rng_seed:
        Seed used by convenience constructors when the caller does not supply
        a seed or generator.  Experiments always pass explicit seeds.
    covariance_check_rtol:
        Relative tolerance used by statistical validation when comparing an
        empirical covariance against the desired covariance.
    """

    hermitian_atol: float = 1e-10
    hermitian_rtol: float = 1e-8
    eig_clip_tol: float = 1e-12
    psd_tol: float = 1e-10
    cholesky_jitter: float = 1e-12
    bessel_series_terms: int = 64
    bessel_series_tol: float = 1e-14
    default_rng_seed: int = 20050408  # date of the IPDPS 2005 conference
    covariance_check_rtol: float = 0.15


#: The package-wide default tolerances.
DEFAULTS = NumericDefaults()


def with_overrides(base: NumericDefaults = DEFAULTS, **overrides: float) -> NumericDefaults:
    """Return a copy of ``base`` with selected fields replaced.

    Parameters
    ----------
    base:
        The defaults to start from.
    **overrides:
        Field-name / value pairs to change.

    Raises
    ------
    TypeError
        If an override does not name a field of :class:`NumericDefaults`.
    """
    return replace(base, **overrides)
