"""Shared typing aliases and small value objects used throughout the package."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Union

import numpy as np

__all__ = [
    "ArrayLike",
    "ComplexArray",
    "FloatArray",
    "SeedLike",
    "EnvelopeBlock",
    "GaussianBlock",
]

#: Anything numpy will accept as array input.
ArrayLike = Union[Sequence[float], Sequence[complex], np.ndarray]

#: A complex-valued ndarray.
ComplexArray = np.ndarray

#: A real-valued ndarray.
FloatArray = np.ndarray

#: Acceptable seed inputs: ``None``, an int, or an existing Generator.
SeedLike = Union[None, int, np.random.Generator]


@dataclass
class GaussianBlock:
    """A block of correlated complex Gaussian samples.

    Attributes
    ----------
    samples:
        Complex array of shape ``(n_branches, n_samples)``; row ``j`` holds
        the samples of the complex Gaussian process ``z_j``.
    variances:
        Desired per-branch complex-Gaussian variances ``sigma_g_j^2``
        (length ``n_branches``).
    metadata:
        Free-form information recorded by the generator (seed, method, the
        covariance matrix actually used, ...).
    """

    samples: ComplexArray
    variances: FloatArray
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def n_branches(self) -> int:
        """Number of correlated branches (rows)."""
        return int(self.samples.shape[0])

    @property
    def n_samples(self) -> int:
        """Number of time samples per branch (columns)."""
        return int(self.samples.shape[1]) if self.samples.ndim > 1 else 1

    def envelopes(self) -> "EnvelopeBlock":
        """Return the Rayleigh envelopes ``r_j = |z_j|`` of this block."""
        return EnvelopeBlock(
            envelopes=np.abs(self.samples),
            gaussian_variances=np.asarray(self.variances, dtype=float),
            metadata=dict(self.metadata),
        )


@dataclass
class EnvelopeBlock:
    """A block of Rayleigh fading envelopes.

    Attributes
    ----------
    envelopes:
        Real non-negative array of shape ``(n_branches, n_samples)``.
    gaussian_variances:
        Variances ``sigma_g_j^2`` of the complex Gaussian processes the
        envelopes were derived from.
    metadata:
        Free-form provenance information.
    """

    envelopes: FloatArray
    gaussian_variances: FloatArray
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def n_branches(self) -> int:
        """Number of envelopes (rows)."""
        return int(self.envelopes.shape[0])

    @property
    def n_samples(self) -> int:
        """Number of time samples per envelope (columns)."""
        return int(self.envelopes.shape[1]) if self.envelopes.ndim > 1 else 1

    def rms(self) -> FloatArray:
        """Per-branch root-mean-square envelope value."""
        return np.sqrt(np.mean(self.envelopes**2, axis=-1))

    def to_db(self, reference: Optional[FloatArray] = None) -> FloatArray:
        """Express the envelopes in dB relative to ``reference``.

        Parameters
        ----------
        reference:
            Per-branch reference amplitude.  Defaults to the per-branch rms
            value, matching the "dB around rms value" axis of Fig. 4 in the
            paper.
        """
        ref = self.rms() if reference is None else np.asarray(reference, dtype=float)
        ref = np.where(ref <= 0.0, np.finfo(float).tiny, ref)
        safe = np.maximum(self.envelopes, np.finfo(float).tiny)
        return 20.0 * np.log10(safe / ref[..., np.newaxis])
