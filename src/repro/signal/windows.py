"""Window functions for spectral estimation.

Only the windows actually used by the validation layer are implemented; they
are written out explicitly (rather than pulled from scipy.signal) so the
spectral estimates used to verify the Doppler shaping are self-contained.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rectangular_window", "hann_window", "hamming_window", "get_window"]


def _validate_length(n: int) -> int:
    if not isinstance(n, (int, np.integer)) or n <= 0:
        raise ValueError(f"window length must be a positive integer, got {n!r}")
    return int(n)


def rectangular_window(n: int) -> np.ndarray:
    """All-ones window of length ``n``."""
    return np.ones(_validate_length(n), dtype=float)


def hann_window(n: int) -> np.ndarray:
    """Periodic Hann window of length ``n``."""
    n = _validate_length(n)
    if n == 1:
        return np.ones(1)
    return 0.5 - 0.5 * np.cos(2.0 * np.pi * np.arange(n) / n)


def hamming_window(n: int) -> np.ndarray:
    """Periodic Hamming window of length ``n``."""
    n = _validate_length(n)
    if n == 1:
        return np.ones(1)
    return 0.54 - 0.46 * np.cos(2.0 * np.pi * np.arange(n) / n)


_WINDOWS = {
    "rectangular": rectangular_window,
    "boxcar": rectangular_window,
    "hann": hann_window,
    "hanning": hann_window,
    "hamming": hamming_window,
}


def get_window(name: str, n: int) -> np.ndarray:
    """Return the window ``name`` of length ``n``.

    Raises
    ------
    ValueError
        If the window name is unknown.
    """
    key = name.strip().lower()
    if key not in _WINDOWS:
        raise ValueError(
            f"unknown window {name!r}; available: {sorted(set(_WINDOWS))}"
        )
    return _WINDOWS[key](n)
