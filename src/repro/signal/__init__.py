"""Signal-processing substrate.

Provides the discrete-Fourier machinery used by the Young–Beaulieu IDFT
Rayleigh generator, correlation and spectral estimators used by the
validation layer, and classic fading-channel metrics (dB scaling relative to
the rms level, level-crossing rate, average fade duration) used by the
experiments that regenerate the paper's figures.
"""

from .fourier import dft, idft, dft_matrix, naive_dft, radix2_fft, radix2_ifft
from .correlation import (
    autocorrelation,
    normalized_autocorrelation,
    cross_correlation,
    complex_autocovariance,
)
from .spectrum import periodogram, welch_psd, doppler_spectrum_estimate
from .levels import (
    amplitude_to_db,
    db_to_amplitude,
    power_to_db,
    db_to_power,
    envelope_db_around_rms,
    rms,
    level_crossing_rate,
    average_fade_duration,
    theoretical_lcr,
    theoretical_afd,
)
from .windows import rectangular_window, hann_window, hamming_window, get_window

__all__ = [
    "dft",
    "idft",
    "dft_matrix",
    "naive_dft",
    "radix2_fft",
    "radix2_ifft",
    "autocorrelation",
    "normalized_autocorrelation",
    "cross_correlation",
    "complex_autocovariance",
    "periodogram",
    "welch_psd",
    "doppler_spectrum_estimate",
    "amplitude_to_db",
    "db_to_amplitude",
    "power_to_db",
    "db_to_power",
    "envelope_db_around_rms",
    "rms",
    "level_crossing_rate",
    "average_fade_duration",
    "theoretical_lcr",
    "theoretical_afd",
    "rectangular_window",
    "hann_window",
    "hamming_window",
    "get_window",
]
