"""Spectral estimators used to verify Doppler shaping.

The real-time generator shapes each branch with the Jakes/Clarke Doppler
spectrum; the experiments verify this by estimating the spectrum of the
generated complex Gaussian sequences and comparing its support with the
normalized maximum Doppler frequency ``f_m``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..exceptions import DimensionError
from .windows import get_window

__all__ = ["periodogram", "welch_psd", "doppler_spectrum_estimate"]


def periodogram(x: np.ndarray, sample_rate: float = 1.0) -> Tuple[np.ndarray, np.ndarray]:
    """Plain periodogram of a complex sequence.

    Parameters
    ----------
    x:
        1-D sequence.
    sample_rate:
        Sampling rate; frequencies are returned in the same unit.

    Returns
    -------
    (frequencies, psd):
        Two-sided spectrum with frequencies in ``[-fs/2, fs/2)`` (fftshifted)
        and PSD normalized so that the sum of ``psd * df`` equals the average
        power of the sequence.
    """
    arr = np.asarray(x)
    if arr.ndim != 1 or arr.shape[0] == 0:
        raise DimensionError("periodogram expects a non-empty 1-D sequence")
    n = arr.shape[0]
    spectrum = np.fft.fftshift(np.fft.fft(arr))
    freqs = np.fft.fftshift(np.fft.fftfreq(n, d=1.0 / sample_rate))
    psd = (np.abs(spectrum) ** 2) / (n * sample_rate)
    return freqs, psd


def welch_psd(
    x: np.ndarray,
    segment_length: int,
    overlap: float = 0.5,
    window: str = "hann",
    sample_rate: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Welch-averaged power spectral density estimate.

    Parameters
    ----------
    x:
        1-D sequence.
    segment_length:
        Length of each segment.
    overlap:
        Fractional overlap between consecutive segments in ``[0, 1)``.
    window:
        Window name understood by :func:`repro.signal.windows.get_window`.
    sample_rate:
        Sampling rate.

    Returns
    -------
    (frequencies, psd):
        Two-sided, fftshifted spectrum averaged over segments.
    """
    arr = np.asarray(x)
    if arr.ndim != 1:
        raise DimensionError("welch_psd expects a 1-D sequence")
    n = arr.shape[0]
    if segment_length <= 0 or segment_length > n:
        raise ValueError(
            f"segment_length must be in [1, {n}], got {segment_length}"
        )
    if not 0.0 <= overlap < 1.0:
        raise ValueError(f"overlap must be in [0, 1), got {overlap}")

    step = max(1, int(round(segment_length * (1.0 - overlap))))
    win = get_window(window, segment_length)
    win_power = float(np.sum(win**2))

    psd_accum = np.zeros(segment_length, dtype=float)
    count = 0
    start = 0
    while start + segment_length <= n:
        segment = arr[start : start + segment_length] * win
        spectrum = np.fft.fftshift(np.fft.fft(segment))
        psd_accum += (np.abs(spectrum) ** 2) / (win_power * sample_rate)
        count += 1
        start += step
    if count == 0:
        raise ValueError("no complete segment fits the sequence; reduce segment_length")
    freqs = np.fft.fftshift(np.fft.fftfreq(segment_length, d=1.0 / sample_rate))
    return freqs, psd_accum / count


def doppler_spectrum_estimate(
    samples: np.ndarray,
    normalized_doppler: float,
    segment_length: int = 512,
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Estimate the Doppler spectrum of a fading sequence and its band-limit fraction.

    Parameters
    ----------
    samples:
        Complex fading sequence (one branch).
    normalized_doppler:
        The design value ``f_m`` (cycles/sample); used to compute what
        fraction of the estimated spectral power lies inside ``|f| <= f_m``.
    segment_length:
        Welch segment length.

    Returns
    -------
    (frequencies, psd, in_band_fraction):
        The Welch PSD plus the fraction of total power inside the Doppler
        band — close to 1.0 for correctly shaped fading.
    """
    if not 0.0 < normalized_doppler < 0.5:
        raise ValueError(
            f"normalized_doppler must lie in (0, 0.5), got {normalized_doppler}"
        )
    arr = np.asarray(samples)
    segment_length = min(segment_length, arr.shape[0])
    freqs, psd = welch_psd(arr, segment_length=segment_length)
    total = float(np.sum(psd))
    if total <= 0.0:
        return freqs, psd, 0.0
    # Allow a small guard band for spectral leakage of the finite window.
    guard = 2.0 / segment_length
    in_band = float(np.sum(psd[np.abs(freqs) <= normalized_doppler + guard]))
    return freqs, psd, in_band / total
