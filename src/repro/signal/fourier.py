"""Discrete Fourier transform utilities.

The real-time generator of Section 5 synthesizes each Rayleigh process with
an M-point inverse DFT of Doppler-filtered Gaussian noise (Fig. 2).  The
production code paths use numpy's FFT (wrapped by :func:`dft` / :func:`idft`
with the paper's normalization conventions), while :func:`naive_dft` and
:func:`radix2_fft` provide from-scratch reference implementations used by the
test-suite to validate the convention and by users who want a dependency-free
(if slower) kernel.

Normalization convention
------------------------
The paper writes the synthesis as

.. math::

    u_j[l] = \\frac{1}{M} \\sum_{k=0}^{M-1} U_j[k] e^{i 2\\pi k l / M},

i.e. the *inverse* transform carries the ``1/M`` factor and the forward
transform carries none — exactly numpy's default convention, which is why
``idft`` simply delegates to ``numpy.fft.ifft``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["dft", "idft", "dft_matrix", "naive_dft", "radix2_fft", "radix2_ifft"]


def dft(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Forward DFT with no normalization factor (paper / numpy convention)."""
    return np.fft.fft(np.asarray(x), axis=axis)


def idft(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Inverse DFT carrying the ``1/M`` factor (paper / numpy convention)."""
    return np.fft.ifft(np.asarray(x), axis=axis)


def dft_matrix(n: int) -> np.ndarray:
    """Return the ``n x n`` forward DFT matrix ``W[k, l] = exp(-2*pi*i*k*l/n)``.

    Useful for exact small-size reference computations in tests.
    """
    if n <= 0:
        raise ValueError(f"DFT size must be positive, got {n}")
    indices = np.arange(n)
    return np.exp(-2j * np.pi * np.outer(indices, indices) / n)


def naive_dft(x: np.ndarray, inverse: bool = False) -> np.ndarray:
    """O(n^2) matrix-multiplication DFT used as a reference implementation.

    Parameters
    ----------
    x:
        1-D input sequence.
    inverse:
        If ``True`` compute the inverse transform (with the ``1/M`` factor).
    """
    x = np.asarray(x, dtype=complex)
    if x.ndim != 1:
        raise ValueError(f"naive_dft expects a 1-D sequence, got ndim={x.ndim}")
    n = x.shape[0]
    sign = 1.0 if inverse else -1.0
    indices = np.arange(n)
    kernel = np.exp(sign * 2j * np.pi * np.outer(indices, indices) / n)
    out = kernel @ x
    if inverse:
        out /= n
    return out


def _bit_reverse_permutation(n: int) -> np.ndarray:
    """Indices that put a length-``n`` (power of two) sequence in bit-reversed order."""
    bits = n.bit_length() - 1
    indices = np.arange(n)
    reversed_indices = np.zeros(n, dtype=int)
    for bit in range(bits):
        reversed_indices |= ((indices >> bit) & 1) << (bits - 1 - bit)
    return reversed_indices


def radix2_fft(x: np.ndarray, inverse: bool = False) -> np.ndarray:
    """Iterative radix-2 Cooley–Tukey FFT (from scratch, power-of-two lengths).

    This is the classical decimation-in-time algorithm, implemented with
    vectorized butterfly updates so even the pure-Python path remains usable
    for the paper's ``M = 4096``-point synthesis.

    Parameters
    ----------
    x:
        1-D sequence whose length is a power of two.
    inverse:
        If ``True`` compute the inverse transform, including the ``1/M``
        normalization.

    Raises
    ------
    ValueError
        If the input length is not a power of two (use :func:`naive_dft` for
        arbitrary lengths).
    """
    x = np.asarray(x, dtype=complex)
    if x.ndim != 1:
        raise ValueError(f"radix2_fft expects a 1-D sequence, got ndim={x.ndim}")
    n = x.shape[0]
    if n == 0:
        raise ValueError("radix2_fft requires a non-empty input")
    if n & (n - 1):
        raise ValueError(f"radix2_fft requires a power-of-two length, got {n}")

    out = x[_bit_reverse_permutation(n)].copy()
    sign = 1.0 if inverse else -1.0
    length = 2
    while length <= n:
        half = length // 2
        twiddles = np.exp(sign * 2j * np.pi * np.arange(half) / length)
        blocks = out.reshape(n // length, length)
        even = blocks[:, :half].copy()
        odd = blocks[:, half:] * twiddles
        blocks[:, :half] = even + odd
        blocks[:, half:] = even - odd
        length *= 2

    if inverse:
        out /= n
    return out


def radix2_ifft(x: np.ndarray) -> np.ndarray:
    """Inverse transform companion of :func:`radix2_fft`."""
    return radix2_fft(x, inverse=True)
