"""Envelope-level metrics: dB scaling, rms, level crossing rate, fade duration.

Fig. 4 of the paper plots the generated envelopes in "dB around the rms
value"; :func:`envelope_db_around_rms` reproduces exactly that scaling.  The
level-crossing rate (LCR) and average fade duration (AFD) functions are the
standard second-order statistics of Rayleigh fading (Jakes, Rappaport) and
are used by the extended validation experiments to confirm that the
Doppler-shaped output behaves like physical fading, not just like white
Rayleigh noise.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..exceptions import DimensionError

__all__ = [
    "amplitude_to_db",
    "db_to_amplitude",
    "power_to_db",
    "db_to_power",
    "rms",
    "envelope_db_around_rms",
    "level_crossing_rate",
    "average_fade_duration",
    "theoretical_lcr",
    "theoretical_afd",
]

_TINY = np.finfo(float).tiny


def amplitude_to_db(amplitude: np.ndarray) -> np.ndarray:
    """Convert an amplitude ratio to decibels (``20 log10``)."""
    return 20.0 * np.log10(np.maximum(np.asarray(amplitude, dtype=float), _TINY))


def db_to_amplitude(db: np.ndarray) -> np.ndarray:
    """Convert decibels to an amplitude ratio."""
    return np.power(10.0, np.asarray(db, dtype=float) / 20.0)


def power_to_db(power: np.ndarray) -> np.ndarray:
    """Convert a power ratio to decibels (``10 log10``)."""
    return 10.0 * np.log10(np.maximum(np.asarray(power, dtype=float), _TINY))


def db_to_power(db: np.ndarray) -> np.ndarray:
    """Convert decibels to a power ratio."""
    return np.power(10.0, np.asarray(db, dtype=float) / 10.0)


def rms(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Root-mean-square value along ``axis``."""
    return np.sqrt(np.mean(np.asarray(x, dtype=float) ** 2, axis=axis))


def envelope_db_around_rms(envelopes: np.ndarray) -> np.ndarray:
    """Express envelopes in dB relative to their per-branch rms value.

    Parameters
    ----------
    envelopes:
        Array of shape ``(n_branches, n_samples)`` or ``(n_samples,)``.

    Returns
    -------
    numpy.ndarray
        Same shape, ``20 log10(r / r_rms)`` — the y-axis of Fig. 4.
    """
    arr = np.asarray(envelopes, dtype=float)
    squeeze = False
    if arr.ndim == 1:
        arr = arr[np.newaxis, :]
        squeeze = True
    if arr.ndim != 2:
        raise DimensionError(f"envelopes must be 1-D or 2-D, got ndim={arr.ndim}")
    reference = rms(arr, axis=-1)
    reference = np.where(reference <= 0.0, _TINY, reference)
    out = amplitude_to_db(np.maximum(arr, _TINY) / reference[:, np.newaxis])
    return out[0] if squeeze else out


def level_crossing_rate(
    envelope: np.ndarray, threshold: float, sample_rate: float = 1.0
) -> float:
    """Empirical level crossing rate: downward... upward crossings of ``threshold`` per second.

    A crossing is counted each time the envelope passes from below the
    threshold to at-or-above it (positive-going crossings, the standard
    definition).

    Parameters
    ----------
    envelope:
        1-D envelope sequence.
    threshold:
        Crossing level (same unit as the envelope).
    sample_rate:
        Samples per second; the rate is returned in crossings per second.
    """
    arr = np.asarray(envelope, dtype=float)
    if arr.ndim != 1 or arr.shape[0] < 2:
        raise DimensionError("level_crossing_rate expects a 1-D sequence of length >= 2")
    below = arr[:-1] < threshold
    at_or_above = arr[1:] >= threshold
    crossings = int(np.sum(below & at_or_above))
    duration = (arr.shape[0] - 1) / float(sample_rate)
    return crossings / duration


def average_fade_duration(
    envelope: np.ndarray, threshold: float, sample_rate: float = 1.0
) -> float:
    """Empirical average duration (seconds) spent below ``threshold`` per fade.

    Returns 0.0 when the envelope never drops below the threshold.
    """
    arr = np.asarray(envelope, dtype=float)
    if arr.ndim != 1 or arr.shape[0] < 2:
        raise DimensionError("average_fade_duration expects a 1-D sequence of length >= 2")
    below = arr < threshold
    total_below = float(np.sum(below)) / float(sample_rate)
    # Count fade events = number of transitions from >= threshold to < threshold
    # (plus one if the sequence starts below the threshold).
    starts = int(np.sum(~below[:-1] & below[1:])) + int(below[0])
    if starts == 0:
        return 0.0
    return total_below / starts


def theoretical_lcr(rho: np.ndarray, max_doppler_hz: float) -> np.ndarray:
    """Theoretical Rayleigh level crossing rate ``N_R = sqrt(2 pi) f_m rho e^{-rho^2}``.

    Parameters
    ----------
    rho:
        Threshold normalized by the rms envelope level.
    max_doppler_hz:
        Maximum Doppler frequency in Hz.
    """
    rho = np.asarray(rho, dtype=float)
    return np.sqrt(2.0 * np.pi) * max_doppler_hz * rho * np.exp(-(rho**2))


def theoretical_afd(rho: np.ndarray, max_doppler_hz: float) -> np.ndarray:
    """Theoretical Rayleigh average fade duration ``(e^{rho^2} - 1) / (rho f_m sqrt(2 pi))``."""
    rho = np.asarray(rho, dtype=float)
    denom = rho * max_doppler_hz * np.sqrt(2.0 * np.pi)
    denom = np.where(denom == 0.0, np.finfo(float).tiny, denom)
    return (np.exp(rho**2) - 1.0) / denom


def fade_statistics(
    envelope: np.ndarray, thresholds_db: np.ndarray, sample_rate: float = 1.0
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Convenience: LCR and AFD at several thresholds given in dB below/above rms.

    Returns ``(rho, lcr, afd)`` where ``rho`` is the linear threshold
    normalized to the rms level.
    """
    arr = np.asarray(envelope, dtype=float)
    reference = float(rms(arr))
    thresholds_db = np.asarray(thresholds_db, dtype=float)
    rho = db_to_amplitude(thresholds_db)
    lcr = np.array(
        [level_crossing_rate(arr, r * reference, sample_rate) for r in rho]
    )
    afd = np.array(
        [average_fade_duration(arr, r * reference, sample_rate) for r in rho]
    )
    return rho, lcr, afd
