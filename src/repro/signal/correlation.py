"""Correlation and covariance estimators for validating generated fading.

The validation layer needs to check two different things:

* that the *cross-branch* covariance of the generated complex Gaussian
  samples matches the desired covariance matrix ``K`` (Section 4.5), and
* that the *temporal* autocorrelation of each real-time branch matches the
  Clarke/Jakes reference ``J0(2 pi f_m d)`` (Eq. 16–20).

Both kinds of estimator live here.  All estimators are plain sample averages
(biased, i.e. normalized by the number of samples) unless stated otherwise,
matching the definitions used in the paper's references.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import DimensionError

__all__ = [
    "autocorrelation",
    "normalized_autocorrelation",
    "cross_correlation",
    "complex_autocovariance",
]


def _as_1d(x: np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(x)
    if arr.ndim != 1:
        raise DimensionError(f"{name} must be 1-D, got ndim={arr.ndim}")
    if arr.shape[0] == 0:
        raise DimensionError(f"{name} must be non-empty")
    return arr


def autocorrelation(x: np.ndarray, max_lag: Optional[int] = None, *, unbiased: bool = False) -> np.ndarray:
    """Sample autocorrelation ``r[d] = E{x[l] conj(x[l-d])}`` for lags ``0..max_lag``.

    Parameters
    ----------
    x:
        1-D real or complex sequence (assumed zero-mean; the mean is *not*
        removed, matching the zero-mean processes of the paper).
    max_lag:
        Largest lag to compute (inclusive).  Defaults to ``len(x) - 1``.
    unbiased:
        If ``True`` normalize each lag by the number of overlapping samples
        (``n - d``); otherwise by ``n`` (biased estimator, default).

    Returns
    -------
    numpy.ndarray
        Array of length ``max_lag + 1``; complex if the input is complex.
    """
    arr = _as_1d(x, "x")
    n = arr.shape[0]
    if max_lag is None:
        max_lag = n - 1
    if max_lag < 0 or max_lag >= n:
        raise ValueError(f"max_lag must be in [0, {n - 1}], got {max_lag}")

    # FFT-based computation of the full autocorrelation, then truncate.
    n_fft = 1 << int(np.ceil(np.log2(2 * n - 1)))
    spectrum = np.fft.fft(arr, n_fft)
    acf_full = np.fft.ifft(spectrum * np.conj(spectrum))[: max_lag + 1]
    if np.isrealobj(arr):
        acf_full = acf_full.real
    if unbiased:
        norm = n - np.arange(max_lag + 1)
    else:
        norm = np.full(max_lag + 1, n, dtype=float)
    return acf_full / norm


def normalized_autocorrelation(
    x: np.ndarray, max_lag: Optional[int] = None, *, unbiased: bool = False
) -> np.ndarray:
    """Autocorrelation normalized by the lag-0 value (so ``rho[0] == 1``).

    This is the quantity the paper compares against ``J0(2 pi f_m d)``
    (Eq. 20).
    """
    acf = autocorrelation(x, max_lag=max_lag, unbiased=unbiased)
    r0 = acf[0]
    if np.abs(r0) == 0:
        raise ValueError("cannot normalize the autocorrelation of an all-zero sequence")
    return acf / r0


def cross_correlation(
    x: np.ndarray, y: np.ndarray, max_lag: int = 0, *, unbiased: bool = False
) -> np.ndarray:
    """Sample cross-correlation ``r_xy[d] = E{x[l] conj(y[l-d])}`` for lags ``0..max_lag``.

    Both sequences must have the same length and are treated as zero-mean.
    """
    a = _as_1d(x, "x")
    b = _as_1d(y, "y")
    if a.shape[0] != b.shape[0]:
        raise DimensionError(
            f"sequences must have equal length, got {a.shape[0]} and {b.shape[0]}"
        )
    n = a.shape[0]
    if max_lag < 0 or max_lag >= n:
        raise ValueError(f"max_lag must be in [0, {n - 1}], got {max_lag}")
    out = np.empty(max_lag + 1, dtype=complex)
    for d in range(max_lag + 1):
        overlap = n - d
        out[d] = np.sum(a[d:] * np.conj(b[: n - d])) / (overlap if unbiased else n)
    if np.isrealobj(a) and np.isrealobj(b):
        return out.real
    return out


def complex_autocovariance(samples: np.ndarray) -> np.ndarray:
    """Empirical covariance matrix ``E{Z Z^H}`` of multi-branch complex samples.

    Parameters
    ----------
    samples:
        Array of shape ``(n_branches, n_samples)``; each row is one branch's
        complex Gaussian sequence (assumed zero-mean).

    Returns
    -------
    numpy.ndarray
        ``(n_branches, n_branches)`` Hermitian matrix ``samples samples^H / n``.
    """
    arr = np.asarray(samples)
    if arr.ndim == 1:
        arr = arr[np.newaxis, :]
    if arr.ndim != 2:
        raise DimensionError(f"samples must be 2-D (branches x time), got ndim={arr.ndim}")
    n_samples = arr.shape[1]
    if n_samples == 0:
        raise DimensionError("samples must contain at least one time sample")
    return (arr @ arr.conj().T) / n_samples
