"""Error metrics used by the validation checks and the experiment tables."""

from __future__ import annotations

import numpy as np

__all__ = ["relative_frobenius_error", "max_absolute_error", "normalized_covariance_error"]


def relative_frobenius_error(measured: np.ndarray, desired: np.ndarray) -> float:
    """``||measured - desired||_F / ||desired||_F`` (``inf`` for a zero target)."""
    measured = np.asarray(measured)
    desired = np.asarray(desired)
    if measured.shape != desired.shape:
        raise ValueError(
            f"arrays must have the same shape, got {measured.shape} and {desired.shape}"
        )
    denom = float(np.linalg.norm(desired))
    if denom == 0.0:
        return float("inf") if float(np.linalg.norm(measured)) > 0 else 0.0
    return float(np.linalg.norm(measured - desired)) / denom


def max_absolute_error(measured: np.ndarray, desired: np.ndarray) -> float:
    """Largest absolute element-wise deviation."""
    measured = np.asarray(measured)
    desired = np.asarray(desired)
    if measured.shape != desired.shape:
        raise ValueError(
            f"arrays must have the same shape, got {measured.shape} and {desired.shape}"
        )
    return float(np.max(np.abs(measured - desired)))


def normalized_covariance_error(measured: np.ndarray, desired: np.ndarray) -> float:
    """Element-wise covariance error normalized by the geometric mean of the diagonals.

    Off-diagonal covariance entries can be small in absolute terms; dividing
    by ``sqrt(K[k,k] K[j,j])`` compares them on the correlation-coefficient
    scale where a fixed tolerance is meaningful across scenarios.
    """
    measured = np.asarray(measured, dtype=complex)
    desired = np.asarray(desired, dtype=complex)
    if measured.shape != desired.shape or measured.ndim != 2:
        raise ValueError("inputs must be square matrices of identical shape")
    diag = np.real(np.diag(desired))
    if np.any(diag <= 0):
        raise ValueError("the desired covariance must have a positive diagonal")
    scale = np.sqrt(np.outer(diag, diag))
    return float(np.max(np.abs(measured - desired) / scale))
