"""Structured validation checks and the aggregate :class:`ValidationReport`.

The experiment harness validates each generated block with
:func:`validate_block`, which runs the covariance, power, Rayleigh-fit and
(optionally) autocorrelation checks and renders the results as a table.  The
integration test-suite uses the same functions, so "the experiment passes"
and "the tests pass" mean the same thing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..channels.autocorrelation import autocorrelation_error
from ..core.statistics import covariance_match_report, envelope_power_report
from ..signal.correlation import normalized_autocorrelation
from ..types import GaussianBlock
from .hypothesis_tests import rayleigh_ks_test

__all__ = [
    "CheckResult",
    "ValidationReport",
    "check_covariance",
    "check_envelope_powers",
    "check_rayleigh_fit",
    "check_autocorrelation",
    "validate_block",
]


@dataclass(frozen=True)
class CheckResult:
    """Outcome of a single validation check.

    Attributes
    ----------
    name:
        Identifier of the check (``"covariance"``, ``"envelope-power"``, ...).
    passed:
        Whether the check met its tolerance.
    metric:
        The scalar quantity the decision was based on.
    tolerance:
        The tolerance the metric was compared against.
    details:
        Free-form extra values for the report table.
    """

    name: str
    passed: bool
    metric: float
    tolerance: float
    details: Dict[str, float] = field(default_factory=dict)

    def row(self) -> str:
        """Render as a fixed-width report row."""
        status = "PASS" if self.passed else "FAIL"
        return f"{self.name:<22s} {status:<5s} metric={self.metric:<12.5g} tol={self.tolerance:g}"


@dataclass
class ValidationReport:
    """Aggregate of several :class:`CheckResult` values."""

    checks: List[CheckResult] = field(default_factory=list)

    def add(self, check: CheckResult) -> None:
        """Append a check to the report."""
        self.checks.append(check)

    @property
    def passed(self) -> bool:
        """Whether every check passed."""
        return all(check.passed for check in self.checks)

    def render(self) -> str:
        """Render the report as a plain-text table."""
        lines = [f"{'check':<22s} {'ok':<5s} value"]
        lines.extend(check.row() for check in self.checks)
        lines.append(f"overall: {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(lines)


def check_covariance(
    samples: np.ndarray, desired_covariance: np.ndarray, tolerance: float = 0.1
) -> CheckResult:
    """Check the relative Frobenius error of the sample covariance."""
    report = covariance_match_report(samples, desired_covariance)
    return CheckResult(
        name="covariance",
        passed=report.relative_error <= tolerance,
        metric=report.relative_error,
        tolerance=tolerance,
        details={"max_entry_error": report.max_entry_error, "n_samples": float(report.n_samples)},
    )


def check_envelope_powers(
    envelopes: np.ndarray, gaussian_variances: np.ndarray, tolerance: float = 0.1
) -> CheckResult:
    """Check the per-branch envelope power against ``sigma_g_j^2``."""
    report = envelope_power_report(envelopes, gaussian_variances)
    metric = report.max_relative_power_error()
    return CheckResult(
        name="envelope-power",
        passed=metric <= tolerance,
        metric=metric,
        tolerance=tolerance,
        details={"max_relative_mean_error": report.max_relative_mean_error()},
    )


def check_rayleigh_fit(
    envelopes: np.ndarray,
    gaussian_variances: np.ndarray,
    max_statistic: float = 0.05,
) -> CheckResult:
    """Check that every branch's envelope is Rayleigh distributed.

    The decision uses the KS *statistic* (distributional distance) rather
    than the p-value so that it remains meaningful for temporally correlated
    branches, where the nominal sample count overstates the information
    content.
    """
    env = np.atleast_2d(np.asarray(envelopes, dtype=float))
    variances = np.asarray(gaussian_variances, dtype=float)
    statistics = [
        rayleigh_ks_test(env[j], variances[j]).statistic for j in range(env.shape[0])
    ]
    metric = float(np.max(statistics))
    return CheckResult(
        name="rayleigh-fit",
        passed=metric <= max_statistic,
        metric=metric,
        tolerance=max_statistic,
        details={f"branch_{j}": float(s) for j, s in enumerate(statistics)},
    )


def check_autocorrelation(
    samples: np.ndarray,
    normalized_doppler: float,
    max_lag: int = 100,
    tolerance: float = 0.12,
) -> CheckResult:
    """Check each branch's normalized autocorrelation against ``J0(2 pi f_m d)``."""
    arr = np.atleast_2d(np.asarray(samples))
    errors = []
    for branch in arr:
        acf = normalized_autocorrelation(branch, max_lag=max_lag)
        rms_error, _ = autocorrelation_error(np.real(acf), normalized_doppler)
        errors.append(rms_error)
    metric = float(np.max(errors))
    return CheckResult(
        name="autocorrelation",
        passed=metric <= tolerance,
        metric=metric,
        tolerance=tolerance,
        details={f"branch_{j}": float(e) for j, e in enumerate(errors)},
    )


def validate_block(
    block: GaussianBlock,
    desired_covariance: np.ndarray,
    *,
    covariance_tolerance: float = 0.1,
    power_tolerance: float = 0.1,
    rayleigh_statistic: float = 0.05,
    normalized_doppler: Optional[float] = None,
    autocorrelation_tolerance: float = 0.12,
) -> ValidationReport:
    """Run the full validation suite on a generated block.

    Parameters
    ----------
    block:
        The generated complex Gaussian samples (with branch powers).
    desired_covariance:
        The covariance matrix the block was supposed to realize.
    normalized_doppler:
        If given, also check the temporal autocorrelation against the
        Clarke/Jakes reference (real-time mode only).
    """
    report = ValidationReport()
    report.add(check_covariance(block.samples, desired_covariance, tolerance=covariance_tolerance))
    envelopes = np.abs(block.samples)
    report.add(
        check_envelope_powers(envelopes, block.variances, tolerance=power_tolerance)
    )
    report.add(
        check_rayleigh_fit(envelopes, block.variances, max_statistic=rayleigh_statistic)
    )
    if normalized_doppler is not None:
        report.add(
            check_autocorrelation(
                block.samples, normalized_doppler, tolerance=autocorrelation_tolerance
            )
        )
    return report
