"""Empirical estimators of branch statistics.

These complement :mod:`repro.core.statistics`: where that module compares a
single block against theory, the estimators here are the raw building blocks
(correlation coefficients, envelope correlation, powers) used by the
experiment tables and by the baseline-comparison harness.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DimensionError
from ..signal.correlation import complex_autocovariance

__all__ = [
    "empirical_correlation_coefficients",
    "empirical_envelope_correlation",
    "branch_powers",
]


def _as_branch_matrix(samples: np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(samples)
    if arr.ndim == 1:
        arr = arr[np.newaxis, :]
    if arr.ndim != 2:
        raise DimensionError(f"{name} must be 1-D or 2-D (branches x time), got ndim={arr.ndim}")
    if arr.shape[1] < 2:
        raise DimensionError(f"{name} must contain at least two time samples")
    return arr


def branch_powers(samples: np.ndarray) -> np.ndarray:
    """Per-branch empirical power ``E{|z|^2}`` of complex samples."""
    arr = _as_branch_matrix(samples, "samples")
    return np.mean(np.abs(arr) ** 2, axis=1)


def empirical_correlation_coefficients(samples: np.ndarray) -> np.ndarray:
    """Unit-diagonal complex correlation-coefficient matrix of complex Gaussian branches."""
    arr = _as_branch_matrix(samples, "samples")
    cov = complex_autocovariance(arr)
    diag = np.real(np.diag(cov))
    if np.any(diag <= 0):
        raise ValueError("cannot normalize: a branch has zero empirical power")
    scale = np.sqrt(np.outer(diag, diag))
    return cov / scale


def empirical_envelope_correlation(envelopes: np.ndarray) -> np.ndarray:
    """Pearson correlation matrix of the envelope (amplitude) processes.

    Unlike the complex Gaussian correlation, the envelope correlation
    involves mean removal (envelopes are not zero-mean).  For jointly
    Rayleigh branches it approximately equals the squared magnitude of the
    complex Gaussian correlation coefficient.
    """
    arr = _as_branch_matrix(envelopes, "envelopes").astype(float)
    centered = arr - np.mean(arr, axis=1, keepdims=True)
    cov = centered @ centered.T / arr.shape[1]
    std = np.sqrt(np.diag(cov))
    if np.any(std <= 0):
        raise ValueError("cannot normalize: a branch has zero envelope variance")
    return cov / np.outer(std, std)
