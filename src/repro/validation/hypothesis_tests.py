"""Distributional goodness-of-fit tests for generated envelopes.

Two tests are used by the validation layer:

* a Kolmogorov–Smirnov test of each envelope against the Rayleigh CDF with
  the scale implied by the branch's Gaussian power;
* a Kolmogorov–Smirnov test of the phases against the uniform distribution on
  ``(-pi, pi]`` (uniform, independent phases are what make the moduli
  Rayleigh in the first place — see Section 4.1 of the paper).

Both return a :class:`KSTestResult` with the statistic, an asymptotic
p-value, and the pass/fail decision at the requested significance level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..exceptions import DimensionError

__all__ = ["KSTestResult", "rayleigh_ks_test", "phase_uniformity_test"]


@dataclass(frozen=True)
class KSTestResult:
    """Result of a Kolmogorov–Smirnov goodness-of-fit test.

    Attributes
    ----------
    statistic:
        The KS statistic (supremum distance between empirical and reference CDF).
    p_value:
        Asymptotic p-value.
    passed:
        Whether ``p_value >= significance``.
    significance:
        The significance level the decision was made at.
    description:
        What was tested.
    """

    statistic: float
    p_value: float
    passed: bool
    significance: float
    description: str


def rayleigh_ks_test(
    envelope: np.ndarray,
    gaussian_variance: float,
    significance: float = 0.01,
) -> KSTestResult:
    """KS test of an envelope sequence against the Rayleigh distribution.

    Parameters
    ----------
    envelope:
        1-D array of non-negative envelope samples.
    gaussian_variance:
        Power ``sigma_g^2`` of the underlying complex Gaussian branch; the
        Rayleigh scale parameter is ``sigma_g / sqrt(2)``.
    significance:
        Significance level for the pass/fail decision.

    Notes
    -----
    For Doppler-shaped (temporally correlated) branches the effective sample
    size is smaller than the number of samples, making the test conservative
    in statistic but optimistic in p-value; the experiments therefore also
    report the raw statistic.
    """
    arr = np.asarray(envelope, dtype=float)
    if arr.ndim != 1 or arr.shape[0] < 8:
        raise DimensionError("rayleigh_ks_test expects a 1-D sequence of length >= 8")
    if gaussian_variance <= 0:
        raise ValueError(f"gaussian_variance must be positive, got {gaussian_variance}")
    scale = np.sqrt(gaussian_variance / 2.0)
    statistic, p_value = stats.kstest(arr, "rayleigh", args=(0.0, scale))
    return KSTestResult(
        statistic=float(statistic),
        p_value=float(p_value),
        passed=bool(p_value >= significance),
        significance=float(significance),
        description=f"Rayleigh fit (scale {scale:.4g})",
    )


def phase_uniformity_test(
    complex_samples: np.ndarray,
    significance: float = 0.01,
) -> KSTestResult:
    """KS test of the phases of complex samples against the uniform distribution.

    Parameters
    ----------
    complex_samples:
        1-D array of complex Gaussian samples.
    significance:
        Significance level for the pass/fail decision.
    """
    arr = np.asarray(complex_samples)
    if arr.ndim != 1 or arr.shape[0] < 8:
        raise DimensionError("phase_uniformity_test expects a 1-D sequence of length >= 8")
    phases = np.angle(arr)  # in (-pi, pi]
    statistic, p_value = stats.kstest(phases, "uniform", args=(-np.pi, 2.0 * np.pi))
    return KSTestResult(
        statistic=float(statistic),
        p_value=float(p_value),
        passed=bool(p_value >= significance),
        significance=float(significance),
        description="uniform phase",
    )
