"""Statistical validation of generated fading envelopes.

The experiments and the integration tests accept or reject a generated block
of envelopes based on the checks implemented here:

* the empirical covariance of the complex Gaussian samples matches the
  desired covariance (:func:`check_covariance`);
* each envelope is Rayleigh distributed (Kolmogorov–Smirnov test,
  :func:`rayleigh_ks_test`) with the power predicted by Eq. (14)–(15);
* the phases are uniform (:func:`phase_uniformity_test`);
* real-time branches have the Clarke/Jakes autocorrelation
  (:func:`check_autocorrelation`).

The checks return structured result objects rather than booleans so reports
can show *how close* a run was, not only whether it passed.
"""

from .metrics import relative_frobenius_error, max_absolute_error, normalized_covariance_error
from .empirical import (
    empirical_correlation_coefficients,
    empirical_envelope_correlation,
    branch_powers,
)
from .hypothesis_tests import (
    rayleigh_ks_test,
    phase_uniformity_test,
    KSTestResult,
)
from .reports import (
    CheckResult,
    ValidationReport,
    check_covariance,
    check_envelope_powers,
    check_rayleigh_fit,
    check_autocorrelation,
    validate_block,
)

__all__ = [
    "relative_frobenius_error",
    "max_absolute_error",
    "normalized_covariance_error",
    "empirical_correlation_coefficients",
    "empirical_envelope_correlation",
    "branch_powers",
    "rayleigh_ks_test",
    "phase_uniformity_test",
    "KSTestResult",
    "CheckResult",
    "ValidationReport",
    "check_covariance",
    "check_envelope_powers",
    "check_rayleigh_fit",
    "check_autocorrelation",
    "validate_block",
]
