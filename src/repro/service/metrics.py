"""Serving-layer metrics: thread-safe monotonic counters.

The serving core mutates its scheduling state only from the event-loop
thread, but metrics are read from anywhere (the HTTP front end, benchmark
harnesses, operator tooling polling ``/v1/metrics`` while flights resolve
on pool threads), so the counters get their own lock.  The counter set is
closed — incrementing an unknown name is a programming error and raises —
which keeps dashboards and the conservation checks of the property suite
honest: every request ends in exactly one of completed/failed/cancelled.
"""

from __future__ import annotations

import threading
from typing import Dict

__all__ = ["ServiceMetrics"]

#: The closed set of counters the serving core maintains.
COUNTER_NAMES = (
    "requests_submitted",
    "requests_coalesced",
    "requests_rejected",
    "requests_completed",
    "requests_failed",
    "requests_cancelled",
    "flights_started",
    "flights_completed",
    "flights_failed",
    "flights_cancelled",
)


class ServiceMetrics:
    """Monotonic counters of serving activity, safe to read cross-thread.

    ``requests_*`` count client-visible submissions (a coalesced request is
    both submitted and coalesced); ``flights_*`` count the deduplicated
    compile/execute units actually dispatched.  The conservation invariant
    the property suite enforces: once the service drains,
    ``requests_submitted == requests_completed + requests_failed +
    requests_cancelled`` (rejected submissions are never counted as
    submitted).
    """

    def __init__(self) -> None:
        self._metrics_lock = threading.Lock()
        self._counts: Dict[str, int] = {name: 0 for name in COUNTER_NAMES}

    def increment(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (raises on unknown names)."""
        with self._metrics_lock:
            if name not in self._counts:
                raise KeyError(f"unknown service counter {name!r}")
            self._counts[name] += amount

    def snapshot(self) -> Dict[str, int]:
        """A consistent point-in-time copy of every counter."""
        with self._metrics_lock:
            return dict(self._counts)
