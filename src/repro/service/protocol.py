"""The JSON wire protocol of the serving layer: plans in, envelopes out.

Plans travel as plain JSON — covariance matrices as nested ``re``/``im``
float lists — which round-trips **bit-exactly**: Python's JSON encoder
emits the shortest repr that parses back to the same IEEE-754 double, so a
decoded plan hashes to the same compiled-plan key and produces the same
samples as the in-process original.  Results stream as NDJSON: one header
line (sample count, backend, the full :class:`CompileReport`), one line
per entry carrying its complex sample block as a base64 ``.npy`` payload
(exact bytes, no text round-trip), and one terminator line — a shape the
HTTP front end maps 1:1 onto chunked transfer encoding.

Seeds travel losslessly too: ``None`` and integers as themselves (the
original version-1 shape), and live :class:`numpy.random.Generator` seeds
as their bit-generator state, which restores to a generator drawing the
identical stream — the sharding layer (:mod:`repro.shard`) reuses this
entry encoding for its :class:`~repro.shard.PlanSlice` payloads.
"""

from __future__ import annotations

import base64
import io
import json
from dataclasses import asdict
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..engine import DopplerSpec, FadingSpec, SimulationPlan
from ..engine.result import BatchResult
from ..exceptions import SpecificationError
from ..models.fading import coerce_fading

__all__ = [
    "PROTOCOL_VERSION",
    "plan_to_payload",
    "plan_from_payload",
    "seed_to_payload",
    "seed_from_payload",
    "encode_array",
    "decode_array",
    "result_to_lines",
    "result_from_lines",
]

#: Version stamped on every payload; decoding rejects unknown versions.
PROTOCOL_VERSION = 1


def encode_array(array: np.ndarray) -> str:
    """Base64 ``.npy`` serialization of one array (exact bytes)."""
    buffer = io.BytesIO()
    np.save(buffer, np.ascontiguousarray(array), allow_pickle=False)
    return base64.b64encode(buffer.getvalue()).decode("ascii")


def decode_array(encoded: str) -> np.ndarray:
    """Inverse of :func:`encode_array` — bit-identical round-trip."""
    buffer = io.BytesIO(base64.b64decode(encoded.encode("ascii")))
    return np.load(buffer, allow_pickle=False)


def _jsonable(value: Any) -> Any:
    """Recursively convert a bit-generator state dict to pure JSON types.

    Generator states are dicts of strings and (arbitrary-precision) ints
    for the PCG64/Philox/SFC64 families; MT19937 carries its key as a
    uint32 ndarray, which JSON round-trips as a list of ints — the state
    setters of every numpy bit generator accept sequences back.
    """
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def seed_to_payload(seed: Any) -> Any:
    """Encode one plan-entry seed as a JSON-able value.

    ``None`` and integers pass through unchanged (the original version-1
    wire shape, so existing clients are unaffected); a
    :class:`numpy.random.Generator` is captured as its bit-generator state,
    which restores to a generator producing the *identical* stream — the
    sharding layer relies on this to slice plans carrying live generators
    without perturbing a single sample.
    """
    if seed is None:
        return None
    if isinstance(seed, (int, np.integer)):
        return int(seed)
    if isinstance(seed, np.random.Generator):
        return {
            "kind": "generator",
            "state": _jsonable(seed.bit_generator.state),
        }
    raise SpecificationError(
        f"entry seed of type {type(seed).__name__} is not wire-serializable "
        "(use None, an int, or a numpy Generator)"
    )


def seed_from_payload(raw: Any) -> Any:
    """Inverse of :func:`seed_to_payload`.

    A decoded generator draws the exact stream the encoded one would have
    drawn from the capture point onward.
    """
    if raw is None:
        return None
    if isinstance(raw, dict):
        if raw.get("kind") != "generator" or not isinstance(raw.get("state"), dict):
            raise SpecificationError(f"malformed seed payload: {raw!r}")
        state = raw["state"]
        name = state.get("bit_generator")
        bit_generator_cls = getattr(np.random, str(name), None)
        if bit_generator_cls is None:
            raise SpecificationError(f"unknown bit generator {name!r} in seed payload")
        generator = np.random.Generator(bit_generator_cls())
        try:
            generator.bit_generator.state = state
        except (KeyError, TypeError, ValueError) as exc:
            raise SpecificationError(f"malformed generator state: {exc}") from exc
        return generator
    return int(raw)


def _doppler_to_payload(doppler: DopplerSpec) -> Dict[str, Any]:
    return {
        "normalized_doppler": float(doppler.normalized_doppler),
        "n_points": int(doppler.n_points),
        "input_variance_per_dim": float(doppler.input_variance_per_dim),
        "compensate_variance": bool(doppler.compensate_variance),
    }


def _fading_to_payload(fading: FadingSpec) -> Dict[str, Any]:
    # JSON emits the shortest repr of each double, so the shape and sigma
    # round-trip bit-exactly and the decoded spec hashes to the same
    # fading_token — plans differing only in fading never coalesce.
    return {
        "model": fading.model,
        "shape": None if fading.shape is None else float(fading.shape),
        "shadowing_sigma_db": float(fading.shadowing_sigma_db),
    }


def plan_to_payload(
    plan: SimulationPlan, n_samples: int, *, client_id: Optional[str] = None
) -> Dict[str, Any]:
    """Encode one ``(plan, n_samples)`` submission as a JSON-able dict."""
    entries = []
    for entry in plan:
        matrix = entry.spec.matrix
        entries.append(
            {
                "matrix": {
                    "re": matrix.real.tolist(),
                    "im": matrix.imag.tolist(),
                },
                "seed": seed_to_payload(entry.seed),
                "coloring_method": entry.coloring_method,
                "psd_method": entry.psd_method,
                "epsilon": float(entry.epsilon),
                "sample_variance": float(entry.sample_variance),
                "doppler": (
                    None
                    if entry.doppler is None
                    else _doppler_to_payload(entry.doppler)
                ),
                "fading": (
                    None
                    if entry.fading is None
                    else _fading_to_payload(entry.fading)
                ),
                "label": entry.label,
            }
        )
    payload: Dict[str, Any] = {
        "version": PROTOCOL_VERSION,
        "n_samples": int(n_samples),
        "entries": entries,
    }
    if client_id is not None:
        payload["client_id"] = str(client_id)
    return payload


def plan_from_payload(payload: Dict[str, Any]) -> Tuple[SimulationPlan, int]:
    """Decode a submission payload back into ``(plan, n_samples)``.

    Raises :class:`~repro.exceptions.SpecificationError` on structural
    problems (unknown version, missing fields, ragged matrices); the
    numeric validation of covariances happens downstream in the plan, so
    a malformed matrix fails the request, not the service.
    """
    if not isinstance(payload, dict):
        raise SpecificationError("submission payload must be a JSON object")
    version = payload.get("version")
    if version != PROTOCOL_VERSION:
        raise SpecificationError(
            f"unsupported protocol version {version!r} "
            f"(this server speaks {PROTOCOL_VERSION})"
        )
    try:
        n_samples = int(payload["n_samples"])
        raw_entries = payload["entries"]
    except (KeyError, TypeError, ValueError) as exc:
        raise SpecificationError(f"malformed submission payload: {exc}") from exc
    if not isinstance(raw_entries, list) or not raw_entries:
        raise SpecificationError("submission payload needs a non-empty entry list")
    plan = SimulationPlan()
    for index, raw in enumerate(raw_entries):
        try:
            matrix_obj = raw["matrix"]
            real = np.asarray(matrix_obj["re"], dtype=float)
            imag = np.asarray(matrix_obj["im"], dtype=float)
            doppler_obj = raw.get("doppler")
            doppler = (
                None
                if doppler_obj is None
                else DopplerSpec(
                    normalized_doppler=float(doppler_obj["normalized_doppler"]),
                    n_points=int(doppler_obj.get("n_points", 4096)),
                    input_variance_per_dim=float(
                        doppler_obj.get("input_variance_per_dim", 0.5)
                    ),
                    compensate_variance=bool(
                        doppler_obj.get("compensate_variance", True)
                    ),
                )
            )
            plan.add(
                real + 1j * imag,
                seed=seed_from_payload(raw.get("seed")),
                coloring_method=str(raw.get("coloring_method", "eigen")),
                psd_method=str(raw.get("psd_method", "clip")),
                epsilon=float(raw.get("epsilon", 1e-6)),
                sample_variance=float(raw.get("sample_variance", 1.0)),
                doppler=doppler,
                fading=coerce_fading(raw.get("fading")),
                label=raw.get("label"),
            )
        except SpecificationError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise SpecificationError(
                f"malformed plan entry at index {index}: {exc}"
            ) from exc
    return plan, n_samples


def result_to_lines(result: BatchResult) -> Iterator[str]:
    """Stream one :class:`BatchResult` as NDJSON lines (no trailing ``\\n``).

    One header line, one line per entry block (base64 ``.npy`` samples —
    decoding yields arrays bit-identical to the in-process result), one
    terminator carrying the block count as an integrity check.
    """
    yield json.dumps(
        {
            "type": "result",
            "version": PROTOCOL_VERSION,
            "n_entries": len(result.blocks),
            "n_samples": int(result.n_samples),
            "backend": result.backend,
            "execute_seconds": float(result.execute_seconds),
            "compile_report": asdict(result.compile_report),
        }
    )
    for index, block in enumerate(result.blocks):
        yield json.dumps(
            {
                "type": "block",
                "index": index,
                "plan_index": block.metadata.get("plan_index", index),
                "label": block.metadata.get("label"),
                "npy": encode_array(block.samples),
            }
        )
    yield json.dumps({"type": "end", "n_blocks": len(result.blocks)})


def result_from_lines(lines: Iterator[str]) -> Dict[str, Any]:
    """Decode a :func:`result_to_lines` stream (the client half).

    Returns ``{"header": dict, "blocks": [ndarray, ...], "labels": [...]}``;
    raises :class:`~repro.exceptions.SpecificationError` on a truncated or
    out-of-order stream.
    """
    header = None
    blocks: List[np.ndarray] = []
    labels: List[Any] = []
    terminated = False
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SpecificationError(f"malformed result line: {exc}") from exc
        kind = record.get("type")
        if kind == "result":
            header = record
        elif kind == "block":
            if header is None:
                raise SpecificationError("result stream: block before header")
            blocks.append(decode_array(record["npy"]))
            labels.append(record.get("label"))
        elif kind == "end":
            if record.get("n_blocks") != len(blocks):
                raise SpecificationError(
                    "result stream truncated: expected "
                    f"{record.get('n_blocks')} blocks, got {len(blocks)}"
                )
            terminated = True
        else:
            raise SpecificationError(f"result stream: unknown record {kind!r}")
    if header is None or not terminated:
        raise SpecificationError("result stream truncated before terminator")
    return {"header": header, "blocks": blocks, "labels": labels}
