"""The asyncio serving core: bounded queue, fairness, coalescing, cancellation.

:class:`EnvelopeService` turns a :class:`repro.api.Simulator` session into a
long-running multi-client server.  Scheduling state lives on the event-loop
thread only (no locks here — the numeric work happens on the simulator's
pool threads); four mechanisms shape the traffic:

* **bounded submission queue** — at most ``max_queue`` *flights* (deduplicated
  compile/execute units) may be queued; a submit against a full queue raises
  :class:`repro.exceptions.BackpressureError` carrying a ``retry_after``
  estimate instead of blocking the event loop;
* **per-client fairness** — queued flights are kept per client and dispatched
  round-robin across clients, so one chatty client cannot starve the rest;
* **in-flight coalescing** — concurrent requests whose
  :func:`request_key` matches (same compiled-plan content hash *and* same
  seeds, labels, and sample count — the inputs that determine the result
  bits) attach to one flight and the single :class:`BatchResult` fans out to
  every waiter, bit-identical to each client running alone;
* **cooperative cancellation** — cancelling a request detaches its waiter;
  the last waiter of a queued flight releases the queue slot, the last
  waiter of a running flight cancels the underlying
  :meth:`repro.api.Simulator.submit` future (which releases a not-yet-started
  pool slot).

Below the request-level coalescing here, the compiled-plan cache adds
thread-level compile singleflight (see
:meth:`repro.engine.plancache.CompiledPlanCache.join_inflight`) for requests
that share a plan structure but differ in seeds.
"""

# reprolint: hot-module — the serving core is pure dispatch bookkeeping; it
# must never allocate arrays (results stream through by reference from the
# simulator pool), and the hot-path-allocation rule enforces that.

from __future__ import annotations

import asyncio
import hashlib
import itertools
import time
from collections import OrderedDict, deque
from typing import Any, Deque, Dict, List, Optional

import numpy as np

from ..api import Simulator
from ..config import DEFAULTS, NumericDefaults
from ..engine import BatchResult, SimulationPlan
from ..engine.plancache import compiled_plan_cache_key
from ..exceptions import BackpressureError, ServiceError, SpecificationError
from .metrics import ServiceMetrics

__all__ = ["EnvelopeService", "request_key"]

#: Request / flight lifecycle states (strings so status payloads are JSON).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: Completed/failed/cancelled requests kept for status polling.
DEFAULT_HISTORY_LIMIT = 1024


def request_key(
    plan: SimulationPlan,
    n_samples: int,
    *,
    defaults: NumericDefaults = DEFAULTS,
    cache_token: str = "numpy",
) -> Optional[str]:
    """Coalescing key of one request, or ``None`` when coalescing is unsafe.

    Two requests may share one compile/execute only when their *results*
    are guaranteed bit-identical, not merely their compilations: the
    compiled-plan content hash (which deliberately excludes seeds and
    labels) is therefore extended with every entry's seed and label, in
    plan order, plus the sample count.  An entry seeded with anything but
    an integer makes the request unique — a live ``Generator`` is stateful
    (two submissions passing it would *not* be bit-identical run alone),
    and ``None`` defers to session defaults the service cannot inspect —
    so the function returns ``None`` and the service runs the request as
    its own flight.
    """
    seeds = []
    for entry in plan:
        seed = entry.seed
        if seed is None or not isinstance(seed, (int, np.integer)):
            return None
        seeds.append((int(seed), entry.label))
    base = compiled_plan_cache_key(plan, defaults=defaults, cache_token=cache_token)
    hasher = hashlib.sha256(base.encode("ascii"))
    hasher.update(repr((int(n_samples), seeds)).encode("utf8"))
    return hasher.hexdigest()


class _Flight:
    """One coalesced unit of work: a single compile/execute, 1+ waiters."""

    __slots__ = (
        "key",
        "client_id",
        "plan",
        "n_samples",
        "waiters",
        "state",
        "task",
        "cancel_requested",
    )

    def __init__(
        self,
        key: Optional[str],
        client_id: str,
        plan: SimulationPlan,
        n_samples: int,
    ) -> None:
        self.key = key
        self.client_id = client_id
        self.plan = plan
        self.n_samples = n_samples
        self.waiters: List[_Request] = []
        self.state = QUEUED
        self.task: Optional["asyncio.Task[BatchResult]"] = None
        self.cancel_requested = False


class _Request:
    """One client-visible submission: an id, a future, and its flight."""

    __slots__ = (
        "request_id",
        "client_id",
        "flight",
        "future",
        "status",
        "error",
        "coalesced",
    )

    def __init__(
        self,
        request_id: str,
        client_id: str,
        flight: "_Flight",
        future: "asyncio.Future[BatchResult]",
        coalesced: bool = False,
    ) -> None:
        self.request_id = request_id
        self.client_id = client_id
        self.flight = flight
        self.future = future
        self.status = QUEUED
        self.error: Optional[str] = None
        self.coalesced = coalesced


class EnvelopeService:
    """Bounded-queue, fair, coalescing envelope server over one Simulator.

    All public methods must be called from the event-loop thread that ran
    :meth:`start` — the scheduling state is loop-confined by design (the
    numeric work runs on the simulator's pool threads; see the module
    docstring for the traffic-shaping mechanisms).

    Parameters
    ----------
    simulator:
        The warm session serving every request.  ``None`` builds a private
        ``Simulator(max_workers=dispatch_slots)`` that :meth:`stop` closes.
    max_queue:
        Maximum *queued* flights (running flights do not count — their
        queue slot is released on dispatch).  A submit against a full
        queue raises :class:`~repro.exceptions.BackpressureError`.
    dispatch_slots:
        Concurrent flights in execution: the number of worker loops pulling
        from the queue, each awaiting one ``Simulator.submit`` at a time.
    retry_after:
        Fixed back-off hint (seconds) for rejected submits; ``None``
        (default) estimates it from the observed flight duration and the
        queue depth.
    history_limit:
        Finished requests kept for status polling before eviction.
    """

    def __init__(
        self,
        simulator: Optional[Simulator] = None,
        *,
        max_queue: int = 64,
        dispatch_slots: int = 4,
        retry_after: Optional[float] = None,
        history_limit: int = DEFAULT_HISTORY_LIMIT,
    ) -> None:
        if max_queue < 1:
            raise SpecificationError(f"max_queue must be >= 1, got {max_queue}")
        if dispatch_slots < 1:
            raise SpecificationError(
                f"dispatch_slots must be >= 1, got {dispatch_slots}"
            )
        self._sim = (
            simulator
            if simulator is not None
            else Simulator(max_workers=dispatch_slots)
        )
        self._owns_simulator = simulator is None
        self._max_queue = int(max_queue)
        self._dispatch_slots = int(dispatch_slots)
        self._retry_after = retry_after
        self._history_limit = int(history_limit)
        self._metrics = ServiceMetrics()
        self._requests: Dict[str, _Request] = {}
        self._done_ids: Deque[str] = deque()
        self._flights: Dict[str, _Flight] = {}
        self._client_queues: "OrderedDict[str, Deque[_Flight]]" = OrderedDict()
        self._queued_flights = 0
        self._workers: List["asyncio.Task[None]"] = []
        self._wakeup: Optional[asyncio.Event] = None
        self._running = False
        self._ids = itertools.count(1)
        # EWMA of observed flight duration, seeding the retry-after estimate.
        self._avg_flight_seconds = 0.1

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def simulator(self) -> Simulator:
        """The simulator session serving this service's flights."""
        return self._sim

    @property
    def is_running(self) -> bool:
        """Whether the worker loops are live."""
        return self._running

    @property
    def queue_depth(self) -> int:
        """Flights currently queued (running flights excluded)."""
        return self._queued_flights

    async def start(self) -> None:
        """Spawn the worker loops; idempotent."""
        if self._running:
            return
        self._running = True
        self._wakeup = asyncio.Event()
        self._workers = [
            asyncio.create_task(self._worker_loop(), name=f"envelope-worker-{i}")
            for i in range(self._dispatch_slots)
        ]

    async def stop(self) -> None:
        """Cancel the workers, fail unresolved requests, release resources.

        Requests still queued or running are resolved as cancelled so no
        awaiter hangs; a privately built simulator is closed.
        """
        if not self._running and not self._workers:
            return
        self._running = False
        for worker in self._workers:
            worker.cancel()
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        for request in list(self._requests.values()):
            if not request.future.done():
                request.status = CANCELLED
                request.future.cancel()
                self._metrics.increment("requests_cancelled")
                self._retire(request)
        self._flights.clear()
        self._client_queues.clear()
        self._queued_flights = 0
        if self._owns_simulator:
            self._sim.close()

    async def __aenter__(self) -> "EnvelopeService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    # ------------------------------------------------------------------ #
    # Submission / status / results / cancellation
    # ------------------------------------------------------------------ #
    def submit(
        self,
        plan: SimulationPlan,
        n_samples: int,
        *,
        client_id: str = "anonymous",
        coalesce: bool = True,
    ) -> str:
        """Enqueue one plan; returns the request id.  Never blocks.

        The submission either coalesces onto an in-flight twin (identical
        :func:`request_key`: same plan content, seeds, labels, and sample
        count — the response is the same ``BatchResult`` object, bit-
        identical to running alone), occupies a queue slot on the client's
        queue, or — queue full — raises
        :class:`~repro.exceptions.BackpressureError` with a
        ``retry_after`` hint, synchronously, without ever blocking the
        event loop.
        """
        if not self._running:
            raise ServiceError("service is not running; call start() first")
        if n_samples < 1:
            raise SpecificationError(f"n_samples must be >= 1, got {n_samples}")
        loop = asyncio.get_running_loop()
        key = None
        if coalesce:
            key = request_key(
                plan,
                n_samples,
                cache_token=self._sim.backend.cache_token,
            )
        flight = self._flights.get(key) if key is not None else None
        request_id = f"req-{next(self._ids):06d}"
        if flight is not None and not flight.cancel_requested:
            request = _Request(
                request_id, client_id, flight, loop.create_future(), coalesced=True
            )
            flight.waiters.append(request)
            request.status = flight.state
            self._metrics.increment("requests_coalesced")
        else:
            if self._queued_flights >= self._max_queue:
                self._metrics.increment("requests_rejected")
                retry_after = self._estimate_retry_after()
                raise BackpressureError(
                    f"submission queue is full ({self._max_queue} flights); "
                    f"retry after ~{retry_after:.2f}s",
                    retry_after=retry_after,
                )
            flight = _Flight(key, client_id, plan, n_samples)
            request = _Request(request_id, client_id, flight, loop.create_future())
            flight.waiters.append(request)
            if key is not None:
                self._flights[key] = flight
            queue = self._client_queues.get(client_id)
            if queue is None:
                queue = deque()
                self._client_queues[client_id] = queue
            queue.append(flight)
            self._queued_flights += 1
            if self._wakeup is not None:
                self._wakeup.set()
        self._requests[request_id] = request
        self._metrics.increment("requests_submitted")
        return request_id

    def status(self, request_id: str) -> Optional[Dict[str, Any]]:
        """Status snapshot of one request, or ``None`` for unknown ids."""
        request = self._requests.get(request_id)
        if request is None:
            return None
        return {
            "request_id": request.request_id,
            "client_id": request.client_id,
            "status": request.status,
            "n_entries": request.flight.plan.n_entries,
            "n_samples": request.flight.n_samples,
            "coalesced": request.coalesced,
            "error": request.error,
        }

    async def result(self, request_id: str) -> BatchResult:
        """Await the :class:`BatchResult` of one request.

        Raises the flight's exception for failed requests and
        :class:`~repro.exceptions.ServiceError` for cancelled or unknown
        ones.  Waiting is shielded: cancelling *this* coroutine does not
        cancel the request (use :meth:`cancel` for that).
        """
        request = self._requests.get(request_id)
        if request is None:
            raise ServiceError(f"unknown request id {request_id!r}")
        if request.future.cancelled():
            raise ServiceError(f"request {request_id!r} was cancelled")
        try:
            return await asyncio.shield(request.future)
        except asyncio.CancelledError:
            if request.future.cancelled():
                raise ServiceError(
                    f"request {request_id!r} was cancelled"
                ) from None
            raise  # the *caller* was cancelled; the request lives on

    def cancel(self, request_id: str) -> bool:
        """Cancel one request; ``True`` if this call cancelled it.

        Detaches the request's waiter and conserves every resource: the
        last waiter of a queued flight releases its queue slot; the last
        waiter of a running flight cancels the underlying
        ``Simulator.submit`` future (a not-yet-started pool slot is freed
        without the work ever running).  Other waiters coalesced onto the
        same flight are unaffected.
        """
        request = self._requests.get(request_id)
        if request is None or request.future.done():
            return False
        flight = request.flight
        if request in flight.waiters:
            flight.waiters.remove(request)
        request.status = CANCELLED
        request.future.cancel()
        self._metrics.increment("requests_cancelled")
        self._retire(request)
        if not flight.waiters:
            if flight.state == QUEUED:
                self._unqueue_flight(flight)
            elif flight.state == RUNNING:
                flight.cancel_requested = True
                if flight.key is not None:
                    self._flights.pop(flight.key, None)
                if flight.task is not None:
                    flight.task.cancel()
        return True

    def metrics(self) -> Dict[str, Any]:
        """Counter snapshot plus live gauges (queue depth, pool pressure)."""
        snapshot: Dict[str, Any] = self._metrics.snapshot()
        snapshot["queued_flights"] = self._queued_flights
        snapshot["max_queue"] = self._max_queue
        snapshot["dispatch_slots"] = self._dispatch_slots
        snapshot["pending_submissions"] = self._sim.pending_submissions
        snapshot["avg_flight_seconds"] = self._avg_flight_seconds
        return snapshot

    # ------------------------------------------------------------------ #
    # Scheduling internals (event-loop thread only)
    # ------------------------------------------------------------------ #
    def _next_flight(self) -> Optional[_Flight]:
        """Dequeue the next flight, round-robin across client queues."""
        for client_id in list(self._client_queues):
            queue = self._client_queues[client_id]
            if not queue:
                del self._client_queues[client_id]
                continue
            flight = queue.popleft()
            self._queued_flights -= 1
            if queue:
                # Rotate the served client to the back so its next flight
                # waits behind every other client's head-of-line.
                self._client_queues.move_to_end(client_id)
            else:
                del self._client_queues[client_id]
            return flight
        return None

    async def _worker_loop(self) -> None:
        assert self._wakeup is not None
        while True:
            flight = self._next_flight()
            if flight is None:
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            await self._execute_flight(flight)

    async def _execute_flight(self, flight: _Flight) -> None:
        """Run one flight on the simulator pool and fan its outcome out.

        A flight failure (a backend fault, a store fault, a malformed plan
        surfacing at compile time) resolves only that flight's waiters —
        the exception is consumed here and the worker loop survives to
        serve the next flight.  Only the worker's own cancellation
        (service stop) propagates.
        """
        flight.state = RUNNING
        for request in flight.waiters:
            request.status = RUNNING
        self._metrics.increment("flights_started")
        started = time.monotonic()
        task = asyncio.ensure_future(self._sim.submit(flight.plan, flight.n_samples))
        flight.task = task
        try:
            result = await task
        except asyncio.CancelledError:
            flight.task = None
            if flight.cancel_requested:
                flight.state = CANCELLED
                self._metrics.increment("flights_cancelled")
                return  # last waiter already detached; the worker survives
            raise  # the worker itself is being cancelled (service stop)
        except Exception as exc:
            flight.task = None
            flight.state = FAILED
            self._metrics.increment("flights_failed")
            self._observe_duration(time.monotonic() - started)
            self._fan_out_error(flight, exc)
            return
        flight.task = None
        flight.state = DONE
        self._metrics.increment("flights_completed")
        self._observe_duration(time.monotonic() - started)
        self._fan_out_result(flight, result)

    def _fan_out_result(self, flight: _Flight, result: BatchResult) -> None:
        if flight.key is not None:
            self._flights.pop(flight.key, None)
        for request in flight.waiters:
            if request.future.done():
                continue
            request.status = DONE
            request.future.set_result(result)
            self._metrics.increment("requests_completed")
            self._retire(request)

    def _fan_out_error(self, flight: _Flight, exc: BaseException) -> None:
        if flight.key is not None:
            self._flights.pop(flight.key, None)
        for request in flight.waiters:
            if request.future.done():
                continue
            request.status = FAILED
            request.error = f"{type(exc).__name__}: {exc}"
            request.future.set_exception(exc)
            self._metrics.increment("requests_failed")
            self._retire(request)

    def _unqueue_flight(self, flight: _Flight) -> None:
        """Release the queue slot of a queued flight with no waiters left."""
        queue = self._client_queues.get(flight.client_id)
        if queue is not None:
            try:
                queue.remove(flight)
            except ValueError:  # pragma: no cover - defensive; loop-confined
                return
            self._queued_flights -= 1
            if not queue:
                del self._client_queues[flight.client_id]
        if flight.key is not None:
            self._flights.pop(flight.key, None)
        flight.state = CANCELLED
        self._metrics.increment("flights_cancelled")

    def _retire(self, request: _Request) -> None:
        """Keep a bounded history of finished requests for status polling."""
        self._done_ids.append(request.request_id)
        while len(self._done_ids) > self._history_limit:
            evicted = self._done_ids.popleft()
            self._requests.pop(evicted, None)

    def _observe_duration(self, seconds: float) -> None:
        self._avg_flight_seconds += 0.2 * (seconds - self._avg_flight_seconds)

    def _estimate_retry_after(self) -> float:
        if self._retry_after is not None:
            return self._retry_after
        # A full queue drains through the dispatch slots at the observed
        # average flight duration; suggest waiting for about one slot's
        # share of that backlog.
        backlog = self._queued_flights + self._dispatch_slots
        return max(0.05, self._avg_flight_seconds * backlog / self._dispatch_slots)
