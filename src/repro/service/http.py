"""Thin HTTP/1.1 front end over :class:`~repro.service.core.EnvelopeService`.

Pure-stdlib asyncio streams — no web framework.  The surface:

========  ==========================  =======================================
Method    Path                        Semantics
========  ==========================  =======================================
GET       ``/healthz``                liveness probe
GET       ``/v1/metrics``             counter + gauge snapshot (JSON)
POST      ``/v1/plans``               submit a plan payload → ``202`` with a
                                      request id; ``429`` + ``Retry-After``
                                      under backpressure; ``400`` on a
                                      malformed payload
GET       ``/v1/plans/<id>``          status snapshot (``404`` unknown)
DELETE    ``/v1/plans/<id>``          cancel (idempotent)
GET       ``/v1/plans/<id>/result``   await + stream the result as chunked
                                      NDJSON (see ``protocol.result_to_lines``);
                                      ``409`` if cancelled, ``500`` if the
                                      flight failed
========  ==========================  =======================================

Every connection handles one request (``Connection: close``): the server is
meant to sit behind clients that pipeline via many short connections, which
keeps the parser ~50 lines and removes keep-alive state entirely.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from ..exceptions import BackpressureError, ReproError, ServiceError
from .core import EnvelopeService
from .protocol import plan_from_payload, result_to_lines

__all__ = ["ServiceHTTPServer", "run_server"]

#: Largest accepted request body (a plan payload), in bytes.
MAX_BODY_BYTES = 64 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _reason(status: int) -> str:
    return _REASONS.get(status, "Unknown")


class ServiceHTTPServer:
    """One asyncio HTTP server bound to one :class:`EnvelopeService`."""

    def __init__(
        self,
        service: EnvelopeService,
        host: str = "127.0.0.1",
        port: int = 8437,
    ) -> None:
        self._service = service
        self._host = host
        self._port = port
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def port(self) -> int:
        """The bound port (resolves ``0`` to the ephemeral port chosen)."""
        if self._server is not None and self._server.sockets:
            return int(self._server.sockets[0].getsockname()[1])
        return self._port

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            parsed = await self._read_request(reader)
            if parsed is None:
                return
            method, path, headers, body = parsed
            await self._dispatch(writer, method, path, headers, body)
        except ConnectionError:  # pragma: no cover - client went away
            pass
        except Exception as exc:
            # A handler bug must not kill the server loop; best-effort 500.
            try:
                await self._send_json(
                    writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
            except Exception:  # pragma: no cover - socket already dead
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # pragma: no cover - already closed
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        request_line = await reader.readline()
        if not request_line:
            return None
        try:
            method, path, _version = request_line.decode("ascii").split()
        except ValueError:
            return None
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length < 0 or length > MAX_BODY_BYTES:
            return method.upper(), path, headers, b""
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, headers, body

    async def _dispatch(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        headers: Dict[str, str],
        body: bytes,
    ) -> None:
        path = path.split("?", 1)[0]
        if path == "/healthz" and method == "GET":
            await self._send_json(
                writer,
                200,
                {"status": "ok", "running": self._service.is_running},
            )
            return
        if path == "/v1/metrics" and method == "GET":
            await self._send_json(writer, 200, self._service.metrics())
            return
        if path == "/v1/plans" and method == "POST":
            await self._handle_submit(writer, body)
            return
        if path.startswith("/v1/plans/"):
            tail = path[len("/v1/plans/"):]
            if tail.endswith("/result") and method == "GET":
                await self._handle_result(writer, tail[: -len("/result")].rstrip("/"))
                return
            if "/" not in tail:
                if method == "GET":
                    await self._handle_status(writer, tail)
                    return
                if method == "DELETE":
                    await self._handle_cancel(writer, tail)
                    return
        await self._send_json(writer, 404, {"error": f"no route for {method} {path}"})

    # ------------------------------------------------------------------ #
    # Route handlers
    # ------------------------------------------------------------------ #
    async def _handle_submit(self, writer: asyncio.StreamWriter, body: bytes) -> None:
        try:
            payload = json.loads(body.decode("utf8"))
            plan, n_samples = plan_from_payload(payload)
            client_id = str(payload.get("client_id") or "anonymous")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            await self._send_json(writer, 400, {"error": f"invalid JSON: {exc}"})
            return
        except ReproError as exc:
            await self._send_json(writer, 400, {"error": str(exc)})
            return
        try:
            request_id = self._service.submit(plan, n_samples, client_id=client_id)
        except BackpressureError as exc:
            await self._send_json(
                writer,
                429,
                {"error": str(exc), "retry_after": exc.retry_after},
                extra_headers={"Retry-After": f"{max(1, round(exc.retry_after))}"},
            )
            return
        except ServiceError as exc:
            await self._send_json(writer, 503, {"error": str(exc)})
            return
        except ReproError as exc:
            await self._send_json(writer, 400, {"error": str(exc)})
            return
        await self._send_json(
            writer, 202, {"request_id": request_id, "status": "queued"}
        )

    async def _handle_status(
        self, writer: asyncio.StreamWriter, request_id: str
    ) -> None:
        status = self._service.status(request_id)
        if status is None:
            await self._send_json(
                writer, 404, {"error": f"unknown request id {request_id!r}"}
            )
            return
        await self._send_json(writer, 200, status)

    async def _handle_cancel(
        self, writer: asyncio.StreamWriter, request_id: str
    ) -> None:
        if self._service.status(request_id) is None:
            await self._send_json(
                writer, 404, {"error": f"unknown request id {request_id!r}"}
            )
            return
        cancelled = self._service.cancel(request_id)
        await self._send_json(
            writer, 200, {"request_id": request_id, "cancelled": cancelled}
        )

    async def _handle_result(
        self, writer: asyncio.StreamWriter, request_id: str
    ) -> None:
        try:
            result = await self._service.result(request_id)
        except ServiceError as exc:
            status = 409 if "cancelled" in str(exc) else 404
            await self._send_json(writer, status, {"error": str(exc)})
            return
        except Exception as exc:
            # The flight failed; the failure belongs to this request only.
            await self._send_json(
                writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
            )
            return
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )
        for line in result_to_lines(result):
            data = (line + "\n").encode("utf8")
            writer.write(f"{len(data):x}\r\n".encode("ascii"))
            writer.write(data)
            writer.write(b"\r\n")
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    # ------------------------------------------------------------------ #
    # Response plumbing
    # ------------------------------------------------------------------ #
    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = (json.dumps(payload) + "\n").encode("utf8")
        head = [
            f"HTTP/1.1 {status} {_reason(status)}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in (extra_headers or {}).items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("ascii"))
        writer.write(body)
        await writer.drain()


def run_server(
    host: str = "127.0.0.1",
    port: int = 8437,
    *,
    simulator=None,
    max_queue: int = 64,
    dispatch_slots: int = 4,
) -> None:
    """Blocking entry point for the CLI: serve until interrupted."""

    async def _main() -> None:
        service = EnvelopeService(
            simulator, max_queue=max_queue, dispatch_slots=dispatch_slots
        )
        async with service:
            server = ServiceHTTPServer(service, host, port)
            await server.start()
            try:
                await server.serve_forever()
            except asyncio.CancelledError:  # pragma: no cover - shutdown path
                pass
            finally:
                await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
