"""repro.service — envelope generation as a long-running service.

The serving layer over :class:`repro.api.Simulator`:
:class:`EnvelopeService` (bounded-queue asyncio core with per-client
fairness, request coalescing, backpressure, and cooperative cancellation),
the JSON/NDJSON wire protocol, and the stdlib HTTP/1.1 front end started by
``repro-experiments serve``.  See the "Serving layer" section of
``docs/ARCHITECTURE.md`` for the queueing diagram and the coalescing
bit-identity invariant.
"""

from .core import EnvelopeService, request_key
from .http import ServiceHTTPServer, run_server
from .metrics import ServiceMetrics
from .protocol import (
    PROTOCOL_VERSION,
    decode_array,
    encode_array,
    plan_from_payload,
    plan_to_payload,
    result_from_lines,
    result_to_lines,
)

__all__ = [
    "EnvelopeService",
    "request_key",
    "ServiceHTTPServer",
    "run_server",
    "ServiceMetrics",
    "PROTOCOL_VERSION",
    "plan_to_payload",
    "plan_from_payload",
    "encode_array",
    "decode_array",
    "result_to_lines",
    "result_from_lines",
]
