"""Named workload suites and the declarative JSON scenario schema.

A *workload* is a plain JSON-able mapping describing one batched run of the
fading-model zoo — the file format behind ``repro-experiments suite``::

    {
      "name": "rician-los",
      "n_samples": 4096,
      "seed": 20050413,
      "fading": {"model": "rician", "shape": 4.0},
      "doppler": {"normalized_doppler": 0.05, "n_points": 128},   # optional
      "entries": [
        {"powers": [1.0, 1.0], "rho": 0.5, "label": "two-branch"},
        {"powers": [1.0, 2.0, 0.5], "rho": [0.5, 0.3]}
      ]
    }

Each entry builds an exponential-profile covariance
``K[i, j] = rho^{|i-j|} * sqrt(Omega_i * Omega_j)`` from its per-branch
Gaussian powers and correlation coefficient (a float, or ``[re, im]`` for a
complex coefficient), or supplies the matrix directly as
``{"matrix": {"re": [[...]], "im": [[...]]}}``.  The ``fading`` value is
the :func:`repro.models.fading.coerce_fading` schema; ``doppler`` carries
the :class:`repro.engine.DopplerSpec` fields.  Malformed workloads raise
:class:`~repro.exceptions.SpecificationError` (a ``ValueError``) naming
the offending field, which the CLI and HTTP layers surface as exit code
2 / status 400 — never a traceback.

:data:`NAMED_SUITES` ships one ready workload per registered model (plus
the shadowing composition); ``repro-experiments suite --list`` prints
them and the CI workload-suite smoke job runs each one.

This module imports the engine, so :mod:`repro.models` does **not**
re-export it at package level (the engine itself imports
``repro.models.fading``); import it directly or through the CLI.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

import numpy as np

from ..engine import DopplerSpec, SimulationEngine, SimulationPlan
from ..engine.cache import DecompositionCache
from ..exceptions import SpecificationError
from .fading import coerce_fading

__all__ = [
    "NAMED_SUITES",
    "available_suites",
    "get_suite",
    "load_workload",
    "plan_from_workload",
    "run_suite",
]

_WORKLOAD_FIELDS = ("name", "description", "n_samples", "seed", "fading", "doppler", "entries")
_ENTRY_FIELDS = ("powers", "rho", "matrix", "label")


def _correlation_matrix(entry: Mapping[str, Any], index: int) -> np.ndarray:
    """One entry's covariance matrix from its declarative fields."""
    if "matrix" in entry:
        matrix_obj = entry["matrix"]
        if not isinstance(matrix_obj, Mapping) or "re" not in matrix_obj:
            raise SpecificationError(
                f"entries[{index}].matrix must be a mapping with 're' (and "
                "optionally 'im') nested lists"
            )
        real = np.asarray(matrix_obj["re"], dtype=float)
        imag = np.asarray(matrix_obj.get("im", np.zeros_like(real)), dtype=float)
        if real.ndim != 2 or real.shape[0] != real.shape[1] or real.shape != imag.shape:
            raise SpecificationError(
                f"entries[{index}].matrix must be square with matching "
                f"re/im shapes, got {real.shape} and {imag.shape}"
            )
        return real + 1j * imag
    try:
        powers = np.asarray(entry["powers"], dtype=float)
    except (KeyError, TypeError, ValueError) as exc:
        raise SpecificationError(
            f"entries[{index}].powers must be a list of per-branch Gaussian "
            f"powers: {exc}"
        ) from exc
    if powers.ndim != 1 or powers.size < 1 or np.any(powers <= 0):
        raise SpecificationError(
            f"entries[{index}].powers must be a non-empty list of positive "
            f"numbers, got {entry['powers']!r}"
        )
    rho_raw = entry.get("rho", 0.0)
    if isinstance(rho_raw, (list, tuple)):
        if len(rho_raw) != 2:
            raise SpecificationError(
                f"entries[{index}].rho must be a number or a [re, im] pair, "
                f"got {rho_raw!r}"
            )
        rho = complex(float(rho_raw[0]), float(rho_raw[1]))
    else:
        try:
            rho = complex(float(rho_raw), 0.0)
        except (TypeError, ValueError) as exc:
            raise SpecificationError(
                f"entries[{index}].rho must be a number or a [re, im] pair, "
                f"got {rho_raw!r}"
            ) from exc
    if abs(rho) >= 1.0:
        raise SpecificationError(
            f"entries[{index}].rho must satisfy |rho| < 1, got |rho|={abs(rho)}"
        )
    n = powers.size
    profile = np.eye(n, dtype=complex)
    for i in range(n):
        for j in range(i + 1, n):
            profile[i, j] = rho ** (j - i)
            profile[j, i] = np.conj(profile[i, j])
    return profile * np.sqrt(np.outer(powers, powers))


def plan_from_workload(payload: Mapping[str, Any]) -> Tuple[SimulationPlan, int]:
    """Build ``(plan, n_samples)`` from one declarative workload mapping.

    Raises :class:`~repro.exceptions.SpecificationError` naming the
    offending field on any malformed value.
    """
    if not isinstance(payload, Mapping):
        raise SpecificationError(
            f"a workload must be a JSON object, got {type(payload).__name__}"
        )
    unknown = sorted(set(payload) - set(_WORKLOAD_FIELDS))
    if unknown:
        raise SpecificationError(
            f"unknown workload field(s) {unknown}; expected {list(_WORKLOAD_FIELDS)}"
        )
    try:
        n_samples = int(payload["n_samples"])
    except (KeyError, TypeError, ValueError) as exc:
        raise SpecificationError(
            f"workload.n_samples must be a positive integer: {exc}"
        ) from exc
    if n_samples < 1:
        raise SpecificationError(
            f"workload.n_samples must be >= 1, got {n_samples}"
        )
    seed = payload.get("seed", 0)
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise SpecificationError(
            f"workload.seed must be an integer, got {seed!r}"
        )
    fading = coerce_fading(payload.get("fading"))
    doppler_obj = payload.get("doppler")
    if doppler_obj is None:
        doppler = None
    elif isinstance(doppler_obj, Mapping):
        try:
            doppler = DopplerSpec(
                normalized_doppler=float(doppler_obj["normalized_doppler"]),
                n_points=int(doppler_obj.get("n_points", 4096)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SpecificationError(
                f"workload.doppler must carry a normalized_doppler (and "
                f"optional n_points): {exc}"
            ) from exc
    else:
        raise SpecificationError(
            "workload.doppler must be a mapping with normalized_doppler, got "
            f"{type(doppler_obj).__name__}"
        )
    entries = payload.get("entries")
    if not isinstance(entries, list) or not entries:
        raise SpecificationError(
            "workload.entries must be a non-empty list of entry objects"
        )
    plan = SimulationPlan()
    for index, entry in enumerate(entries):
        if not isinstance(entry, Mapping):
            raise SpecificationError(
                f"entries[{index}] must be a JSON object, got "
                f"{type(entry).__name__}"
            )
        unknown = sorted(set(entry) - set(_ENTRY_FIELDS))
        if unknown:
            raise SpecificationError(
                f"unknown entries[{index}] field(s) {unknown}; expected "
                f"{list(_ENTRY_FIELDS)}"
            )
        label = entry.get("label")
        plan.add(
            _correlation_matrix(entry, index),
            seed=seed + index,
            doppler=doppler,
            fading=fading,
            label=None if label is None else str(label),
        )
    return plan, n_samples


#: One ready-to-run workload per registered fading model, plus the
#: shadowing composition — the suites behind ``repro-experiments suite``
#: and the CI workload-suite smoke job.
NAMED_SUITES: Dict[str, Dict[str, Any]] = {
    "rayleigh-baseline": {
        "name": "rayleigh-baseline",
        "description": "the paper's correlated Rayleigh envelopes (no model)",
        "n_samples": 2048,
        "seed": 20050413,
        "entries": [
            {"powers": [1.0, 1.0], "rho": 0.5, "label": "equal-power"},
            {"powers": [1.0, 2.0, 0.5], "rho": [0.5, 0.3], "label": "power-sweep"},
        ],
    },
    "rician-los": {
        "name": "rician-los",
        "description": "Rician K=4 line-of-sight links",
        "n_samples": 2048,
        "seed": 20050413,
        "fading": {"model": "rician", "shape": 4.0},
        "entries": [
            {"powers": [1.0, 1.0], "rho": 0.6, "label": "strong-los"},
            {"powers": [0.5, 1.5], "rho": 0.3, "label": "unequal"},
        ],
    },
    "nakagami-wsn": {
        "name": "nakagami-wsn",
        "description": "Nakagami-m m=1.5 sensor-network links",
        "n_samples": 2048,
        "seed": 20050413,
        "fading": {"model": "nakagami", "shape": 1.5},
        "entries": [
            {"powers": [1.0, 1.0, 1.0], "rho": 0.4, "label": "three-branch"},
        ],
    },
    "weibull-indoor": {
        "name": "weibull-indoor",
        "description": "Weibull k=1.7 indoor measurement fits",
        "n_samples": 2048,
        "seed": 20050413,
        "fading": {"model": "weibull", "shape": 1.7},
        "entries": [
            {"powers": [1.0, 1.0], "rho": [0.4, 0.2], "label": "indoor-pair"},
        ],
    },
    "shadowed-urban": {
        "name": "shadowed-urban",
        "description": "Rayleigh links behind 6 dB log-normal shadowing",
        "n_samples": 2048,
        "seed": 20050413,
        "fading": {"model": "rayleigh", "shadowing_sigma_db": 6.0},
        "entries": [
            {"powers": [1.0, 1.0], "rho": 0.5, "label": "urban-pair"},
            {"powers": [2.0, 0.5], "rho": 0.2, "label": "urban-unequal"},
        ],
    },
}


def available_suites() -> Tuple[str, ...]:
    """Names of the shipped workload suites, sorted."""
    return tuple(sorted(NAMED_SUITES))


def get_suite(name: Any) -> Dict[str, Any]:
    """Resolve a named suite, raising a field-naming error on unknowns."""
    suite = NAMED_SUITES.get(name) if isinstance(name, str) else None
    if suite is None:
        raise SpecificationError(
            f"unknown workload suite {name!r}; available: {sorted(NAMED_SUITES)}"
        )
    return suite


def load_workload(path: Union[str, Path]) -> Dict[str, Any]:
    """Read one workload mapping from a JSON file."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf8"))
    except OSError as exc:
        raise SpecificationError(f"cannot read workload file {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise SpecificationError(
            f"workload file {path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(payload, dict):
        raise SpecificationError(
            f"workload file {path} must hold a JSON object at the top level"
        )
    return payload


def run_suite(
    workload: Union[str, Mapping[str, Any]],
    *,
    n_samples: Optional[int] = None,
    backend: Optional[str] = None,
) -> Dict[str, Any]:
    """Run one workload (a suite name or mapping) and summarize the result.

    The summary is JSON-able: suite identity, per-entry labels and mean
    envelope powers, the fading metadata the execute kernel stamped on
    every block, and the compile/execute timings.
    """
    payload = get_suite(workload) if isinstance(workload, str) else workload
    plan, default_samples = plan_from_workload(payload)
    count = default_samples if n_samples is None else int(n_samples)
    if count < 1:
        raise SpecificationError(f"n_samples must be >= 1, got {count}")
    engine = SimulationEngine(cache=DecompositionCache(), backend=backend)
    result = engine.run(plan, count)
    entries = []
    for entry, block in zip(plan, result.blocks):
        envelopes = np.abs(block.samples)
        entries.append(
            {
                "label": entry.label,
                "n_branches": entry.n_branches,
                "mean_envelope_power": float(np.mean(envelopes**2)),
                "fading": block.metadata.get("fading"),
            }
        )
    return {
        "suite": payload.get("name"),
        "description": payload.get("description"),
        "n_entries": plan.n_entries,
        "n_samples": count,
        "backend": result.backend,
        "compile_seconds": float(result.compile_report.compile_seconds),
        "execute_seconds": float(result.execute_seconds),
        "entries": entries,
    }
