"""Pluggable fading-model layer: the post-coloring envelope seam.

The engine's plan → compile → execute pipeline produces correlated complex
Gaussian samples whose moduli are Rayleigh envelopes.  This module
generalizes that final step into a registry of *fading models* — pure,
vectorized post-coloring transforms the fused execute kernel applies in
place — so one correlated-Gaussian coloring pass can serve every channel
family the scenario zoo needs:

=============  =======================================  ======================
model          construction                             declared invariant
=============  =======================================  ======================
``rayleigh``   identity (the paper's default)           byte-identity: the
                                                        pre-refactor fast path
``rician(K)``  diffuse component scaled by              byte-identity to the
               ``1/sqrt(K+1)`` plus a static            looped scalar
               per-branch LOS amplitude                 reference
``nakagami``   inverse-CDF envelope transform           ``rtol <= 1e-12`` to
``(m)``        Rayleigh → Nakagami-m, phase             the looped scalar
               preserved                                reference
``weibull``    power envelope transform                 ``rtol <= 1e-12`` to
``(k)``        Rayleigh → Weibull, phase preserved      the looped scalar
                                                        reference
shadowing      per-branch log-normal gain drawn once    byte-identity (the
``(sigma_dB)`` per entry from a deterministic side      gains are a pure
               stream of the entry seed; composes       function of the
               multiplicatively with any model above    entry seed)
=============  =======================================  ======================

Contract
--------
A model is a pure function of the colored block and the entry's declared
parameters: no RNG draws inside the transform (shadowing draws its gains
*once* per entry from a tagged side stream of the entry seed, never from
the white-sample stream the Rayleigh identity depends on), no
time/environment reads, and phase preservation for the envelope
transforms.  Each model declares its own invariant (see the table above;
enforced in ``tests/property/test_property_fading_models.py``) and its
cache-key contribution (:meth:`FadingSpec.fading_token`, folded per entry
into :func:`repro.engine.plancache.compiled_plan_cache_key`).  Entries
group by :attr:`FadingSpec.family` at compile time, so one group applies
one model with stacked parameters.

The total branch powers ``Omega_j`` are read off the entry's covariance
diagonal: Rician splits ``Omega`` between LOS and diffuse power exactly
like :class:`repro.core.rician.RicianFadingGenerator`, and the
Nakagami/Weibull envelope maps preserve ``E[r^2] = Omega``.
"""

from __future__ import annotations

# reprolint: hot-module — the model transforms run inside the fused execute
# kernels; every deliberate allocation below is marked explicitly.

import math
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..exceptions import SpecificationError

__all__ = [
    "FadingLike",
    "FadingModel",
    "FadingSpec",
    "FadingStacks",
    "apply_fading_block",
    "available_fading_models",
    "build_fading_stacks",
    "coerce_fading",
    "get_fading_model",
    "register_fading_model",
    "shadowing_gains",
]

#: Sub-stream tag deriving the shadowing side stream from an entry seed —
#: a separate :class:`numpy.random.SeedSequence` spawn key, so the gains
#: never consume from (or perturb) the entry's white-sample stream.
_SHADOWING_STREAM_TAG = 0x5AD0F1E1


@dataclass(frozen=True)
class FadingModel:
    """One registered fading model: its validation contract and invariant.

    Attributes
    ----------
    name:
        Registry key (``FadingSpec.model`` values resolve against it).
    shape_name:
        Human name of the model's shape parameter (``K-factor``, ``m``,
        ``k``), or ``None`` for shape-less models.
    invariant:
        The equivalence the property suite enforces for this model
        (byte-identity or a stated tolerance) — see the module table.
    description:
        One-line summary for CLI/docs listings.
    exact:
        ``True`` when the invariant is byte-identity; ``False`` when the
        transform is compared at ``rtol`` against the scalar reference.
    rtol:
        Declared relative tolerance for non-exact models.
    shape_min, shape_min_inclusive:
        Lower bound of the shape parameter's valid range.
    requires_scipy:
        Whether the transform needs :mod:`scipy.special` (checked at spec
        construction so missing scipy fails at plan build, not mid-kernel).
    """

    name: str
    shape_name: Optional[str]
    invariant: str
    description: str
    exact: bool = True
    rtol: float = 0.0
    shape_min: float = 0.0
    shape_min_inclusive: bool = True
    requires_scipy: bool = False

    @property
    def requires_shape(self) -> bool:
        """Whether this model takes a shape parameter."""
        return self.shape_name is not None

    def validate_shape(self, shape: Any) -> float:
        """Coerce and range-check a shape value, naming the field on error."""
        try:
            value = float(shape)
        except (TypeError, ValueError) as exc:
            raise SpecificationError(
                f"fading.shape (the {self.name} {self.shape_name}) must be a "
                f"number, got {shape!r}"
            ) from exc
        in_range = np.isfinite(value) and (
            value >= self.shape_min
            if self.shape_min_inclusive
            else value > self.shape_min
        )
        if not in_range:
            bound = ">=" if self.shape_min_inclusive else ">"
            raise SpecificationError(
                f"fading.shape (the {self.name} {self.shape_name}) must be "
                f"finite and {bound} {self.shape_min}, got {value!r}"
            )
        return value


_MODELS: Dict[str, FadingModel] = {}


def register_fading_model(model: FadingModel) -> FadingModel:
    """Register a fading model under its name (returns it, decorator-style)."""
    if not isinstance(model, FadingModel):
        raise SpecificationError(
            f"expected a FadingModel, got {type(model).__name__}"
        )
    if model.name in _MODELS:
        raise SpecificationError(
            f"fading model {model.name!r} is already registered"
        )
    _MODELS[model.name] = model
    return model


def available_fading_models() -> Tuple[str, ...]:
    """Names of every registered fading model, sorted."""
    return tuple(sorted(_MODELS))


def get_fading_model(name: Any) -> FadingModel:
    """Resolve a model name, raising a field-naming error on unknowns."""
    model = _MODELS.get(name) if isinstance(name, str) else None
    if model is None:
        raise SpecificationError(
            f"fading.model must be one of {sorted(_MODELS)}, got {name!r}"
        )
    return model


register_fading_model(
    FadingModel(
        name="rayleigh",
        shape_name=None,
        invariant="byte-identity (the transform is the identity)",
        description="the paper's correlated Rayleigh envelopes (default)",
    )
)
register_fading_model(
    FadingModel(
        name="rician",
        shape_name="K-factor",
        invariant="byte-identity to the looped scalar reference",
        description=(
            "diffuse component scaled by 1/sqrt(K+1) plus a static "
            "per-branch LOS amplitude"
        ),
        shape_min=0.0,
    )
)
register_fading_model(
    FadingModel(
        name="nakagami",
        shape_name="m",
        invariant="allclose to the looped scalar reference, rtol <= 1e-12",
        description=(
            "inverse-CDF envelope transform Rayleigh -> Nakagami-m "
            "(phase preserved)"
        ),
        exact=False,
        rtol=1e-12,
        shape_min=0.5,
        requires_scipy=True,
    )
)
register_fading_model(
    FadingModel(
        name="weibull",
        shape_name="k",
        invariant="allclose to the looped scalar reference, rtol <= 1e-12",
        description=(
            "power envelope transform Rayleigh -> Weibull (phase preserved)"
        ),
        exact=False,
        rtol=1e-12,
        shape_min=0.0,
        shape_min_inclusive=False,
    )
)


def _scipy_special():
    """Import-gate for scipy-backed transforms (scipy is an extra, not a dep)."""
    try:
        from scipy import special
    except ImportError as exc:  # pragma: no cover - scipy present in test env
        raise SpecificationError(
            "fading.model 'nakagami' requires scipy "
            "(scipy.special.gammaincinv); install scipy or choose another model"
        ) from exc
    return special


@dataclass(frozen=True)
class FadingSpec:
    """Fading model of one plan entry (mirrors :class:`DopplerSpec`).

    Attributes
    ----------
    model:
        Registered model name (``rayleigh``, ``rician``, ``nakagami``,
        ``weibull``).
    shape:
        The model's shape parameter — the Rician ``K``-factor, the
        Nakagami ``m``, or the Weibull ``k``.  Required for those models;
        must be ``None`` for ``rayleigh``.
    shadowing_sigma_db:
        Log-normal shadowing spread in dB, composed multiplicatively on
        top of the model (``0`` disables shadowing).  Shadowed entries
        need integer seeds: the per-branch gains are drawn once per entry
        from a deterministic side stream of the entry seed, so they are
        constant across streamed blocks and identical across runs.
    """

    model: str = "rayleigh"
    shape: Optional[float] = None
    shadowing_sigma_db: float = 0.0

    def __post_init__(self) -> None:
        descriptor = get_fading_model(self.model)
        if descriptor.requires_shape:
            if self.shape is None:
                raise SpecificationError(
                    f"fading.shape is required for the {descriptor.name} model "
                    f"(its {descriptor.shape_name} parameter)"
                )
            object.__setattr__(
                self, "shape", descriptor.validate_shape(self.shape)
            )
        elif self.shape is not None:
            raise SpecificationError(
                f"fading.shape must be None for the {descriptor.name} model "
                f"(it has no shape parameter), got {self.shape!r}"
            )
        try:
            sigma = float(self.shadowing_sigma_db)
        except (TypeError, ValueError) as exc:
            raise SpecificationError(
                "fading.shadowing_sigma_db must be a number, got "
                f"{self.shadowing_sigma_db!r}"
            ) from exc
        if sigma < 0 or not np.isfinite(sigma):
            raise SpecificationError(
                "fading.shadowing_sigma_db must be non-negative and finite, "
                f"got {sigma!r}"
            )
        object.__setattr__(self, "shadowing_sigma_db", sigma)
        if descriptor.requires_scipy:
            _scipy_special()

    @property
    def descriptor(self) -> FadingModel:
        """The registered :class:`FadingModel` this spec resolves to."""
        return get_fading_model(self.model)

    @property
    def has_shadowing(self) -> bool:
        """Whether log-normal shadowing is composed on top of the model."""
        return self.shadowing_sigma_db != 0.0

    @property
    def is_trivial(self) -> bool:
        """Whether this spec is the identity (plain Rayleigh, no shadowing).

        :func:`coerce_fading` collapses trivial specs to ``None`` so
        ``entry.fading is None`` is exactly the untouched byte-identical
        Rayleigh fast path.
        """
        return self.model == "rayleigh" and not self.has_shadowing

    @property
    def family(self) -> Tuple[str, bool]:
        """Compile-group token: entries stack only within one model family."""
        return (self.model, self.has_shadowing)

    def fading_token(self) -> str:
        """Cache-key contribution of this spec: pure content, no seeds.

        Folded per entry into
        :func:`repro.engine.plancache.compiled_plan_cache_key` (and from
        there into the service request key), so plans differing only in
        fading never share compiled artifacts or coalesce in flight.
        """
        return repr(("fading", self.model, self.shape, self.shadowing_sigma_db))


#: What callers may pass wherever a fading model is expected: ``None`` or a
#: trivial spec (the Rayleigh fast path), a bare model name, a mapping with
#: ``model`` / ``shape`` / ``shadowing_sigma_db`` keys (the JSON scenario
#: schema), or a ready :class:`FadingSpec`.
FadingLike = Union[None, str, Mapping[str, Any], FadingSpec]

_FADING_FIELDS = ("model", "shape", "shadowing_sigma_db")


def coerce_fading(fading: FadingLike) -> Optional[FadingSpec]:
    """Normalize a :data:`FadingLike` value into an optional :class:`FadingSpec`.

    Trivial specs (plain Rayleigh without shadowing) collapse to ``None``,
    keeping the engine's default path byte-identical to the pre-refactor
    hard-coded Rayleigh.  Malformed values raise
    :class:`~repro.exceptions.SpecificationError` (a ``ValueError``) naming
    the offending field.
    """
    if fading is None:
        return None
    if isinstance(fading, FadingSpec):
        return None if fading.is_trivial else fading
    if isinstance(fading, str):
        spec = FadingSpec(model=fading)
    elif isinstance(fading, Mapping):
        unknown = sorted(set(fading) - set(_FADING_FIELDS))
        if unknown:
            raise SpecificationError(
                f"unknown fading field(s) {unknown}; expected "
                f"{list(_FADING_FIELDS)}"
            )
        spec = FadingSpec(**{key: fading[key] for key in _FADING_FIELDS if key in fading})
    else:
        raise SpecificationError(
            "fading must be None, a model name, a mapping with "
            f"{list(_FADING_FIELDS)} keys, or a FadingSpec; got "
            f"{type(fading).__name__}"
        )
    return None if spec.is_trivial else spec


def shadowing_gains(seed: Any, sigma_db: float, n_branches: int) -> np.ndarray:
    """Per-branch log-normal shadowing gains, deterministic in the entry seed.

    The gains ``10 ** (sigma_dB * x_j / 20)`` (``x_j`` standard normal) are
    drawn from a side stream derived from the *integer* entry seed with a
    dedicated spawn tag — never from the entry's white-sample stream — so
    they are constant across streamed blocks, identical across runs, and
    leave the underlying Rayleigh draw untouched.
    """
    if isinstance(seed, bool) or not isinstance(seed, (int, np.integer)):
        raise SpecificationError(
            "fading.shadowing_sigma_db requires an integer per-entry seed so "
            f"the shadowing gains are reproducible; got seed={seed!r}"
        )
    sequence = np.random.SeedSequence(
        entropy=int(seed) % (1 << 64), spawn_key=(_SHADOWING_STREAM_TAG,)
    )
    rng = np.random.default_rng(sequence)
    return 10.0 ** (float(sigma_db) * rng.standard_normal(int(n_branches)) / 20.0)


class FadingStacks:
    """Per-group fading operands, stacked once per execution state.

    Built by :func:`build_fading_stacks` from a compiled group's entries
    (compile groups are uniform in :attr:`FadingSpec.family`, so one stack
    bundle serves the whole ``(B, N, n)`` batch) and owned by the
    executor's ``_ExecutionState`` — the fused kernel only ever reads them.
    """

    __slots__ = (
        "model",
        "needs_scratch",
        "rician_scale",
        "rician_los",
        "branch_powers",
        "shape_column",
        "weibull_scale",
        "shadow_gains",
    )

    def __init__(self) -> None:
        self.model = "rayleigh"
        self.needs_scratch = False
        self.rician_scale: Optional[np.ndarray] = None
        self.rician_los: Optional[np.ndarray] = None
        self.branch_powers: Optional[np.ndarray] = None
        self.shape_column: Optional[np.ndarray] = None
        self.weibull_scale: Optional[np.ndarray] = None
        self.shadow_gains: Optional[np.ndarray] = None


def build_fading_stacks(entries: Sequence[Any]) -> Optional[FadingStacks]:  # reprolint: workspace-constructor
    """Stack one compiled group's fading operands (or ``None`` for Rayleigh).

    ``entries`` are the group's plan entries; grouping guarantees a uniform
    :attr:`FadingSpec.family`, so per-entry shape parameters and branch
    powers stack into ``(B, 1, 1)`` / ``(B, N, 1)`` broadcast columns the
    transform reuses for every block.  Pure: the only randomness is the
    deterministic seed-derived shadowing side stream.
    """
    first = entries[0].fading
    if first is None:
        return None
    stacks = FadingStacks()
    model = first.model
    stacks.model = model
    stacks.needs_scratch = model in ("nakagami", "weibull")
    powers = np.asarray(
        [np.asarray(entry.spec.gaussian_variances, dtype=float) for entry in entries]
    )[:, :, np.newaxis]
    if model != "rayleigh":
        shapes = np.asarray(
            [entry.fading.shape for entry in entries], dtype=float
        )[:, np.newaxis, np.newaxis]
    if model == "rician":
        stacks.rician_scale = np.sqrt(shapes + 1.0)
        stacks.rician_los = np.sqrt(shapes * powers / (shapes + 1.0))
    elif model == "nakagami":
        _scipy_special()  # fail at state construction, never mid-kernel
        stacks.shape_column = shapes
        stacks.branch_powers = powers
    elif model == "weibull":
        stacks.shape_column = 1.0 / shapes
        stacks.branch_powers = powers
        gammas = np.asarray(
            [math.gamma(1.0 + 2.0 / entry.fading.shape) for entry in entries],
            dtype=float,
        )[:, np.newaxis, np.newaxis]
        stacks.weibull_scale = np.sqrt(powers / gammas)
    if first.has_shadowing:
        stacks.shadow_gains = np.asarray(
            [
                shadowing_gains(
                    entry.seed, entry.fading.shadowing_sigma_db, entry.n_branches
                )
                for entry in entries
            ]
        )[:, :, np.newaxis]
    return stacks


def apply_fading_block(  # reprolint: hot-path
    colored: np.ndarray,
    stacks: FadingStacks,
    envelope_scratch: Optional[np.ndarray] = None,
    target_scratch: Optional[np.ndarray] = None,
    positive_scratch: Optional[np.ndarray] = None,
) -> None:
    """Apply one group's fading transform to a colored block, in place.

    ``colored`` is the ``(B, N, n)`` post-normalization complex record the
    fused kernel just produced.  Every operation is a ufunc writing into
    ``colored`` or the state-owned scratch buffers, so the hot path stays
    allocation-free; the envelope transforms preserve each sample's phase
    by scaling the complex sample to its target envelope (a zero sample
    maps to zero).  The scalar reference this must match (exactly, or at
    the model's declared rtol) is
    :func:`repro.models.reference.reference_fading_samples`.
    """
    model = stacks.model
    if model == "rician":
        colored /= stacks.rician_scale
        colored += stacks.rician_los
    elif model == "nakagami":
        special = _scipy_special()
        r = envelope_scratch
        t = target_scratch
        np.abs(colored, out=r)
        # u = -expm1(-r^2 / Omega): the Rayleigh envelope CDF at r.
        np.multiply(r, r, out=t)
        np.divide(t, stacks.branch_powers, out=t)
        np.negative(t, out=t)
        np.expm1(t, out=t)
        np.negative(t, out=t)
        # Target envelope: sqrt(Omega * gammaincinv(m, u) / m).
        special.gammaincinv(stacks.shape_column, t, out=t)
        np.multiply(t, stacks.branch_powers, out=t)
        np.divide(t, stacks.shape_column, out=t)
        np.sqrt(t, out=t)
        # Phase-preserving rescale; where r == 0 the target is 0 already.
        np.greater(r, 0.0, out=positive_scratch)
        np.divide(t, r, out=t, where=positive_scratch)
        colored *= t
    elif model == "weibull":
        r = envelope_scratch
        t = target_scratch
        np.abs(colored, out=r)
        # Target envelope: lambda * (r^2 / Omega)^(1/k).
        np.multiply(r, r, out=t)
        np.divide(t, stacks.branch_powers, out=t)
        np.power(t, stacks.shape_column, out=t)
        np.multiply(t, stacks.weibull_scale, out=t)
        np.greater(r, 0.0, out=positive_scratch)
        np.divide(t, r, out=t, where=positive_scratch)
        colored *= t
    if stacks.shadow_gains is not None:
        colored *= stacks.shadow_gains
