"""Fading-model zoo: pluggable post-coloring channel models.

The registry and spec types live in :mod:`repro.models.fading`; the looped
scalar reference oracles in :mod:`repro.models.reference`; the named
workload suites and the declarative JSON scenario schema in
:mod:`repro.models.workloads` (imported lazily by the CLI — it depends on
the engine, which in turn imports this package).
"""

from .fading import (
    FadingLike,
    FadingModel,
    FadingSpec,
    FadingStacks,
    apply_fading_block,
    available_fading_models,
    build_fading_stacks,
    coerce_fading,
    get_fading_model,
    register_fading_model,
    shadowing_gains,
)
from .reference import reference_fading_samples

__all__ = [
    "FadingLike",
    "FadingModel",
    "FadingSpec",
    "FadingStacks",
    "apply_fading_block",
    "available_fading_models",
    "build_fading_stacks",
    "coerce_fading",
    "get_fading_model",
    "register_fading_model",
    "shadowing_gains",
    "reference_fading_samples",
]
