"""Looped scalar references for the fading-model invariants (test oracles).

Each branch of :func:`reference_fading_samples` mirrors the vectorized
:func:`repro.models.fading.apply_fading_block` one branch and one sample at
a time, with the *same operation order*, so exact models (``rician``,
shadowing composition) compare byte-identically and tolerance models
(``nakagami``, ``weibull``) compare at their declared ``rtol``.  This
module is never imported by the engine hot path — it exists for the
property suites and the CLI batch acceptance check.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from .fading import FadingSpec, shadowing_gains

__all__ = ["reference_fading_samples"]


def reference_fading_samples(
    samples: np.ndarray,
    gaussian_powers: np.ndarray,
    fading: Optional[FadingSpec],
    *,
    seed: Any = None,
) -> np.ndarray:
    """Apply ``fading`` to looped Rayleigh complex samples, scalar-at-a-time.

    Parameters
    ----------
    samples:
        ``(N, n_samples)`` complex output of a looped
        :class:`repro.core.generator.RayleighFadingGenerator` (or
        ``RealTimeRayleighGenerator``) for one entry.
    gaussian_powers:
        ``(N,)`` total branch powers ``Omega_j`` (the covariance diagonal).
    fading:
        The entry's :class:`~repro.models.fading.FadingSpec`, or ``None``
        for the identity.
    seed:
        The entry's seed — required (as an integer) when the spec composes
        shadowing, matching the engine's side-stream derivation.
    """
    samples = np.asarray(samples, dtype=complex)
    powers = np.asarray(gaussian_powers, dtype=float)
    out = np.array(samples)
    if fading is None:
        return out
    n_branches, n_samples = out.shape
    if fading.model == "rician":
        k = fading.shape
        scale = np.sqrt(k + 1.0)
        for j in range(n_branches):
            amplitude = np.sqrt(k * powers[j] / (k + 1.0))
            for sample in range(n_samples):
                out[j, sample] = samples[j, sample] / scale + amplitude
    elif fading.model == "nakagami":
        from scipy import special

        m = fading.shape
        for j in range(n_branches):
            omega = powers[j]
            for sample in range(n_samples):
                z = samples[j, sample]
                r = np.abs(z)
                t = r * r
                t = t / omega
                t = -t
                t = np.expm1(t)
                t = -t
                t = special.gammaincinv(m, t)
                t = t * omega
                t = t / m
                t = np.sqrt(t)
                out[j, sample] = z * (t / r) if r > 0.0 else 0.0
    elif fading.model == "weibull":
        import math

        k = fading.shape
        inv_k = 1.0 / k
        for j in range(n_branches):
            omega = powers[j]
            lam = np.sqrt(omega / math.gamma(1.0 + 2.0 / k))
            for sample in range(n_samples):
                z = samples[j, sample]
                r = np.abs(z)
                t = r * r
                t = t / omega
                t = np.power(t, inv_k)
                t = t * lam
                out[j, sample] = z * (t / r) if r > 0.0 else 0.0
    if fading.has_shadowing:
        gains = shadowing_gains(seed, fading.shadowing_sigma_db, n_branches)
        for j in range(n_branches):
            for sample in range(n_samples):
                out[j, sample] = out[j, sample] * gains[j]
    return out
