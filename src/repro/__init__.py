"""repro — correlated Rayleigh fading envelope generation.

A production-oriented Python implementation of the generalized algorithm of
Tran, Wysocki, Seberry & Mertins, *"A Generalized Algorithm for the
Generation of Correlated Rayleigh Fading Envelopes in Radio Channels"*
(IPDPS 2005), together with the physical correlation models, the
Young–Beaulieu IDFT Doppler substrate, the conventional baseline methods it
is compared against, and the experiments reproducing the paper's evaluation.

Quick start
-----------
>>> import numpy as np
>>> from repro import Simulator
>>> K = np.array([[1.0, 0.5 + 0.2j], [0.5 - 0.2j, 1.0]])
>>> sim = Simulator()   # or Simulator(backend="scipy", max_workers=4, cache=...)
>>> envelopes = sim.envelopes(K, 100_000, seed=1).envelopes

Package map
-----------
``repro.api``
    The unified session front door: :class:`Simulator` (one-call
    generation, batched runs, streaming, async submission, pluggable
    linalg backends).
``repro.core``
    The paper's algorithm: covariance assembly, forced PSD, eigen coloring,
    snapshot and real-time generators.
``repro.channels``
    Spectral (Jakes) and spatial (Salz–Winters) correlation models, Doppler
    filters, the IDFT Rayleigh generator, scenario builders.
``repro.engine``
    Batched plan → compile → execute pipeline with stacked-covariance
    coloring and decomposition caching; the single-spec path is its
    ``B = 1`` case.
``repro.baselines``
    Conventional methods [1]–[6] reviewed in the paper's introduction.
``repro.linalg`` / ``repro.signal`` / ``repro.random``
    Numerical substrates.
``repro.validation``
    Statistical acceptance checks (covariance match, Rayleigh fit).
``repro.parallel``
    Chunked and multi-process ensemble generation.
``repro.experiments``
    One module per paper figure/table plus ablations; also exposed through
    ``python -m repro``.
"""

from ._version import __version__
from .config import DEFAULTS, NumericDefaults
from .exceptions import (
    ReproError,
    SpecificationError,
    CovarianceError,
    NotPositiveSemiDefiniteError,
    CholeskyError,
    ColoringError,
    DopplerError,
    GenerationError,
    ValidationError,
)
from .types import EnvelopeBlock, GaussianBlock
from .core import (
    CovarianceSpec,
    RayleighFadingGenerator,
    RealTimeRayleighGenerator,
    RicianFadingGenerator,
    build_covariance_matrix,
    correlation_coefficient_matrix,
    envelope_power_to_gaussian_power,
    gaussian_power_to_envelope_power,
    envelope_correlation_from_gaussian,
    gaussian_correlation_from_envelope,
    gaussian_correlation_matrix_from_envelope,
    force_positive_semidefinite,
    compute_coloring,
    generate_correlated_envelopes,
    generate_from_scenario,
    covariance_match_report,
    envelope_power_report,
)
from .channels import (
    OFDMScenario,
    MIMOArrayScenario,
    CustomScenario,
    DopplerSettings,
    ScenarioSweep,
    SpectralCorrelationModel,
    SpatialCorrelationModel,
    IDFTRayleighGenerator,
    SumOfSinusoidsGenerator,
)
from .engine import (
    BatchResult,
    CacheStats,
    DecompositionCache,
    DopplerFilterCache,
    DopplerSpec,
    FadingSpec,
    LinalgBackend,
    PlanEntry,
    SimulationEngine,
    SimulationPlan,
    available_backends,
    default_engine,
    get_backend,
    register_backend,
)
from .api import Simulator, default_simulator

__all__ = [
    "__version__",
    "DEFAULTS",
    "NumericDefaults",
    "ReproError",
    "SpecificationError",
    "CovarianceError",
    "NotPositiveSemiDefiniteError",
    "CholeskyError",
    "ColoringError",
    "DopplerError",
    "GenerationError",
    "ValidationError",
    "EnvelopeBlock",
    "GaussianBlock",
    "CovarianceSpec",
    "RayleighFadingGenerator",
    "RealTimeRayleighGenerator",
    "RicianFadingGenerator",
    "build_covariance_matrix",
    "correlation_coefficient_matrix",
    "envelope_power_to_gaussian_power",
    "gaussian_power_to_envelope_power",
    "envelope_correlation_from_gaussian",
    "gaussian_correlation_from_envelope",
    "gaussian_correlation_matrix_from_envelope",
    "force_positive_semidefinite",
    "compute_coloring",
    "generate_correlated_envelopes",
    "generate_from_scenario",
    "covariance_match_report",
    "envelope_power_report",
    "OFDMScenario",
    "MIMOArrayScenario",
    "CustomScenario",
    "DopplerSettings",
    "ScenarioSweep",
    "SpectralCorrelationModel",
    "SpatialCorrelationModel",
    "IDFTRayleighGenerator",
    "SumOfSinusoidsGenerator",
    "BatchResult",
    "CacheStats",
    "DecompositionCache",
    "DopplerFilterCache",
    "LinalgBackend",
    "PlanEntry",
    "SimulationEngine",
    "SimulationPlan",
    "DopplerSpec",
    "FadingSpec",
    "available_backends",
    "default_engine",
    "get_backend",
    "register_backend",
    "Simulator",
    "default_simulator",
]
