"""Plan partitioning and result reassembly for sharded sweeps.

A *shard* is one contiguous slice of a :class:`~repro.engine.SimulationPlan`
executed by an independent worker process against a shared artifact
``cache_dir`` (see :mod:`repro.shard.runner`).  This module owns the three
pure pieces of that story:

* :func:`partition_plan` — split a plan into at most ``n_shards``
  contiguous :class:`PlanSlice`\\ s (the same balanced-counts contract as
  :meth:`SimulationPlan.partition`), each remembering where its entries
  live in the original plan;
* :func:`slice_to_payload` / :func:`slice_from_payload` — serialize a
  slice as plain JSON by *reusing the serving layer's wire encoding*
  (:func:`repro.service.protocol.plan_to_payload`), so per-entry seeds
  (``None``, ints, and live numpy Generators), labels, Doppler specs and
  fading specs all round-trip bit-exactly and a decoded slice hashes to
  the same compiled-plan cache key as the in-process original;
* :func:`merge_results` — reassemble per-shard :class:`BatchResult`\\ s
  into one plan-ordered result with summed :class:`CompileReport`
  counters, restamping whole-plan ``plan_index`` metadata.

Because slices are contiguous and the compiled-plan cache key folds every
entry's decomposition key, Doppler tuple and ``fading_token`` (but not
seeds or labels), two slices of the same plan get *distinct* plan-tier
entries and never collide with an unrelated plan — key purity is
regression-tested by ``tests/unit/test_shard.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from ..engine import CompileReport, SimulationPlan
from ..engine.result import BatchResult
from ..exceptions import SpecificationError
from ..service.protocol import PROTOCOL_VERSION, plan_from_payload, plan_to_payload
from ..types import GaussianBlock

__all__ = [
    "PlanSlice",
    "partition_plan",
    "slice_to_payload",
    "slice_from_payload",
    "merge_compile_reports",
    "merge_results",
]


@dataclass(frozen=True)
class PlanSlice:
    """One contiguous shard of a plan, addressable back into the original.

    Attributes
    ----------
    index:
        Shard number in ``[0, n_shards)``.
    n_shards:
        How many slices the plan was partitioned into (after dropping
        empties; see :func:`partition_plan`).
    start:
        Index of this slice's first entry in the *original* plan, so a
        merged result can restore whole-plan ``plan_index`` metadata.
    plan:
        The sub-plan holding this slice's entries, order preserved.
    """

    index: int
    n_shards: int
    start: int
    plan: SimulationPlan

    @property
    def n_entries(self) -> int:
        """Number of plan entries in this slice."""
        return len(self.plan)


def partition_plan(plan: SimulationPlan, n_shards: int) -> List[PlanSlice]:
    """Split ``plan`` into at most ``n_shards`` contiguous slices.

    Entry order is preserved, slice sizes differ by at most one, and empty
    slices are dropped — identical to :meth:`SimulationPlan.partition`,
    which this wraps — so partitioning a 5-entry plan 8 ways yields 5
    one-entry slices, never empty workers.
    """
    if n_shards < 1:
        raise SpecificationError(f"n_shards must be >= 1, got {n_shards}")
    if len(plan) == 0:
        raise SpecificationError("cannot partition an empty plan")
    subplans = plan.partition(n_shards)
    slices: List[PlanSlice] = []
    start = 0
    for index, subplan in enumerate(subplans):
        slices.append(
            PlanSlice(index=index, n_shards=len(subplans), start=start, plan=subplan)
        )
        start += len(subplan)
    return slices


def slice_to_payload(plan_slice: PlanSlice, n_samples: int) -> Dict[str, Any]:
    """Encode one slice (plus the run's sample count) as a JSON-able dict.

    The entry list is exactly the serving layer's plan payload, so every
    guarantee of that encoding — bit-exact doubles, lossless seeds,
    fading/Doppler round-trip — carries over to shard workers.
    """
    return {
        "version": PROTOCOL_VERSION,
        "slice": {
            "index": int(plan_slice.index),
            "n_shards": int(plan_slice.n_shards),
            "start": int(plan_slice.start),
        },
        "plan": plan_to_payload(plan_slice.plan, n_samples),
    }


def slice_from_payload(payload: Dict[str, Any]) -> Tuple[PlanSlice, int]:
    """Decode a :func:`slice_to_payload` dict back to ``(slice, n_samples)``."""
    if not isinstance(payload, dict):
        raise SpecificationError("slice payload must be a JSON object")
    version = payload.get("version")
    if version != PROTOCOL_VERSION:
        raise SpecificationError(
            f"unsupported slice payload version {version!r} "
            f"(this runner speaks {PROTOCOL_VERSION})"
        )
    meta = payload.get("slice")
    if not isinstance(meta, dict):
        raise SpecificationError("slice payload needs a 'slice' object")
    try:
        index = int(meta["index"])
        n_shards = int(meta["n_shards"])
        start = int(meta["start"])
    except (KeyError, TypeError, ValueError) as exc:
        raise SpecificationError(f"malformed slice metadata: {exc}") from exc
    plan, n_samples = plan_from_payload(payload.get("plan"))
    return PlanSlice(index=index, n_shards=n_shards, start=start, plan=plan), n_samples


def merge_compile_reports(reports: Sequence[CompileReport]) -> CompileReport:
    """Sum per-shard compile counters into one whole-plan report.

    Cache and dedup counters add (every shard compiled independently);
    ``compile_seconds`` is the maximum because the compiles ran
    concurrently — the same convention as the process-pool merge in
    :mod:`repro.api`.
    """
    if not reports:
        raise SpecificationError("cannot merge an empty report sequence")
    return CompileReport(
        n_entries=sum(r.n_entries for r in reports),
        n_groups=sum(r.n_groups for r in reports),
        n_unique_matrices=sum(r.n_unique_matrices for r in reports),
        cache_hits=sum(r.cache_hits for r in reports),
        cache_misses=sum(r.cache_misses for r in reports),
        compile_seconds=max(r.compile_seconds for r in reports),
        doppler_filters_built=sum(r.doppler_filters_built for r in reports),
        doppler_entries=sum(r.doppler_entries for r in reports),
        doppler_filter_cache_hits=sum(r.doppler_filter_cache_hits for r in reports),
        plan_cache_hits=sum(r.plan_cache_hits for r in reports),
        plan_memory_hits=sum(r.plan_memory_hits for r in reports),
        plan_inflight_hits=sum(r.plan_inflight_hits for r in reports),
    )


def merge_results(
    slices: Sequence[PlanSlice],
    partials: Sequence[BatchResult],
    *,
    n_samples: int,
    wall_seconds: float = 0.0,
    backend: str = "numpy",
) -> BatchResult:
    """Reassemble per-shard results into one plan-ordered :class:`BatchResult`.

    ``partials[k]`` must be the result of ``slices[k]``; slices may arrive
    in any order (they are sorted by ``start``) but must tile the original
    plan contiguously — a gap or overlap means a shard went missing and is
    an error, not a silent truncation.  Block metadata gets whole-plan
    ``plan_index`` values restored from each slice's ``start``.
    """
    if len(slices) != len(partials):
        raise SpecificationError(
            f"got {len(partials)} results for {len(slices)} slices"
        )
    if not slices:
        raise SpecificationError("cannot merge zero slices")
    ordered = sorted(zip(slices, partials), key=lambda pair: pair[0].start)
    cursor = 0
    blocks: List[GaussianBlock] = []
    for plan_slice, partial in ordered:
        if plan_slice.start != cursor:
            raise SpecificationError(
                f"slice {plan_slice.index} starts at entry {plan_slice.start}, "
                f"expected {cursor} (missing or overlapping shard)"
            )
        if len(partial.blocks) != plan_slice.n_entries:
            raise SpecificationError(
                f"slice {plan_slice.index} produced {len(partial.blocks)} blocks "
                f"for {plan_slice.n_entries} entries"
            )
        for offset, block in enumerate(partial.blocks):
            block.metadata["plan_index"] = plan_slice.start + offset
            blocks.append(block)
        cursor += plan_slice.n_entries
    report = merge_compile_reports([partial.compile_report for _, partial in ordered])
    return BatchResult(
        blocks=tuple(blocks),
        n_samples=int(n_samples),
        compile_report=report,
        execute_seconds=float(wall_seconds),
        backend=backend,
    )
