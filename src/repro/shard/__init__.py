"""Sharded sweep execution over the shared artifact cache (ROADMAP item 2).

``repro.shard`` partitions a :class:`~repro.engine.SimulationPlan` into
serializable :class:`PlanSlice`\\ s, executes them as independent worker
subprocesses that share one ``cache_dir`` (the four tiers of the unified
artifact store are content-addressed and digest-verified, so the
filesystem *is* the transport), and merges the per-shard results back
into one plan-ordered :class:`~repro.engine.BatchResult`.

Standing invariant 7 (see docs/ARCHITECTURE.md): a sharded run is
bit-identical to ``run(plan)`` in a single process — every sample byte,
regardless of shard count, worker interleaving, cache state, or
crash-and-retry history.  Enforced cross-process by
``tests/property/test_property_shard.py``.

Entry points: :func:`partition_plan` / :func:`merge_results` for the pure
pieces, :func:`run_sharded` for the subprocess orchestration, and the
``repro-experiments shard`` CLI on top.
"""

from .runner import ShardRunResult, run_sharded
from .slicing import (
    PlanSlice,
    merge_compile_reports,
    merge_results,
    partition_plan,
    slice_from_payload,
    slice_to_payload,
)

__all__ = [
    "PlanSlice",
    "ShardRunResult",
    "merge_compile_reports",
    "merge_results",
    "partition_plan",
    "run_sharded",
    "slice_from_payload",
    "slice_to_payload",
]
