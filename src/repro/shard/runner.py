"""The subprocess shard runner: K workers, one shared artifact cache.

:func:`run_sharded` partitions a plan (:func:`~repro.shard.partition_plan`),
writes each slice's wire payload into a *work directory*, and executes the
slices as real subprocesses (``python -m repro.shard.worker``) that all
attach the same ``cache_dir`` — the subprocess form of ROADMAP item 2's
multi-host story, where the transport is the filesystem.

Scheduling: by default the first pending slice runs to completion *alone*
(``warm_first=True``) before the rest launch concurrently.  The pathfinder
worker pays the decompositions, Doppler filters, and its plan artifact
cold; every later worker warm-hits the shared tiers for anything the first
slice covered, so the sweep compiles each unique artifact once instead of
once per worker racing at the same instant.

Crash tolerance: a worker that dies (non-zero exit, SIGKILL, missing or
unparseable output) marks its slice *failed by index*; the survivors are
still collected, and the merged result is only produced when every slice
completed.  Re-running with ``retry_failed=True`` against the same
``work_dir`` reloads completed slices from their published outputs and
re-executes only the failed ones — against the now-warm cache, so the
retry is cheap and, by standing invariant 7, bit-identical.

Worker environments drop ``REPRO_CACHE_DIR`` (only the explicit
``cache_dir`` may act) and prepend this package's source root to
``PYTHONPATH`` so ``python -m repro.shard.worker`` resolves even when the
parent runs from a source checkout.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..engine import CompileReport, SimulationPlan
from ..engine.result import BatchResult
from ..exceptions import SpecificationError
from ..types import GaussianBlock
from .slicing import PlanSlice, merge_results, partition_plan, slice_to_payload

__all__ = ["ShardRunResult", "run_sharded"]

#: ``progress(slice_index, line)`` receives each worker stdout line.
ProgressFn = Callable[[int, str], None]


@dataclass
class ShardRunResult:
    """Everything one sharded run produced.

    Attributes
    ----------
    slices:
        The plan slices, in shard order.
    results:
        Per-slice :class:`BatchResult` (``None`` for a failed slice).
    metas:
        Per-slice worker metadata dicts (``None`` for a failed slice):
        slice addressing, compile report, per-tier cache counters.
    failed:
        Indices of slices whose worker did not publish a valid output.
    merged:
        The plan-ordered merged result — only when no slice failed.
    wall_seconds:
        Caller-observed wall clock of the whole run.
    work_dir:
        Directory holding slice payloads and worker outputs; pass it back
        with ``retry_failed=True`` to resume a partially failed run.
    """

    slices: Tuple[PlanSlice, ...]
    results: Tuple[Optional[BatchResult], ...]
    metas: Tuple[Optional[Dict[str, Any]], ...]
    failed: Tuple[int, ...]
    merged: Optional[BatchResult]
    wall_seconds: float
    work_dir: Path
    _tier_totals: Optional[Dict[str, int]] = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        """Whether every slice completed and merged."""
        return not self.failed and self.merged is not None

    def tier_totals(self) -> Dict[str, int]:
        """Per-tier cache counters summed over the completed shards."""
        if self._tier_totals is None:
            totals: Dict[str, int] = {}
            for meta in self.metas:
                if meta is None:
                    continue
                for tier, counters in meta.get("tiers", {}).items():
                    for name, value in counters.items():
                        key = f"{tier}_{name}"
                        totals[key] = totals.get(key, 0) + int(value)
                report = meta.get("compile_report", {})
                for name in ("cache_hits", "cache_misses", "plan_cache_hits"):
                    totals[name] = totals.get(name, 0) + int(report.get(name, 0))
            self._tier_totals = totals
        return dict(self._tier_totals)


def _worker_env(extra_env: Optional[Dict[str, str]]) -> Dict[str, str]:
    env = dict(os.environ)
    if extra_env:
        env.update(extra_env)
    # Only the explicit cache_dir may act inside workers; an inherited
    # REPRO_CACHE_DIR would silently re-route the shared tiers.
    env.pop("REPRO_CACHE_DIR", None)
    package_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        package_root + os.pathsep + existing if existing else package_root
    )
    return env


def _load_output(out_prefix: Path, plan_slice: PlanSlice) -> Optional[
    Tuple[BatchResult, Dict[str, Any]]
]:
    """Read one worker's published output; ``None`` if absent or unusable."""
    json_path = out_prefix.with_name(out_prefix.name + ".json")
    npz_path = out_prefix.with_name(out_prefix.name + ".npz")
    try:
        meta = json.loads(json_path.read_text(encoding="utf8"))
    except (OSError, ValueError):
        return None
    if (
        not isinstance(meta, dict)
        or meta.get("index") != plan_slice.index
        or meta.get("start") != plan_slice.start
        or meta.get("n_entries") != plan_slice.n_entries
    ):
        return None
    try:
        with np.load(npz_path, allow_pickle=False) as archive:
            blocks: List[GaussianBlock] = []
            labels = meta.get("labels") or [None] * plan_slice.n_entries
            for offset in range(plan_slice.n_entries):
                blocks.append(
                    GaussianBlock(
                        samples=archive[f"samples_{offset}"],
                        variances=archive[f"variances_{offset}"],
                        metadata={
                            "plan_index": plan_slice.start + offset,
                            "label": labels[offset],
                        },
                    )
                )
        report = CompileReport(**meta["compile_report"])
        result = BatchResult(
            blocks=tuple(blocks),
            n_samples=int(meta["n_samples"]),
            compile_report=report,
            execute_seconds=float(meta.get("execute_seconds", 0.0)),
            backend=str(meta.get("backend", "numpy")),
        )
    except (OSError, KeyError, TypeError, ValueError):
        # A half-written or stale output reads as a failed slice, never an
        # error — the retry path recomputes it.
        return None
    return result, meta


def _spawn(
    slice_path: Path,
    out_prefix: Path,
    *,
    cache_dir: Optional[Union[str, Path]],
    backend: Optional[str],
    env: Dict[str, str],
) -> subprocess.Popen:
    argv = [
        sys.executable,
        "-m",
        "repro.shard.worker",
        str(slice_path),
        "--out",
        str(out_prefix),
    ]
    if cache_dir is not None:
        argv += ["--cache-dir", str(cache_dir)]
    if backend is not None:
        argv += ["--backend", str(backend)]
    return subprocess.Popen(
        argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )


def _drain(
    process: subprocess.Popen,
    index: int,
    progress: Optional[ProgressFn],
    timeout: float,
) -> int:
    """Stream a worker's stdout to ``progress`` and return its exit code."""
    deadline = time.monotonic() + timeout
    assert process.stdout is not None
    for line in process.stdout:
        if progress is not None:
            progress(index, line.rstrip("\n"))
        if time.monotonic() > deadline:
            break
    try:
        return process.wait(timeout=max(0.0, deadline - time.monotonic()))
    except subprocess.TimeoutExpired:
        process.kill()
        process.wait()
        return -1


def run_sharded(
    plan: SimulationPlan,
    n_samples: int,
    *,
    n_shards: int,
    cache_dir: Union[None, str, Path] = None,
    backend: Optional[str] = None,
    work_dir: Union[None, str, Path] = None,
    retry_failed: bool = False,
    warm_first: bool = True,
    progress: Optional[ProgressFn] = None,
    timeout: float = 600.0,
    extra_env: Optional[Dict[str, str]] = None,
) -> ShardRunResult:
    """Execute ``plan`` as ``n_shards`` subprocess workers and merge.

    Parameters beyond the obvious: ``work_dir`` holds slice payloads and
    worker outputs (a fresh temporary directory when ``None``);
    ``retry_failed`` reloads valid outputs already in ``work_dir`` and
    only re-runs slices without one; ``warm_first`` runs the first pending
    slice alone so later workers warm-hit the shared cache tiers;
    ``extra_env`` adds variables to worker environments (the
    fault-injection tests inject the worker kill hook through it).
    """
    if n_samples < 1:
        raise SpecificationError(f"n_samples must be >= 1, got {n_samples}")
    started = time.perf_counter()
    slices = partition_plan(plan, n_shards)
    work = Path(work_dir) if work_dir is not None else Path(
        tempfile.mkdtemp(prefix="repro-shard-")
    )
    work.mkdir(parents=True, exist_ok=True)

    results: List[Optional[BatchResult]] = [None] * len(slices)
    metas: List[Optional[Dict[str, Any]]] = [None] * len(slices)
    pending: List[int] = []
    for plan_slice in slices:
        out_prefix = work / f"shard_{plan_slice.index}"
        if retry_failed:
            loaded = _load_output(out_prefix, plan_slice)
            if loaded is not None:
                results[plan_slice.index], metas[plan_slice.index] = loaded
                if progress is not None:
                    progress(
                        plan_slice.index,
                        f"shard {plan_slice.index}/{len(slices)}: reused "
                        f"published output ({plan_slice.n_entries} entries)",
                    )
                continue
        slice_path = work / f"slice_{plan_slice.index}.json"
        slice_path.write_text(
            json.dumps(slice_to_payload(plan_slice, n_samples), sort_keys=True),
            encoding="utf8",
        )
        pending.append(plan_slice.index)

    env = _worker_env(extra_env)

    def _collect(index: int, process: subprocess.Popen) -> None:
        code = _drain(process, index, progress, timeout)
        if code != 0 and progress is not None:
            progress(index, f"shard {index}/{len(slices)}: FAILED (exit {code})")
        if code == 0:
            loaded = _load_output(work / f"shard_{index}", slices[index])
            if loaded is not None:
                results[index], metas[index] = loaded

    def _run_one(index: int) -> None:
        process = _spawn(
            work / f"slice_{index}.json",
            work / f"shard_{index}",
            cache_dir=cache_dir,
            backend=backend,
            env=env,
        )
        _collect(index, process)

    if pending and warm_first:
        # The pathfinder shard compiles the shared artifacts cold; running
        # it alone turns every later worker's compile into warm hits.
        _run_one(pending[0])
        pending = pending[1:]
    if pending:
        procs = [
            (
                index,
                _spawn(
                    work / f"slice_{index}.json",
                    work / f"shard_{index}",
                    cache_dir=cache_dir,
                    backend=backend,
                    env=env,
                ),
            )
            for index in pending
        ]
        threads = [
            threading.Thread(target=_collect, args=(index, process))
            for index, process in procs
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    failed = tuple(
        plan_slice.index for plan_slice in slices if results[plan_slice.index] is None
    )
    merged: Optional[BatchResult] = None
    wall = time.perf_counter() - started
    if not failed:
        merged = merge_results(
            slices,
            [results[plan_slice.index] for plan_slice in slices],
            n_samples=n_samples,
            wall_seconds=wall,
            backend=next(
                (meta["backend"] for meta in metas if meta is not None), "numpy"
            ),
        )
    return ShardRunResult(
        slices=tuple(slices),
        results=tuple(results),
        metas=tuple(metas),
        failed=failed,
        merged=merged,
        wall_seconds=wall,
        work_dir=work,
    )
