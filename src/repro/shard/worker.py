"""The shard worker: one subprocess, one :class:`PlanSlice`, one engine run.

Launched by the runner as ``python -m repro.shard.worker <slice.json> --out
PREFIX [--cache-dir DIR] [--backend NAME]``.  The worker decodes its slice
payload, builds a private :class:`~repro.engine.SimulationEngine` whose
three cache tiers attach to the caller-supplied shared ``cache_dir`` (the
same configuration as the process-pool workers in :mod:`repro.api`), runs
the sub-plan through the ordinary batched ``run`` path, and publishes two
files:

* ``PREFIX.npz`` — every block's samples and variances, exact bytes;
* ``PREFIX.json`` — slice addressing, labels, the :class:`CompileReport`,
  and the per-tier cache counters the runner aggregates into its
  first-worker-compiles / rest-warm-hit report.

Both files are written to temporaries and published with
:func:`os.replace`; the ``.json`` goes last and acts as the commit marker,
so a worker killed mid-write never leaves output the runner could mistake
for a completed slice.  Progress lines go to stdout (one on start, one on
completion) for the runner to stream.

Crash-tolerance hook
--------------------
Setting ``REPRO_SHARD_KILL_SLICE=<index>`` makes the worker whose slice
matches SIGKILL itself *after* executing but *before* publishing — the
deterministic fault-injection point of the sharding suite (the subprocess
analogue of the ``FlakyBackend``/``FlakyStore`` fail-at-exactly-N harness
in ``tests/conftest.py``): the slice's compile artifacts are already in
the shared cache, its output is not, so a ``--retry-failed`` rerun must
recover bit-identically from the warm cache.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import tempfile
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..engine import SimulationEngine
from ..engine.result import BatchResult
from .slicing import PlanSlice, slice_from_payload

__all__ = ["KILL_SLICE_ENV", "run_slice", "main"]

#: Fault-injection hook: the worker whose slice index matches SIGKILLs
#: itself between executing and publishing (see the module docs).
KILL_SLICE_ENV = "REPRO_SHARD_KILL_SLICE"


def run_slice(
    plan_slice: PlanSlice,
    n_samples: int,
    *,
    cache_dir: Optional[str] = None,
    backend: Optional[str] = None,
) -> Tuple[BatchResult, Dict[str, Any]]:
    """Execute one slice and return ``(result, meta)``.

    ``meta`` carries everything the runner needs without unpickling engine
    internals: slice addressing, labels, the compile report, and per-tier
    cache counters (decompositions / Doppler filters / compiled plans).
    """
    if cache_dir is None:
        engine = SimulationEngine(backend=backend)
    else:
        engine = SimulationEngine(backend=backend, cache_dir=cache_dir)
    result = engine.run(plan_slice.plan, n_samples)
    decomposition = engine.cache.stats
    filters = engine.filter_cache.stats
    plans = engine.plan_cache.stats
    meta: Dict[str, Any] = {
        "index": plan_slice.index,
        "n_shards": plan_slice.n_shards,
        "start": plan_slice.start,
        "n_entries": plan_slice.n_entries,
        "n_samples": int(n_samples),
        "backend": result.backend,
        "execute_seconds": float(result.execute_seconds),
        "labels": [entry.label for entry in plan_slice.plan],
        "compile_report": asdict(result.compile_report),
        "tiers": {
            "decompositions": {
                "hits": decomposition.hits,
                "misses": decomposition.misses,
                "disk_hits": decomposition.disk_hits,
                "disk_misses": decomposition.disk_misses,
                "disk_corruptions": decomposition.disk_corruptions,
            },
            "filters": {
                "hits": filters.hits,
                "misses": filters.misses,
                "disk_hits": filters.disk_hits,
                "disk_misses": filters.disk_misses,
                "disk_corruptions": filters.disk_corruptions,
            },
            "plans": {
                "memory_hits": plans.memory_hits,
                "disk_hits": plans.hits,
                "disk_misses": plans.misses,
                "disk_corruptions": plans.corruptions,
            },
        },
    }
    return result, meta


def _publish(path: Path, write_payload) -> None:
    """Write via a same-directory temporary and an atomic rename."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.stem, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            write_payload(handle)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _write_outputs(out_prefix: Path, result: BatchResult, meta: Dict[str, Any]) -> None:
    arrays: Dict[str, np.ndarray] = {}
    for offset, block in enumerate(result.blocks):
        arrays[f"samples_{offset}"] = block.samples
        arrays[f"variances_{offset}"] = np.asarray(block.variances)
    npz_path = out_prefix.with_name(out_prefix.name + ".npz")
    json_path = out_prefix.with_name(out_prefix.name + ".json")
    _publish(npz_path, lambda handle: np.savez(handle, **arrays))
    # The .json is the commit marker: it references the already-published
    # .npz, so the runner accepts the slice only once both are durable.
    _publish(
        json_path,
        lambda handle: handle.write(json.dumps(meta, sort_keys=True).encode("utf8")),
    )


def main(argv: Optional[List[str]] = None) -> int:
    """Worker entry point: decode, run, publish.  Returns an exit code."""
    parser = argparse.ArgumentParser(prog="repro-shard-worker")
    parser.add_argument("slice_path", type=Path, help="slice payload JSON file")
    parser.add_argument(
        "--out", type=Path, required=True, help="output path prefix (.npz/.json)"
    )
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--backend", default=None)
    args = parser.parse_args(argv)

    payload = json.loads(args.slice_path.read_text(encoding="utf8"))
    plan_slice, n_samples = slice_from_payload(payload)
    print(
        f"shard {plan_slice.index}/{plan_slice.n_shards}: start "
        f"entries={plan_slice.n_entries} n_samples={n_samples}",
        flush=True,
    )
    result, meta = run_slice(
        plan_slice, n_samples, cache_dir=args.cache_dir, backend=args.backend
    )
    if os.environ.get(KILL_SLICE_ENV, "") == str(plan_slice.index):
        # Die without cleanup between execute and publish (see module docs).
        os.kill(os.getpid(), getattr(signal, "SIGKILL", signal.SIGTERM))
    _write_outputs(args.out, result, meta)
    report = result.compile_report
    print(
        f"shard {plan_slice.index}/{plan_slice.n_shards}: done "
        f"entries={plan_slice.n_entries} "
        f"decomp_misses={report.cache_misses} "
        f"plan_hits={report.plan_cache_hits} "
        f"execute={result.execute_seconds:.3f}s",
        flush=True,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
