"""Direct Rayleigh sampling helpers.

The core algorithm obtains Rayleigh envelopes as moduli of complex Gaussian
variables; these helpers exist for tests and validation code that need
reference Rayleigh samples with a prescribed envelope power, and for users
who want uncorrelated envelopes without building a covariance matrix.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from ..exceptions import PowerError
from ..types import ComplexArray, FloatArray, SeedLike
from .complex_gaussian import complex_gaussian
from .rng import ensure_rng

__all__ = ["rayleigh_samples", "rayleigh_from_gaussian"]

ShapeLike = Union[int, Tuple[int, ...]]


def rayleigh_from_gaussian(samples: ComplexArray) -> FloatArray:
    """Return the Rayleigh envelopes (moduli) of complex Gaussian samples."""
    return np.abs(np.asarray(samples))


def rayleigh_samples(
    shape: ShapeLike,
    gaussian_variance: float = 1.0,
    rng: SeedLike = None,
) -> FloatArray:
    """Sample i.i.d. Rayleigh variables.

    Parameters
    ----------
    shape:
        Output shape.
    gaussian_variance:
        Variance ``sigma_g^2`` of the underlying complex Gaussian variable.
        The resulting Rayleigh envelope has mean ``sigma_g * sqrt(pi)/2``
        (Eq. 14) and variance ``sigma_g^2 (1 - pi/4)`` (Eq. 15).
    rng:
        Seed or generator.
    """
    if gaussian_variance <= 0 or not np.isfinite(gaussian_variance):
        raise PowerError(
            f"gaussian_variance must be positive and finite, got {gaussian_variance!r}"
        )
    gen = ensure_rng(rng)
    return rayleigh_from_gaussian(complex_gaussian(shape, variance=gaussian_variance, rng=gen))
