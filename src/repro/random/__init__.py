"""Random-number substrate: seeding, complex Gaussian and Rayleigh sampling.

The whole library funnels randomness through :func:`ensure_rng` so that every
generator, experiment and benchmark is reproducible from a single integer
seed, and through :func:`spawn_rngs` so that parallel workers receive
statistically independent streams.
"""

from .rng import ensure_rng, spawn_rngs, SeedSequenceFactory
from .complex_gaussian import (
    complex_gaussian,
    complex_gaussian_pair,
    standard_complex_gaussian,
)
from .rayleigh import rayleigh_samples, rayleigh_from_gaussian

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "SeedSequenceFactory",
    "complex_gaussian",
    "complex_gaussian_pair",
    "standard_complex_gaussian",
    "rayleigh_samples",
    "rayleigh_from_gaussian",
]
