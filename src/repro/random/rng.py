"""Seed handling utilities.

Every public constructor in the library accepts ``rng`` arguments of type
:data:`repro.types.SeedLike` (``None``, ``int`` or ``numpy.random.Generator``)
and normalizes them through :func:`ensure_rng`.  Parallel code uses
:func:`spawn_rngs` to derive independent child generators from a parent seed
in a reproducible way, mirroring numpy's ``SeedSequence.spawn`` mechanism.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..config import DEFAULTS
from ..types import SeedLike

__all__ = ["ensure_rng", "spawn_rngs", "SeedSequenceFactory"]


def ensure_rng(seed: SeedLike = None, *, default_seed: Optional[int] = None) -> np.random.Generator:
    """Normalize ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (use ``default_seed`` or the package default),
        an integer seed, or an existing generator (returned unchanged).
    default_seed:
        Seed to use when ``seed is None``.  When both are ``None`` the
        package-wide :data:`repro.config.DEFAULTS.default_rng_seed` is used so
        that "no seed supplied" still means "reproducible".

    Returns
    -------
    numpy.random.Generator
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULTS.default_rng_seed if default_seed is None else default_seed
    if not isinstance(seed, (int, np.integer)):
        raise TypeError(
            f"seed must be None, an int, or a numpy Generator; got {type(seed).__name__}"
        )
    return np.random.default_rng(int(seed))


def spawn_rngs(seed: SeedLike, n: int) -> List[np.random.Generator]:
    """Derive ``n`` statistically independent generators from one seed.

    Parameters
    ----------
    seed:
        Parent seed (``None``/int/Generator).  When a Generator is passed its
        bit generator's seed sequence is spawned; when an int is passed a
        fresh :class:`numpy.random.SeedSequence` is built from it.
    n:
        Number of child generators; must be positive.
    """
    if n <= 0:
        raise ValueError(f"number of spawned generators must be positive, got {n}")
    if isinstance(seed, np.random.Generator):
        seed_seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
        children = seed_seq.spawn(n)
        return [np.random.default_rng(child) for child in children]
    if seed is None:
        seed = DEFAULTS.default_rng_seed
    seq = np.random.SeedSequence(int(seed))
    return [np.random.default_rng(child) for child in seq.spawn(n)]


class SeedSequenceFactory:
    """Deterministic factory handing out child seeds for named consumers.

    Experiments use a factory so that, e.g., the "doppler-noise" stream and
    the "coloring-input" stream of one experiment never alias even when code
    paths are reordered, and the whole experiment stays reproducible from a
    single integer.

    Parameters
    ----------
    root_seed:
        The experiment-level seed.
    """

    def __init__(self, root_seed: int):
        self._root_seed = int(root_seed)
        self._counter = 0
        self._assigned: dict[str, int] = {}

    @property
    def root_seed(self) -> int:
        """The root seed this factory was created with."""
        return self._root_seed

    def seed_for(self, name: str) -> int:
        """Return a stable derived seed for the consumer ``name``.

        The same ``name`` always maps to the same derived seed for a given
        root seed, independent of call order.
        """
        if name not in self._assigned:
            # Hash the name into the seed space deterministically (no Python
            # hash randomization): fold the UTF-8 bytes into a 63-bit value.
            acc = 1469598103934665603  # FNV offset basis
            for byte in name.encode("utf8"):
                acc ^= byte
                acc *= 1099511628211  # FNV prime
                acc &= (1 << 63) - 1
            self._assigned[name] = (self._root_seed * 2654435761 + acc) & ((1 << 63) - 1)
        return self._assigned[name]

    def rng_for(self, name: str) -> np.random.Generator:
        """Return a generator seeded by :meth:`seed_for`."""
        return np.random.default_rng(self.seed_for(name))

    def next_rng(self) -> np.random.Generator:
        """Return a generator for an anonymous, order-dependent consumer."""
        self._counter += 1
        return self.rng_for(f"__anonymous_{self._counter}")

    def assigned_names(self) -> Sequence[str]:
        """Names that have requested a seed so far (for diagnostics)."""
        return tuple(self._assigned)
