"""Sampling of circularly-symmetric complex Gaussian variables.

Step 6 of the paper's algorithm (Section 4.4) requires "a column vector W of
N independent complex Gaussian random samples with zero means and arbitrary,
equal variances sigma_g^2"; Section 5 step 3 requires i.i.d. *real* Gaussian
sequences ``A[k]`` and ``B[k]`` that are combined into ``A[k] - i B[k]``.
Both constructions live here.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from ..exceptions import PowerError
from ..types import ComplexArray, FloatArray, SeedLike
from .rng import ensure_rng

__all__ = ["complex_gaussian", "complex_gaussian_pair", "standard_complex_gaussian"]

ShapeLike = Union[int, Tuple[int, ...]]


def _validate_variance(variance: float) -> float:
    variance = float(variance)
    if not np.isfinite(variance) or variance <= 0.0:
        raise PowerError(f"variance must be a positive finite number, got {variance!r}")
    return variance


def standard_complex_gaussian(shape: ShapeLike, rng: SeedLike = None) -> ComplexArray:
    """Sample zero-mean, unit-variance circular complex Gaussian variables.

    The total variance ``E|u|^2`` is 1, i.e. each of the real and imaginary
    parts has variance 1/2.
    """
    return complex_gaussian(shape, variance=1.0, rng=rng)


def complex_gaussian(
    shape: ShapeLike,
    variance: float = 1.0,
    rng: SeedLike = None,
    *,
    out: ComplexArray = None,
) -> ComplexArray:
    """Sample zero-mean circular complex Gaussian variables.

    Parameters
    ----------
    shape:
        Output shape.
    variance:
        Total variance ``sigma_g^2 = E|u|^2``; split equally between the real
        and imaginary parts (``sigma_g^2 / 2`` each), which is the circular
        symmetry assumed throughout the paper.
    rng:
        Seed or generator.
    out:
        Optional preallocated complex array of the requested shape to write
        into (the batched engine fills one slice of its batch buffer per
        entry).  The generator stream and the sampled values are identical
        with and without ``out``.

    Returns
    -------
    numpy.ndarray
        Complex array of the requested shape (``out`` when provided).
    """
    variance = _validate_variance(variance)
    gen = ensure_rng(rng)
    scale = np.sqrt(variance / 2.0)
    shape_tuple = (shape,) if isinstance(shape, (int, np.integer)) else tuple(shape)
    # One draw of (2, *shape) consumes the generator stream exactly like two
    # sequential draws of *shape* (the ziggurat samples value by value), so
    # this is bit-compatible with the historical two-call implementation
    # while halving the per-call overhead.
    values = gen.normal(0.0, scale, size=(2,) + shape_tuple)
    real, imag = values[0], values[1]
    if out is not None:
        if out.shape != real.shape:
            raise ValueError(f"out must have shape {real.shape}, got {out.shape}")
        out.real = real
        out.imag = imag
        return out
    return real + 1j * imag


def complex_gaussian_pair(
    shape: ShapeLike,
    variance_per_dimension: float = 0.5,
    rng: SeedLike = None,
) -> Tuple[FloatArray, FloatArray]:
    """Sample the two independent real Gaussian sequences of Section 5 step 3.

    Returns the pair ``(A, B)`` of i.i.d. real, zero-mean Gaussian arrays with
    the given per-dimension variance ``sigma_orig^2``; the caller combines
    them as ``A - iB`` before Doppler filtering.

    Parameters
    ----------
    shape:
        Output shape of each sequence.
    variance_per_dimension:
        ``sigma_orig^2`` in the paper's notation (default 1/2, the value used
        in the paper's simulations).
    rng:
        Seed or generator.
    """
    variance_per_dimension = _validate_variance(variance_per_dimension)
    gen = ensure_rng(rng)
    scale = np.sqrt(variance_per_dimension)
    a = gen.normal(0.0, scale, size=shape)
    b = gen.normal(0.0, scale, size=shape)
    return a, b
