"""The unified session API: one :class:`Simulator` in front of the engine.

Before this module the package had several parallel front doors — the
one-call helpers in :mod:`repro.core.pipeline`, the plan/compile/execute
engine in :mod:`repro.engine`, :class:`repro.channels.scenario.ScenarioSweep`
for sweeps, and :func:`repro.parallel.ensemble.run_plan_parallel` for
process-pool runs.  A :class:`Simulator` is the single public entry point
that fronts all of them:

>>> import numpy as np
>>> from repro.api import Simulator
>>> sim = Simulator(backend="numpy")
>>> K = np.array([[1.0, 0.4], [0.4, 1.0]], dtype=complex)
>>> envelopes = sim.envelopes(K, 1000, seed=7)          # one-call generation
>>> from repro.engine import SimulationPlan
>>> plan = SimulationPlan.from_specs([K, 2 * K], seed=3)
>>> result = sim.run(plan, 500)                          # batched execution
>>> blocks = list(sim.stream(plan, block_size=128, n_blocks=4))  # bounded memory

Sessions own three resources:

* a **linalg backend** (``backend=``) — the pluggable decompose-stack /
  matmul implementation from :mod:`repro.engine.backends`;
* a **decomposition cache** (``cache=``) — shared across every run the
  session executes (``None`` uses the process-wide cache);
* a **worker budget** (``max_workers=``) — ``run`` partitions plans across
  a process pool when the budget exceeds one, and ``submit`` sizes its
  thread pool from it for async multiplexing.

``await sim.submit(plan, n)`` makes the session awaitable-friendly: many
concurrent studies can be multiplexed over one session with
``asyncio.gather``, each submit executing in the session's thread pool while
numpy releases the GIL inside BLAS.

The classic helpers remain as thin delegating wrappers
(:func:`repro.core.pipeline.generate_correlated_envelopes` /
``generate_from_scenario``), and :func:`default_simulator` is the
process-wide session they route through — so the old API is literally the
new one with the default session.
"""

from __future__ import annotations

import asyncio
import functools
import threading
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Union

import numpy as np

from .config import DEFAULTS, NumericDefaults, cache_dir_from_env
from .engine import (
    BackendSpec,
    BatchResult,
    CompiledPlan,
    CompiledPlanCache,
    DecompositionCache,
    DopplerFilterCache,
    LinalgBackend,
    SimulationEngine,
    SimulationPlan,
)
from .exceptions import ParallelExecutionError, SpecificationError
from .types import EnvelopeBlock, GaussianBlock, SeedLike

__all__ = ["Simulator", "default_simulator"]

#: What :meth:`Simulator.run` accepts as work.
RunnableWork = Union[SimulationPlan, CompiledPlan, "ScenarioSweepLike"]


def _run_subplan(
    subplan: SimulationPlan,
    n_samples: int,
    backend: LinalgBackend,
    cache_dir: Optional[str] = None,
    plan_cache_dir: Optional[str] = None,
) -> BatchResult:
    """Worker: compile and execute one sub-plan with a private engine.

    Module-level so it is picklable by :class:`ProcessPoolExecutor`.  The
    backend instance itself travels to the worker (the built-in backends
    reduce to their constructor arguments), so unregistered instances —
    custom subclasses, non-default scipy drivers — work identically in
    parallel and in-process runs.  Each worker uses its own in-memory
    decomposition cache (process-wide caches are not shared across
    processes), but when the parent session has a persistent ``cache_dir``
    every worker attaches the same disk tier, so workers *do* share
    decompositions, Doppler filters, and compiled sub-plan artifacts
    through the filesystem (disk writes are atomic and corrupt reads
    degrade to misses).  The parent decides
    what to forward — explicit argument, an explicit cache's own disk
    tier, or ``REPRO_CACHE_DIR`` for default-cache sessions — so an
    explicitly memory-only session stays memory-only in workers too.
    ``plan_cache_dir`` mirrors the *parent engine's* compiled-plan tier
    separately, so a session whose plan tier is detached (an explicitly
    hand-configured cache) keeps it detached in workers instead of
    silently gaining whole-plan short-circuits only when a run happens to
    parallelize.
    """
    if cache_dir is None:
        engine = SimulationEngine(cache=DecompositionCache(), backend=backend)
    else:
        engine = SimulationEngine(
            cache=DecompositionCache(cache_dir=cache_dir),
            filter_cache=DopplerFilterCache(cache_dir=cache_dir),
            plan_cache=CompiledPlanCache(plan_cache_dir),
            backend=backend,
        )
    return engine.run(subplan, n_samples)


def _merge_results(
    partials: Sequence[BatchResult],
    n_samples: int,
    wall_seconds: float,
    backend_name: str,
) -> BatchResult:
    """Reassemble worker results into one plan-ordered :class:`BatchResult`.

    Cache and dedup counters are summed across workers (each worker compiled
    against a private cache); ``compile_seconds`` is the maximum over
    workers because the compiles ran concurrently, and ``execute_seconds``
    is the caller-observed wall clock of the whole pool.
    """
    from .shard import merge_compile_reports

    blocks: List[GaussianBlock] = []
    for partial in partials:
        blocks.extend(partial.blocks)
    # Workers saw sub-plan-local indices; restore whole-plan indexing so
    # metadata maps blocks back to the caller's plan entries.
    for index, block in enumerate(blocks):
        block.metadata["plan_index"] = index
    report = merge_compile_reports([p.compile_report for p in partials])
    return BatchResult(
        blocks=tuple(blocks),
        n_samples=int(n_samples),
        compile_report=report,
        execute_seconds=wall_seconds,
        backend=backend_name,
    )


class Simulator:
    """A simulation session: one entry point over the batched engine.

    Parameters
    ----------
    backend:
        Linalg backend name (``"numpy"``, ``"scipy"``, import-gated GPU
        backends), a :class:`repro.engine.backends.LinalgBackend` instance,
        or ``None`` for the numpy default.  With the numpy backend, every
        result is bit-identical to the pre-session helpers and to looping
        single-spec generators with the same seeds.
    cache:
        Decomposition cache shared by every run of this session.  ``None``
        uses the process-wide cache; pass ``DecompositionCache(maxsize=0)``
        to disable reuse.
    cache_dir:
        Persistent artifact-cache directory for this session: builds a
        private :class:`DecompositionCache`, Young–Beaulieu filter cache,
        and compiled-plan cache whose entries spill to disk under it (the
        ``decompositions/``, ``filters/``, and ``plans/`` namespaces of the
        unified artifact store), so repeated processes sharing the
        directory skip recompilation — a warm run loads whole compiled
        plans without a single ``eigh``/``cholesky`` or filter build (see
        the README's "Caching & persistence" and ``docs/ARCHITECTURE.md``).
        Conflicts with an explicit ``cache`` — construct
        ``DecompositionCache(cache_dir=...)`` yourself to mix.  ``None``
        (default) leaves caching in-memory unless the ``REPRO_CACHE_DIR``
        environment variable configured the process-wide caches.
    max_workers:
        Worker budget.  ``None`` or 1 keeps everything in-process;
        larger values let :meth:`run` partition plans across a process pool
        (the old ``run_plan_parallel``) and size :meth:`submit`'s thread
        pool for async multiplexing.
    defaults:
        Numeric tolerance bundle for the decomposition pipeline.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.api import Simulator
    >>> sim = Simulator()
    >>> K = np.array([[1.0, 0.3], [0.3, 1.0]], dtype=complex)
    >>> sim.envelopes(K, 100, seed=5).envelopes.shape
    (2, 100)
    """

    def __init__(
        self,
        *,
        backend: BackendSpec = None,
        cache: Optional[DecompositionCache] = None,
        cache_dir: Union[None, str, "Path"] = None,
        max_workers: Optional[int] = None,
        defaults: NumericDefaults = DEFAULTS,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise SpecificationError(f"max_workers must be >= 1, got {max_workers}")
        self._engine = SimulationEngine(
            cache=cache, defaults=defaults, backend=backend, cache_dir=cache_dir
        )
        # The directory process-pool workers attach their disk tier to:
        # the explicit argument; the disk tier a caller-supplied cache
        # already carries (DecompositionCache(cache_dir=...) mixed in by
        # hand) — which also keeps an explicitly memory-only cache
        # memory-only in workers; or, for default-cache sessions only,
        # REPRO_CACHE_DIR — mirroring what the parent's own default caches
        # attach.
        if cache_dir is None:
            cache_dir = cache.cache_dir if cache is not None else cache_dir_from_env()
        self._cache_dir = None if cache_dir is None else str(cache_dir)
        # The compiled-plan tier is forwarded separately: workers attach it
        # exactly when the parent engine's plan cache is attached, so the
        # serial and parallel paths agree on whether whole-plan
        # short-circuits may happen.
        plan_dir = self._engine.plan_cache.cache_dir
        self._plan_cache_dir = None if plan_dir is None else str(plan_dir)
        self._defaults = defaults
        self._max_workers = max_workers
        self._thread_pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._pending_submissions = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def backend(self) -> LinalgBackend:
        """The linalg backend this session compiles and executes on."""
        return self._engine.backend

    @property
    def cache(self) -> DecompositionCache:
        """The decomposition cache shared by this session's runs."""
        return self._engine.cache

    @property
    def cache_stats(self):
        """Snapshot of the session cache's hit/miss/eviction counters."""
        return self._engine.cache_stats

    @property
    def cache_dir(self) -> Optional[str]:
        """The session's persistent cache directory (``None`` if in-memory)."""
        return self._cache_dir

    @property
    def max_workers(self) -> Optional[int]:
        """The session's worker budget (``None`` means in-process)."""
        return self._max_workers

    @property
    def pending_submissions(self) -> int:
        """Submissions whose thread-pool futures have not resolved yet.

        Incremented when :meth:`submit` enqueues work and decremented when
        the underlying future completes, fails, or is cancelled — a
        submission cancelled before it starts releases its slot without
        ever running, so this returning to zero means no orphaned work
        remains queued in the pool.
        """
        with self._pool_lock:
            return self._pending_submissions

    @property
    def engine(self) -> SimulationEngine:
        """The underlying engine (compile/execute seam) of this session."""
        return self._engine

    # ------------------------------------------------------------------ #
    # Compilation and batched execution
    # ------------------------------------------------------------------ #
    def compile(self, plan: SimulationPlan) -> CompiledPlan:
        """Compile a plan once for repeated :meth:`run` / :meth:`stream` calls."""
        return self._engine.compile(plan)

    def _coerce_plan(
        self,
        work: RunnableWork,
        *,
        gaussian_powers=None,
        seed: SeedLike = None,
        seeds: Optional[Sequence[SeedLike]] = None,
    ) -> Union[SimulationPlan, CompiledPlan]:
        """Accept a plan, a compiled plan, or a scenario sweep as work."""
        if isinstance(work, (SimulationPlan, CompiledPlan)):
            return work
        if hasattr(work, "to_plan"):  # ScenarioSweep (or anything sweep-shaped)
            if gaussian_powers is None:
                raise SpecificationError(
                    "running a scenario sweep requires gaussian_powers (one "
                    "per-branch power vector, or one per scenario)"
                )
            return work.to_plan(gaussian_powers, seed=seed, seeds=seeds)
        raise SpecificationError(
            "work must be a SimulationPlan, a CompiledPlan, or a ScenarioSweep; "
            f"got {type(work).__name__}"
        )

    def run(
        self,
        work: RunnableWork,
        n_samples: int,
        *,
        gaussian_powers=None,
        seed: SeedLike = None,
        seeds: Optional[Sequence[SeedLike]] = None,
    ) -> BatchResult:
        """Execute a plan, compiled plan, or scenario sweep as one batch.

        With ``max_workers > 1`` and a multi-entry (un-compiled) plan, the
        plan is partitioned into contiguous sub-plans executed across a
        process pool — the session form of the old ``run_plan_parallel`` —
        and the blocks are reassembled in plan order.  Results are
        bit-identical to the in-process path because every entry draws from
        its own seeded stream; the worker count is a pure throughput knob.

        Parameters
        ----------
        work:
            A :class:`SimulationPlan`, a :class:`CompiledPlan` (always
            executed in-process: its coloring matrices are already bound to
            this session's backend), or a
            :class:`repro.channels.scenario.ScenarioSweep`.
        n_samples:
            Time samples per branch for every entry.
        gaussian_powers, seed, seeds:
            Only used when ``work`` is a scenario sweep (forwarded to
            :meth:`~repro.channels.scenario.ScenarioSweep.to_plan`).
        """
        plan = self._coerce_plan(
            work, gaussian_powers=gaussian_powers, seed=seed, seeds=seeds
        )
        workers = self._max_workers or 1
        if (
            workers <= 1
            or isinstance(plan, CompiledPlan)
            or plan.n_entries <= 1
        ):
            return self._engine.run(plan, n_samples)
        return self._run_parallel(plan, n_samples, workers)

    def _run_parallel(
        self, plan: SimulationPlan, n_samples: int, workers: int
    ) -> BatchResult:
        """Partition ``plan`` across a process pool and merge the results."""
        import time

        if n_samples < 1:
            raise ParallelExecutionError(f"n_samples must be >= 1, got {n_samples}")
        subplans = plan.partition(int(workers))
        backend = self.backend
        start = time.perf_counter()
        try:
            with ProcessPoolExecutor(max_workers=len(subplans)) as pool:
                futures = [
                    pool.submit(
                        _run_subplan,
                        subplan,
                        n_samples,
                        backend,
                        self._cache_dir,
                        self._plan_cache_dir,
                    )
                    for subplan in subplans
                ]
                partials = [future.result() for future in futures]
        except Exception as exc:  # pragma: no cover - depends on pool environment
            raise ParallelExecutionError(f"parallel plan execution failed: {exc}") from exc
        return _merge_results(
            partials, n_samples, time.perf_counter() - start, backend.name
        )

    def stream(
        self,
        work: Union[SimulationPlan, CompiledPlan],
        *,
        block_size: int,
        n_blocks: int,
    ) -> Iterator[BatchResult]:
        """Stream fixed-size batched blocks with bounded memory.

        Per-entry generators persist across blocks, so concatenating an
        entry's streamed blocks equals repeated ``generate_gaussian``
        calls on one standalone generator — for any block size, divisible
        into the record length or not.
        """
        return self._engine.stream(work, block_size=block_size, n_blocks=n_blocks)

    # ------------------------------------------------------------------ #
    # Async multiplexing
    # ------------------------------------------------------------------ #
    def _executor(self) -> Executor:
        with self._pool_lock:
            if self._closed:
                raise ParallelExecutionError("this Simulator session has been closed")
            if self._thread_pool is None:
                self._thread_pool = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="repro-simulator",
                )
            return self._thread_pool

    async def submit(
        self,
        work: RunnableWork,
        n_samples: int,
        *,
        gaussian_powers=None,
        seed: SeedLike = None,
        seeds: Optional[Sequence[SeedLike]] = None,
    ) -> BatchResult:
        """Awaitable :meth:`run`: execute a plan in the session's thread pool.

        Many concurrent studies can be multiplexed over one session::

            results = await asyncio.gather(
                sim.submit(plan_a, 1000),
                sim.submit(plan_b, 1000),
                sim.submit(plan_c, 1000),
            )

        Each submit produces exactly the :class:`BatchResult` the
        synchronous :meth:`run` would (the thread pool only changes *when*
        the work happens, never what it computes: every entry draws from its
        own seeded stream and the decomposition cache is thread-safe).

        Cancelling the returned awaitable is cooperative and conserves
        resources: a submission still queued behind busy workers is
        cancelled *before it starts* (its pool slot is released and the
        work never runs), while one already executing runs to completion
        in its thread but the awaiting coroutine unwinds immediately.
        Either way :attr:`pending_submissions` drops back when the
        underlying future resolves — cancellation never leaks a slot.
        """
        call = functools.partial(
            self.run,
            work,
            n_samples,
            gaussian_powers=gaussian_powers,
            seed=seed,
            seeds=seeds,
        )
        executor = self._executor()
        with self._pool_lock:
            self._pending_submissions += 1
        try:
            future = executor.submit(call)
        except BaseException:
            with self._pool_lock:
                self._pending_submissions -= 1
            raise

        def _release(_finished) -> None:
            with self._pool_lock:
                self._pending_submissions -= 1

        # Fires on completion, failure, *and* successful cancellation, so
        # the pending counter is conserved on every path.
        future.add_done_callback(_release)
        # wrap_future chains cancellation: cancelling the awaitable cancels
        # the pool future, which releases a not-yet-started slot.
        return await asyncio.wrap_future(future)

    # ------------------------------------------------------------------ #
    # One-call generation (the classic helpers, session-scoped)
    # ------------------------------------------------------------------ #
    def envelopes(
        self,
        source,
        n_samples: int,
        *,
        seed: SeedLike = None,
        gaussian_powers=None,
        envelope_powers: bool = False,
        mode: str = "auto",
        normalized_doppler: Optional[float] = None,
        n_points: Optional[int] = None,
        compensate_variance: bool = True,
        coloring_method: str = "eigen",
        psd_method: str = "clip",
        fading=None,
        return_gaussian: bool = False,
    ) -> Union[EnvelopeBlock, GaussianBlock]:
        """Generate correlated Rayleigh envelopes for one specification.

        The session form of the classic one-call helpers: pass a
        :class:`repro.core.covariance.CovarianceSpec`, a raw covariance
        matrix, or a scenario object exposing
        ``covariance_spec(gaussian_powers)`` (the OFDM / MIMO scenario
        dataclasses), and get the envelope (or Gaussian) block back.

        Parameters
        ----------
        source:
            Covariance spec, raw complex covariance matrix, or scenario
            object.  Scenario objects require ``gaussian_powers``.
        n_samples:
            Time samples per branch.  In Doppler mode this is rounded up to
            a whole number of IDFT blocks and then truncated.
        seed:
            Seed or generator for the white-sample stream.  The same seed
            fed to a standalone generator (or the old helpers) produces
            bit-identical samples on the numpy backend.
        gaussian_powers:
            Per-branch complex-Gaussian powers, required when ``source`` is
            a scenario object.
        envelope_powers:
            For raw matrices: interpret diagonal powers as *envelope*
            variances and convert through Eq. (11).
        mode:
            ``"auto"`` (default) selects Doppler mode exactly when a
            normalized Doppler is given or inferred; ``"doppler"`` requires
            one (explicit or scenario-inferred) and raises otherwise;
            ``"snapshot"`` forbids one.
        normalized_doppler:
            If given (``0 < f_m < 0.5``), use the real-time Doppler-shaped
            generator of the paper's Section 5; scenarios carrying their own
            Doppler settings supply it implicitly.  Both the coloring path
            and the IDFT substrate run on the session backend (a Doppler
            one-entry plan of the batched engine).
        n_points:
            IDFT block length ``M`` for Doppler mode.  ``None`` picks the
            smallest valid power of two holding ``n_samples``
            (:func:`repro.core.pipeline.doppler_block_size`); an explicit
            smaller value makes the engine concatenate (and truncate)
            multiple blocks.
        compensate_variance:
            Doppler mode only: apply the Eq. (19) variance compensation
            (default, the paper's algorithm) or reproduce the uncompensated
            defect of [6].
        coloring_method, psd_method:
            Algorithm variants (defaults are the paper's choices).
        fading:
            Optional fading model (see :mod:`repro.models.fading`): a model
            name, a ``{"model", "shape", "shadowing_sigma_db"}`` mapping, or
            a :class:`repro.models.FadingSpec`.  ``None`` (default) is the
            paper's Rayleigh — byte-identical to the pre-model-zoo path.
        return_gaussian:
            Return the complex :class:`GaussianBlock` instead of envelopes.
        """
        from .core.covariance import CovarianceSpec
        from .core.pipeline import doppler_block_size
        from .engine import DopplerSpec

        if mode not in ("auto", "snapshot", "doppler"):
            raise SpecificationError(
                f"mode must be 'auto', 'snapshot', or 'doppler'; got {mode!r}"
            )
        if n_samples < 1:
            raise SpecificationError(f"n_samples must be >= 1, got {n_samples}")
        if mode == "snapshot" and normalized_doppler is not None:
            raise SpecificationError(
                "mode='snapshot' conflicts with an explicit normalized_doppler; "
                "drop one of the two"
            )

        if isinstance(source, CovarianceSpec):
            spec = source
        elif hasattr(source, "covariance_spec"):
            if gaussian_powers is None:
                raise SpecificationError(
                    "scenario sources require gaussian_powers (per-branch "
                    "complex-Gaussian powers)"
                )
            spec = source.covariance_spec(np.asarray(gaussian_powers, dtype=float))
            if normalized_doppler is None and mode != "snapshot":
                normalized_doppler = getattr(source, "default_normalized_doppler", None)
        else:
            matrix = np.asarray(source, dtype=complex)
            if envelope_powers:
                from .core.covariance import correlation_coefficient_matrix

                env_powers = np.real(np.diag(matrix)).copy()
                rho = correlation_coefficient_matrix(matrix)
                spec = CovarianceSpec.from_envelope_variances(env_powers, rho)
            else:
                spec = CovarianceSpec.from_covariance_matrix(matrix)

        if mode == "doppler" and normalized_doppler is None:
            raise SpecificationError(
                "mode='doppler' requires a normalized_doppler (explicitly, or "
                "inferred from a scenario carrying Doppler settings)"
            )

        plan = SimulationPlan()
        if normalized_doppler is None:
            # Doppler-only knobs must not be dropped silently on the
            # snapshot path — a forgotten normalized_doppler would otherwise
            # return un-shaped samples with no signal.
            if n_points is not None:
                raise SpecificationError(
                    "n_points applies to Doppler mode only; pass "
                    "normalized_doppler (or mode='doppler' with a scenario "
                    "carrying Doppler settings)"
                )
            if compensate_variance is not True:
                raise SpecificationError(
                    "compensate_variance applies to Doppler mode only; pass "
                    "normalized_doppler (or mode='doppler' with a scenario "
                    "carrying Doppler settings)"
                )
            # The snapshot path is the B = 1 case of the batched engine: a
            # one-entry plan compiled against the session cache and backend.
            plan.add(
                spec,
                seed=seed,
                coloring_method=coloring_method,
                psd_method=psd_method,
                fading=fading,
            )
        else:
            # Doppler mode is the B = 1 case of the batched Doppler
            # substrate: bit-identical to a standalone
            # RealTimeRayleighGenerator with the same seed.
            if n_points is None:
                n_points = doppler_block_size(n_samples, normalized_doppler)
            plan.add(
                spec,
                seed=seed,
                coloring_method=coloring_method,
                psd_method=psd_method,
                doppler=DopplerSpec(
                    normalized_doppler=float(normalized_doppler),
                    n_points=int(n_points),
                    compensate_variance=compensate_variance,
                ),
                fading=fading,
            )
        gaussian = self._engine.run(plan, n_samples).blocks[0]

        return gaussian if return_gaussian else gaussian.envelopes()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut down the session's thread pool (idempotent).

        Closed sessions still :meth:`run` synchronously — only
        :meth:`submit` needs the pool.
        """
        with self._pool_lock:
            pool, self._thread_pool = self._thread_pool, None
            self._closed = True
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "Simulator":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Simulator(backend={self.backend.name!r}, "
            f"max_workers={self._max_workers!r}, cache_size={len(self.cache)})"
        )


#: Process-wide session backing the classic one-call helpers.
_DEFAULT_SIMULATOR: Optional[Simulator] = None
_DEFAULT_LOCK = threading.Lock()


def default_simulator() -> Simulator:
    """The process-wide session (numpy backend, shared decomposition cache).

    The classic helpers (:func:`repro.core.pipeline.generate_correlated_envelopes`
    and friends) route through this session, which makes the old API the
    default-session case of the new one — and bit-identical to it.
    """
    global _DEFAULT_SIMULATOR
    with _DEFAULT_LOCK:
        if _DEFAULT_SIMULATOR is None:
            _DEFAULT_SIMULATOR = Simulator()
        return _DEFAULT_SIMULATOR
