"""Benchmark: serving-core concurrency — tail latency and throughput (PR 8).

Two figures are produced:

* **Tail latency (gated)** — N async clients submit waves of mixed
  identical/distinct plans to one :class:`EnvelopeService`; every request's
  submit→result latency is recorded and the p50/p95 quantiles (in
  milliseconds) are written in the pytest-benchmark JSON schema —
  ``{"benchmarks": [{"name": ..., "stats": {"median": ...}}]}`` — to the
  path named by ``REPRO_BENCH_SERVICE_JSON`` (default
  ``bench_service_latency.json``), so ``compare_benchmarks.py --unit ms``
  gates serving-latency regressions exactly like timing and allocation
  regressions.
* **Throughput (pytest-benchmark)** — wall time of one full wave (submit
  all, drain all) through the service, the end-to-end number the latency
  quantiles decompose.

The waves deliberately mix coalescible requests (shared ``request_key``)
with unique ones, so the figures cover the coalescing fan-out path, not
just the queue.
"""

import asyncio
import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.api import Simulator
from repro.engine import SimulationPlan
from repro.engine.cache import DecompositionCache
from repro.service import EnvelopeService

N_CLIENTS = 16
REQUESTS_PER_CLIENT = 4
UNIQUE_COMBOS = 8
N_SAMPLES = 256
LATENCY_WAVES = 5
DISPATCH_SLOTS = 4

BASE = np.array(
    [
        [1.0, 0.5 + 0.2j, 0.1],
        [0.5 - 0.2j, 2.0, 0.3j],
        [0.1, -0.3j, 1.5],
    ],
    dtype=complex,
)


@pytest.fixture(scope="module")
def latency_records():
    """Collect latency quantiles; spill them as benchmark-schema JSON."""
    records = {}
    yield records
    target = os.environ.get("REPRO_BENCH_SERVICE_JSON", "").strip()
    if not target:
        target = "bench_service_latency.json"
    payload = {
        "benchmarks": [
            {"name": name, "stats": {"median": float(value)}}
            for name, value in sorted(records.items())
        ]
    }
    Path(target).write_text(json.dumps(payload, indent=2))


def _combo_plan(combo_index, wave=0):
    scale = 1.0 + 0.25 * (combo_index % UNIQUE_COMBOS)
    plan = SimulationPlan()
    plan.add(scale * BASE, seed=1000 + wave * UNIQUE_COMBOS + combo_index)
    return plan


async def _run_wave(service, wave):
    """One wave: every client submits, then drains; returns latencies (s)."""
    latencies = []

    async def client(client_index):
        submitted = []
        for j in range(REQUESTS_PER_CLIENT):
            combo = (client_index * REQUESTS_PER_CLIENT + j) % UNIQUE_COMBOS
            started = time.perf_counter()
            request_id = service.submit(
                _combo_plan(combo, wave),
                N_SAMPLES,
                client_id=f"client-{client_index:02d}",
            )
            submitted.append((request_id, started))
        for request_id, started in submitted:
            await service.result(request_id)
            latencies.append(time.perf_counter() - started)

    await asyncio.gather(*(client(i) for i in range(N_CLIENTS)))
    return latencies


def _serve_waves(n_waves):
    """Run ``n_waves`` client waves against a fresh service; all latencies."""

    async def scenario():
        sim = Simulator(cache=DecompositionCache(), max_workers=DISPATCH_SLOTS)
        collected = []
        async with EnvelopeService(
            sim,
            max_queue=N_CLIENTS * REQUESTS_PER_CLIENT,
            dispatch_slots=DISPATCH_SLOTS,
        ) as service:
            for wave in range(n_waves):
                collected.extend(await _run_wave(service, wave))
            expected = n_waves * N_CLIENTS * REQUESTS_PER_CLIENT
            assert service.metrics()["requests_completed"] == expected
        sim.close()
        return collected

    return asyncio.run(scenario())


def test_service_latency_quantiles(latency_records):
    """Record p50/p95 submit→result latency under 16-client load (gated)."""
    latencies = _serve_waves(LATENCY_WAVES)
    assert len(latencies) == LATENCY_WAVES * N_CLIENTS * REQUESTS_PER_CLIENT
    p50, p95 = np.percentile(latencies, [50, 95])
    latency_records["service_latency_p50_ms"] = p50 * 1e3
    latency_records["service_latency_p95_ms"] = p95 * 1e3


def test_bench_service_wave_throughput(benchmark):
    """Time: one full 64-request wave (submit all, drain all) end-to-end."""

    def one_round():
        return _serve_waves(1)

    latencies = benchmark(one_round)
    assert len(latencies) == N_CLIENTS * REQUESTS_PER_CLIENT
