"""Benchmark + reproduction of the Doppler-shaping accuracy experiment (Eq. 16-21).

Prints the autocorrelation / variance accuracy table of the Young-Beaulieu
IDFT generator and times its two kernels: the filter design of Eq. (21) and
the per-block synthesis (noise generation, filtering, M-point IDFT).
"""

import pytest

from repro.channels import IDFTRayleighGenerator, young_beaulieu_filter
from repro.experiments import paper_values as pv
from repro.experiments import run_experiment


@pytest.fixture(scope="module", autouse=True)
def reproduce_table(print_report):
    print_report(run_experiment("doppler-autocorrelation"))


def test_bench_filter_design(benchmark):
    """Time: Eq. (21) filter design for M = 4096, fm = 0.05."""
    coefficients = benchmark(young_beaulieu_filter, pv.IDFT_POINTS, pv.NORMALIZED_DOPPLER)
    assert coefficients.shape == (pv.IDFT_POINTS,)


def test_bench_single_branch_block(benchmark):
    """Time: one M = 4096 Doppler-shaped complex Gaussian block (one branch)."""
    generator = IDFTRayleighGenerator(
        n_points=pv.IDFT_POINTS,
        normalized_doppler=pv.NORMALIZED_DOPPLER,
        input_variance_per_dim=pv.INPUT_VARIANCE_PER_DIM,
        rng=0,
    )
    block = benchmark(generator.generate_block)
    assert block.shape == (pv.IDFT_POINTS,)


@pytest.mark.parametrize("n_points", [1024, 4096, 16384])
def test_bench_block_size_scaling(benchmark, n_points):
    """Time: block synthesis cost vs. the IDFT length M."""
    generator = IDFTRayleighGenerator(
        n_points=n_points, normalized_doppler=pv.NORMALIZED_DOPPLER, rng=1
    )
    block = benchmark(generator.generate_block)
    assert block.shape == (n_points,)
