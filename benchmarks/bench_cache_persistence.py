"""Benchmark: warm-start compilation from the persistent artifact cache.

The persistent artifact cache exists for one scenario: a *new process*
repeating a heavy sweep it (or CI, or another worker) has run before.  This
module times ``compile_plan`` over a sweep of B large covariance matrices in
the cache states that scenario passes through:

* **cold** — empty memory cache, empty disk tier: every unique matrix pays
  its stacked ``O(N^3)`` eigendecomposition (the first-ever run);
* **warm disk** — empty memory cache, populated decomposition tier: every
  decomposition loaded and digest-verified from ``.npz`` entries (the
  compiled-plan tier is explicitly detached, so this measures the
  per-matrix tier alone);
* **warm memory** — populated memory cache: the within-process ceiling;
* **warm plan** — the executor-level tier: a fresh "process" loads the
  *whole* compiled plan from one ``plans/`` artifact, skipping grouping,
  per-matrix hashing, decomposition lookups and stack assembly entirely.

The sweep uses **large** matrices (N = 64 and 128 branches) deliberately:
a disk hit costs one file read plus a SHA-256 over the payload, which is
O(N^2) bytes, while recomputing costs O(N^3) — so the disk tier wins
exactly where decompositions are expensive (5–9x measured at N = 128) and
would *lose* on tiny matrices, where recomputing an 8x8 eigh is cheaper
than opening a file.  Workloads in that regime should rely on the
in-memory tier alone.

The cold/warm phases share one cache directory.  By default it is a
temporary directory populated inside this run; CI sets
``REPRO_BENCH_CACHE_DIR`` to a job-persistent path so the cold phase of one
step hands its disk entries to the warm phase of the next — an actual
cross-process warm start, not a simulation of one.

A correctness guard pins the invariant the speedups depend on: compiling
from disk — either tier — yields byte-for-byte the samples a fresh
computation yields.
"""

import os
from pathlib import Path

import numpy as np
import pytest

from repro.engine import (
    CompiledPlanCache,
    DecompositionCache,
    DopplerFilterCache,
    SimulationEngine,
    SimulationPlan,
    compile_plan,
)
from repro.experiments.scaling import exponential_correlation_covariance

BATCH_SIZE = 16
BRANCH_COUNTS = [64, 128]


@pytest.fixture(scope="module")
def cache_root(tmp_path_factory):
    """The shared cache directory: ``REPRO_BENCH_CACHE_DIR`` or a tmp dir."""
    configured = os.environ.get("REPRO_BENCH_CACHE_DIR", "").strip()
    if configured:
        root = Path(configured)
        root.mkdir(parents=True, exist_ok=True)
        return root
    return tmp_path_factory.mktemp("bench-cache")


def _plan(n_branches, batch_size=BATCH_SIZE):
    """B distinct large specs (scaled exponential-correlation family)."""
    base = exponential_correlation_covariance(n_branches)
    specs = [(1.0 + 0.01 * index) * base for index in range(batch_size)]
    return SimulationPlan.from_specs(specs, seed=n_branches)


def _populate(cache_dir, n_branches):
    """Ensure the disk tiers (per-matrix *and* compiled-plan) hold the sweep."""
    compile_plan(
        _plan(n_branches),
        cache=DecompositionCache(cache_dir=cache_dir),
        plan_cache=CompiledPlanCache(cache_dir),
    )


@pytest.mark.parametrize("n_branches", BRANCH_COUNTS)
def test_bench_compile_cold(benchmark, cache_root, n_branches):
    """Time: compile with nothing cached (fresh memory cache, no disk)."""
    plan = _plan(n_branches)

    def kernel():
        return compile_plan(
            plan, cache=DecompositionCache(), plan_cache=CompiledPlanCache()
        )

    compiled = benchmark(kernel)
    assert compiled.report.cache_misses == BATCH_SIZE
    # Leave the shared directory populated for the warm phases — in CI this
    # is what the next step's warm runs start from.
    _populate(cache_root / f"n{n_branches}", n_branches)


@pytest.mark.parametrize("n_branches", BRANCH_COUNTS)
def test_bench_compile_warm_disk(benchmark, cache_root, n_branches):
    """Time: compile a fresh "process" (empty memory) from the disk tier."""
    cache_dir = cache_root / f"n{n_branches}"
    _populate(cache_dir, n_branches)  # idempotent; guards solo/-k invocations
    plan = _plan(n_branches)

    def kernel():
        # A fresh cache per round models a fresh process: every lookup
        # misses memory and is served (and digest-verified) from disk.  The
        # detached plan cache isolates the per-matrix tier being measured.
        return compile_plan(
            plan,
            cache=DecompositionCache(cache_dir=cache_dir),
            plan_cache=CompiledPlanCache(),
        )

    compiled = benchmark(kernel)
    assert compiled.report.cache_hits == BATCH_SIZE
    assert compiled.report.cache_misses == 0


@pytest.mark.parametrize("n_branches", BRANCH_COUNTS)
def test_bench_compile_warm_memory(benchmark, cache_root, n_branches):
    """Time: compile with every decomposition already in memory."""
    plan = _plan(n_branches)
    cache = DecompositionCache()
    compile_plan(plan, cache=cache, plan_cache=CompiledPlanCache())

    compiled = benchmark(
        compile_plan, plan, cache=cache, plan_cache=CompiledPlanCache()
    )
    assert compiled.report.cache_hits == BATCH_SIZE


@pytest.mark.parametrize("n_branches", BRANCH_COUNTS)
def test_bench_compile_warm_plan(benchmark, cache_root, n_branches):
    """Time: load the whole compiled plan from one ``plans/`` artifact."""
    cache_dir = cache_root / f"n{n_branches}"
    _populate(cache_dir, n_branches)  # idempotent; guards solo/-k invocations
    plan = _plan(n_branches)

    def kernel():
        # A fresh plan cache per round models a fresh process; the fresh
        # (empty, detached-from-disk) decomposition cache proves nothing is
        # served per matrix — the artifact short-circuits the whole pass.
        return compile_plan(
            plan,
            cache=DecompositionCache(),
            plan_cache=CompiledPlanCache(cache_dir),
        )

    compiled = benchmark(kernel)
    assert compiled.report.plan_cache_hits == 1
    assert compiled.report.cache_hits == 0
    assert compiled.report.cache_misses == 0


def test_bench_doppler_filter_warm_disk(benchmark, cache_root):
    """Time: resolve a batch of Young–Beaulieu filters from the disk tier."""
    keys = [(4096, fm) for fm in (0.01, 0.02, 0.05, 0.1, 0.2)]
    cache_dir = cache_root / "filters"
    seed_cache = DopplerFilterCache(cache_dir=cache_dir)
    for n_points, fm in keys:
        seed_cache.get(n_points, fm)

    def kernel():
        fresh_process = DopplerFilterCache(cache_dir=cache_dir)
        return [fresh_process.get(n_points, fm) for n_points, fm in keys]

    resolved = benchmark(kernel)
    assert all(was_cached for _, _, was_cached in resolved)


def test_bench_warm_disk_equals_fresh():
    """Correctness guard: disk-served compiles execute byte-for-byte equal,
    through the per-matrix tier and through the compiled-plan tier alike."""
    import tempfile

    plan = _plan(64, batch_size=4)
    with tempfile.TemporaryDirectory() as tmp:
        fresh = SimulationEngine(cache=DecompositionCache()).run(plan, 64)
        SimulationEngine(cache_dir=tmp).run(plan, 64)  # populate all tiers

        # Per-matrix tier alone (plan cache detached).
        warm_engine = SimulationEngine(
            cache=DecompositionCache(cache_dir=tmp), plan_cache=CompiledPlanCache()
        )
        warm = warm_engine.run(plan, 64)
        assert warm_engine.cache.stats.disk_hits == 4
        for fresh_block, warm_block in zip(fresh.blocks, warm.blocks):
            assert fresh_block.samples.tobytes() == warm_block.samples.tobytes()

        # Whole-plan tier: zero per-matrix lookups, same bytes.
        plan_engine = SimulationEngine(cache_dir=tmp)
        from_plan = plan_engine.run(plan, 64)
        assert from_plan.compile_report.plan_cache_hits == 1
        assert plan_engine.cache.stats.lookups == 0
        for fresh_block, plan_block in zip(fresh.blocks, from_plan.blocks):
            assert fresh_block.samples.tobytes() == plan_block.samples.tobytes()


def test_report_warm_start_speedup(cache_root, capsys):
    """Print the measured cold vs. warm-tier compile times (informational)."""
    import time

    n_branches = BRANCH_COUNTS[-1]
    cache_dir = cache_root / f"n{n_branches}"
    _populate(cache_dir, n_branches)
    plan = _plan(n_branches)

    def best_of(callable_, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            callable_()
            best = min(best, time.perf_counter() - start)
        return best

    cold = best_of(
        lambda: compile_plan(
            plan, cache=DecompositionCache(), plan_cache=CompiledPlanCache()
        )
    )
    warm_disk = best_of(
        lambda: compile_plan(
            plan,
            cache=DecompositionCache(cache_dir=cache_dir),
            plan_cache=CompiledPlanCache(),
        )
    )
    warm_plan = best_of(
        lambda: compile_plan(
            plan, cache=DecompositionCache(), plan_cache=CompiledPlanCache(cache_dir)
        )
    )
    with capsys.disabled():
        print(
            f"\n[bench_cache_persistence] B={BATCH_SIZE}, N={n_branches}: "
            f"cold compile {cold:.4f}s, warm-disk compile {warm_disk:.4f}s "
            f"({cold / warm_disk:.2f}x), warm-plan compile {warm_plan:.4f}s "
            f"({cold / warm_plan:.2f}x warm-start speedup)"
        )
