"""Benchmark + reproduction of the non-PSD recovery experiment (Sections 4.2-4.3).

Prints the table showing Cholesky failing on indefinite covariance requests
while the proposed forced-PSD + eigen-coloring pipeline realizes the nearest
PSD matrix, and times that pipeline against matrix size.
"""

import pytest

from repro.core import compute_coloring
from repro.experiments import run_experiment
from repro.experiments.non_psd import make_indefinite_covariance
from repro.linalg import try_cholesky


@pytest.fixture(scope="module", autouse=True)
def reproduce_table(print_report):
    print_report(run_experiment("non-psd-recovery", n_samples=100_000))


@pytest.mark.parametrize("size", [4, 16, 64])
def test_bench_forced_psd_eigen_coloring(benchmark, size):
    """Time: forced-PSD + eigen coloring of an indefinite N x N request."""
    request = make_indefinite_covariance(size, seed=size)

    decomposition = benchmark(compute_coloring, request)
    assert decomposition.was_repaired


@pytest.mark.parametrize("size", [4, 16, 64])
def test_bench_cholesky_attempt_for_reference(benchmark, size):
    """Time: the (failing) Cholesky attempt on the same request, for cost reference."""
    request = make_indefinite_covariance(size, seed=size)

    result = benchmark(try_cholesky, request)
    assert not result.success
