"""Benchmark + reproduction of Eq. (22): the spectral-correlation covariance matrix.

Regenerates the covariance table of Eq. (22) from the Jakes model and times
the covariance-assembly kernel (model evaluation + Eq. 12-13 assembly), which
is the per-scenario setup cost of the proposed algorithm.
"""

import numpy as np
import pytest

from repro.experiments import paper_values as pv
from repro.experiments import run_experiment


@pytest.fixture(scope="module", autouse=True)
def reproduce_table(print_report):
    print_report(run_experiment("eq22-spectral-covariance"))


def test_bench_eq22_covariance_assembly(benchmark):
    """Time: spectral covariance model evaluation + matrix assembly (N = 3)."""
    scenario = pv.paper_ofdm_scenario()
    powers = np.ones(pv.N_BRANCHES)

    result = benchmark(lambda: scenario.covariance_spec(powers).matrix)
    assert np.allclose(result, pv.EQ22_COVARIANCE, atol=5e-4)


def test_bench_eq22_larger_carrier_count(benchmark):
    """Time: the same assembly for a 64-carrier OFDM-style scenario."""
    n = 64
    frequencies = 900e6 + 200e3 * np.arange(n)[::-1]
    arrival_times = np.linspace(0.0, 4e-3, n)
    scenario = pv.OFDMScenario(
        carrier_frequencies_hz=frequencies,
        delays_s=arrival_times,
        rms_delay_spread_s=pv.RMS_DELAY_SPREAD_S,
        doppler=pv.paper_doppler_settings(),
    )
    powers = np.ones(n)

    matrix = benchmark(lambda: scenario.covariance_spec(powers).matrix)
    assert matrix.shape == (n, n)
