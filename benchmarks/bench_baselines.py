"""Benchmark + reproduction of the baseline comparison (Section 1 shortcomings).

Prints the method x scenario coverage table for the conventional generators
[1]-[6] versus the proposed algorithm, and times each runnable method on the
friendly case (equal power, positive definite Eq. 22 covariance) so the
generality of the proposed method is shown to cost nothing at generation time.
"""

import pytest

from repro.baselines import (
    BeaulieuMeraniGenerator,
    NatarajanGenerator,
    SalzWintersGenerator,
    SorooshyariDautGenerator,
)
from repro.core import RayleighFadingGenerator
from repro.experiments import paper_values as pv
from repro.experiments import run_experiment

SAMPLES_PER_CALL = 20_000


@pytest.fixture(scope="module", autouse=True)
def reproduce_table(print_report):
    print_report(run_experiment("baseline-comparison"))


def test_bench_proposed_generator(benchmark):
    """Time: proposed algorithm, Eq. (22) covariance, 20k samples."""
    generator = RayleighFadingGenerator(pv.EQ22_COVARIANCE, rng=0)
    samples = benchmark(generator.generate, SAMPLES_PER_CALL)
    assert samples.shape == (3, SAMPLES_PER_CALL)


def test_bench_salz_winters(benchmark):
    """Time: Salz-Winters [1] real-composite coloring, same workload."""
    generator = SalzWintersGenerator(pv.EQ22_COVARIANCE, rng=0)
    samples = benchmark(generator.generate, SAMPLES_PER_CALL)
    assert samples.shape == (3, SAMPLES_PER_CALL)


def test_bench_beaulieu_merani(benchmark):
    """Time: Beaulieu-Merani [3,4] Cholesky coloring, same workload."""
    generator = BeaulieuMeraniGenerator(pv.EQ22_COVARIANCE, rng=0)
    samples = benchmark(generator.generate, SAMPLES_PER_CALL)
    assert samples.shape == (3, SAMPLES_PER_CALL)


def test_bench_natarajan(benchmark):
    """Time: Natarajan [5] real-forced Cholesky coloring, same workload."""
    generator = NatarajanGenerator(pv.EQ22_COVARIANCE, rng=0)
    samples = benchmark(generator.generate, SAMPLES_PER_CALL)
    assert samples.shape == (3, SAMPLES_PER_CALL)


def test_bench_sorooshyari_daut(benchmark):
    """Time: Sorooshyari-Daut [6] epsilon + Cholesky coloring, same workload."""
    generator = SorooshyariDautGenerator(pv.EQ22_COVARIANCE, rng=0)
    samples = benchmark(generator.generate, SAMPLES_PER_CALL)
    assert samples.shape == (3, SAMPLES_PER_CALL)
