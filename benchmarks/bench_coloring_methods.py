"""Benchmark + reproduction of the coloring-method comparison (Section 4.3).

Prints the eigen / SVD / Cholesky comparison table across covariance classes
and times each strategy on positive definite matrices of growing size (the
only class where all three are applicable).
"""

import numpy as np
import pytest

from repro.core import compute_coloring
from repro.experiments import run_experiment
from repro.experiments.scaling import exponential_correlation_covariance


@pytest.fixture(scope="module", autouse=True)
def reproduce_table(print_report):
    print_report(run_experiment("coloring-methods"))


@pytest.mark.parametrize("size", [8, 32, 128])
@pytest.mark.parametrize("method", ["eigen", "svd", "cholesky"])
def test_bench_coloring_strategy(benchmark, method, size):
    """Time: coloring an N x N positive definite covariance with each strategy."""
    covariance = exponential_correlation_covariance(size)

    decomposition = benchmark(compute_coloring, covariance, method)
    assert decomposition.reconstruction_error() < 1e-8 * np.linalg.norm(covariance)
