"""Benchmark + reproduction of Fig. 4(a): spectrally correlated real-time envelopes.

Prints the statistical validation of the regenerated Fig. 4(a) traces and
times the real-time generation kernel (three Doppler-shaped IDFT branches of
M = 4096 samples plus the coloring step), i.e. the cost of producing one
figure's worth of fading.
"""

import numpy as np
import pytest

from repro.experiments import run_experiment
from repro.experiments.fig4a import build_generator
from repro.experiments import paper_values as pv


@pytest.fixture(scope="module", autouse=True)
def reproduce_figure(print_report):
    print_report(run_experiment("fig4a-spectral-envelopes"))


def test_bench_fig4a_block_generation(benchmark):
    """Time: one M = 4096 block of 3 correlated Doppler-shaped branches."""
    generator = build_generator(seed=1)

    block = benchmark(generator.generate, 1)
    assert block.shape == (pv.N_BRANCHES, pv.IDFT_POINTS)


def test_bench_fig4a_generator_setup(benchmark):
    """Time: generator construction (covariance, PSD forcing, coloring, filter design)."""
    generator = benchmark(build_generator, 2)
    assert generator.n_branches == pv.N_BRANCHES


def test_bench_fig4a_plotted_trace(benchmark):
    """Time: regenerate exactly the 200 plotted dB samples of the figure."""
    from repro.signal import envelope_db_around_rms

    generator = build_generator(seed=3)

    def trace():
        samples = generator.generate(1)
        return envelope_db_around_rms(np.abs(samples[:, : pv.PLOTTED_SAMPLES]))

    db = benchmark(trace)
    assert db.shape == (pv.N_BRANCHES, pv.PLOTTED_SAMPLES)
