"""Benchmark: the hot-path execute memory architecture (PR 6).

Two claims are measured here:

* **Plan memory tier** — a warm ``engine.run(plan)`` on a long-lived engine
  is served by the in-memory compiled-plan tier: zero disk I/O, zero
  digest verification, zero decompositions.  The baseline is the PR 5 warm
  path, a compiled-plan *disk* hit per run (``memory_max_bytes=0``).
* **Fused, allocation-light execute** — the IDFT→coloring pipeline runs
  through preallocated scratch (``matmul_into``/``ifft_into``, in-place
  Gaussian scaling, a ring buffer for Doppler leftovers), so peak execute
  allocation drops versus the unfused two-pass kernels it replaced.  The
  unfused reference is reproduced inline (fresh arrays at every stage,
  ``np.concatenate`` buffer growth) so the ratio is measured, not assumed.

Throughput benches cover snapshot and Doppler plans at B ∈ {16, 64, 256}.
Peak-allocation figures (tracemalloc) are written in the pytest-benchmark
JSON schema — ``{"benchmarks": [{"name": ..., "stats": {"median": ...}}]}``
— to the path named by ``REPRO_BENCH_ALLOC_JSON`` (default
``bench_execute_alloc.json`` next to the timing JSON), so
``compare_benchmarks.py`` gates allocation regressions exactly like timing
regressions.

Like ``bench_cache_persistence``, the warm phases share the directory named
by ``REPRO_BENCH_CACHE_DIR`` when CI provides one.
"""

import json
import os
import tracemalloc
from pathlib import Path

import numpy as np
import pytest

from repro.channels.idft_generator import batched_doppler_blocks
from repro.engine import (
    CompiledPlanCache,
    DecompositionCache,
    DopplerFilterCache,
    DopplerSpec,
    SimulationEngine,
    SimulationPlan,
    execute_plan,
)
from repro.experiments.scaling import exponential_correlation_covariance

WARM_BATCH = 16
WARM_BRANCHES = 128
WARM_SAMPLES = 256

EXEC_BATCHES = [16, 64, 256]
EXEC_BRANCHES = 4
EXEC_SAMPLES = 512
DOPPLER_POINTS = 256


@pytest.fixture(scope="module")
def cache_root(tmp_path_factory):
    """The shared cache directory: ``REPRO_BENCH_CACHE_DIR`` or a tmp dir."""
    configured = os.environ.get("REPRO_BENCH_CACHE_DIR", "").strip()
    if configured:
        root = Path(configured)
        root.mkdir(parents=True, exist_ok=True)
        return root
    return tmp_path_factory.mktemp("bench-execute-cache")


@pytest.fixture(scope="module")
def alloc_records():
    """Collect peak-allocation figures; spill them as benchmark-schema JSON."""
    records = {}
    yield records
    target = os.environ.get("REPRO_BENCH_ALLOC_JSON", "").strip()
    if not target:
        target = "bench_execute_alloc.json"
    payload = {
        "benchmarks": [
            {"name": name, "stats": {"median": float(peak)}}
            for name, peak in sorted(records.items())
        ]
    }
    Path(target).write_text(json.dumps(payload, indent=2))


def _warm_plan():
    """B distinct large snapshot specs (the bench_cache_persistence family)."""
    base = exponential_correlation_covariance(WARM_BRANCHES)
    specs = [(1.0 + 0.01 * index) * base for index in range(WARM_BATCH)]
    return SimulationPlan.from_specs(specs, seed=WARM_BRANCHES)


def _exec_plan(batch_size, doppler):
    base = exponential_correlation_covariance(EXEC_BRANCHES)
    plan = SimulationPlan()
    for index in range(batch_size):
        plan.add(
            (1.0 + 0.01 * index) * base,
            seed=1000 + index,
            doppler=(
                DopplerSpec(normalized_doppler=0.05, n_points=DOPPLER_POINTS)
                if doppler
                else None
            ),
        )
    return plan


def test_bench_warm_run_memory_tier(benchmark, cache_root):
    """Time: warm ``run(plan)`` end-to-end, served by the memory tier."""
    cache_dir = cache_root / "warm-run"
    engine = SimulationEngine(cache_dir=cache_dir)
    plan = _warm_plan()
    engine.run(plan, WARM_SAMPLES)  # populate every tier

    result = benchmark(engine.run, plan, WARM_SAMPLES)
    assert result.compile_report.plan_cache_hits == 1
    assert result.compile_report.plan_memory_hits == 1


def test_bench_warm_run_disk_tier(benchmark, cache_root):
    """Time: warm ``run(plan)`` with the memory tier disabled (PR 5 path)."""
    cache_dir = cache_root / "warm-run"
    SimulationEngine(cache_dir=cache_dir).run(plan := _warm_plan(), WARM_SAMPLES)
    engine = SimulationEngine(
        cache=DecompositionCache(cache_dir=cache_dir),
        filter_cache=DopplerFilterCache(cache_dir=cache_dir),
        plan_cache=CompiledPlanCache(cache_dir, memory_max_bytes=0),
    )

    result = benchmark(engine.run, plan, WARM_SAMPLES)
    assert result.compile_report.plan_cache_hits == 1
    assert result.compile_report.plan_memory_hits == 0


@pytest.mark.parametrize("batch_size", EXEC_BATCHES)
def test_bench_execute_snapshot(benchmark, batch_size):
    """Time: fused execute of a compiled snapshot plan."""
    engine = SimulationEngine(cache=DecompositionCache())
    compiled = engine.compile(_exec_plan(batch_size, doppler=False))
    result = benchmark(execute_plan, compiled, EXEC_SAMPLES)
    assert result.n_entries == batch_size


@pytest.mark.parametrize("batch_size", EXEC_BATCHES)
def test_bench_execute_doppler(benchmark, batch_size):
    """Time: fused execute of a compiled Doppler plan."""
    engine = SimulationEngine(cache=DecompositionCache())
    compiled = engine.compile(_exec_plan(batch_size, doppler=True))
    result = benchmark(execute_plan, compiled, EXEC_SAMPLES)
    assert result.n_entries == batch_size


def _peak_alloc(kernel, repeats=3):
    """Median tracemalloc peak over ``repeats`` runs of ``kernel``."""
    peaks = []
    for _ in range(repeats):
        tracemalloc.start()
        try:
            kernel()
            peaks.append(tracemalloc.get_traced_memory()[1])
        finally:
            tracemalloc.stop()
    return sorted(peaks)[len(peaks) // 2]


def _unfused_doppler_reference(compiled, n_samples):
    """The pre-fusion Doppler execute: fresh arrays, concatenate growth.

    Mirrors the replaced implementation stage for stage so the fused
    kernel's allocation win is measured against what actually shipped in
    PR 5 — per-call Gaussian draw, fresh weighted/IDFT/matmul arrays, and
    ``np.concatenate`` leftover buffering.
    """
    from repro.random import ensure_rng, spawn_rngs

    results = []
    for group in compiled.groups:
        doppler = group.doppler
        m = doppler.n_points
        streams = [
            spawn_rngs(ensure_rng(entry.seed), entry.n_branches)
            for entry in group.entries
        ]
        branch_rngs = [rng for branch in streams for rng in branch]
        n_blocks = -(-n_samples // m)
        white = batched_doppler_blocks(
            group.doppler_filter,
            branch_rngs,
            n_blocks=n_blocks,
            input_variance_per_dim=doppler.input_variance_per_dim,
        ).reshape(group.batch_size, group.n_branches, n_blocks * m)
        colored = np.matmul(group.coloring_stack, white)
        colored /= np.sqrt(group.sample_variances)[:, np.newaxis, np.newaxis]
        buffer = np.concatenate([colored[:, :, :0], colored], axis=2)
        results.append(buffer[:, :, :n_samples])
    return results


@pytest.mark.parametrize("batch_size", EXEC_BATCHES)
def test_peak_allocation_doppler(alloc_records, batch_size):
    """Record the fused Doppler execute's peak allocation (gated metric)."""
    engine = SimulationEngine(cache=DecompositionCache())
    compiled = engine.compile(_exec_plan(batch_size, doppler=True))
    peak = _peak_alloc(lambda: execute_plan(compiled, EXEC_SAMPLES))
    alloc_records[f"peak_alloc_doppler[B={batch_size}]"] = peak
    traced = execute_plan(compiled, EXEC_SAMPLES, measure_allocation=True)
    assert traced.peak_alloc_bytes is not None and traced.peak_alloc_bytes > 0


@pytest.mark.parametrize("batch_size", EXEC_BATCHES)
def test_peak_allocation_snapshot(alloc_records, batch_size):
    """Record the fused snapshot execute's peak allocation (gated metric)."""
    engine = SimulationEngine(cache=DecompositionCache())
    compiled = engine.compile(_exec_plan(batch_size, doppler=False))
    peak = _peak_alloc(lambda: execute_plan(compiled, EXEC_SAMPLES))
    alloc_records[f"peak_alloc_snapshot[B={batch_size}]"] = peak


def test_fused_doppler_allocation_beats_unfused(alloc_records):
    """The fused Doppler execute at B=256 allocates ≥ 25% less at peak than
    the unfused two-pass reference it replaced (the PR 6 acceptance bar)."""
    batch_size = EXEC_BATCHES[-1]
    engine = SimulationEngine(cache=DecompositionCache())
    compiled = engine.compile(_exec_plan(batch_size, doppler=True))
    fused = _peak_alloc(lambda: execute_plan(compiled, EXEC_SAMPLES))
    unfused = _peak_alloc(lambda: _unfused_doppler_reference(compiled, EXEC_SAMPLES))
    assert fused <= 0.75 * unfused, (
        f"fused Doppler execute peak {fused} bytes is not >= 25% below the "
        f"unfused reference's {unfused} bytes"
    )


def test_report_execute_memory(cache_root, capsys):
    """Print the measured warm-run speedup and allocation ratio."""
    import time

    cache_dir = cache_root / "warm-run"
    plan = _warm_plan()
    SimulationEngine(cache_dir=cache_dir).run(plan, WARM_SAMPLES)

    def best_of(callable_, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            callable_()
            best = min(best, time.perf_counter() - start)
        return best

    memory_engine = SimulationEngine(cache_dir=cache_dir)
    memory_engine.run(plan, WARM_SAMPLES)  # promote into the memory tier
    warm_memory = best_of(lambda: memory_engine.run(plan, WARM_SAMPLES))
    disk_engine = SimulationEngine(
        cache=DecompositionCache(cache_dir=cache_dir),
        filter_cache=DopplerFilterCache(cache_dir=cache_dir),
        plan_cache=CompiledPlanCache(cache_dir, memory_max_bytes=0),
    )
    warm_disk = best_of(lambda: disk_engine.run(plan, WARM_SAMPLES))

    batch_size = EXEC_BATCHES[-1]
    compiled = SimulationEngine(cache=DecompositionCache()).compile(
        _exec_plan(batch_size, doppler=True)
    )
    fused = _peak_alloc(lambda: execute_plan(compiled, EXEC_SAMPLES))
    unfused = _peak_alloc(lambda: _unfused_doppler_reference(compiled, EXEC_SAMPLES))
    with capsys.disabled():
        print(
            f"\n[bench_execute_memory] warm run(plan) B={WARM_BATCH}, "
            f"N={WARM_BRANCHES}: memory tier {warm_memory:.4f}s vs disk tier "
            f"{warm_disk:.4f}s ({warm_disk / warm_memory:.2f}x); Doppler "
            f"execute B={batch_size} peak alloc: fused "
            f"{fused / 1024 / 1024:.1f} MiB vs unfused "
            f"{unfused / 1024 / 1024:.1f} MiB "
            f"({(1 - fused / unfused) * 100:.0f}% lower)"
        )
