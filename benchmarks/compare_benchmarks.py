"""Compare two pytest-benchmark JSON files and fail on median regressions.

CI runs the benchmark suites on every push, uploads the
``--benchmark-json`` output as a workflow artifact, and — before uploading —
downloads the previous successful run's artifact and compares medians with
this script:

    python benchmarks/compare_benchmarks.py previous.json current.json \
        --threshold 0.25

A benchmark *regresses* when its current median exceeds the previous median
by more than the threshold fraction (default 25%).  Benchmarks that appear
in only one file are reported but never fail the job (new benchmarks arrive,
old ones get renamed).  A missing or unreadable *previous* file is not an
error either — the first run of a repository has nothing to compare against
— so the job only fails on genuine slowdowns of benchmarks both runs timed.

An *empty comparison is a failure*, not a pass: when the baseline is
non-empty but the current report contributes no overlapping benchmark (the
suite crashed yet still wrote ``"benchmarks": []``, or every benchmark got
renamed at once), the gate exits 1 with an explicit message instead of
printing "no regressions: 0 benchmarks" — a gate that compared nothing has
verified nothing.

``--warn-only`` downgrades every failure to a warning (exit 0) while still
printing the full report; it is the escape hatch for noisy hosted-runner
VMs where cross-run medians are not trustworthy enough to block merges.

Exit codes: 0 (no regressions, or nothing to compare, or ``--warn-only``),
1 (regressions, a missing/unreadable current report, or an empty comparison
against a non-empty baseline).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

__all__ = ["KNOWN_UNITS", "load_medians", "compare_medians", "main"]

#: Units the report formats: seconds (timing medians), bytes
#: (peak-allocation medians), and milliseconds (serving-latency quantiles).
#: ``--unit`` rejects anything else up front — a typo'd unit would otherwise
#: pass silently into every report line.
KNOWN_UNITS = ("s", "B", "ms")


def load_medians(path: Path) -> Optional[Dict[str, float]]:
    """Benchmark-name → median-seconds mapping from a pytest-benchmark JSON.

    Returns ``None`` when the file is missing, unreadable, or not a
    pytest-benchmark report — the "nothing to compare against" cases a first
    CI run (or a renamed artifact) produces.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf8"))
    except (OSError, ValueError):
        return None
    benchmarks = payload.get("benchmarks") if isinstance(payload, dict) else None
    if not isinstance(benchmarks, list):
        return None
    medians: Dict[str, float] = {}
    for entry in benchmarks:
        try:
            medians[str(entry["name"])] = float(entry["stats"]["median"])
        except (KeyError, TypeError, ValueError):
            continue
    return medians


def compare_medians(
    previous: Dict[str, float],
    current: Dict[str, float],
    threshold: float = 0.25,
    unit: str = "s",
) -> Tuple[List[str], List[str]]:
    """Compare two median mappings.

    Returns ``(regressions, notes)``: human-readable regression lines for
    benchmarks whose current median exceeds the previous by more than
    ``threshold`` (as a fraction), and informational notes for benchmarks
    present in only one run.  ``unit`` is display-only — the gate is
    unit-agnostic, which is how the same script gates both timing medians
    (seconds) and peak-allocation medians (bytes).
    """
    if threshold < 0:
        raise ValueError(f"threshold must be non-negative, got {threshold}")
    regressions: List[str] = []
    notes: List[str] = []
    for name in sorted(set(previous) | set(current)):
        if name not in previous:
            notes.append(f"new benchmark (no baseline): {name}")
            continue
        if name not in current:
            notes.append(f"benchmark disappeared: {name}")
            continue
        before, after = previous[name], current[name]
        if before <= 0.0:
            notes.append(f"non-positive baseline median, skipping: {name}")
            continue
        ratio = after / before
        if ratio > 1.0 + threshold:
            regressions.append(
                f"{name}: median {before:.6g}{unit} -> {after:.6g}{unit} "
                f"({(ratio - 1.0):+.1%}, threshold +{threshold:.0%})"
            )
    return regressions, notes


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when benchmark medians regress beyond a threshold."
    )
    parser.add_argument("previous", type=Path, help="baseline pytest-benchmark JSON")
    parser.add_argument("current", type=Path, help="current pytest-benchmark JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed median slowdown as a fraction (default: 0.25 = +25%%)",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="report failures but always exit 0 (escape hatch for noisy "
        "runner VMs)",
    )
    parser.add_argument(
        "--unit",
        choices=KNOWN_UNITS,
        default="s",
        help="display unit for medians in the report (default: s; use B for "
        "peak-allocation reports, ms for serving-latency reports)",
    )
    args = parser.parse_args(argv)

    def fail(message: str) -> int:
        if args.warn_only:
            print(f"WARNING (suppressed by --warn-only): {message}")
            return 0
        print(message)
        return 1

    previous = load_medians(args.previous)
    if previous is None or not previous:
        print(f"no usable baseline at {args.previous}; skipping comparison")
        return 0
    current = load_medians(args.current)
    if current is None:
        return fail(
            f"current benchmark file {args.current} is missing or unreadable"
        )

    regressions, notes = compare_medians(
        previous, current, threshold=args.threshold, unit=args.unit
    )
    for note in notes:
        print(note)
    compared = len(set(previous) & set(current))
    if compared == 0:
        # A non-empty baseline with nothing to compare against is a broken
        # run (crashed suite writing "benchmarks": [], wholesale rename),
        # not a clean bill of health.
        return fail(
            f"no overlapping benchmarks: baseline has {len(previous)}, current "
            f"report contributes none — the benchmark suite produced no "
            f"comparable timings, refusing to pass an empty comparison"
        )
    if regressions:
        message = "\n".join(
            [f"{len(regressions)} benchmark regression(s) beyond +{args.threshold:.0%}:"]
            + [f"  {line}" for line in regressions]
        )
        return fail(message)
    print(
        f"no regressions: {compared} benchmarks within "
        f"+{args.threshold:.0%} of baseline medians"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
